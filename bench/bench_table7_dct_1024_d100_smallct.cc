// Table 7: DCT, Rmax=1024, delta=100 (vs. 800 in Table 5): the tighter
// latency tolerance spends more iterations and finds an equal-or-better
// solution — the paper's delta-sensitivity claim.
#include "dct_table_main.hpp"

namespace sparcs::bench {
const DctExperiment kExperiment{
    .label = "Table 7",
    .rmax = 1024,
    .ct_ns = 100,
    .delta = 100,
    .alpha = 1,
};
}  // namespace sparcs::bench

// Figure 4 companion bench: per-partition latency is the longest task-chain
// mapped to the partition. Reproduces the worked example (350/400/150 ns
// paths in partition 1, 300 ns in partition 2) and measures the latency
// recomputation used by CalculateSolnLatency().
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "core/solution.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

std::vector<graph::DesignPoint> pt(double area, double latency) {
  return {{"m", area, latency}};
}

struct Fig4Setup {
  graph::TaskGraph g{"fig4"};
  core::PartitionedDesign design;
  arch::Device dev = arch::custom("d", 1000, 1000, 25);

  Fig4Setup() {
    const auto a1 = g.add_task("a1", pt(10, 100));
    const auto a2 = g.add_task("a2", pt(10, 250));
    const auto b1 = g.add_task("b1", pt(10, 150));
    const auto b2 = g.add_task("b2", pt(10, 250));
    const auto c1 = g.add_task("c1", pt(10, 150));
    const auto d1 = g.add_task("d1", pt(10, 300));
    g.add_edge(a1, a2, 1);
    g.add_edge(b1, b2, 1);
    g.add_edge(a2, d1, 1);
    g.add_edge(b2, d1, 1);
    g.add_edge(c1, d1, 1);
    design.num_partitions_allocated = 2;
    design.assignment = {{1, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}, {2, 0}};
    core::recompute_latency(g, dev, design);
  }
};

void BM_Fig4_WorkedExample(benchmark::State& state) {
  Fig4Setup setup;
  double d1 = 0, d2 = 0;
  for (auto _ : state) {
    d1 = core::partition_path_latency(setup.g, setup.design, 1);
    d2 = core::partition_path_latency(setup.g, setup.design, 2);
    benchmark::DoNotOptimize(d1 + d2);
  }
  std::printf("\n=== Figure 4 worked example ===\n"
              "partition 1 paths: a1->a2 = 350, b1->b2 = 400, c1 = 150\n"
              "partition 1 latency = %g ns (expected 400)\n"
              "partition 2 latency = %g ns (expected 300)\n"
              "design total = %g ns (700 execution + 2 reconfigurations)\n",
              d1, d2, setup.design.total_latency_ns);
  state.counters["d1"] = d1;
  state.counters["d2"] = d2;
}
BENCHMARK(BM_Fig4_WorkedExample)->Iterations(1);

/// Throughput of the latency recomputation on the 32-task DCT (it runs after
/// every feasible ILP solve).
void BM_RecomputeLatencyDct(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 8;
  design.assignment.resize(static_cast<std::size_t>(g.num_tasks()));
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    design.assignment[static_cast<std::size_t>(t)] = {1 + (t % 8) / 2 + (t / 16) * 4, t % 3};
  }
  for (auto _ : state) {
    core::recompute_latency(g, dev, design);
    benchmark::DoNotOptimize(design.total_latency_ns);
  }
}
BENCHMARK(BM_RecomputeLatencyDct)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

// Table 4: DCT, Rmax=576, delta=200, Ct=10ms (Wildforce regime). Expected
// shape: the best solution sits at the first feasible partition bound; the
// sweep stops immediately because MinLatency(N+1) >= Da.
#include "dct_table_main.hpp"

namespace sparcs::bench {
const DctExperiment kExperiment{
    .label = "Table 4",
    .rmax = 576,
    .ct_ns = 1.0e7,
    .delta = 200,
    .alpha = 0,
};
}  // namespace sparcs::bench

// Closed-loop microbenchmark of the solve service over a real unix socket:
// end-to-end submit+result round trips (the AR-filter workload of Table 1 on
// the paper's small device), protocol-only round trips, and two-client
// concurrent throughput. Latency percentiles are computed manually from the
// recorded per-request round trips and exposed as counters (p50/p95/p99 in
// milliseconds) alongside google-benchmark's own timing.
#include <benchmark/benchmark.h>

#include <stdlib.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/logging.hpp"

namespace sparcs::bench {
namespace {

/// One daemon for the lifetime of a benchmark run, serving on a socket in a
/// fresh temp dir (no artifact dir: the bench measures the service, not the
/// filesystem).
class ServiceHarness {
 public:
  explicit ServiceHarness(int workers) {
    set_log_level(LogLevel::kError);
    char tmpl[] = "/tmp/sparcs_bench_service_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) std::abort();
    dir_ = tmpl;
    service::ServerOptions options;
    options.socket_path = dir_ + "/solve.sock";
    options.num_workers = workers;
    options.max_queue_depth = 64;
    server_ = std::make_unique<service::Server>(std::move(options));
    thread_ = std::thread([this] { server_->serve(); });
    while (!server_->listening()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ServiceHarness(const ServiceHarness&) = delete;
  ServiceHarness& operator=(const ServiceHarness&) = delete;
  ~ServiceHarness() {
    server_->request_shutdown();
    thread_.join();
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] std::string socket_path() const { return dir_ + "/solve.sock"; }

 private:
  std::string dir_;
  std::unique_ptr<service::Server> server_;
  std::thread thread_;
};

/// Table-1 AR-filter submission on the paper's small device (Rmax=200 CLB,
/// Mmax=64, Ct=50 ns, delta=20 ns).
service::Request ar_submit() {
  service::Request request;
  request.op = "submit";
  request.submit.workload = "ar";
  request.submit.rmax = 200.0;
  request.submit.mmax = 64.0;
  request.submit.ct = 50.0;
  request.submit.delta = 20.0;
  return request;
}

/// One closed-loop submit -> result(wait) round trip; returns the job's
/// terminal response line.
std::string solve_round_trip(service::Client& client) {
  const std::string admitted = client.call(ar_submit());
  const std::size_t key = admitted.find("\"job\": \"");
  if (key == std::string::npos) std::abort();  // rejected: bench bug
  const std::size_t begin = key + 8;
  service::Request result;
  result.op = "result";
  result.job = admitted.substr(begin, admitted.find('"', begin) - begin);
  result.wait = true;
  return client.call(result);
}

void report_percentiles(benchmark::State& state,
                        std::vector<double>& latencies_ms) {
  if (latencies_ms.empty()) return;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double q) {
    const std::size_t index = std::min(
        latencies_ms.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_ms.size())));
    return latencies_ms[index];
  };
  state.counters["p50_ms"] = at(0.50);
  state.counters["p95_ms"] = at(0.95);
  state.counters["p99_ms"] = at(0.99);
}

/// Closed loop, one client: every iteration is a full solve round trip.
void BM_ServiceSolveRoundTrip(benchmark::State& state) {
  const ServiceHarness harness(/*workers=*/2);
  service::Client client(harness.socket_path());
  std::vector<double> latencies_ms;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(solve_round_trip(client));
    const auto end = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - begin).count());
  }
  report_percentiles(state, latencies_ms);
  state.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
// UseRealTime: the solve happens on the daemon's worker threads, so CPU time
// in this process is meaningless for the rate counters.
BENCHMARK(BM_ServiceSolveRoundTrip)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Protocol floor: a list round trip measures framing + dispatch + response
/// with no solver work behind it.
void BM_ServiceListRoundTrip(benchmark::State& state) {
  const ServiceHarness harness(/*workers=*/1);
  service::Client client(harness.socket_path());
  service::Request list;
  list.op = "list";
  std::vector<double> latencies_ms;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(client.call(list));
    const auto end = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(end - begin).count());
  }
  report_percentiles(state, latencies_ms);
}
BENCHMARK(BM_ServiceListRoundTrip)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

/// Two closed-loop clients against a two-worker daemon: each iteration
/// completes 2 x kJobsPerClient jobs, exercising the queue and the
/// connection handlers concurrently.
void BM_ServiceTwoClientThroughput(benchmark::State& state) {
  const ServiceHarness harness(/*workers=*/2);
  constexpr int kJobsPerClient = 4;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(2);
    for (int c = 0; c < 2; ++c) {
      clients.emplace_back([&harness] {
        service::Client client(harness.socket_path());
        for (int i = 0; i < kJobsPerClient; ++i) {
          benchmark::DoNotOptimize(solve_round_trip(client));
        }
      });
    }
    for (std::thread& t : clients) t.join();
    jobs += 2 * kJobsPerClient;
  }
  state.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceTwoClientThroughput)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sparcs::bench

BENCHMARK_MAIN();

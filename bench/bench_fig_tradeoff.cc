// Section 2 motivation figure: the latency-vs-N tradeoff depends on the
// reconfiguration overhead. For each partition count N we run the latency
// refinement alone and print one series per Ct regime; small overheads favor
// relaxing N (faster design points fit), large overheads favor the minimum
// partition count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/reduce_latency.hpp"
#include "io/table.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

void BM_LatencyVsN(benchmark::State& state) {
  const double ct = static_cast<double>(state.range(0));
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("dct_dev", 576, 4096, ct);

  struct Point {
    int n;
    double total;
    double execution;
  };
  std::vector<Point> series;
  for (auto _ : state) {
    series.clear();
    for (int n = core::min_area_partitions(g, dev); n <= 8; ++n) {
      core::ReduceLatencyParams params;
      params.budget.delta = 200.0;
      params.budget.solver.time_limit_sec = 3.0;
      params.budget.solver.node_limit = 500000;
      core::Trace trace;
      const core::ReduceLatencyResult r = core::reduce_latency(
          g, dev, n, core::max_latency(g, dev, n),
          core::min_latency(g, dev, n), params, trace);
      series.push_back({n, r.achieved_latency,
                        r.best ? r.best->execution_latency_ns : 0.0});
    }
  }

  std::printf("\n=== Figure (motivation): total latency vs N, Ct=%g ns ===\n",
              ct);
  io::AsciiTable table({"N", "best total latency (ns)", "execution part (ns)"});
  double best = 1e300;
  int best_n = 0;
  for (const auto& [n, latency, execution] : series) {
    table.add_row({std::to_string(n),
                   latency > 0 ? std::to_string((long long)latency) : "Inf.",
                   latency > 0 ? std::to_string((long long)execution) : "-"});
    if (latency > 0 && latency < best) {
      best = latency;
      best_n = n;
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("best N for Ct=%g ns: %d\n", ct, best_n);
  state.counters["best_N"] = best_n;
  state.counters["best_latency_ns"] = best;
}

BENCHMARK(BM_LatencyVsN)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->Arg(100)        // TM-FPGA-like: relaxing N should pay off
    ->Arg(100000)     // 0.1 ms: crossover regime
    ->Arg(10000000);  // Wildforce-like: minimum N should win

}  // namespace

BENCHMARK_MAIN();

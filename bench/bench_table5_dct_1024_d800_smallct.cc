// Table 5: DCT, Rmax=1024, delta=800, alpha=1, gamma=1, small
// reconfiguration overhead.
#include "dct_table_main.hpp"

namespace sparcs::bench {
const DctExperiment kExperiment{
    .label = "Table 5",
    .rmax = 1024,
    .ct_ns = 100,
    .delta = 800,
    .alpha = 1,
};
}  // namespace sparcs::bench

// Microbenchmarks of the MILP substrate: simplex throughput on dense LPs,
// branch & bound on knapsacks, and propagation cost on the DCT model.
#include <benchmark/benchmark.h>

#include "arch/device.hpp"
#include "core/bounds.hpp"
#include "core/formulation.hpp"
#include "milp/compiled.hpp"
#include "milp/propagation.hpp"
#include "milp/simplex.hpp"
#include "milp/solver.hpp"
#include "support/rng.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;
using namespace sparcs::milp;

/// Random dense LP: min c'x s.t. Ax <= b, 0 <= x <= 10.
LpProblem random_lp(int vars, int rows, std::uint64_t seed) {
  Rng rng(seed);
  LpProblem lp;
  for (int j = 0; j < vars; ++j) {
    lp.add_var(rng.uniform(-1.0, 1.0), 0.0, 10.0);
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<LinTerm> terms;
    for (int j = 0; j < vars; ++j) {
      terms.push_back({j, rng.uniform(0.0, 1.0)});
    }
    lp.add_row(std::move(terms), Sense::kLessEqual,
               rng.uniform(1.0, 2.0) * vars / 4.0);
  }
  return lp;
}

void BM_SimplexDenseLp(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  const LpProblem lp = random_lp(size, size, 99);
  LpResult result;
  for (auto _ : state) {
    result = solve_lp(lp);
    benchmark::DoNotOptimize(result.objective);
  }
  state.counters["iters"] = result.iterations;
  state.counters["optimal"] = result.status == LpStatus::kOptimal ? 1 : 0;
}
BENCHMARK(BM_SimplexDenseLp)->Unit(benchmark::kMillisecond)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

Model knapsack_model(int items, std::uint64_t seed) {
  Rng rng(seed);
  Model m("knap");
  LinExpr weight, value;
  for (int i = 0; i < items; ++i) {
    const VarId x = m.add_binary("x" + std::to_string(i));
    weight += static_cast<double>(rng.uniform_int(5, 30)) * LinExpr(x);
    value += static_cast<double>(rng.uniform_int(5, 40)) * LinExpr(x);
  }
  m.add_constraint(weight <= 40.0 + 3.0 * items, "cap");
  m.set_objective(value, /*minimize=*/false);
  return m;
}

void BM_BnbKnapsack(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  const Model m = knapsack_model(items, 7);
  MilpSolution s;
  for (auto _ : state) {
    SolverParams params;
    params.use_lp_bounding = true;
    s = Solver(m, params).solve();
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["nodes"] = static_cast<double>(s.nodes_explored);
}
BENCHMARK(BM_BnbKnapsack)->Unit(benchmark::kMillisecond)->Arg(12)->Arg(18)->Arg(24);

/// First-feasible search on the DCT-1024 temporal-partitioning model, swept
/// over worker-thread counts (Arg = num_threads; 1 is the serial legacy
/// search). The acceptance target is >= 2x at 4 threads vs 1 on multi-core
/// hosts.
void BM_BnbFirstFeasibleDct1024(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 1024, 4096, 100);
  const int n = 4;
  core::IlpFormulation form(g, dev, n, core::max_latency(g, dev, n),
                            core::min_latency(g, dev, n));
  MilpSolution s;
  for (auto _ : state) {
    SolverParams params;
    params.num_threads = static_cast<int>(state.range(0));
    s = Solver(form.model(), first_feasible_params(params)).solve();
    benchmark::DoNotOptimize(s.status);
  }
  state.counters["nodes"] = static_cast<double>(s.nodes_explored);
  state.counters["feasible"] = s.has_solution() ? 1 : 0;
}
BENCHMARK(BM_BnbFirstFeasibleDct1024)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_CompileDctModel(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  for (auto _ : state) {
    core::IlpFormulation form(g, dev, 8, core::max_latency(g, dev, 8),
                              core::min_latency(g, dev, 8));
    const CompiledModel compiled(form.model());
    benchmark::DoNotOptimize(compiled.num_constraints());
  }
}
BENCHMARK(BM_CompileDctModel)->Unit(benchmark::kMillisecond);

void BM_RootPropagationDct(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  core::IlpFormulation form(g, dev, 8, core::max_latency(g, dev, 8),
                            core::min_latency(g, dev, 8));
  const CompiledModel compiled(form.model());
  for (auto _ : state) {
    Domains domains(compiled);
    Propagator propagator(compiled, 1e-6, 50);
    PropagationStats stats;
    const bool ok = propagator.propagate(domains, {}, stats);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_RootPropagationDct)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

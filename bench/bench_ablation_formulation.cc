// Ablation bench for the formulation design choices DESIGN.md calls out:
//  - temporal order: the paper's pairwise rows vs. the aggregated
//    partition-index row (smaller model, weaker propagation);
//  - partition latency: path enumeration (paper) vs. the flow-based big-M
//    form (polynomial in graph size);
//  - strengthening cuts on/off (per-task aggregation variables).
// Each variant solves the same first-feasible query; we report wall time,
// node count and model size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "core/bounds.hpp"
#include "core/formulation.hpp"
#include "milp/solver.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

core::FormulationOptions make_options(int variant) {
  core::FormulationOptions options;
  switch (variant) {
    case 0:  // paper default
      break;
    case 1:
      options.order_form = core::FormulationOptions::OrderForm::kAggregated;
      break;
    case 2:
      options.latency_form =
          core::FormulationOptions::LatencyForm::kFlowBased;
      break;
    case 3:
      options.strengthening_cuts = false;
      break;
    default:
      break;
  }
  return options;
}

const char* variant_name(int variant) {
  switch (variant) {
    case 0:
      return "paper-default";
    case 1:
      return "aggregated-order";
    case 2:
      return "flow-latency";
    case 3:
      return "no-cuts";
    default:
      return "?";
  }
}

void run_variant(benchmark::State& state, const graph::TaskGraph& g,
                 const arch::Device& dev, int n, double d_max, double d_min) {
  const int variant = static_cast<int>(state.range(0));
  milp::MilpSolution solution;
  milp::ModelStats stats;
  for (auto _ : state) {
    core::IlpFormulation form(g, dev, n, d_max, d_min,
                              make_options(variant));
    stats = form.model().stats();
    milp::SolverParams params;
    params.time_limit_sec = 10.0;
    solution = milp::Solver(form.model(), milp::first_feasible_params(params)).solve();
  }
  state.counters["nodes"] = static_cast<double>(solution.nodes_explored);
  state.counters["rows"] = stats.num_constraints;
  state.counters["cols"] = stats.num_vars;
  state.counters["nnz"] = static_cast<double>(stats.num_nonzeros);
  state.counters["feasible"] = solution.has_solution() ? 1 : 0;
  state.SetLabel(variant_name(variant));
}

void BM_Ablation_ArFilter(benchmark::State& state) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  run_variant(state, g, dev, 3, core::max_latency(g, dev, 3),
              core::min_latency(g, dev, 3));
}
BENCHMARK(BM_Ablation_ArFilter)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->DenseRange(0, 3);

void BM_Ablation_Dct(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 576, 4096, 100);
  // A mid-tight window: loose enough to be feasible, tight enough that the
  // formulation strength matters.
  run_variant(state, g, dev, 6, 4200.0, core::min_latency(g, dev, 6));
}
BENCHMARK(BM_Ablation_Dct)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();

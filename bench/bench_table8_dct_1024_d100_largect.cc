// Table 8: DCT, Rmax=1024, delta=100, Ct=10ms.
#include "dct_table_main.hpp"

namespace sparcs::bench {
const DctExperiment kExperiment{
    .label = "Table 8",
    .rmax = 1024,
    .ct_ns = 1.0e7,
    .delta = 100,
    .alpha = 0,
};
}  // namespace sparcs::bench

// Table 2: design points of the DCT tasks — the pinned values used by the
// table benches and, alongside, the Pareto fronts our HLS estimator
// regenerates from the vector-product dataflow graph.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "hls/design_point_gen.hpp"
#include "io/table.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

void print_points(const char* label,
                  const std::vector<graph::DesignPoint>& points) {
  io::AsciiTable table({"module set", "area (CLB)", "latency (ns)"});
  for (const graph::DesignPoint& p : points) {
    table.add_row({p.module_set, std::to_string((int)p.area),
                   std::to_string((int)p.latency_ns)});
  }
  std::printf("%s\n%s", label, table.to_string().c_str());
}

void BM_Table2_PinnedPoints(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::dct_t1_pinned_points());
  }
  std::printf("\n=== Table 2: DCT task design points (pinned) ===\n");
  print_points("T1 (12-bit vector product):",
               workloads::dct_t1_pinned_points());
  print_points("T2 (16-bit vector product):",
               workloads::dct_t2_pinned_points());
}
BENCHMARK(BM_Table2_PinnedPoints)->Iterations(1);

void BM_Table2_EstimatedPoints(benchmark::State& state) {
  const hls::ModuleLibrary lib = hls::ModuleLibrary::xc4000();
  hls::GeneratorOptions options;
  options.max_points = 4;
  std::vector<graph::DesignPoint> t1, t2;
  for (auto _ : state) {
    t1 = hls::generate_design_points(
        workloads::dct_vector_product_dfg(12), lib, options);
    t2 = hls::generate_design_points(
        workloads::dct_vector_product_dfg(16), lib, options);
  }
  state.counters["t1_points"] = static_cast<double>(t1.size());
  state.counters["t2_points"] = static_cast<double>(t2.size());
  std::printf("\n=== Table 2 (estimator-regenerated Pareto fronts) ===\n");
  print_points("T1 (12-bit):", t1);
  print_points("T2 (16-bit):", t2);
}
BENCHMARK(BM_Table2_EstimatedPoints)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

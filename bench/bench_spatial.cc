// Spatial partitioning bench: exact ILP vs the FM heuristic on per-
// configuration netlists (cut quality and runtime), plus the end-to-end
// SPARCS flow (temporal then spatial) on the DCT.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "arch/device.hpp"
#include "bench_common.hpp"
#include "core/partitioner.hpp"
#include "io/table.hpp"
#include "spatial/flow.hpp"
#include "support/rng.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

spatial::Netlist random_netlist(int nodes, int nets, std::uint64_t seed) {
  Rng rng(seed);
  spatial::Netlist nl;
  for (int i = 0; i < nodes; ++i) {
    nl.add_node("n" + std::to_string(i), std::floor(rng.uniform(20, 60)));
  }
  for (int i = 0; i < nets; ++i) {
    const auto a = static_cast<spatial::NodeId>(rng.index(nodes));
    const auto b = static_cast<spatial::NodeId>(rng.index(nodes));
    if (a != b) nl.add_net(a, b, std::floor(rng.uniform(1, 8)));
  }
  return nl;
}

void BM_SpatialIlpVsFm(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const spatial::Netlist nl = random_netlist(nodes, 2 * nodes, 77);
  spatial::Board board = spatial::wildforce_board(
      /*fpga_capacity=*/nl.total_area() / 3.0,
      /*interconnect_capacity=*/1e9);

  spatial::FmResult fm;
  spatial::IlpSpatialResult ilp;
  for (auto _ : state) {
    fm = spatial_partition_fm(nl, board);
    milp::SolverParams params;
    params.time_limit_sec = 10.0;
    ilp = spatial_partition_ilp(nl, board, /*to_optimality=*/true, params);
  }
  state.counters["fm_cut"] =
      fm.assignment ? fm.assignment->cut_weight : -1;
  state.counters["ilp_cut"] =
      ilp.assignment ? ilp.assignment->cut_weight : -1;
  state.counters["ilp_proved"] =
      ilp.status == milp::SolveStatus::kOptimal ? 1 : 0;
  state.counters["fm_ms"] = fm.seconds * 1e3;
  state.counters["ilp_ms"] = ilp.seconds * 1e3;
}
BENCHMARK(BM_SpatialIlpVsFm)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Iterations(1);

void BM_SparcsFlowDct(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 1024, 4096, 100);
  core::PartitionerOptions options;
  options.budget.delta = 400.0;
  options.budget.solver.time_limit_sec = 2.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  if (!report.feasible) {
    state.SkipWithError("DCT partitioning infeasible");
    return;
  }
  const spatial::Board board = spatial::wildforce_board(
      /*fpga_capacity=*/dev.resource_capacity / 4.0,
      /*interconnect_capacity=*/256.0);
  spatial::FlowResult flow;
  for (auto _ : state) {
    flow = spatial::map_design_to_board(g, *report.best, board);
  }
  state.counters["configs"] =
      static_cast<double>(flow.configurations.size());
  state.counters["total_cut"] = flow.total_cut;
  state.counters["ok"] = flow.ok ? 1 : 0;
  std::printf("\n=== SPARCS flow: temporal (N=%d) then spatial onto %s ===\n%s",
              report.best_num_partitions, board.name.c_str(),
              flow.to_string(g).c_str());
}
BENCHMARK(BM_SparcsFlowDct)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

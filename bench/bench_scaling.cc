// Scaling study: time-to-first-feasible-solution of the iterative machinery
// vs. task count on random layered DAGs, and the node cost of proving
// optimality on the sizes where that is still tractable (the paper's "up to
// 10 tasks" observation).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "core/baselines.hpp"
#include "core/bounds.hpp"
#include "core/formulation.hpp"
#include "core/partitioner.hpp"
#include "milp/solver.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace sparcs;

graph::TaskGraph make_graph(int tasks) {
  workloads::RandomGraphOptions options;
  options.num_tasks = tasks;
  options.num_layers = std::max(2, tasks / 4);
  options.num_design_points = 3;
  options.seed = 1234 + static_cast<std::uint64_t>(tasks);
  return workloads::random_task_graph(options);
}

void first_feasible_scaling(benchmark::State& state, bool warm_start) {
  const int tasks = static_cast<int>(state.range(0));
  const graph::TaskGraph g = make_graph(tasks);
  const arch::Device dev = arch::custom("d", 400, 4096, 100);
  const int n = core::min_area_partitions(g, dev) + 1;
  milp::MilpSolution solution;
  for (auto _ : state) {
    core::IlpFormulation form(g, dev, n, core::max_latency(g, dev, n),
                              core::min_latency(g, dev, n));
    if (warm_start) {
      if (const auto greedy = core::greedy_first_fit(
              g, dev, core::PointPolicy::kMinArea, n)) {
        form.apply_hints(*greedy);
      }
    }
    milp::SolverParams params;
    params.time_limit_sec = 10.0;
    solution = milp::Solver(form.model(), milp::first_feasible_params(params)).solve();
  }
  state.counters["nodes"] = static_cast<double>(solution.nodes_explored);
  state.counters["feasible"] = solution.has_solution() ? 1 : 0;
  state.counters["N"] = n;
}

/// Raw DFS, no MIP start: stalls beyond ~16 tasks — the regime the paper's
/// "optimality only for small problems" observation lives in.
void BM_FirstFeasibleNoWarmStart(benchmark::State& state) {
  first_feasible_scaling(state, false);
}
BENCHMARK(BM_FirstFeasibleNoWarmStart)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Iterations(1);

/// With the greedy MIP start the same queries scale to 48 tasks.
void BM_FirstFeasibleWarmStart(benchmark::State& state) {
  first_feasible_scaling(state, true);
}
BENCHMARK(BM_FirstFeasibleWarmStart)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Iterations(1);

/// Worker-thread scaling of a single first-feasible query on a DCT-1024
/// model (Arg = num_threads; 1 is the serial legacy search). Pairs with
/// bench_milp's BM_BnbFirstFeasibleDct1024 for the 4-vs-1-thread target.
void BM_FirstFeasibleThreadsDct1024(benchmark::State& state) {
  const graph::TaskGraph g = make_graph(32);
  const arch::Device dev = arch::custom("d", 1024, 4096, 100);
  const int n = core::min_area_partitions(g, dev) + 1;
  milp::MilpSolution solution;
  for (auto _ : state) {
    core::IlpFormulation form(g, dev, n, core::max_latency(g, dev, n),
                              core::min_latency(g, dev, n));
    milp::SolverParams params;
    params.time_limit_sec = 10.0;
    params.num_threads = static_cast<int>(state.range(0));
    solution =
        milp::Solver(form.model(), milp::first_feasible_params(params)).solve();
  }
  state.counters["nodes"] = static_cast<double>(solution.nodes_explored);
  state.counters["feasible"] = solution.has_solution() ? 1 : 0;
}
BENCHMARK(BM_FirstFeasibleThreadsDct1024)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1);

void BM_FullPartitionerVsTasks(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const graph::TaskGraph g = make_graph(tasks);
  const arch::Device dev = arch::custom("d", 400, 4096, 100);
  core::PartitionerReport report;
  for (auto _ : state) {
    core::PartitionerOptions options;
    options.budget.delta = 100.0;
    options.budget.solver.time_limit_sec = 2.0;
    options.budget.time_budget_sec = 30.0;
    report = core::TemporalPartitioner(g, dev, options).run();
  }
  state.counters["Da_ns"] = report.feasible ? report.achieved_latency : 0;
  state.counters["solves"] = report.ilp_solves;
}
BENCHMARK(BM_FullPartitionerVsTasks)
    ->Unit(benchmark::kSecond)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1);

void BM_OptimalProofVsTasks(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  const graph::TaskGraph g = make_graph(tasks);
  const arch::Device dev = arch::custom("d", 400, 4096, 100);
  const int n = core::min_area_partitions(g, dev) + 1;
  core::OptimalResult result;
  for (auto _ : state) {
    milp::SolverParams params;
    params.time_limit_sec = 20.0;
    result = core::solve_optimal(g, dev, n, params);
  }
  state.counters["nodes"] = static_cast<double>(result.nodes);
  state.counters["proved"] =
      result.status == milp::SolveStatus::kOptimal ? 1 : 0;
}
BENCHMARK(BM_OptimalProofVsTasks)
    ->Unit(benchmark::kSecond)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(14)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

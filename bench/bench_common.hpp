// Shared configuration and helpers for the paper-table reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation: it runs the iterative partitioner with the experiment's
// parameters, prints the paper-style trace table (bounds shown without the
// N*C_T reconfiguration term, matching the paper's layout), and exposes the
// headline quantities as google-benchmark counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "io/table.hpp"
#include "workloads/dct.hpp"

namespace sparcs::bench {

/// One DCT experiment configuration (Tables 3-8).
struct DctExperiment {
  const char* label;
  double rmax;
  double mmax = 4096;
  double ct_ns;
  double delta;
  int alpha;
  int gamma = 1;
  /// Per-SolveModel budget. The paper ran CPLEX under a wall-clock budget as
  /// well; probes that exhaust it are reported as "Limit" and treated like
  /// infeasible ones by the search.
  double per_solve_time_limit_sec = 5.0;
};

inline core::PartitionerReport run_dct_experiment(const DctExperiment& e) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("dct_dev", e.rmax, e.mmax, e.ct_ns);
  core::PartitionerOptions options;
  options.alpha = e.alpha;
  options.gamma = e.gamma;
  options.budget.delta = e.delta;
  options.budget.solver.time_limit_sec = e.per_solve_time_limit_sec;
  options.budget.solver.node_limit = 2000000;
  return core::TemporalPartitioner(g, dev, options).run();
}

inline void print_dct_report(const DctExperiment& e,
                             const core::PartitionerReport& report) {
  std::printf("\n=== %s: DCT 4x4, Rmax=%g CLB, Mmax=%g, Ct=%g ns, "
              "delta=%g, alpha=%d, gamma=%d ===\n",
              e.label, e.rmax, e.mmax, e.ct_ns, e.delta, e.alpha, e.gamma);
  std::printf("N bounds: [%d, %d]; bounds below shown without N*Ct\n",
              report.n_min_lower, report.n_min_upper);
  std::printf("%s", io::render_trace(report.trace, e.ct_ns, true).c_str());
  if (report.feasible) {
    std::printf("best: Da=%g ns total (execution %g ns) at N=%d, eta=%d%s\n",
                report.achieved_latency,
                report.best->execution_latency_ns,
                report.best_num_partitions,
                report.best->num_partitions_used,
                report.stopped_by_lower_bound
                    ? " [sweep stopped by MinLatency(N) >= Da]"
                    : "");
  } else {
    std::printf("no feasible solution in the explored range\n");
  }
}

inline void set_report_counters(benchmark::State& state,
                                const core::PartitionerReport& report) {
  state.counters["Da_ns"] = report.feasible ? report.achieved_latency : 0.0;
  state.counters["best_N"] = report.best_num_partitions;
  state.counters["ilp_solves"] = report.ilp_solves;
  state.counters["trace_rows"] = static_cast<double>(report.trace.size());
  const milp::SolverStats& s = report.solver_stats;
  state.counters["bnb_nodes"] = static_cast<double>(s.nodes_explored);
  state.counters["bnb_pruned"] = static_cast<double>(
      s.nodes_pruned_by_bound + s.nodes_pruned_infeasible);
  state.counters["incumbents"] = static_cast<double>(s.incumbent_updates);
  state.counters["simplex_iters"] =
      static_cast<double>(s.simplex_iterations);
  state.counters["simplex_pivots"] = static_cast<double>(s.simplex_pivots);
  state.counters["bounds_tightened"] =
      static_cast<double>(s.bounds_tightened);
}

}  // namespace sparcs::bench

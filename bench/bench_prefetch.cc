// Extension experiment: configuration prefetch (double-buffered contexts,
// after the paper's Time-Multiplexed FPGA reference [12]). For a sweep of
// reconfiguration times, compare the makespan of the partitioned DCT with
// and without overlap of configuration loading and execution — prefetch
// hides the overhead wherever C_T <= d_p, shifting the crossover of the
// Section 2 tradeoff.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "bench_common.hpp"
#include "core/partitioner.hpp"
#include "io/table.hpp"
#include "sim/executor.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

void BM_PrefetchSweep(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  struct Row {
    double ct;
    double plain;
    double prefetch;
  };
  std::vector<Row> rows;
  for (auto _ : state) {
    rows.clear();
    for (const double ct : {50.0, 200.0, 500.0, 1000.0, 5000.0}) {
      const arch::Device dev = arch::custom("d", 1024, 4096, ct);
      core::PartitionerOptions options;
      options.budget.delta = 200.0;
      options.budget.solver.time_limit_sec = 3.0;
      const core::PartitionerReport report =
          core::TemporalPartitioner(g, dev, options).run();
      if (!report.feasible) continue;
      sim::SimulationOptions plain;
      sim::SimulationOptions overlapped;
      overlapped.prefetch_configurations = true;
      const double t_plain =
          sim::simulate(g, dev, *report.best, plain).makespan_ns;
      const double t_prefetch =
          sim::simulate(g, dev, *report.best, overlapped).makespan_ns;
      rows.push_back({ct, t_plain, t_prefetch});
    }
  }

  std::printf("\n=== Extension: configuration prefetch on the DCT "
              "(Rmax=1024) ===\n");
  io::AsciiTable table(
      {"Ct (ns)", "no prefetch (ns)", "prefetch (ns)", "hidden (%)"});
  for (const Row& row : rows) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f",
                  100.0 * (row.plain - row.prefetch) / row.plain);
    table.add_row({std::to_string((long long)row.ct),
                   std::to_string((long long)row.plain),
                   std::to_string((long long)row.prefetch), pct});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("prefetch hides reconfiguration wherever Ct <= d_p; with very "
              "large Ct only the pipeline fill remains exposed\n");
}
BENCHMARK(BM_PrefetchSweep)->Unit(benchmark::kSecond)->Iterations(1);

/// Closed-form estimate must match the event simulation exactly.
void BM_PrefetchClosedFormAgreement(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 1024, 4096, 300);
  core::PartitionerOptions options;
  options.budget.delta = 400.0;
  options.budget.solver.time_limit_sec = 2.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  if (!report.feasible) {
    state.SkipWithError("infeasible");
    return;
  }
  bool agree = true;
  for (auto _ : state) {
    for (const bool prefetch : {false, true}) {
      sim::SimulationOptions sim_options;
      sim_options.prefetch_configurations = prefetch;
      const double simulated =
          sim::simulate(g, dev, *report.best, sim_options).makespan_ns;
      const double estimated =
          sim::estimated_makespan(g, dev, *report.best, prefetch);
      agree = agree && std::abs(simulated - estimated) < 1e-6;
    }
  }
  state.counters["agree"] = agree ? 1 : 0;
}
BENCHMARK(BM_PrefetchClosedFormAgreement)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

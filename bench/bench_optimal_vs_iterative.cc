// Section 4 claim: "in none of these experiments could the optimal solution
// process get even a single feasible solution in the same run time as the
// iterative solution process." We give the optimal-ILP mode the same wall
// budget the iterative procedure needed end-to-end and report whether it
// produced anything.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "bench_common.hpp"
#include "core/partitioner.hpp"
#include "workloads/dct.hpp"

namespace {

using namespace sparcs;

void BM_IterativeDct(benchmark::State& state) {
  sparcs::bench::DctExperiment e{
      .label = "iterative reference",
      .rmax = 576,
      .ct_ns = 100,
      .delta = 400,
      .alpha = 0,
      .per_solve_time_limit_sec = 3.0,
  };
  core::PartitionerReport report;
  double seconds = 0.0;
  for (auto _ : state) {
    report = sparcs::bench::run_dct_experiment(e);
    seconds = report.seconds;
  }
  sparcs::bench::set_report_counters(state, report);
  std::printf("\niterative: Da=%g ns after %.1f s (%d solves)\n",
              report.achieved_latency, seconds, report.ilp_solves);
}
BENCHMARK(BM_IterativeDct)->Unit(benchmark::kSecond)->Iterations(1);

void BM_OptimalDctSameBudget(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("dct_dev", 576, 4096, 100);
  // Budget: what the iterative run took (measured fresh to stay fair).
  const core::PartitionerReport iterative =
      sparcs::bench::run_dct_experiment({.label = "budget probe",
                                         .rmax = 576,
                                         .ct_ns = 100,
                                         .delta = 400,
                                         .alpha = 0,
                                         .per_solve_time_limit_sec = 3.0});
  milp::SolverParams params;
  params.time_limit_sec = std::max(1.0, iterative.seconds);
  core::OptimalResult optimal;
  for (auto _ : state) {
    optimal = core::solve_optimal(g, dev, 6, params);
  }
  state.counters["optimal_found"] = optimal.best.has_value() ? 1 : 0;
  state.counters["nodes"] = static_cast<double>(optimal.nodes);
  std::printf(
      "optimal mode, %.1f s budget at N=6: %s (nodes=%lld)\n"
      "iterative in the same time: Da=%g ns\n"
      "%s\n",
      params.time_limit_sec,
      optimal.best.has_value() ? "found a solution" : "NO feasible solution",
      static_cast<long long>(optimal.nodes),
      iterative.achieved_latency,
      !optimal.best.has_value()
          ? "reproduces the paper's claim: optimality mode yields nothing "
            "in the iterative procedure's runtime"
          : "deviation: optimal mode found a solution within the budget");
}
BENCHMARK(BM_OptimalDctSameBudget)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

// Figure 3 companion bench: the w_pt1t2 variables model cross-partition data
// storage. Sweeping the on-board memory budget over the Figure-3 style graph
// shows the partitioner trading separation (parallel area use) against
// co-location (no memory traffic), and the cost of the memory rows in the
// model.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "core/bounds.hpp"
#include "core/formulation.hpp"
#include "io/table.hpp"
#include "milp/solver.hpp"

namespace {

using namespace sparcs;

/// Figure-3 shaped graph: a chain with a skip edge, sized so separating the
/// producer chain across partitions needs real memory.
graph::TaskGraph fig3_graph() {
  graph::TaskGraph g("fig3");
  const graph::TaskId a = g.add_task("A", {{"m", 60, 100}});
  const graph::TaskId b = g.add_task("B", {{"m", 60, 120}});
  const graph::TaskId c = g.add_task("C", {{"m", 60, 140}});
  const graph::TaskId d = g.add_task("D", {{"m", 60, 160}});
  g.add_edge(a, b, 8);
  g.add_edge(a, c, 16);  // skip edge: alive across every partition between
  g.add_edge(b, c, 8);
  g.add_edge(b, d, 8);
  g.add_edge(c, d, 8);
  return g;
}

void BM_Fig3_MemorySweep(benchmark::State& state) {
  const graph::TaskGraph g = fig3_graph();
  struct Row {
    double mmax;
    bool feasible;
    int partitions_used;
  };
  std::vector<Row> rows;
  for (auto _ : state) {
    rows.clear();
    for (const double mmax : {0.0, 8.0, 16.0, 24.0, 40.0, 100.0}) {
      const arch::Device dev = arch::custom("d", 130, mmax, 10);
      core::IlpFormulation form(g, dev, 4, core::max_latency(g, dev, 4),
                                core::min_latency(g, dev, 4));
      form.set_latency_objective();
      milp::SolverParams params;
      params.time_limit_sec = 5.0;
      const milp::MilpSolution s = milp::Solver(form.model(), params).solve();
      Row row{mmax, s.has_solution(), 0};
      if (s.has_solution()) {
        row.partitions_used = form.decode(s.values).num_partitions_used;
      }
      rows.push_back(row);
    }
  }

  std::printf("\n=== Figure 3 companion: memory budget vs partitioning "
              "(Rmax=130, two tasks per partition max) ===\n");
  io::AsciiTable table({"Mmax", "feasible", "partitions used"});
  for (const Row& row : rows) {
    table.add_row({std::to_string((int)row.mmax),
                   row.feasible ? "yes" : "no",
                   row.feasible ? std::to_string(row.partitions_used) : "-"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "the memory budget shapes the feasible temporal partitionings: with "
      "Rmax=130 the graph cannot collapse into one configuration, so some "
      "data must live in on-board memory (infeasible below 24 units), and "
      "the latency-optimal structure changes as the budget loosens\n");
}
BENCHMARK(BM_Fig3_MemorySweep)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

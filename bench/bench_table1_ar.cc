// Table 1: AR filter case study — the iterative procedure's trace and its
// agreement with the ILP solved to optimality.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "bench_common.hpp"
#include "core/partitioner.hpp"
#include "io/table.hpp"
#include "workloads/ar_filter.hpp"

namespace {

using namespace sparcs;

constexpr double kCt = 50.0;  // ns

core::PartitionerReport run_iterative() {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("ar_dev", 200, 64, kCt);
  core::PartitionerOptions options;
  options.budget.delta = 10.0;
  options.gamma = 1;
  return core::TemporalPartitioner(g, dev, options).run();
}

void BM_Table1_Iterative(benchmark::State& state) {
  core::PartitionerReport report;
  for (auto _ : state) {
    report = run_iterative();
  }
  sparcs::bench::set_report_counters(state, report);
  std::printf("\n=== Table 1: AR filter (6 tasks), Rmax=200, Mmax=64, "
              "Ct=%g ns, delta=10 ===\n", kCt);
  std::printf("%s", io::render_trace(report.trace, kCt, false).c_str());
  if (report.feasible) {
    std::printf("iterative: Da=%g ns at N=%d\n%s\n",
                report.achieved_latency, report.best_num_partitions,
                report.best->to_string(workloads::ar_filter_task_graph())
                    .c_str());
  }
}
BENCHMARK(BM_Table1_Iterative)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Table1_Optimal(benchmark::State& state) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("ar_dev", 200, 64, kCt);
  core::OptimalResult optimal;
  for (auto _ : state) {
    optimal = core::solve_optimal_over_range(g, dev, 0, 1);
  }
  state.counters["optimal_ns"] = optimal.latency_ns;
  state.counters["nodes"] = static_cast<double>(optimal.nodes);
  const core::PartitionerReport iterative = run_iterative();
  std::printf("Result(Optimal): %g ns — Result(Iterative): %g ns — %s\n",
              optimal.latency_ns, iterative.achieved_latency,
              std::abs(optimal.latency_ns - iterative.achieved_latency) <=
                      10.0 + 1e-9
                  ? "MATCH (within delta), reproducing the paper's claim"
                  : "MISMATCH");
}
BENCHMARK(BM_Table1_Optimal)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

// Simulation-vs-analytic-model bench: the event-driven executor replays the
// partitioned design and must agree with the formulation's latency model
// (sum of per-partition critical paths plus reconfigurations). Also measures
// the simulator's throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/device.hpp"
#include "bench_common.hpp"
#include "core/partitioner.hpp"
#include "io/table.hpp"
#include "sim/executor.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"
#include "workloads/ewf.hpp"

namespace {

using namespace sparcs;

void BM_SimVsAnalytic(benchmark::State& state) {
  struct Case {
    const char* name;
    graph::TaskGraph graph;
    arch::Device device;
  };
  std::vector<Case> cases;
  cases.push_back({"ar_filter", workloads::ar_filter_task_graph(),
                   arch::custom("d", 200, 64, 50)});
  cases.push_back({"ewf", workloads::ewf_task_graph(),
                   arch::custom("d", 300, 128, 50)});
  cases.push_back({"dct", workloads::dct_task_graph(),
                   arch::custom("d", 1024, 4096, 100)});

  io::AsciiTable table({"workload", "analytic (ns)", "simulated (ns)",
                        "peak mem", "match"});
  for (auto _ : state) {
    for (Case& c : cases) {
      core::PartitionerOptions options;
      options.budget.delta = 100.0;
      options.budget.solver.time_limit_sec = 3.0;
      const core::PartitionerReport report =
          core::TemporalPartitioner(c.graph, c.device, options).run();
      if (!report.feasible) {
        table.add_row({c.name, "Inf.", "-", "-", "-"});
        continue;
      }
      const sim::SimulationResult r =
          sim::simulate(c.graph, c.device, *report.best);
      const bool match =
          std::abs(r.makespan_ns - report.best->total_latency_ns) < 1e-6;
      table.add_row({c.name,
                     std::to_string((long long)report.best->total_latency_ns),
                     std::to_string((long long)r.makespan_ns),
                     std::to_string((long long)r.peak_memory),
                     match ? "yes" : "NO"});
    }
  }
  std::printf("\n=== Simulated replay vs analytic latency model ===\n%s",
              table.to_string().c_str());
}
BENCHMARK(BM_SimVsAnalytic)->Unit(benchmark::kSecond)->Iterations(1);

void BM_SimulatorThroughputDct(benchmark::State& state) {
  const graph::TaskGraph g = workloads::dct_task_graph();
  const arch::Device dev = arch::custom("d", 1024, 4096, 100);
  core::PartitionerOptions options;
  options.budget.delta = 400.0;
  options.budget.solver.time_limit_sec = 2.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  if (!report.feasible) {
    state.SkipWithError("DCT partitioning infeasible");
    return;
  }
  for (auto _ : state) {
    const sim::SimulationResult r = sim::simulate(g, dev, *report.best);
    benchmark::DoNotOptimize(r.makespan_ns);
  }
}
BENCHMARK(BM_SimulatorThroughputDct)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

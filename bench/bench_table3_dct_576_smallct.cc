// Table 3: DCT, Rmax=576, delta=200, gamma=1, small reconfiguration overhead
// (TM-FPGA regime). Expected shape: the first feasible partition bound does
// NOT give the best latency — relaxing N lets faster design points fit and
// reduces the total latency.
#include "dct_table_main.hpp"

namespace sparcs::bench {
const DctExperiment kExperiment{
    .label = "Table 3",
    .rmax = 576,
    .ct_ns = 100,
    .delta = 200,
    .alpha = 0,
};
}  // namespace sparcs::bench

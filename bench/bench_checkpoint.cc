// Checkpoint-path microbenchmarks: what a durable snapshot costs per write
// (serialize + CRC seal + atomic rename + fsync) and how the pieces split.
// The numbers justify the default --checkpoint-interval-sec: even the full
// durable write is far below one ILP probe, so checkpointing after every
// completed bound is effectively free, and the throttle only matters for
// very fast bisection iterations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/checkpoint.hpp"
#include "core/solution.hpp"
#include "support/atomic_file.hpp"
#include "support/json.hpp"

namespace {

using namespace sparcs;

/// A checkpoint shaped like a realistic mid-sweep snapshot: `tasks`-task
/// design, a handful of completed stages, one in-progress bisection.
core::SweepCheckpoint synthetic_checkpoint(int tasks) {
  core::PartitionedDesign design;
  design.num_partitions_allocated = 8;
  design.num_partitions_used = 8;
  for (int t = 0; t < tasks; ++t) {
    design.assignment.push_back(core::TaskAssignment{t % 8 + 1, t % 3});
  }
  design.total_latency_ns = 3030.0;

  core::SweepCheckpoint cp;
  cp.phase = 2;
  cp.next_n = 9;
  cp.achieved_latency = 3030.0;
  cp.best_num_partitions = 8;
  cp.ilp_solves = 42;
  cp.seconds = 123.5;
  cp.best = design;
  for (int n = 5; n < 9; ++n) {
    cp.stages.push_back(core::StageAccount{n, core::StageStatus::kProbed,
                                           n, 2.5 * n});
  }
  core::CheckpointInProgress ip;
  ip.num_partitions = 9;
  ip.d_max = 4000.0;
  ip.d_min = 2800.0;
  ip.iteration = 3;
  ip.achieved_latency = 3030.0;
  ip.incumbent = design;
  cp.in_progress = ip;
  return cp;
}

void BM_SerializeCheckpoint(benchmark::State& state) {
  const core::SweepCheckpoint cp =
      synthetic_checkpoint(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string doc = core::serialize_checkpoint(cp, 0x12345678u);
    bytes = doc.size();
    benchmark::DoNotOptimize(doc.data());
  }
  state.counters["doc_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeCheckpoint)->Arg(32)->Arg(256)->Arg(1024);

void BM_Crc32(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(atomicfile::crc32(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SealUnsealRoundtrip(benchmark::State& state) {
  const std::string doc = core::serialize_checkpoint(
      synthetic_checkpoint(static_cast<int>(state.range(0))), 0x12345678u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atomicfile::unseal_json_with_crc(doc));
  }
}
BENCHMARK(BM_SealUnsealRoundtrip)->Arg(32)->Arg(1024);

void BM_ParseCheckpointDocument(benchmark::State& state) {
  const std::string doc = core::serialize_checkpoint(
      synthetic_checkpoint(static_cast<int>(state.range(0))), 0x12345678u);
  const std::string body = *atomicfile::unseal_json_with_crc(doc);
  for (auto _ : state) {
    const json::ParseResult r = json::parse(body);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_ParseCheckpointDocument)->Arg(32)->Arg(1024);

/// The full durable write: serialize, seal, temp file, fsync, rename,
/// directory fsync. This is the real per-checkpoint cost the sweep pays.
void BM_DurableWrite(benchmark::State& state) {
  const core::SweepCheckpoint cp =
      synthetic_checkpoint(static_cast<int>(state.range(0)));
  const std::string path = "/tmp/sparcs_bench_checkpoint.json";
  core::CheckpointWriter writer(path, /*min_interval_sec=*/0.0, 0x12345678u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.write(cp, /*force=*/true));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DurableWrite)->Arg(32)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();

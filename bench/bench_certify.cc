// Cost of certified verdicts, per CertifyMode: --certify=off must be
// zero-cost (no recording, no checking — the pre-certification hot path),
// `incumbents` adds one exact evaluation per accepted design, and `full`
// additionally records derivation logs / Farkas rays and checks the
// infeasibility proof tree. The checker itself is benchmarked standalone so
// its exact-rational cost is visible separately from the solve.
#include <benchmark/benchmark.h>

#include "arch/device.hpp"
#include "core/refine_partitions.hpp"
#include "milp/certify.hpp"
#include "milp/solver.hpp"
#include "support/rng.hpp"
#include "workloads/ar_filter.hpp"

namespace {

using namespace sparcs;
using namespace sparcs::milp;

/// Infeasible parity model: exhaustive to refute, so `full` mode records a
/// deep proof tree (propagation conflicts at every leaf).
Model parity_model(int vars) {
  Model m("parity");
  LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    sum += 2.0 * LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == static_cast<double>(vars) + 1.0, "odd");
  return m;
}

/// Feasible knapsack with a certified optimum.
Model knapsack_model(int items, std::uint64_t seed) {
  Rng rng(seed);
  Model m("knap");
  LinExpr weight, value;
  for (int i = 0; i < items; ++i) {
    const VarId x = m.add_binary("x" + std::to_string(i));
    weight += static_cast<double>(rng.uniform_int(5, 30)) * LinExpr(x);
    value += static_cast<double>(rng.uniform_int(5, 40)) * LinExpr(x);
  }
  m.add_constraint(weight <= 40.0 + 3.0 * items, "cap");
  m.set_objective(std::move(value), /*minimize=*/false);
  return m;
}

CertifyMode mode_of(std::int64_t arg) {
  switch (arg) {
    case 1:
      return CertifyMode::kIncumbents;
    case 2:
      return CertifyMode::kFull;
    default:
      return CertifyMode::kOff;
  }
}

/// Feasible solve under each mode; Arg(0) vs Arg(1)/Arg(2) is the
/// zero-cost-when-off comparison for the incumbent path.
void BM_SolveFeasible(benchmark::State& state) {
  const Model m = knapsack_model(24, 7);
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = mode_of(state.range(0));
  MilpSolution s;
  for (auto _ : state) {
    s = Solver(m, params).solve();
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["certified"] = s.certified == CertifyStatus::kCertified;
  state.counters["checked"] =
      static_cast<double>(s.stats.certificates_checked);
}
BENCHMARK(BM_SolveFeasible)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1)->Arg(2);

/// Infeasible solve under each mode; `full` pays for proof recording plus
/// the exact tree check, `off` and `incumbents` must match each other.
void BM_SolveInfeasible(benchmark::State& state) {
  const Model m = parity_model(14);
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = mode_of(state.range(0));
  MilpSolution s;
  for (auto _ : state) {
    s = Solver(m, params).solve();
    benchmark::DoNotOptimize(s.status);
  }
  state.counters["proof_nodes"] =
      s.proof ? static_cast<double>(s.proof->nodes.size()) : 0.0;
  state.counters["uncertified"] =
      static_cast<double>(s.stats.uncertified_verdicts);
}
BENCHMARK(BM_SolveInfeasible)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1)->Arg(2);

/// The standalone exact checks, isolated from the solve.
void BM_CertifyFeasibleCheck(benchmark::State& state) {
  const Model m = knapsack_model(24, 7);
  SolverParams params = optimality_params();
  params.num_threads = 1;
  const MilpSolution s = Solver(m, params).solve();
  for (auto _ : state) {
    const CertifyCheck check = certify_feasible(m, s.values);
    benchmark::DoNotOptimize(check.ok);
  }
}
BENCHMARK(BM_CertifyFeasibleCheck)->Unit(benchmark::kMicrosecond);

void BM_CertifyInfeasibleCheck(benchmark::State& state) {
  const Model m = parity_model(14);
  SolverParams params = optimality_params();
  params.num_threads = 1;
  params.certify = CertifyMode::kFull;
  const MilpSolution s = Solver(m, params).solve();
  for (auto _ : state) {
    const CertifyCheck check = certify_infeasible(m, *s.proof);
    benchmark::DoNotOptimize(check.ok);
  }
  state.counters["proof_nodes"] = static_cast<double>(s.proof->nodes.size());
}
BENCHMARK(BM_CertifyInfeasibleCheck)->Unit(benchmark::kMillisecond);

/// The whole AR-filter sweep per mode — the end-to-end number behind the
/// "off is zero-cost, full certifies everything" claim.
void BM_ArSweep(benchmark::State& state) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("ar_dev", 200, 64, 50);
  core::RefinePartitionsParams params;
  params.budget.delta = 20.0;
  params.budget.solver.num_threads = 1;
  params.budget.solver.certify = mode_of(state.range(0));
  core::RefinePartitionsResult r;
  for (auto _ : state) {
    r = core::refine_partitions_bound(g, dev, params);
    benchmark::DoNotOptimize(r.achieved_latency);
  }
  state.counters["checked"] =
      static_cast<double>(r.solver_stats.certificates_checked);
  state.counters["uncertified"] =
      static_cast<double>(r.solver_stats.uncertified_verdicts);
  state.counters["latency_ns"] = r.achieved_latency;
}
BENCHMARK(BM_ArSweep)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();

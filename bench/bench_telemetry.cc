// Telemetry-overhead microbenchmarks backing the pipeline's core invariant:
// with every observability subsystem disabled, an instrumented hot path pays
// one relaxed atomic load (or one null check) per call site. The flags-off
// variants must stay within noise of the raw loop; the flags-on variants
// document what turning each feature on costs.
#include <benchmark/benchmark.h>

#include <sstream>

#include "milp/solver.hpp"
#include "support/metrics.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace sparcs;

/// Baseline: the loop body without any telemetry call, for comparison.
void BM_DisabledBaseline(benchmark::State& state) {
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x += 1);
  }
}
BENCHMARK(BM_DisabledBaseline);

void BM_DisabledSolveScope(benchmark::State& state) {
  telemetry::set_active(false);
  for (auto _ : state) {
    telemetry::SolveScope scope("bench");
    benchmark::DoNotOptimize(scope.slot());
  }
}
BENCHMARK(BM_DisabledSolveScope);

void BM_DisabledTreeRecord(benchmark::State& state) {
  telemetry::set_tree_active(false);
  const telemetry::TreeNode node{1, 0, 1, 2, 0.0, 1.0,
                                 telemetry::NodeKind::kBranched};
  for (auto _ : state) {
    telemetry::tree_record(node);
  }
}
BENCHMARK(BM_DisabledTreeRecord);

void BM_DisabledStagePublish(benchmark::State& state) {
  telemetry::set_active(false);
  for (auto _ : state) {
    telemetry::set_stage("bench", 1);
  }
}
BENCHMARK(BM_DisabledStagePublish);

void BM_DisabledCounterAdd(benchmark::State& state) {
  metrics::set_enabled(false);
  metrics::Counter& counter = metrics::registry().counter("bench.counter");
  for (auto _ : state) {
    counter.add(1);
  }
}
BENCHMARK(BM_DisabledCounterAdd);

void BM_EnabledLivePublish(benchmark::State& state) {
  telemetry::set_active(true);
  {
    telemetry::SolveScope scope("bench");
    telemetry::LiveSolve* live = scope.slot();
    for (auto _ : state) {
      live->nodes.fetch_add(1, std::memory_order_relaxed);
    }
  }
  telemetry::set_active(false);
}
BENCHMARK(BM_EnabledLivePublish);

void BM_EnabledTreeRecord(benchmark::State& state) {
  telemetry::set_tree_active(true);
  telemetry::tree_clear();
  for (auto _ : state) {
    const std::int64_t id = telemetry::tree_next_id();
    telemetry::tree_record({id, id - 1, 1, 2, 0.0, 1.0,
                            telemetry::NodeKind::kIntegral});
  }
  telemetry::set_tree_active(false);
  telemetry::tree_clear();
}
BENCHMARK(BM_EnabledTreeRecord);

/// A whole MILP solve with telemetry off vs. on: the end-to-end check that
/// the disabled pipeline does not tax the solver. Solves the same
/// first-feasible pick-K query each iteration.
milp::Model pick_model(int vars, int k) {
  milp::Model m("pick");
  milp::LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    sum += milp::LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == static_cast<double>(k), "pick");
  return m;
}

void BM_SolveTelemetryOff(benchmark::State& state) {
  telemetry::set_active(false);
  const milp::Model m = pick_model(24, 6);
  milp::SolverParams params = milp::first_feasible_params();
  params.num_threads = 1;
  for (auto _ : state) {
    milp::MilpSolution s = milp::Solver(m, params).solve();
    benchmark::DoNotOptimize(s.status);
  }
}
BENCHMARK(BM_SolveTelemetryOff);

void BM_SolveTelemetryOn(benchmark::State& state) {
  std::ostringstream sink;
  telemetry::SamplerOptions options;
  options.sink = &sink;
  options.interval_sec = 0.05;
  options.include_metrics = false;
  telemetry::start_sampler(options);
  const milp::Model m = pick_model(24, 6);
  milp::SolverParams params = milp::first_feasible_params();
  params.num_threads = 1;
  for (auto _ : state) {
    milp::MilpSolution s = milp::Solver(m, params).solve();
    benchmark::DoNotOptimize(s.status);
  }
  telemetry::stop_sampler();
}
BENCHMARK(BM_SolveTelemetryOn);

}  // namespace

BENCHMARK_MAIN();

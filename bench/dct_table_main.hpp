// Main body shared by the six DCT table benches (Tables 3-8): each bench
// binary defines its DctExperiment and includes this file.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace sparcs::bench {

/// The experiment each including bench binary defines.
extern const DctExperiment kExperiment;

inline void BM_DctTable(benchmark::State& state) {
  core::PartitionerReport report;
  for (auto _ : state) {
    report = run_dct_experiment(kExperiment);
  }
  set_report_counters(state, report);
  print_dct_report(kExperiment, report);
}

}  // namespace sparcs::bench

BENCHMARK(sparcs::bench::BM_DctTable)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

BENCHMARK_MAIN();

#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace sparcs::graph {
namespace {

/// Kahn's algorithm; returns an empty vector when a cycle prevents completion.
std::vector<TaskId> kahn_order(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
  for (TaskId id = 0; id < n; ++id) {
    in_degree[static_cast<std::size_t>(id)] =
        static_cast<int>(graph.predecessors(id).size());
  }
  // Min-heap on task id keeps the order deterministic.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId id = 0; id < n; ++id) {
    if (in_degree[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const TaskId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (const TaskId succ : graph.successors(id)) {
      if (--in_degree[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  if (static_cast<int>(order.size()) != n) order.clear();
  return order;
}

}  // namespace

bool is_dag(const TaskGraph& graph) {
  return graph.num_tasks() == 0 || !kahn_order(graph).empty();
}

std::vector<TaskId> topological_order(const TaskGraph& graph) {
  std::vector<TaskId> order = kahn_order(graph);
  SPARCS_REQUIRE(static_cast<int>(order.size()) == graph.num_tasks(),
                 "graph contains a cycle");
  return order;
}

std::vector<int> task_levels(const TaskGraph& graph) {
  const std::vector<TaskId> order = topological_order(graph);
  std::vector<int> level(static_cast<std::size_t>(graph.num_tasks()), 0);
  for (const TaskId id : order) {
    for (const TaskId pred : graph.predecessors(id)) {
      level[static_cast<std::size_t>(id)] =
          std::max(level[static_cast<std::size_t>(id)],
                   level[static_cast<std::size_t>(pred)] + 1);
    }
  }
  return level;
}

std::vector<std::vector<bool>> reachability(const TaskGraph& graph) {
  const int n = graph.num_tasks();
  std::vector<std::vector<bool>> reach(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  const std::vector<TaskId> order = topological_order(graph);
  // Process in reverse topological order so successor closures are complete.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId u = *it;
    auto& row = reach[static_cast<std::size_t>(u)];
    for (const TaskId succ : graph.successors(u)) {
      row[static_cast<std::size_t>(succ)] = true;
      const auto& succ_row = reach[static_cast<std::size_t>(succ)];
      for (int v = 0; v < n; ++v) {
        if (succ_row[static_cast<std::size_t>(v)]) {
          row[static_cast<std::size_t>(v)] = true;
        }
      }
    }
  }
  return reach;
}

PathEnumeration enumerate_root_leaf_paths(const TaskGraph& graph,
                                          std::size_t max_paths) {
  PathEnumeration result;
  Path current;
  // Iterative DFS with explicit recursion to honor the cap exactly.
  std::function<bool(TaskId)> dfs = [&](TaskId id) -> bool {
    current.push_back(id);
    if (graph.successors(id).empty()) {
      if (result.paths.size() >= max_paths) {
        result.truncated = true;
        current.pop_back();
        return false;
      }
      result.paths.push_back(current);
    } else {
      for (const TaskId succ : graph.successors(id)) {
        if (!dfs(succ)) {
          current.pop_back();
          return false;
        }
      }
    }
    current.pop_back();
    return true;
  };
  for (const TaskId root : graph.roots()) {
    if (!dfs(root)) break;
  }
  return result;
}

double critical_path_weight(
    const TaskGraph& graph,
    const std::function<double(TaskId)>& task_weight) {
  const std::vector<TaskId> order = topological_order(graph);
  std::vector<double> finish(static_cast<std::size_t>(graph.num_tasks()), 0.0);
  double best = 0.0;
  for (const TaskId id : order) {
    double start = 0.0;
    for (const TaskId pred : graph.predecessors(id)) {
      start = std::max(start, finish[static_cast<std::size_t>(pred)]);
    }
    finish[static_cast<std::size_t>(id)] = start + task_weight(id);
    best = std::max(best, finish[static_cast<std::size_t>(id)]);
  }
  return best;
}

double min_latency_critical_path(const TaskGraph& graph) {
  return critical_path_weight(
      graph, [&](TaskId id) { return graph.min_latency(id); });
}

double max_latency_critical_path(const TaskGraph& graph) {
  return critical_path_weight(
      graph, [&](TaskId id) { return graph.max_latency(id); });
}

double total_task_weight(const TaskGraph& graph,
                         const std::function<double(TaskId)>& task_weight) {
  double total = 0.0;
  for (TaskId id = 0; id < graph.num_tasks(); ++id) total += task_weight(id);
  return total;
}

std::vector<int> transitive_reduction_edges(const TaskGraph& graph) {
  const auto reach = reachability(graph);
  std::vector<int> kept;
  for (int e = 0; e < graph.num_edges(); ++e) {
    const DataEdge& edge = graph.edges()[static_cast<std::size_t>(e)];
    // The edge u->v is redundant iff some direct successor w != v of u
    // reaches v (then u ->* v holds without this edge).
    bool redundant = false;
    for (const TaskId w : graph.successors(edge.from)) {
      if (w != edge.to &&
          reach[static_cast<std::size_t>(w)][static_cast<std::size_t>(edge.to)]) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(e);
  }
  return kept;
}

}  // namespace sparcs::graph

// Task graph model (Section 3 of the paper).
//
// The behavioral specification is a DAG whose vertices are tasks and whose
// edges carry the number of data units communicated between tasks, B(t1,t2).
// Each task additionally reads B(env,t) data units from the environment and
// writes B(t,env) back to it; both must be buffered in on-board memory when
// crossing a temporal partition boundary. Every task carries the set of
// design points (area/latency alternatives with an associated module set)
// produced by the high-level synthesis estimator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sparcs::graph {

/// Index of a task within its TaskGraph (dense, 0-based).
using TaskId = std::int32_t;

/// One synthesized design alternative for a task: the module set used to
/// implement it, its area cost R(m) and its execution latency D(m).
struct DesignPoint {
  std::string module_set;  ///< human-readable module set, e.g. "2add,1mul"
  double area = 0.0;       ///< R(m), in device resource units (CLBs)
  double latency_ns = 0.0; ///< D(m), total execution time in nanoseconds

  friend bool operator==(const DesignPoint&, const DesignPoint&) = default;
};

/// A vertex of the task graph.
struct Task {
  std::string name;
  std::vector<DesignPoint> design_points;  ///< the module sets M_t
  double env_in = 0.0;   ///< B(env, t): data units read from the host
  double env_out = 0.0;  ///< B(t, env): data units written to the host
};

/// A data dependency t1 -> t2 transferring `data_units` units, B(t1,t2).
struct DataEdge {
  TaskId from = -1;
  TaskId to = -1;
  double data_units = 0.0;
};

/// Directed acyclic task graph with per-task design points.
///
/// Tasks and edges are append-only; `validate()` checks the structural
/// invariants (acyclicity, non-empty design point sets, positive costs)
/// and is called by every consumer entry point.
class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Appends a task and returns its id. The task name must be non-empty and
  /// unique within the graph.
  TaskId add_task(Task task);

  /// Convenience overload building the Task in place.
  TaskId add_task(std::string name, std::vector<DesignPoint> design_points,
                  double env_in = 0.0, double env_out = 0.0);

  /// Adds the dependency edge from -> to with B(from,to) = data_units.
  /// Parallel edges are merged by summing their data units.
  void add_edge(TaskId from, TaskId to, double data_units);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int num_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& mutable_task(TaskId id);
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<DataEdge>& edges() const { return edges_; }

  /// Ids of direct successors / predecessors of `id`.
  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const;
  [[nodiscard]] const std::vector<TaskId>& predecessors(TaskId id) const;

  /// Tasks with no predecessors (the T_r "root" tasks).
  [[nodiscard]] std::vector<TaskId> roots() const;
  /// Tasks with no successors (the T_l "leaf" tasks).
  [[nodiscard]] std::vector<TaskId> leaves() const;

  /// Looks a task up by name; returns -1 when absent.
  [[nodiscard]] TaskId find_task(const std::string& name) const;

  /// Smallest / largest area over a task's design points.
  [[nodiscard]] double min_area(TaskId id) const;
  [[nodiscard]] double max_area(TaskId id) const;
  /// Smallest / largest latency over a task's design points.
  [[nodiscard]] double min_latency(TaskId id) const;
  [[nodiscard]] double max_latency(TaskId id) const;

  /// Throws InvalidArgumentError when a structural invariant is violated:
  /// the graph has a cycle, a task has no design point, or a design point
  /// has non-positive area or negative latency.
  void validate() const;

 private:
  void check_task_id(TaskId id) const;

  std::string name_;
  std::vector<Task> tasks_;
  std::vector<DataEdge> edges_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<std::vector<TaskId>> predecessors_;
};

}  // namespace sparcs::graph

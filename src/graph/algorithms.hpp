// DAG algorithms over TaskGraph: topological order, level assignment,
// reachability, root-to-leaf path enumeration and critical paths.
//
// Path enumeration backs the paper's latency constraint (eq. (7)), which has
// one row per root->leaf path per partition; enumeration is capped and the
// overflow is reported so callers can fall back to the polynomial-size
// flow-based latency formulation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/task_graph.hpp"

namespace sparcs::graph {

/// True when the graph has no directed cycle.
bool is_dag(const TaskGraph& graph);

/// Topological order of all tasks (stable: ready tasks are emitted in id
/// order). Throws InvalidArgumentError when the graph has a cycle.
std::vector<TaskId> topological_order(const TaskGraph& graph);

/// ASAP level of every task: roots get level 0, every other task one more
/// than its deepest predecessor.
std::vector<int> task_levels(const TaskGraph& graph);

/// reachable[u][v] is true when a directed path u ->* v exists (u != v).
std::vector<std::vector<bool>> reachability(const TaskGraph& graph);

/// A root-to-leaf path as the ordered list of tasks on it.
using Path = std::vector<TaskId>;

/// Result of (capped) path enumeration.
struct PathEnumeration {
  std::vector<Path> paths;
  bool truncated = false;  ///< true when more than `max_paths` paths exist
};

/// Enumerates all root-to-leaf paths, stopping after `max_paths`.
PathEnumeration enumerate_root_leaf_paths(const TaskGraph& graph,
                                          std::size_t max_paths = 100000);

/// Longest root-to-leaf path weight where each task contributes
/// task_weight(id); linear-time DP over the DAG.
double critical_path_weight(const TaskGraph& graph,
                            const std::function<double(TaskId)>& task_weight);

/// Critical path using each task's minimum-latency design point: the paper's
/// MinLatency path term (Section 3.1).
double min_latency_critical_path(const TaskGraph& graph);

/// Critical path using each task's maximum-latency design point.
double max_latency_critical_path(const TaskGraph& graph);

/// Sum over tasks of the given per-task weight.
double total_task_weight(const TaskGraph& graph,
                         const std::function<double(TaskId)>& task_weight);

/// Indices (into graph.edges()) of the transitive reduction: the minimal
/// edge subset with the same reachability. Temporal-order constraints only
/// need these edges — an edge implied by a two-hop path is redundant in the
/// partitioning model (data volumes on skipped edges still matter for the
/// memory constraint, so this must only be used for ordering).
std::vector<int> transitive_reduction_edges(const TaskGraph& graph);

}  // namespace sparcs::graph

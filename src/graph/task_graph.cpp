#include "graph/task_graph.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::graph {

TaskId TaskGraph::add_task(Task task) {
  SPARCS_REQUIRE(!task.name.empty(), "task name must be non-empty");
  SPARCS_REQUIRE(find_task(task.name) == -1,
                 "duplicate task name: " + task.name);
  tasks_.push_back(std::move(task));
  successors_.emplace_back();
  predecessors_.emplace_back();
  return static_cast<TaskId>(tasks_.size() - 1);
}

TaskId TaskGraph::add_task(std::string name,
                           std::vector<DesignPoint> design_points,
                           double env_in, double env_out) {
  Task task;
  task.name = std::move(name);
  task.design_points = std::move(design_points);
  task.env_in = env_in;
  task.env_out = env_out;
  return add_task(std::move(task));
}

void TaskGraph::add_edge(TaskId from, TaskId to, double data_units) {
  check_task_id(from);
  check_task_id(to);
  SPARCS_REQUIRE(from != to, "self edges are not allowed");
  SPARCS_REQUIRE(data_units >= 0.0, "edge data units must be non-negative");
  for (auto& edge : edges_) {
    if (edge.from == from && edge.to == to) {
      edge.data_units += data_units;
      return;
    }
  }
  edges_.push_back(DataEdge{from, to, data_units});
  successors_[static_cast<std::size_t>(from)].push_back(to);
  predecessors_[static_cast<std::size_t>(to)].push_back(from);
}

const Task& TaskGraph::task(TaskId id) const {
  check_task_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

Task& TaskGraph::mutable_task(TaskId id) {
  check_task_id(id);
  return tasks_[static_cast<std::size_t>(id)];
}

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  check_task_id(id);
  return successors_[static_cast<std::size_t>(id)];
}

const std::vector<TaskId>& TaskGraph::predecessors(TaskId id) const {
  check_task_id(id);
  return predecessors_[static_cast<std::size_t>(id)];
}

std::vector<TaskId> TaskGraph::roots() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < num_tasks(); ++id) {
    if (predecessors_[static_cast<std::size_t>(id)].empty()) out.push_back(id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::leaves() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < num_tasks(); ++id) {
    if (successors_[static_cast<std::size_t>(id)].empty()) out.push_back(id);
  }
  return out;
}

TaskId TaskGraph::find_task(const std::string& name) const {
  for (TaskId id = 0; id < num_tasks(); ++id) {
    if (tasks_[static_cast<std::size_t>(id)].name == name) return id;
  }
  return -1;
}

double TaskGraph::min_area(TaskId id) const {
  const Task& t = task(id);
  SPARCS_REQUIRE(!t.design_points.empty(), "task has no design points");
  double best = std::numeric_limits<double>::infinity();
  for (const auto& dp : t.design_points) best = std::min(best, dp.area);
  return best;
}

double TaskGraph::max_area(TaskId id) const {
  const Task& t = task(id);
  SPARCS_REQUIRE(!t.design_points.empty(), "task has no design points");
  double best = 0.0;
  for (const auto& dp : t.design_points) best = std::max(best, dp.area);
  return best;
}

double TaskGraph::min_latency(TaskId id) const {
  const Task& t = task(id);
  SPARCS_REQUIRE(!t.design_points.empty(), "task has no design points");
  double best = std::numeric_limits<double>::infinity();
  for (const auto& dp : t.design_points) best = std::min(best, dp.latency_ns);
  return best;
}

double TaskGraph::max_latency(TaskId id) const {
  const Task& t = task(id);
  SPARCS_REQUIRE(!t.design_points.empty(), "task has no design points");
  double best = 0.0;
  for (const auto& dp : t.design_points) best = std::max(best, dp.latency_ns);
  return best;
}

void TaskGraph::validate() const {
  SPARCS_REQUIRE(num_tasks() > 0, "task graph is empty");
  for (TaskId id = 0; id < num_tasks(); ++id) {
    const Task& t = tasks_[static_cast<std::size_t>(id)];
    SPARCS_REQUIRE(!t.design_points.empty(),
                   "task " + t.name + " has no design points");
    for (const auto& dp : t.design_points) {
      SPARCS_REQUIRE(dp.area > 0.0,
                     str_format("task %s design point %s has non-positive area",
                                t.name.c_str(), dp.module_set.c_str()));
      SPARCS_REQUIRE(
          dp.latency_ns >= 0.0,
          str_format("task %s design point %s has negative latency",
                     t.name.c_str(), dp.module_set.c_str()));
    }
    SPARCS_REQUIRE(t.env_in >= 0.0 && t.env_out >= 0.0,
                   "environment transfer volumes must be non-negative");
  }
  SPARCS_REQUIRE(is_dag(*this), "task graph contains a cycle");
}

void TaskGraph::check_task_id(TaskId id) const {
  SPARCS_REQUIRE(id >= 0 && id < num_tasks(),
                 str_format("task id %d out of range [0, %d)", id, num_tasks()));
}

}  // namespace sparcs::graph

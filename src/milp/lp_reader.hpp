// CPLEX LP-format reader: the counterpart of lp_writer, accepting the
// subset of the format the writer emits (Minimize/Maximize, Subject To,
// Bounds, General, Binary, End) plus comments. Enables round-trip tests and
// feeding externally authored models to the solver.
#pragma once

#include <iosfwd>
#include <string>

#include "milp/model.hpp"

namespace sparcs::milp {

/// Parses an LP-format model. Throws InvalidArgumentError on syntax errors,
/// with a message naming the offending line.
Model read_lp(std::istream& is);

/// Convenience wrapper over a string.
Model read_lp_string(const std::string& text);

}  // namespace sparcs::milp

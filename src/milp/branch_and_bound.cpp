#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <utility>

#include "milp/certificate.hpp"
#include "milp/checker.hpp"
#include "milp/compiled.hpp"
#include "milp/propagation.hpp"
#include "milp/simplex.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

namespace sparcs::milp {
namespace {

/// Position of a subproblem in the depth-first order of the full tree: the
/// branch indices (trial order within each frame) leading from the root to
/// the subproblem. std::vector's lexicographic compare gives exactly the DFS
/// order, with a prefix ordering before its extensions (an ancestor region
/// still contains leaves on both sides of any of its descendants).
using Rank = std::vector<std::int32_t>;

/// Hard cap on recorded infeasibility-proof nodes (per worker and for the
/// merged proof). Past it the proof is flagged overflowed — the exact checker
/// refuses it and the verdict honestly stays uncertified — instead of letting
/// a pathological search exhaust memory on bookkeeping.
constexpr std::size_t kMaxProofNodes = 200'000;

/// One donated unit of work: a bounds box (the donor's propagation fixpoint
/// plus one untried branch) and the variable whose bound changed, so the
/// receiving worker can re-run seeded propagation exactly as the donor's
/// serial search would have.
struct Subproblem {
  Rank rank;
  std::vector<double> lb, ub;
  VarId seed = -1;  ///< -1: root subproblem (full propagation)
  /// Telemetry search-tree id of the donor node (-1: no recording / root),
  /// so donated subtrees attach to their real parent in the dump.
  std::int64_t tree_parent = -1;
};

/// Shared state of one multi-threaded solve: the rank-ordered subproblem
/// pool, the incumbent/candidate, global limits, and termination detection.
class ParallelContext {
 public:
  ParallelContext(const SolverParams& params, const BnbCallbacks& callbacks,
                  bool first_feasible_mode, bool objective_flipped,
                  int num_workers)
      : params_(params),
        callbacks_(callbacks),
        first_feasible_mode_(first_feasible_mode),
        objective_flipped_(objective_flipped),
        hungry_below_(2 * num_workers),
        live_(callbacks.live) {}

  Stopwatch stopwatch;

  // ---- Subproblem pool --------------------------------------------------

  void push(Subproblem&& node) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A candidate already beats every leaf of this subtree: drop it.
      if (have_candidate_ && node.rank > candidate_rank_) return;
      Rank key = node.rank;
      pool_.emplace(std::move(key), std::move(node));
      pool_size_.store(static_cast<int>(pool_.size()),
                       std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Hands out the rank-smallest open subproblem. Blocks while the pool is
  /// empty but other workers may still donate; returns false once the solve
  /// is over (pool drained and all workers idle, limits hit, or stopped).
  bool acquire(Subproblem& out) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (stop_requested_.load(std::memory_order_relaxed) ||
          global_limits_hit()) {
        return false;
      }
      if (!pool_.empty()) {
        out = std::move(pool_.begin()->second);
        pool_.erase(pool_.begin());
        pool_size_.store(static_cast<int>(pool_.size()),
                         std::memory_order_relaxed);
        ++active_;
        return true;
      }
      if (active_ == 0) return false;
      cv_.wait(lock);
    }
  }

  /// Declares the previously acquired subproblem finished.
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    // Waiters must re-check the exit condition even when no work appeared.
    cv_.notify_all();
  }

  /// True when workers should donate untried branches into the pool.
  [[nodiscard]] bool hungry() const {
    return pool_size_.load(std::memory_order_relaxed) < hungry_below_;
  }

  /// Open-subproblem estimate for live telemetry (pool only; per-worker DFS
  /// stacks are not counted — this is a progress indicator, not an exact
  /// frontier size).
  [[nodiscard]] std::int64_t open_estimate() const {
    return pool_size_.load(std::memory_order_relaxed);
  }

  /// Merged incumbent timeline of this solve (call after workers joined).
  [[nodiscard]] std::vector<ConvergenceEvent>&& take_convergence() {
    return std::move(convergence_);
  }

  // ---- Limits -----------------------------------------------------------

  void count_node() { total_nodes_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::int64_t total_nodes() const {
    return total_nodes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool global_limits_hit() const {
    return stop_requested_.load(std::memory_order_relaxed) ||
           budget_limits_hit();
  }

  /// True when the run ended because of a budget/cancellation, not because
  /// the tree was exhausted (mirrors the serial status mapping). The
  /// timeout failpoint fires here — the shared check every worker and the
  /// final status mapping consult — so an injected timeout is classified
  /// exactly like a real one.
  [[nodiscard]] bool budget_limits_hit() const {
    if (SPARCS_FAILPOINT("milp.solve.timeout")) return true;
    return total_nodes_.load(std::memory_order_relaxed) >=
               params_.node_limit ||
           params_.cancel.cancelled() ||
           callbacks_.session_cancel.cancelled() ||
           stopwatch.seconds() >= params_.time_limit_sec;
  }

  void request_stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
  }

  void flag_unbounded() {
    unbounded_.store(true, std::memory_order_relaxed);
    request_stop();
  }

  [[nodiscard]] bool unbounded() const {
    return unbounded_.load(std::memory_order_relaxed);
  }

  /// Marks the search as incomplete: some subtree was abandoned for a
  /// numerical/allocation reason, so an exhausted tree no longer proves
  /// infeasibility or optimality.
  void flag_incomplete() {
    incomplete_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool incomplete() const {
    return incomplete_.load(std::memory_order_relaxed);
  }

  // ---- First-feasible candidates ----------------------------------------
  // In first-feasible (and pure-feasibility) mode the winner is the
  // rank-smallest feasible leaf, which is exactly the solution the serial
  // DFS returns; acceptance is therefore by rank, not by arrival time.

  [[nodiscard]] std::uint64_t candidate_version() const {
    return candidate_version_.load(std::memory_order_acquire);
  }

  /// Copies the current best candidate rank; false when none exists yet.
  bool copy_candidate_rank(Rank* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!have_candidate_) return false;
    *out = candidate_rank_;
    return true;
  }

  /// Offers a feasible leaf; keeps it only when it precedes the current
  /// candidate in DFS order. Prunes now-beaten pool entries either way.
  bool offer_candidate(Rank rank, std::vector<double>&& values, double obj) {
    IncumbentEvent event;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (have_candidate_ && !(rank < candidate_rank_)) return false;
      have_candidate_ = true;
      candidate_rank_ = std::move(rank);
      candidate_values_ = std::move(values);
      candidate_obj_ = obj;
      candidate_version_.fetch_add(1, std::memory_order_release);
      pool_.erase(pool_.upper_bound(candidate_rank_), pool_.end());
      pool_size_.store(static_cast<int>(pool_.size()),
                       std::memory_order_relaxed);
      record_convergence_locked(obj);
      if (!callbacks_.on_incumbent) return true;
      event.objective = objective_flipped_ ? -obj : obj;
      event.values = &candidate_values_;
      event.nodes_explored = total_nodes();
      callbacks_.on_incumbent(event);
    }
    return true;
  }

  [[nodiscard]] bool has_candidate() const {
    std::lock_guard<std::mutex> lock(mu_);
    return have_candidate_;
  }

  // ---- Shared incumbent (optimality mode) --------------------------------

  [[nodiscard]] double shared_best() const {
    return best_obj_.load(std::memory_order_relaxed);
  }

  /// Offers an improving incumbent (minimized-space objective). Ties on the
  /// objective are broken toward the DFS-smaller rank so repeated runs
  /// converge to the same solution where timing allows.
  bool offer_incumbent(Rank rank, std::vector<double>&& values, double obj) {
    IncumbentEvent event;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (have_incumbent_ &&
          (obj > incumbent_obj_ ||
           (obj == incumbent_obj_ && !(rank < candidate_rank_)))) {
        return false;
      }
      have_incumbent_ = true;
      incumbent_obj_ = obj;
      candidate_rank_ = std::move(rank);
      candidate_values_ = std::move(values);
      best_obj_.store(obj, std::memory_order_relaxed);
      record_convergence_locked(obj);
      if (!callbacks_.on_incumbent) return true;
      event.objective = objective_flipped_ ? -obj : obj;
      event.values = &candidate_values_;
      event.nodes_explored = total_nodes();
      callbacks_.on_incumbent(event);
    }
    return true;
  }

  // ---- Infeasibility-proof fragments -------------------------------------
  // Workers deposit their recorded proof nodes here on exit; ranks never
  // collide because the pool hands every subproblem to exactly one worker
  // and each worker's DFS enters each of its ranks once.

  void contribute_proof(std::vector<ProofNode>&& nodes, bool overflowed) {
    std::lock_guard<std::mutex> lock(mu_);
    proof_overflowed_ = proof_overflowed_ || overflowed ||
                        proof_nodes_.size() + nodes.size() > kMaxProofNodes;
    if (!proof_overflowed_) {
      proof_nodes_.insert(proof_nodes_.end(),
                          std::make_move_iterator(nodes.begin()),
                          std::make_move_iterator(nodes.end()));
    }
  }

  /// Stitches the fragments into one proof (call after workers joined).
  [[nodiscard]] std::shared_ptr<const InfeasibilityProof> take_proof() {
    auto proof = std::make_shared<InfeasibilityProof>();
    proof->nodes = std::move(proof_nodes_);
    proof->overflowed = proof_overflowed_;
    return proof;
  }

  // ---- Result extraction (single-threaded, after join) -------------------

  [[nodiscard]] bool have_solution() const {
    return have_candidate_ || have_incumbent_;
  }
  [[nodiscard]] std::vector<double>&& take_values() {
    return std::move(candidate_values_);
  }
  [[nodiscard]] double solution_objective() const {
    return first_feasible_mode_ ? candidate_obj_ : incumbent_obj_;
  }
  [[nodiscard]] bool first_feasible_mode() const {
    return first_feasible_mode_;
  }

 private:
  /// Appends an accepted incumbent (minimized-space objective `obj`) to the
  /// solve's timeline and publishes it to the live telemetry slot. Caller
  /// holds mu_, which keeps the timeline time-ordered across workers.
  void record_convergence_locked(double obj) {
    const double caller_obj = objective_flipped_ ? -obj : obj;
    convergence_.push_back({stopwatch.seconds(), caller_obj, total_nodes(),
                            ConvergenceEvent::Kind::kIncumbent});
    if (live_ != nullptr) {
      live_->incumbent.store(caller_obj, std::memory_order_relaxed);
      live_->has_incumbent.store(true, std::memory_order_relaxed);
      live_->incumbent_updates.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const SolverParams& params_;
  const BnbCallbacks& callbacks_;
  const bool first_feasible_mode_;
  const bool objective_flipped_;
  const int hungry_below_;
  telemetry::LiveSolve* const live_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Rank, Subproblem> pool_;
  int active_ = 0;
  std::atomic<int> pool_size_{0};
  std::atomic<std::int64_t> total_nodes_{0};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> unbounded_{false};
  std::atomic<bool> incomplete_{false};

  // Candidate (first-feasible mode) / incumbent (optimality mode); both use
  // candidate_rank_/candidate_values_ for storage.
  bool have_candidate_ = false;
  bool have_incumbent_ = false;
  Rank candidate_rank_;
  std::vector<double> candidate_values_;
  double candidate_obj_ = 0.0;
  double incumbent_obj_ = kInfinity;
  std::atomic<double> best_obj_{kInfinity};
  std::atomic<std::uint64_t> candidate_version_{0};
  std::vector<ConvergenceEvent> convergence_;  ///< under mu_
  std::vector<ProofNode> proof_nodes_;         ///< under mu_
  bool proof_overflowed_ = false;              ///< under mu_
};

/// One open decision in the DFS stack.
struct Frame {
  VarId var = -1;
  /// Branches as [lb, ub] boxes to impose on `var`, tried in order.
  std::vector<std::pair<double, double>> branches;
  std::size_t next = 0;
  std::size_t trail_mark = 0;
};

class BnbSearch {
 public:
  BnbSearch(const Model& model, const SolverParams& params,
            const BnbCallbacks& callbacks, ParallelContext* ctx = nullptr)
      : params_(params),
        callbacks_(callbacks),
        ctx_(ctx),
        compiled_(model, /*with_objective_cutoff=*/model.has_objective()),
        domains_(compiled_),
        propagator_(compiled_, params.feasibility_tol,
                    params.max_propagation_rounds),
        model_(model),
        live_(callbacks.live),
        tree_on_(telemetry::tree_active()),
        proof_on_(params.certify == CertifyMode::kFull) {
    if (proof_on_) propagator_.set_log(&prop_log_);
  }

  /// Single-threaded entry point (ctx == nullptr).
  MilpSolution run();

  /// Worker entry point: drains the shared pool until the solve is over.
  void run_worker();

  /// Totals of this worker, finalized by run_worker().
  [[nodiscard]] const SolverStats& worker_stats() const { return stats_; }

 private:
  /// First unfixed integral variable in branch-priority order, or -1.
  VarId pick_branch_var() const;
  std::vector<std::pair<double, double>> make_branches(VarId v) const;
  /// Completes continuous variables by LP. Returns true when a feasible
  /// completion exists and fills `candidate`; `unbounded` reports an
  /// unbounded continuous objective.
  bool complete_continuous(std::vector<double>& candidate, bool* unbounded);
  /// LP-relaxation feasibility probe under the current domains.
  bool lp_prune();
  /// Handles a fully integral node. Returns true when the search must stop.
  bool handle_leaf(MilpSolution& result);
  void record_incumbent(std::vector<double> values, MilpSolution& result);
  void worker_record(std::vector<double> values, double obj);
  bool limits_hit() const;
  bool cancel_requested() const;
  void absorb_lp(const LpResult& lp_result);
  /// LP parameters for in-node solves: wires the global limits into the
  /// simplex abort hook, so a deadline/cancel unwinds from inside a long LP
  /// run instead of waiting for the next node boundary.
  LpParams node_lp_params() const;
  /// Marks the search incomplete (a subtree was dropped for a numerical or
  /// allocation reason): exhaustion no longer proves infeasibility.
  void mark_incomplete();
  void export_stats(MilpSolution& result);
  void search_loop(MilpSolution& result);
  void donate_siblings(Frame& frame);
  void sync_shared_incumbent();
  /// Pushes per-worker node/LP-iteration deltas and the open-node count into
  /// the live telemetry slot (called every kLivePublishPeriod nodes).
  void publish_live();
  /// Solves one root LP with the true objective and publishes the resulting
  /// dual bound to the live slot and the convergence timeline. Only runs
  /// while a live telemetry slot is attached (costs one extra LP).
  void publish_root_bound();
  bool position_pruned();
  bool first_feasible_mode() const {
    return params_.stop_at_first_feasible ||
           compiled_.objective_terms().empty();
  }

  // ---- Infeasibility-proof recording (active when certify == kFull) ------

  /// This worker's DFS position, the rank of the node being processed.
  [[nodiscard]] Rank current_rank() const {
    Rank rank = base_rank_;
    rank.insert(rank.end(), path_.begin(), path_.end());
    return rank;
  }
  /// Appends a proof node (respecting the size cap).
  void record_proof_node(ProofNode&& node) {
    if (!proof_on_) return;
    if (proof_nodes_.size() >= kMaxProofNodes) {
      proof_overflowed_ = true;
      return;
    }
    proof_nodes_.push_back(std::move(node));
  }
  /// Moves the entry-propagation derivations of the current node out of the
  /// staging slot (they were parked there by the propagate call that entered
  /// the node).
  [[nodiscard]] std::vector<Derivation> take_pending_derivations() {
    return std::move(pending_derivations_);
  }
  /// Parks a successful propagate() call's derivations for the node it just
  /// entered, and resets the log for the next call.
  void stage_propagation_log() {
    if (!proof_on_) return;
    pending_derivations_ = std::move(prop_log_.derivations);
    prop_log_.clear();
  }
  /// Records the refutation of a node whose entry propagate() failed, using
  /// the partial derivation trace plus the conflict the log captured.
  void record_conflict_leaf(Rank rank) {
    if (!proof_on_) return;
    ProofNode node;
    node.rank = std::move(rank);
    node.kind = ProofNode::Kind::kConflict;
    node.derivations = std::move(prop_log_.derivations);
    node.conflict_row = prop_log_.conflict_row;
    node.conflict_var = prop_log_.conflict_var;
    prop_log_.clear();
    if (SPARCS_FAILPOINT("milp.certify.corrupt_proof")) {
      // Strip the leaf's refutation: the exact checker rejects a leaf that
      // carries no certificate, demoting the whole verdict to uncertified —
      // the fault-injection hook for propagation-refuted infeasibilities
      // (milp.certify.corrupt_ray covers the LP-refuted ones).
      node.kind = ProofNode::Kind::kUnproven;
    }
    record_proof_node(std::move(node));
  }
  /// Records the refutation of the current node from an infeasible LP
  /// (completion or prune), translating the stashed LP certificate.
  void record_lp_leaf() {
    if (!proof_on_) return;
    ProofNode node;
    node.rank = current_rank();
    node.derivations = take_pending_derivations();
    switch (lp_cert_.kind) {
      case LpCertificate::Kind::kFarkas:
        node.kind = ProofNode::Kind::kFarkas;
        node.rows = std::move(lp_cert_rows_);
        node.y = std::move(lp_cert_.y);
        break;
      case LpCertificate::Kind::kEmptyBound:
        node.kind = ProofNode::Kind::kEmptyBox;
        node.var = lp_cert_empty_var_;
        break;
      case LpCertificate::Kind::kNone:
        node.kind = ProofNode::Kind::kUnproven;
        break;
    }
    record_proof_node(std::move(node));
  }
  /// Stops recording once an incumbent exists: the final status can no
  /// longer be kInfeasible, so the proof would be dead weight.
  void drop_proof_recording() {
    if (!proof_on_) return;
    proof_on_ = false;
    propagator_.set_log(nullptr);
    proof_nodes_.clear();
    pending_derivations_.clear();
    prop_log_.clear();
  }
  /// Hands the recorded tree to an infeasible serial result (no-op on any
  /// other status, where the nodes are dead weight).
  void attach_proof(MilpSolution& result) {
    if (!proof_on_ || result.status != SolveStatus::kInfeasible) return;
    auto proof = std::make_shared<InfeasibilityProof>();
    proof->nodes = std::move(proof_nodes_);
    proof->overflowed = proof_overflowed_;
    result.proof = std::move(proof);
  }

  const SolverParams& params_;
  BnbCallbacks callbacks_;
  ParallelContext* ctx_ = nullptr;
  CompiledModel compiled_;
  Domains domains_;
  Propagator propagator_;
  const Model& model_;
  Stopwatch stopwatch_;
  PropagationStats prop_stats_;
  SolverStats stats_;
  std::vector<Frame> stack_;
  /// Branch index applied at each stack frame (-1 until the frame applies
  /// its first branch); base_rank_ ++ path_ is this worker's DFS position.
  std::vector<std::int32_t> path_;
  Rank base_rank_;
  std::uint64_t seen_candidate_version_ = ~std::uint64_t{0};
  Rank candidate_rank_copy_;
  bool have_candidate_copy_ = false;
  std::vector<double> incumbent_;
  double incumbent_obj_ = kInfinity;
  bool have_incumbent_ = false;
  std::int64_t nodes_ = 0;
  bool stop_ = false;
  /// True once any subtree was abandoned (allocation failure, checker
  /// rejection, LP numerical failure at a leaf); see mark_incomplete().
  bool incomplete_ = false;
  /// True when the search stopped because allocation failures exhausted the
  /// retry budget (distinguishes this stop_ from a record_incumbent stop).
  bool alloc_stop_ = false;

  // -- telemetry (all inert unless live_ / tree_on_ are set) ---------------
  telemetry::LiveSolve* live_ = nullptr;  ///< live slot; null = off
  const bool tree_on_;                    ///< cached once per search
  /// Search-tree parent of this (sub)tree's base node.
  std::int64_t tree_parent_ = -1;
  /// Id of the node whose frame is currently being built (donation parent).
  std::int64_t current_node_id_ = -1;
  /// Owner node id of each open frame; parallel to stack_ while tree_on_.
  std::vector<std::int64_t> frame_node_ids_;
  /// Branch applied to enter the node about to descend (-1: root).
  VarId last_branch_var_ = -1;
  double last_branch_lo_ = 0.0;
  double last_branch_hi_ = 0.0;
  /// High-water marks of what was already pushed into live_ (deltas only,
  /// so per-worker counters aggregate correctly across threads).
  std::int64_t live_pub_nodes_ = 0;
  std::int64_t live_pub_lp_iters_ = 0;

  // -- infeasibility-proof recording (inert unless proof_on_) --------------
  bool proof_on_ = false;
  DerivationLog prop_log_;
  /// Entry-propagation derivations of the node being processed, parked
  /// between the propagate() call that entered it and its proof record.
  std::vector<Derivation> pending_derivations_;
  std::vector<ProofNode> proof_nodes_;
  bool proof_overflowed_ = false;
  /// LP certificate stash of the most recent infeasible in-node LP solve.
  LpCertificate lp_cert_;
  std::vector<ConstraintId> lp_cert_rows_;  ///< model row of each LP row
  VarId lp_cert_empty_var_ = -1;            ///< model var of a kEmptyBound
  /// True when the current leaf's continuous completion LP was infeasible
  /// (set by complete_continuous, consumed by handle_leaf).
  bool lp_refuted_ = false;

  /// Live-slot publish period in nodes (power of two, used as a mask).
  static constexpr std::int64_t kLivePublishPeriod = 256;

  /// Allocation failures tolerated (with node rollback) before giving up.
  static constexpr std::int64_t kMaxAllocationFailures = 16;
};

VarId BnbSearch::pick_branch_var() const {
  for (const VarId v : compiled_.branch_order()) {
    if (domains_.ub(v) - domains_.lb(v) >= 0.5) return v;
  }
  return -1;
}

std::vector<std::pair<double, double>> BnbSearch::make_branches(VarId v) const {
  const double lo = domains_.lb(v);
  const double hi = domains_.ub(v);
  std::vector<std::pair<double, double>> branches;
  const double span = hi - lo;
  if (span <= 8.5) {
    // Enumerate values, branch hint first, then from the top down (for the
    // 0/1 assignment variables of the partitioning model "try 1 first"
    // makes the DFS behave like a greedy constructor).
    double hint = compiled_.branch_hint(v);
    std::vector<double> values;
    if (std::isfinite(hint)) {
      hint = std::round(hint);
      if (hint >= lo && hint <= hi) values.push_back(hint);
    }
    for (double x = hi; x >= lo - 0.5; x -= 1.0) {
      if (values.empty() || std::round(x) != values.front()) {
        values.push_back(std::round(x));
      }
    }
    branches.reserve(values.size());
    for (const double x : values) branches.emplace_back(x, x);
  } else {
    const double mid = std::floor((lo + hi) / 2.0);
    branches.emplace_back(lo, mid);
    branches.emplace_back(mid + 1.0, hi);
  }
  return branches;
}

bool BnbSearch::complete_continuous(std::vector<double>& candidate,
                                    bool* unbounded) {
  *unbounded = false;
  const int n = compiled_.num_vars();
  std::vector<int> cont_index(static_cast<std::size_t>(n), -1);
  std::vector<VarId> cont_var;  ///< model var of each LP var (proof only)
  LpProblem lp;
  for (VarId v = 0; v < n; ++v) {
    if (!compiled_.is_integral(v)) {
      cont_index[static_cast<std::size_t>(v)] =
          lp.add_var(0.0, domains_.lb(v), domains_.ub(v));
      if (proof_on_) cont_var.push_back(v);
    }
  }

  candidate.assign(static_cast<std::size_t>(n), 0.0);
  for (VarId v = 0; v < n; ++v) {
    if (compiled_.is_integral(v)) {
      candidate[static_cast<std::size_t>(v)] = domains_.lb(v);
    }
  }

  if (lp.num_vars() == 0) return true;  // nothing to complete

  for (const LinTerm& t : compiled_.objective_terms()) {
    const int j = cont_index[static_cast<std::size_t>(t.var)];
    if (j >= 0) lp.obj[static_cast<std::size_t>(j)] += t.coef;
  }
  std::vector<ConstraintId> row_ids;  ///< model row of each LP row (proof)
  for (int c = 0; c < compiled_.num_constraints(); ++c) {
    const CompiledConstraint& cc = compiled_.constraint(c);
    if (!std::isfinite(cc.rhs)) continue;  // inactive cutoff
    const double* coefs = compiled_.coefs(cc);
    const VarId* vars = compiled_.vars(cc);
    std::vector<LinTerm> terms;
    double rhs = cc.rhs;
    // Activity range of the row over the current continuous domains; rows
    // satisfied for every point of the box are redundant here (propagation
    // has typically tightened the bounds enough to prune almost all rows,
    // which keeps the completion LP small on large models).
    double min_act = 0.0, max_act = 0.0;
    for (int k = 0; k < compiled_.size(cc); ++k) {
      const VarId v = vars[k];
      const int j = cont_index[static_cast<std::size_t>(v)];
      if (j >= 0) {
        const double a = coefs[k];
        terms.push_back({j, a});
        min_act += a * (a > 0.0 ? domains_.lb(v) : domains_.ub(v));
        max_act += a * (a > 0.0 ? domains_.ub(v) : domains_.lb(v));
      } else {
        rhs -= coefs[k] * candidate[static_cast<std::size_t>(vars[k])];
      }
    }
    if (terms.empty()) continue;
    const double tol = params_.feasibility_tol;
    bool redundant = false;
    switch (cc.sense) {
      case Sense::kLessEqual:
        redundant = max_act <= rhs + tol;
        break;
      case Sense::kGreaterEqual:
        redundant = min_act >= rhs - tol;
        break;
      case Sense::kEqual:
        redundant = max_act <= rhs + tol && min_act >= rhs - tol;
        break;
    }
    if (!redundant) {
      lp.add_row(std::move(terms), cc.sense, rhs);
      if (proof_on_) row_ids.push_back(c);
    }
  }

  const LpResult lp_result = solve_lp(lp, node_lp_params());
  absorb_lp(lp_result);
  switch (lp_result.status) {
    case LpStatus::kOptimal:
      break;
    case LpStatus::kInfeasible:
      lp_refuted_ = true;
      if (proof_on_) {
        // Stash the certificate in model coordinates: the ray is over the
        // folded rows, but the folding only changed the rhs by the fixed
        // integral contributions, which the exact checker re-derives from
        // the full model row and the node box.
        lp_cert_ = lp_result.certificate;
        lp_cert_rows_ = std::move(row_ids);
        lp_cert_empty_var_ =
            lp_cert_.kind == LpCertificate::Kind::kEmptyBound &&
                    lp_cert_.var >= 0 &&
                    lp_cert_.var < static_cast<int>(cont_var.size())
                ? cont_var[static_cast<std::size_t>(lp_cert_.var)]
                : -1;
        if (lp_cert_.kind == LpCertificate::Kind::kEmptyBound &&
            lp_cert_empty_var_ < 0) {
          lp_cert_.kind = LpCertificate::Kind::kNone;
        }
      }
      return false;
    case LpStatus::kUnbounded:
      *unbounded = true;
      return false;
    case LpStatus::kIterationLimit:
    case LpStatus::kNumericalFailure:
      // No completion found, but none ruled out either: the leaf's subregion
      // was not fully explored, so exhaustion no longer proves infeasibility.
      mark_incomplete();
      return false;
  }
  for (VarId v = 0; v < n; ++v) {
    const int j = cont_index[static_cast<std::size_t>(v)];
    if (j >= 0) {
      candidate[static_cast<std::size_t>(v)] =
          lp_result.x[static_cast<std::size_t>(j)];
    }
  }
  return true;
}

bool BnbSearch::lp_prune() {
  LpProblem lp;
  const int n = compiled_.num_vars();
  for (VarId v = 0; v < n; ++v) {
    lp.add_var(0.0, domains_.lb(v), domains_.ub(v));
  }
  std::vector<ConstraintId> row_ids;  ///< model row of each LP row (proof)
  for (int c = 0; c < compiled_.num_constraints(); ++c) {
    const CompiledConstraint& cc = compiled_.constraint(c);
    if (!std::isfinite(cc.rhs)) continue;
    const double* coefs = compiled_.coefs(cc);
    const VarId* vars = compiled_.vars(cc);
    std::vector<LinTerm> terms;
    terms.reserve(static_cast<std::size_t>(compiled_.size(cc)));
    for (int k = 0; k < compiled_.size(cc); ++k) {
      terms.push_back({vars[k], coefs[k]});
    }
    lp.add_row(std::move(terms), cc.sense, cc.rhs);
    if (proof_on_) row_ids.push_back(c);
  }
  const LpResult lp_result = solve_lp(lp, node_lp_params());
  absorb_lp(lp_result);
  if (proof_on_ && lp_result.status == LpStatus::kInfeasible) {
    lp_cert_ = lp_result.certificate;
    lp_cert_rows_ = std::move(row_ids);
    // LP variables are the model variables here, so a kEmptyBound var needs
    // no translation.
    lp_cert_empty_var_ =
        lp_cert_.kind == LpCertificate::Kind::kEmptyBound ? lp_cert_.var : -1;
  }
  // kNumericalFailure (recovery exhausted) keeps the node: skipping the LP
  // prune is always sound, just slower.
  return lp_result.status != LpStatus::kInfeasible;  // true = keep node
}

void BnbSearch::absorb_lp(const LpResult& lp_result) {
  ++stats_.simplex_calls;
  stats_.simplex_iterations += lp_result.iterations;
  stats_.simplex_pivots += lp_result.pivots;
  stats_.simplex_refactorizations += lp_result.refactorizations;
  stats_.lp_recoveries += lp_result.recoveries;
  if (lp_result.status == LpStatus::kNumericalFailure) {
    ++stats_.numerical_failures;
  }
}

LpParams BnbSearch::node_lp_params() const {
  LpParams lp;
  lp.should_abort = [this] { return limits_hit(); };
  lp.want_certificate = proof_on_;
  if (params_.distrust) {
    // Certification retry: Bland's rule from the first iteration and
    // tightened tolerances — slower, but the numerically cautious pivoting
    // usually makes the re-extracted certificates verify exactly.
    lp.stall_threshold = 0;
    lp.feasibility_tol = std::min(lp.feasibility_tol, 1e-9);
    lp.optimality_tol = std::min(lp.optimality_tol, 1e-9);
  }
  return lp;
}

void BnbSearch::mark_incomplete() {
  incomplete_ = true;
  if (ctx_ != nullptr) ctx_->flag_incomplete();
}

void BnbSearch::publish_live() {
  if (live_ == nullptr) return;
  live_->nodes.fetch_add(nodes_ - live_pub_nodes_, std::memory_order_relaxed);
  live_pub_nodes_ = nodes_;
  live_->lp_iterations.fetch_add(
      stats_.simplex_iterations - live_pub_lp_iters_,
      std::memory_order_relaxed);
  live_pub_lp_iters_ = stats_.simplex_iterations;
  live_->open_nodes.store(
      ctx_ != nullptr ? ctx_->open_estimate()
                      : static_cast<std::int64_t>(stack_.size()),
      std::memory_order_relaxed);
}

void BnbSearch::publish_root_bound() {
  if (live_ == nullptr || !params_.use_lp_bounding ||
      compiled_.objective_terms().empty()) {
    return;
  }
  LpProblem lp;
  const int n = compiled_.num_vars();
  for (VarId v = 0; v < n; ++v) {
    lp.add_var(0.0, domains_.lb(v), domains_.ub(v));
  }
  for (const LinTerm& t : compiled_.objective_terms()) {
    lp.obj[static_cast<std::size_t>(t.var)] += t.coef;
  }
  for (int c = 0; c < compiled_.num_constraints(); ++c) {
    const CompiledConstraint& cc = compiled_.constraint(c);
    if (!std::isfinite(cc.rhs)) continue;  // inactive cutoff
    const double* coefs = compiled_.coefs(cc);
    const VarId* vars = compiled_.vars(cc);
    std::vector<LinTerm> terms;
    terms.reserve(static_cast<std::size_t>(compiled_.size(cc)));
    for (int k = 0; k < compiled_.size(cc); ++k) {
      terms.push_back({vars[k], coefs[k]});
    }
    lp.add_row(std::move(terms), cc.sense, cc.rhs);
  }
  const LpResult lp_result = solve_lp(lp, node_lp_params());
  absorb_lp(lp_result);
  if (lp_result.status != LpStatus::kOptimal) return;
  const double caller_bound = compiled_.objective_flipped()
                                  ? -lp_result.objective
                                  : lp_result.objective;
  live_->best_bound.store(caller_bound, std::memory_order_relaxed);
  live_->has_bound.store(true, std::memory_order_relaxed);
  stats_.convergence.push_back({stopwatch_.seconds(), caller_bound, nodes_,
                                ConvergenceEvent::Kind::kBound});
}

void BnbSearch::export_stats(MilpSolution& result) {
  stats_.nodes_explored = nodes_;
  stats_.propagated_constraints = prop_stats_.constraints_processed;
  stats_.bounds_tightened = prop_stats_.bounds_tightened;
  stats_.vars_fixed = prop_stats_.vars_fixed;
  stats_.conflicts = prop_stats_.conflicts;
  result.stats = stats_;
  result.nodes_explored = nodes_;
  result.propagations = prop_stats_.constraints_processed;
}

void BnbSearch::record_incumbent(std::vector<double> values,
                                 MilpSolution& result) {
  double obj = 0.0;
  for (const LinTerm& t : compiled_.objective_terms()) {
    obj += t.coef * values[static_cast<std::size_t>(t.var)];
  }
  if (ctx_ != nullptr) {
    worker_record(std::move(values), obj);
    return;
  }
  if (have_incumbent_ && obj >= incumbent_obj_) return;
  drop_proof_recording();  // a feasible point rules out an infeasible verdict
  incumbent_ = std::move(values);
  incumbent_obj_ = obj;
  have_incumbent_ = true;
  ++stats_.incumbent_updates;
  const double caller_obj =
      compiled_.objective_flipped() ? -incumbent_obj_ : incumbent_obj_;
  stats_.convergence.push_back({stopwatch_.seconds(), caller_obj, nodes_,
                                ConvergenceEvent::Kind::kIncumbent});
  if (live_ != nullptr) {
    live_->incumbent.store(caller_obj, std::memory_order_relaxed);
    live_->has_incumbent.store(true, std::memory_order_relaxed);
    live_->incumbent_updates.fetch_add(1, std::memory_order_relaxed);
  }
  if (compiled_.has_cutoff_row()) {
    compiled_.set_cutoff(incumbent_obj_ - params_.objective_improvement);
  }
  if (callbacks_.on_incumbent) {
    IncumbentEvent event;
    event.objective =
        compiled_.objective_flipped() ? -incumbent_obj_ : incumbent_obj_;
    event.values = &incumbent_;
    event.nodes_explored = nodes_;
    callbacks_.on_incumbent(event);
  }
  SPARCS_DLOG << "incumbent objective " << incumbent_obj_ << " at node "
              << nodes_;
  if (params_.stop_at_first_feasible || compiled_.objective_terms().empty()) {
    result.status = compiled_.objective_terms().empty() && !params_.stop_at_first_feasible
                        ? SolveStatus::kOptimal
                        : SolveStatus::kFeasible;
    stop_ = true;
  }
}

void BnbSearch::worker_record(std::vector<double> values, double obj) {
  // Whether or not this offer wins the race, some worker holds a feasible
  // point, so the solve can no longer end kInfeasible: stop recording.
  drop_proof_recording();
  Rank leaf = base_rank_;
  leaf.insert(leaf.end(), path_.begin(), path_.end());
  if (first_feasible_mode()) {
    if (ctx_->offer_candidate(std::move(leaf), std::move(values), obj)) {
      ++stats_.incumbent_updates;
    }
    // Every remaining leaf of this subproblem follows the one just found in
    // DFS order, so whether or not the offer won, this subtree is done.
    stop_ = true;
    return;
  }
  if (have_incumbent_ && obj >= incumbent_obj_) return;
  if (ctx_->offer_incumbent(std::move(leaf), std::move(values), obj)) {
    ++stats_.incumbent_updates;
    incumbent_obj_ = obj;
    have_incumbent_ = true;
    if (compiled_.has_cutoff_row()) {
      compiled_.set_cutoff(incumbent_obj_ - params_.objective_improvement);
    }
  } else {
    sync_shared_incumbent();  // someone else got there first
  }
}

void BnbSearch::sync_shared_incumbent() {
  if (first_feasible_mode()) return;
  const double best = ctx_->shared_best();
  if (best < incumbent_obj_) {
    incumbent_obj_ = best;
    have_incumbent_ = true;
    if (compiled_.has_cutoff_row()) {
      compiled_.set_cutoff(incumbent_obj_ - params_.objective_improvement);
    }
  }
}

bool BnbSearch::cancel_requested() const {
  return params_.cancel.cancelled() || callbacks_.session_cancel.cancelled();
}

bool BnbSearch::limits_hit() const {
  if (SPARCS_FAILPOINT("milp.solve.timeout")) return true;
  if (ctx_ != nullptr) return ctx_->global_limits_hit();
  if (cancel_requested()) return true;
  return nodes_ >= params_.node_limit ||
         stopwatch_.seconds() >= params_.time_limit_sec;
}

bool BnbSearch::position_pruned() {
  const std::uint64_t version = ctx_->candidate_version();
  if (version != seen_candidate_version_) {
    seen_candidate_version_ = version;
    have_candidate_copy_ = ctx_->copy_candidate_rank(&candidate_rank_copy_);
  }
  if (!have_candidate_copy_) return false;
  // DFS never revisits earlier ranks, so once this worker's position passes
  // the candidate every leaf it could still reach is DFS-later: abandon.
  // A position that is a prefix of the candidate compares smaller (its
  // subtree still holds leaves preceding the candidate) and keeps running.
  const Rank& cand = candidate_rank_copy_;
  std::size_t i = 0;
  for (const std::int32_t digit : base_rank_) {
    if (i >= cand.size()) return true;  // candidate is a strict prefix
    if (digit != cand[i]) return digit > cand[i];
    ++i;
  }
  for (const std::int32_t digit : path_) {
    if (digit < 0) break;  // unapplied top frame: position ends here
    if (i >= cand.size()) return true;
    if (digit != cand[i]) return digit > cand[i];
    ++i;
  }
  return false;  // equal to or a prefix of the candidate
}

bool BnbSearch::handle_leaf(MilpSolution& result) {
  std::vector<double> candidate;
  bool unbounded = false;
  lp_refuted_ = false;
  if (complete_continuous(candidate, &unbounded)) {
    if (SPARCS_FAILPOINT("milp.bnb.corrupt_leaf") && !candidate.empty()) {
      // Simulates a wrong completion (the failure the checker gate exists
      // for); the corrupted candidate must be rejected, never returned.
      candidate[0] += 1e3;
    }
    // Exact final check guards against tolerance drift across propagation.
    // Every accepted incumbent passes through here, so a numerically wrong
    // completion is rejected (and counted) rather than returned.
    if (check_solution(model_, candidate, 1e2 * params_.feasibility_tol)
            .ok) {
      record_incumbent(std::move(candidate), result);
    } else {
      ++stats_.checker_rejections;
      mark_incomplete();
      SPARCS_WLOG << "rejected checker-invalid completion at node " << nodes_;
    }
  } else if (unbounded && !have_incumbent_) {
    if (ctx_ != nullptr) {
      ctx_->flag_unbounded();
      stop_ = true;
      return true;
    }
    result.status = SolveStatus::kUnbounded;
    stop_ = true;
    return true;
  } else if (!unbounded && lp_refuted_) {
    // Integral leaf with no continuous completion: the stashed LP
    // certificate becomes this leaf's refutation.
    record_lp_leaf();
  }
  return stop_;
}

void BnbSearch::donate_siblings(Frame& frame) {
  // The domains currently sit at this frame's pre-branch fixpoint, so a
  // plain bounds snapshot plus one branch box reproduces exactly the state
  // the serial search would enter that branch with.
  const int n = compiled_.num_vars();
  std::vector<double> lb(static_cast<std::size_t>(n));
  std::vector<double> ub(static_cast<std::size_t>(n));
  for (VarId v = 0; v < n; ++v) {
    lb[static_cast<std::size_t>(v)] = domains_.lb(v);
    ub[static_cast<std::size_t>(v)] = domains_.ub(v);
  }
  for (std::size_t j = 1; j < frame.branches.size(); ++j) {
    Subproblem node;
    node.rank = base_rank_;
    node.rank.insert(node.rank.end(), path_.begin(), path_.end());
    node.rank.push_back(static_cast<std::int32_t>(j));
    node.lb = lb;
    node.ub = ub;
    const auto [blo, bhi] = frame.branches[j];
    const auto var = static_cast<std::size_t>(frame.var);
    node.lb[var] = std::max(node.lb[var], blo);
    node.ub[var] = std::min(node.ub[var], bhi);
    node.seed = frame.var;
    node.tree_parent = current_node_id_;
    ctx_->push(std::move(node));
  }
  frame.branches.resize(1);
}

void BnbSearch::search_loop(MilpSolution& result) {
  const bool lp_bounding =
      params_.use_lp_bounding &&
      compiled_.num_vars() <= params_.lp_bounding_max_vars;

  // DFS over decision frames. `descend` signals that the current domains may
  // hold new work (fresh node); false means resume the top frame.
  bool descend = true;
  while (!stop_) {
    if (limits_hit()) break;
    if (descend) {
      ++nodes_;
      if (ctx_ != nullptr) {
        ctx_->count_node();
        sync_shared_incumbent();
        if (position_pruned()) break;
      }
      if (live_ != nullptr && (nodes_ % kLivePublishPeriod) == 0) {
        publish_live();
      }
      if (params_.log_every_nodes > 0 &&
          nodes_ % params_.log_every_nodes == 0) {
        SPARCS_ILOG << "nodes=" << nodes_ << " depth=" << stack_.size()
                    << " incumbent="
                    << (have_incumbent_ ? incumbent_obj_ : kInfinity);
      }
      // Search-tree record of this node: classified at whichever exit the
      // node takes below; interior nodes become the parent of their frame's
      // branches.
      telemetry::TreeNode tnode;
      bool tnode_recorded = false;
      if (tree_on_) {
        tnode.id = telemetry::tree_next_id();
        tnode.parent =
            frame_node_ids_.empty() ? tree_parent_ : frame_node_ids_.back();
        tnode.depth =
            static_cast<std::int32_t>(stack_.size() + base_rank_.size());
        tnode.branch_var = last_branch_var_;
        tnode.branch_lb = last_branch_lo_;
        tnode.branch_ub = last_branch_hi_;
        current_node_id_ = tnode.id;
      }
      // Node body under an allocation guard: on bad_alloc the node is rolled
      // back (its subtree dropped, the search marked incomplete) and the DFS
      // resumes with the siblings, up to kMaxAllocationFailures times.
      try {
        if (SPARCS_FAILPOINT("milp.bnb.alloc_fail")) throw std::bad_alloc();
        const VarId v = pick_branch_var();
        if (v < 0) {
          const std::int64_t rejections_before = stats_.checker_rejections;
          const bool stop_now = handle_leaf(result);
          if (tree_on_) {
            tnode.kind = stats_.checker_rejections > rejections_before
                             ? telemetry::NodeKind::kRejected
                             : telemetry::NodeKind::kIntegral;
            telemetry::tree_record(tnode);
          }
          if (stop_now) break;
          descend = false;  // backtrack to explore alternatives
          continue;
        }
        if (lp_bounding && !lp_prune()) {
          ++stats_.nodes_pruned_by_bound;
          // Without an incumbent the prune can only come from an infeasible
          // relaxation, so the stashed LP certificate refutes this node.
          record_lp_leaf();
          if (tree_on_) {
            tnode.kind = telemetry::NodeKind::kPrunedBound;
            telemetry::tree_record(tnode);
          }
          descend = false;
          continue;
        }
        Frame frame;
        frame.var = v;
        frame.branches = make_branches(v);
        frame.trail_mark = domains_.checkpoint();
        if (proof_on_) {
          // Interior node: its branch list (recorded before any donation
          // trims it) is the coverage obligation the checker verifies.
          ProofNode inode;
          inode.rank = current_rank();
          inode.kind = ProofNode::Kind::kBranched;
          inode.derivations = take_pending_derivations();
          inode.var = v;
          inode.branches = frame.branches;
          record_proof_node(std::move(inode));
        }
        if (ctx_ != nullptr && frame.branches.size() > 1 && ctx_->hungry()) {
          donate_siblings(frame);
        }
        if (tree_on_) {
          // Record (and register as owner) before the stack pushes: a push
          // failure below leaves a childless "branched" record, which the
          // dump-time fixup relabels as "budget".
          tnode.kind = telemetry::NodeKind::kBranched;
          telemetry::tree_record(tnode);
          tnode_recorded = true;
          frame_node_ids_.push_back(tnode.id);
        }
        stack_.push_back(std::move(frame));
        path_.push_back(-1);
      } catch (const std::bad_alloc&) {
        if (stack_.size() > path_.size()) {
          // path_.push_back threw after stack_.push_back: undo the frame to
          // restore the stack/path pairing.
          domains_.rollback(stack_.back().trail_mark);
          stack_.pop_back();
        }
        if (tree_on_) {
          // Re-pair the owner-id vector with the frame stack, then record
          // the dropped node with its real reason (unless already recorded).
          while (frame_node_ids_.size() > stack_.size()) {
            frame_node_ids_.pop_back();
          }
          if (!tnode_recorded) {
            tnode.kind = telemetry::NodeKind::kBudget;
            telemetry::tree_record(tnode);
          }
        }
        ++stats_.allocation_failures;
        mark_incomplete();
        SPARCS_WLOG << "allocation failure at node " << nodes_
                    << "; dropping subtree ("
                    << stats_.allocation_failures << "/"
                    << kMaxAllocationFailures << ")";
        if (stats_.allocation_failures >= kMaxAllocationFailures) {
          alloc_stop_ = true;
          stop_ = true;
          break;
        }
        descend = false;
        continue;
      }
      const auto depth =
          static_cast<std::int64_t>(stack_.size() + base_rank_.size());
      if (depth > stats_.max_depth) stats_.max_depth = depth;
    }

    // Try the next branch of the top frame; pop exhausted frames.
    if (stack_.empty()) break;
    Frame& top = stack_.back();
    domains_.rollback(top.trail_mark);
    if (top.next >= top.branches.size()) {
      stack_.pop_back();
      path_.pop_back();
      if (tree_on_ && !frame_node_ids_.empty()) frame_node_ids_.pop_back();
      descend = false;
      continue;
    }
    const auto [blo, bhi] = top.branches[top.next++];
    path_.back() = static_cast<std::int32_t>(top.next - 1);
    const VarId v = top.var;
    bool ok = true;
    bool empty_on_arrival = false;
    if (blo > domains_.lb(v)) ok = ok && (domains_.set_lb(v, blo), true);
    if (bhi < domains_.ub(v)) ok = ok && (domains_.set_ub(v, bhi), true);
    if (domains_.lb(v) > domains_.ub(v)) {
      ok = false;
      empty_on_arrival = true;
    }
    if (ok) {
      ok = propagator_.propagate(domains_, {v}, prop_stats_);
      if (ok) stage_propagation_log();
    }
    if (!ok) {
      // Conflict: stay on this frame and try its next branch.
      if (proof_on_) {
        if (empty_on_arrival) {
          // The branch box itself was empty: no propagation ran, the
          // emptiness at the branch variable is the whole refutation.
          ProofNode leaf;
          leaf.rank = current_rank();
          leaf.kind = ProofNode::Kind::kEmptyBox;
          leaf.var = v;
          record_proof_node(std::move(leaf));
        } else {
          record_conflict_leaf(current_rank());
        }
      }
      ++stats_.nodes_pruned_infeasible;
      if (tree_on_) {
        // The refuted branch never descends, so its record is created here.
        telemetry::TreeNode child;
        child.id = telemetry::tree_next_id();
        child.parent =
            frame_node_ids_.empty() ? tree_parent_ : frame_node_ids_.back();
        child.depth =
            static_cast<std::int32_t>(stack_.size() + base_rank_.size());
        child.branch_var = v;
        child.branch_lb = blo;
        child.branch_ub = bhi;
        child.kind = telemetry::NodeKind::kPrunedInfeasible;
        telemetry::tree_record(child);
      }
      descend = false;
      continue;
    }
    last_branch_var_ = v;
    last_branch_lo_ = blo;
    last_branch_hi_ = bhi;
    descend = true;
  }
}

MilpSolution BnbSearch::run() {
  MilpSolution result;

  // Root propagation doubles as presolve.
  const bool root_ok = propagator_.propagate(domains_, {}, prop_stats_);
  if (root_ok) stage_propagation_log();
  stats_.presolve_bounds_tightened = prop_stats_.bounds_tightened;
  stats_.presolve_vars_fixed = prop_stats_.vars_fixed;
  if (!root_ok) {
    record_conflict_leaf({});  // the root itself is the refuted node
    result.status = SolveStatus::kInfeasible;
    result.seconds = stopwatch_.seconds();
    attach_proof(result);
    export_stats(result);
    return result;
  }

  publish_root_bound();
  search_loop(result);
  publish_live();  // final flush of node/LP deltas

  export_stats(result);
  result.seconds = stopwatch_.seconds();
  if (stop_ && have_incumbent_ && !alloc_stop_) {
    // Early stop after recording a solution (first-feasible or pure
    // feasibility mode); status was set in record_incumbent.
  } else if (have_incumbent_) {
    // An incomplete tree (dropped subtrees) can still certify feasibility,
    // but no longer optimality.
    result.status = limits_hit() || incomplete_ ? SolveStatus::kFeasible
                                                : SolveStatus::kOptimal;
  } else if (result.status == SolveStatus::kUnbounded) {
    // keep
  } else if (limits_hit()) {
    result.status = SolveStatus::kLimitReached;
  } else {
    // Exhaustion only proves infeasibility when no subtree was dropped.
    result.status = incomplete_ ? SolveStatus::kNumericalFailure
                                : SolveStatus::kInfeasible;
  }
  if (have_incumbent_) {
    result.values = incumbent_;
    result.objective =
        compiled_.objective_flipped() ? -incumbent_obj_ : incumbent_obj_;
  }
  attach_proof(result);
  return result;
}

void BnbSearch::run_worker() {
  Subproblem node;
  MilpSolution sink;  // workers report through ctx_, never through a result
  while (ctx_->acquire(node)) {
    double stall_sec = 0.0;
    if (SPARCS_FAILPOINT_STALL("milp.bnb.worker_stall", &stall_sec) &&
        stall_sec > 0.0) {
      // Simulates a wedged worker; the deadline watchdog (or the time limit)
      // must still terminate the solve through cooperative cancellation.
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_sec));
    }
    base_rank_ = std::move(node.rank);
    domains_.reset_to(node.lb, node.ub);
    stack_.clear();
    path_.clear();
    stop_ = false;
    seen_candidate_version_ = ~std::uint64_t{0};
    have_candidate_copy_ = false;
    if (tree_on_) {
      frame_node_ids_.clear();
      tree_parent_ = node.tree_parent;
      current_node_id_ = node.tree_parent;
      last_branch_var_ = node.seed;
      if (node.seed >= 0) {
        last_branch_lo_ = node.lb[static_cast<std::size_t>(node.seed)];
        last_branch_hi_ = node.ub[static_cast<std::size_t>(node.seed)];
      } else {
        last_branch_lo_ = 0.0;
        last_branch_hi_ = 0.0;
      }
    }
    sync_shared_incumbent();

    bool ok = true;
    bool empty_on_arrival = false;
    std::vector<VarId> seeds;
    if (node.seed >= 0) {
      if (domains_.lb(node.seed) > domains_.ub(node.seed)) {
        ok = false;
        empty_on_arrival = true;
      } else {
        seeds.push_back(node.seed);
      }
    }
    if (ok) ok = propagator_.propagate(domains_, seeds, prop_stats_);
    if (proof_on_) {
      if (ok) {
        stage_propagation_log();
      } else if (empty_on_arrival) {
        // The donated branch box refuted on arrival; mirror the serial
        // search's empty-box leaf at the subtree's base rank.
        ProofNode leaf;
        leaf.rank = base_rank_;
        leaf.kind = ProofNode::Kind::kEmptyBox;
        leaf.var = node.seed;
        record_proof_node(std::move(leaf));
      } else {
        record_conflict_leaf(base_rank_);
      }
    }
    if (node.seed < 0) {
      // Root subproblem: its fixpoint is the solver's presolve.
      stats_.presolve_bounds_tightened = prop_stats_.bounds_tightened;
      stats_.presolve_vars_fixed = prop_stats_.vars_fixed;
      if (ok) publish_root_bound();
    }
    if (ok) {
      search_loop(sink);
    } else if (node.seed >= 0) {
      ++stats_.nodes_pruned_infeasible;
      if (tree_on_) {
        // The donated branch box refuted on arrival: record it so the
        // donor's subtree keeps a complete child list in the dump.
        telemetry::TreeNode child;
        child.id = telemetry::tree_next_id();
        child.parent = tree_parent_;
        child.depth = static_cast<std::int32_t>(base_rank_.size());
        child.branch_var = node.seed;
        child.branch_lb = node.lb[static_cast<std::size_t>(node.seed)];
        child.branch_ub = node.ub[static_cast<std::size_t>(node.seed)];
        child.kind = telemetry::NodeKind::kPrunedInfeasible;
        telemetry::tree_record(child);
      }
    }
    ctx_->release();
  }
  publish_live();  // final flush of this worker's deltas
  if (params_.certify == CertifyMode::kFull) {
    // Merge this worker's proof fragment (empty when recording was dropped;
    // harmless, since an incumbent rules out an infeasible verdict anyway).
    ctx_->contribute_proof(std::move(proof_nodes_), proof_overflowed_);
  }
  stats_.nodes_explored = nodes_;
  stats_.propagated_constraints = prop_stats_.constraints_processed;
  stats_.bounds_tightened = prop_stats_.bounds_tightened;
  stats_.vars_fixed = prop_stats_.vars_fixed;
  stats_.conflicts = prop_stats_.conflicts;
}

/// Resolves SolverParams::num_threads against the hardware and the model
/// size (tiny models finish before a pool spins up).
int effective_threads(const SolverParams& params, const Model& model) {
  if (params.num_threads == 1) return 1;
  int threads = params.num_threads > 0
                    ? params.num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 1) return 1;
  constexpr int kParallelMinVars = 48;
  if (model.num_vars() < kParallelMinVars) return 1;
  return threads;
}

MilpSolution solve_parallel(const Model& model, const SolverParams& params,
                            const BnbCallbacks& callbacks, int num_workers) {
  // Mode flags must be known before workers start; compile once (without the
  // cutoff row) to read the normalized objective.
  const CompiledModel probe(model, /*with_objective_cutoff=*/false);
  const bool first_feasible_mode =
      params.stop_at_first_feasible || probe.objective_terms().empty();
  const bool flipped = probe.objective_flipped();

  ParallelContext ctx(params, callbacks, first_feasible_mode, flipped,
                      num_workers);
  {
    Subproblem root;
    root.lb.reserve(static_cast<std::size_t>(probe.num_vars()));
    root.ub.reserve(static_cast<std::size_t>(probe.num_vars()));
    for (VarId v = 0; v < probe.num_vars(); ++v) {
      root.lb.push_back(probe.lb(v));
      root.ub.push_back(probe.ub(v));
    }
    ctx.push(std::move(root));
  }

  std::vector<SolverStats> worker_stats(static_cast<std::size_t>(num_workers));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_workers));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers.emplace_back([&, i] {
      // Workers inherit the solve's correlation id so their log lines and
      // spans join the session's telemetry stream.
      telemetry::CorrelationScope corr(callbacks.correlation);
      try {
        BnbSearch search(model, params, callbacks, &ctx);
        search.run_worker();
        worker_stats[static_cast<std::size_t>(i)] = search.worker_stats();
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
        ctx.request_stop();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  MilpSolution result;
  for (const SolverStats& stats : worker_stats) result.stats.merge(stats);
  {
    // Incumbent acceptances were recorded centrally (under the context
    // lock); bound events live in the worker stats merged above.
    std::vector<ConvergenceEvent> accepted = ctx.take_convergence();
    auto& timeline = result.stats.convergence;
    timeline.insert(timeline.end(), accepted.begin(), accepted.end());
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const ConvergenceEvent& a, const ConvergenceEvent& b) {
                       return a.t_sec < b.t_sec;
                     });
  }
  result.nodes_explored = result.stats.nodes_explored;
  result.propagations = result.stats.propagated_constraints;
  result.seconds = ctx.stopwatch.seconds();

  const bool limit_stopped = ctx.budget_limits_hit();
  if (ctx.have_solution()) {
    if (first_feasible_mode) {
      result.status = params.stop_at_first_feasible || ctx.incomplete()
                          ? SolveStatus::kFeasible
                          : SolveStatus::kOptimal;
    } else {
      result.status = limit_stopped || ctx.incomplete()
                          ? SolveStatus::kFeasible
                          : SolveStatus::kOptimal;
    }
    const double obj = ctx.solution_objective();
    result.values = ctx.take_values();
    result.objective = flipped ? -obj : obj;
  } else if (ctx.unbounded()) {
    result.status = SolveStatus::kUnbounded;
  } else if (limit_stopped) {
    result.status = SolveStatus::kLimitReached;
  } else {
    // With dropped subtrees an exhausted pool no longer proves infeasibility.
    result.status = ctx.incomplete() ? SolveStatus::kNumericalFailure
                                     : SolveStatus::kInfeasible;
  }
  if (result.status == SolveStatus::kInfeasible &&
      params.certify == CertifyMode::kFull) {
    result.proof = ctx.take_proof();
  }
  return result;
}

}  // namespace

MilpSolution solve_branch_and_bound(const Model& model,
                                    const SolverParams& params,
                                    const BnbCallbacks& callbacks) {
  const int threads = effective_threads(params, model);
  if (threads <= 1) {
    BnbSearch search(model, params, callbacks);
    return search.run();
  }
  return solve_parallel(model, params, callbacks, threads);
}

}  // namespace sparcs::milp

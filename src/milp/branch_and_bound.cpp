#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "milp/checker.hpp"
#include "milp/compiled.hpp"
#include "milp/propagation.hpp"
#include "milp/simplex.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"

namespace sparcs::milp {
namespace {

/// One open decision in the DFS stack.
struct Frame {
  VarId var = -1;
  /// Branches as [lb, ub] boxes to impose on `var`, tried in order.
  std::vector<std::pair<double, double>> branches;
  std::size_t next = 0;
  std::size_t trail_mark = 0;
};

class BnbSearch {
 public:
  BnbSearch(const Model& model, const SolverParams& params)
      : params_(params),
        compiled_(model, /*with_objective_cutoff=*/model.has_objective()),
        domains_(compiled_),
        propagator_(compiled_, params.feasibility_tol,
                    params.max_propagation_rounds),
        model_(model) {}

  MilpSolution run();

 private:
  /// First unfixed integral variable in branch-priority order, or -1.
  VarId pick_branch_var() const;
  std::vector<std::pair<double, double>> make_branches(VarId v) const;
  /// Completes continuous variables by LP. Returns true when a feasible
  /// completion exists and fills `candidate`; `unbounded` reports an
  /// unbounded continuous objective.
  bool complete_continuous(std::vector<double>& candidate, bool* unbounded);
  /// LP-relaxation feasibility probe under the current domains.
  bool lp_prune();
  /// Handles a fully integral node. Returns true when the search must stop.
  bool handle_leaf(MilpSolution& result);
  void record_incumbent(std::vector<double> values, MilpSolution& result);
  bool limits_hit() const;
  void absorb_lp(const LpResult& lp_result);
  void export_stats(MilpSolution& result);

  const SolverParams& params_;
  CompiledModel compiled_;
  Domains domains_;
  Propagator propagator_;
  const Model& model_;
  Stopwatch stopwatch_;
  PropagationStats prop_stats_;
  SolverStats stats_;
  std::vector<Frame> stack_;
  std::vector<double> incumbent_;
  double incumbent_obj_ = kInfinity;
  bool have_incumbent_ = false;
  std::int64_t nodes_ = 0;
  bool stop_ = false;
};

VarId BnbSearch::pick_branch_var() const {
  for (const VarId v : compiled_.branch_order()) {
    if (domains_.ub(v) - domains_.lb(v) >= 0.5) return v;
  }
  return -1;
}

std::vector<std::pair<double, double>> BnbSearch::make_branches(VarId v) const {
  const double lo = domains_.lb(v);
  const double hi = domains_.ub(v);
  std::vector<std::pair<double, double>> branches;
  const double span = hi - lo;
  if (span <= 8.5) {
    // Enumerate values, branch hint first, then from the top down (for the
    // 0/1 assignment variables of the partitioning model "try 1 first"
    // makes the DFS behave like a greedy constructor).
    double hint = compiled_.branch_hint(v);
    std::vector<double> values;
    if (std::isfinite(hint)) {
      hint = std::round(hint);
      if (hint >= lo && hint <= hi) values.push_back(hint);
    }
    for (double x = hi; x >= lo - 0.5; x -= 1.0) {
      if (values.empty() || std::round(x) != values.front()) {
        values.push_back(std::round(x));
      }
    }
    branches.reserve(values.size());
    for (const double x : values) branches.emplace_back(x, x);
  } else {
    const double mid = std::floor((lo + hi) / 2.0);
    branches.emplace_back(lo, mid);
    branches.emplace_back(mid + 1.0, hi);
  }
  return branches;
}

bool BnbSearch::complete_continuous(std::vector<double>& candidate,
                                    bool* unbounded) {
  *unbounded = false;
  const int n = compiled_.num_vars();
  std::vector<int> cont_index(static_cast<std::size_t>(n), -1);
  LpProblem lp;
  for (VarId v = 0; v < n; ++v) {
    if (!compiled_.is_integral(v)) {
      cont_index[static_cast<std::size_t>(v)] =
          lp.add_var(0.0, domains_.lb(v), domains_.ub(v));
    }
  }

  candidate.assign(static_cast<std::size_t>(n), 0.0);
  for (VarId v = 0; v < n; ++v) {
    if (compiled_.is_integral(v)) {
      candidate[static_cast<std::size_t>(v)] = domains_.lb(v);
    }
  }

  if (lp.num_vars() == 0) return true;  // nothing to complete

  for (const LinTerm& t : compiled_.objective_terms()) {
    const int j = cont_index[static_cast<std::size_t>(t.var)];
    if (j >= 0) lp.obj[static_cast<std::size_t>(j)] += t.coef;
  }
  for (int c = 0; c < compiled_.num_constraints(); ++c) {
    const CompiledConstraint& cc = compiled_.constraint(c);
    if (!std::isfinite(cc.rhs)) continue;  // inactive cutoff
    const double* coefs = compiled_.coefs(cc);
    const VarId* vars = compiled_.vars(cc);
    std::vector<LinTerm> terms;
    double rhs = cc.rhs;
    // Activity range of the row over the current continuous domains; rows
    // satisfied for every point of the box are redundant here (propagation
    // has typically tightened the bounds enough to prune almost all rows,
    // which keeps the completion LP small on large models).
    double min_act = 0.0, max_act = 0.0;
    for (int k = 0; k < compiled_.size(cc); ++k) {
      const VarId v = vars[k];
      const int j = cont_index[static_cast<std::size_t>(v)];
      if (j >= 0) {
        const double a = coefs[k];
        terms.push_back({j, a});
        min_act += a * (a > 0.0 ? domains_.lb(v) : domains_.ub(v));
        max_act += a * (a > 0.0 ? domains_.ub(v) : domains_.lb(v));
      } else {
        rhs -= coefs[k] * candidate[static_cast<std::size_t>(vars[k])];
      }
    }
    if (terms.empty()) continue;
    const double tol = params_.feasibility_tol;
    bool redundant = false;
    switch (cc.sense) {
      case Sense::kLessEqual:
        redundant = max_act <= rhs + tol;
        break;
      case Sense::kGreaterEqual:
        redundant = min_act >= rhs - tol;
        break;
      case Sense::kEqual:
        redundant = max_act <= rhs + tol && min_act >= rhs - tol;
        break;
    }
    if (!redundant) lp.add_row(std::move(terms), cc.sense, rhs);
  }

  const LpResult lp_result = solve_lp(lp);
  absorb_lp(lp_result);
  switch (lp_result.status) {
    case LpStatus::kOptimal:
      break;
    case LpStatus::kInfeasible:
      return false;
    case LpStatus::kUnbounded:
      *unbounded = true;
      return false;
    case LpStatus::kIterationLimit:
      return false;  // treat conservatively as no completion found
  }
  for (VarId v = 0; v < n; ++v) {
    const int j = cont_index[static_cast<std::size_t>(v)];
    if (j >= 0) {
      candidate[static_cast<std::size_t>(v)] =
          lp_result.x[static_cast<std::size_t>(j)];
    }
  }
  return true;
}

bool BnbSearch::lp_prune() {
  LpProblem lp;
  const int n = compiled_.num_vars();
  for (VarId v = 0; v < n; ++v) {
    lp.add_var(0.0, domains_.lb(v), domains_.ub(v));
  }
  for (int c = 0; c < compiled_.num_constraints(); ++c) {
    const CompiledConstraint& cc = compiled_.constraint(c);
    if (!std::isfinite(cc.rhs)) continue;
    const double* coefs = compiled_.coefs(cc);
    const VarId* vars = compiled_.vars(cc);
    std::vector<LinTerm> terms;
    terms.reserve(static_cast<std::size_t>(compiled_.size(cc)));
    for (int k = 0; k < compiled_.size(cc); ++k) {
      terms.push_back({vars[k], coefs[k]});
    }
    lp.add_row(std::move(terms), cc.sense, cc.rhs);
  }
  const LpResult lp_result = solve_lp(lp);
  absorb_lp(lp_result);
  return lp_result.status != LpStatus::kInfeasible;  // true = keep node
}

void BnbSearch::absorb_lp(const LpResult& lp_result) {
  ++stats_.simplex_calls;
  stats_.simplex_iterations += lp_result.iterations;
  stats_.simplex_pivots += lp_result.pivots;
  stats_.simplex_refactorizations += lp_result.refactorizations;
}

void BnbSearch::export_stats(MilpSolution& result) {
  stats_.nodes_explored = nodes_;
  stats_.propagated_constraints = prop_stats_.constraints_processed;
  stats_.bounds_tightened = prop_stats_.bounds_tightened;
  stats_.vars_fixed = prop_stats_.vars_fixed;
  stats_.conflicts = prop_stats_.conflicts;
  result.stats = stats_;
  result.nodes_explored = nodes_;
  result.propagations = prop_stats_.constraints_processed;
}

void BnbSearch::record_incumbent(std::vector<double> values,
                                 MilpSolution& result) {
  double obj = 0.0;
  for (const LinTerm& t : compiled_.objective_terms()) {
    obj += t.coef * values[static_cast<std::size_t>(t.var)];
  }
  if (have_incumbent_ && obj >= incumbent_obj_) return;
  incumbent_ = std::move(values);
  incumbent_obj_ = obj;
  have_incumbent_ = true;
  ++stats_.incumbent_updates;
  if (compiled_.has_cutoff_row()) {
    compiled_.set_cutoff(incumbent_obj_ - params_.objective_improvement);
  }
  SPARCS_DLOG << "incumbent objective " << incumbent_obj_ << " at node "
              << nodes_;
  if (params_.stop_at_first_feasible || compiled_.objective_terms().empty()) {
    result.status = compiled_.objective_terms().empty() && !params_.stop_at_first_feasible
                        ? SolveStatus::kOptimal
                        : SolveStatus::kFeasible;
    stop_ = true;
  }
}

bool BnbSearch::limits_hit() const {
  return nodes_ >= params_.node_limit ||
         stopwatch_.seconds() >= params_.time_limit_sec;
}

bool BnbSearch::handle_leaf(MilpSolution& result) {
  std::vector<double> candidate;
  bool unbounded = false;
  if (complete_continuous(candidate, &unbounded)) {
    // Exact final check guards against tolerance drift across propagation.
    if (check_solution(model_, candidate, 1e2 * params_.feasibility_tol)
            .ok) {
      record_incumbent(std::move(candidate), result);
    }
  } else if (unbounded && !have_incumbent_) {
    result.status = SolveStatus::kUnbounded;
    stop_ = true;
    return true;
  }
  return stop_;
}

MilpSolution BnbSearch::run() {
  MilpSolution result;

  // Root propagation doubles as presolve.
  const bool root_ok = propagator_.propagate(domains_, {}, prop_stats_);
  stats_.presolve_bounds_tightened = prop_stats_.bounds_tightened;
  stats_.presolve_vars_fixed = prop_stats_.vars_fixed;
  if (!root_ok) {
    result.status = SolveStatus::kInfeasible;
    result.seconds = stopwatch_.seconds();
    export_stats(result);
    return result;
  }

  const bool lp_bounding =
      params_.use_lp_bounding &&
      compiled_.num_vars() <= params_.lp_bounding_max_vars;

  // DFS over decision frames. `descend` signals that the current domains may
  // hold new work (fresh node); false means resume the top frame.
  bool descend = true;
  while (!stop_) {
    if (limits_hit()) break;
    if (descend) {
      ++nodes_;
      if (params_.log_every_nodes > 0 &&
          nodes_ % params_.log_every_nodes == 0) {
        SPARCS_ILOG << "nodes=" << nodes_ << " depth=" << stack_.size()
                    << " incumbent="
                    << (have_incumbent_ ? incumbent_obj_ : kInfinity);
      }
      const VarId v = pick_branch_var();
      if (v < 0) {
        if (handle_leaf(result)) break;
        descend = false;  // backtrack to explore alternatives
        continue;
      }
      if (lp_bounding && !lp_prune()) {
        ++stats_.nodes_pruned_by_bound;
        descend = false;
        continue;
      }
      Frame frame;
      frame.var = v;
      frame.branches = make_branches(v);
      frame.trail_mark = domains_.checkpoint();
      stack_.push_back(std::move(frame));
      if (static_cast<std::int64_t>(stack_.size()) > stats_.max_depth) {
        stats_.max_depth = static_cast<std::int64_t>(stack_.size());
      }
    }

    // Try the next branch of the top frame; pop exhausted frames.
    if (stack_.empty()) break;
    Frame& top = stack_.back();
    domains_.rollback(top.trail_mark);
    if (top.next >= top.branches.size()) {
      stack_.pop_back();
      descend = false;
      continue;
    }
    const auto [blo, bhi] = top.branches[top.next++];
    const VarId v = top.var;
    bool ok = true;
    if (blo > domains_.lb(v)) ok = ok && (domains_.set_lb(v, blo), true);
    if (bhi < domains_.ub(v)) ok = ok && (domains_.set_ub(v, bhi), true);
    if (domains_.lb(v) > domains_.ub(v)) ok = false;
    if (ok) {
      ok = propagator_.propagate(domains_, {v}, prop_stats_);
    }
    if (!ok) {
      // Conflict: stay on this frame and try its next branch.
      ++stats_.nodes_pruned_infeasible;
      descend = false;
      continue;
    }
    descend = true;
  }

  export_stats(result);
  result.seconds = stopwatch_.seconds();
  if (stop_ && have_incumbent_) {
    // Early stop after recording a solution (first-feasible or pure
    // feasibility mode); status was set in record_incumbent.
  } else if (have_incumbent_) {
    result.status =
        limits_hit() ? SolveStatus::kFeasible : SolveStatus::kOptimal;
  } else if (result.status == SolveStatus::kUnbounded) {
    // keep
  } else {
    result.status =
        limits_hit() ? SolveStatus::kLimitReached : SolveStatus::kInfeasible;
  }
  if (have_incumbent_) {
    result.values = incumbent_;
    result.objective =
        compiled_.objective_flipped() ? -incumbent_obj_ : incumbent_obj_;
  }
  return result;
}

}  // namespace

MilpSolution solve_branch_and_bound(const Model& model,
                                    const SolverParams& params) {
  BnbSearch search(model, params);
  return search.run();
}

}  // namespace sparcs::milp

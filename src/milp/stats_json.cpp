// JSON rendering of SolverStats, including the convergence timeline. Lives
// in its own translation unit so types.hpp stays header-only apart from it
// and the support/report_writer dependency does not leak into every
// include of the solver types.
#include "milp/types.hpp"

#include "support/report_writer.hpp"

namespace sparcs::milp {

std::string SolverStats::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("nodes_explored", nodes_explored);
  w.field("nodes_pruned_by_bound", nodes_pruned_by_bound);
  w.field("nodes_pruned_infeasible", nodes_pruned_infeasible);
  w.field("incumbent_updates", incumbent_updates);
  w.field("max_depth", max_depth);
  w.field("propagated_constraints", propagated_constraints);
  w.field("bounds_tightened", bounds_tightened);
  w.field("vars_fixed", vars_fixed);
  w.field("conflicts", conflicts);
  w.field("presolve_bounds_tightened", presolve_bounds_tightened);
  w.field("presolve_vars_fixed", presolve_vars_fixed);
  w.field("simplex_calls", simplex_calls);
  w.field("simplex_iterations", simplex_iterations);
  w.field("simplex_pivots", simplex_pivots);
  w.field("simplex_refactorizations", simplex_refactorizations);
  w.field("numerical_failures", numerical_failures);
  w.field("lp_recoveries", lp_recoveries);
  w.field("checker_rejections", checker_rejections);
  w.field("allocation_failures", allocation_failures);
  w.field("certificates_checked", certificates_checked);
  w.field("certificates_failed", certificates_failed);
  w.field("certify_retries", certify_retries);
  w.field("uncertified_verdicts", uncertified_verdicts);
  w.begin_array("convergence");
  for (const ConvergenceEvent& event : convergence) {
    w.begin_object();
    w.field("t_sec", event.t_sec);
    w.field("objective", event.objective);
    w.field("nodes", event.nodes);
    w.field("kind", event.kind == ConvergenceEvent::Kind::kIncumbent
                        ? "incumbent"
                        : "bound");
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace sparcs::milp

#include "milp/presolve.hpp"

#include <cmath>

#include "milp/compiled.hpp"
#include "milp/propagation.hpp"
#include "support/span.hpp"

namespace sparcs::milp {

PresolveResult presolve(const Model& model) {
  trace::Span span("milp::presolve");
  PresolveResult result;
  const CompiledModel compiled(model);
  Domains domains(compiled);
  Propagator propagator(compiled, 1e-7, 100);
  PropagationStats prop_stats;
  if (!propagator.propagate(domains, {}, prop_stats)) {
    result.stats.infeasible = true;
    return result;
  }

  Model reduced(model.name() + "_presolved");
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const VarInfo& info = model.var(v);
    const double lb = domains.lb(v);
    const double ub = domains.ub(v);
    if (lb > info.lb || ub < info.ub) ++result.stats.bounds_tightened;
    if (lb >= ub && !(info.lb >= info.ub)) ++result.stats.vars_fixed;
    const VarId copy = reduced.add_var(info.type, lb, ub, info.name);
    reduced.set_branch_priority(copy, info.branch_priority);
    if (!std::isnan(info.branch_hint)) {
      reduced.set_branch_hint(copy, info.branch_hint);
    }
  }

  for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
    const ConstraintInfo& info = model.constraint(c);
    // Substitute fixed variables and compute the residual activity range.
    LinExpr lhs;
    double rhs = info.rhs;
    double min_act = 0.0, max_act = 0.0;
    bool min_inf = false, max_inf = false;
    for (const LinTerm& t : info.terms) {
      const double lb = domains.lb(t.var);
      const double ub = domains.ub(t.var);
      if (lb >= ub) {
        rhs -= t.coef * lb;  // fixed: fold into the right-hand side
        continue;
      }
      lhs.add_term(t.var, t.coef);
      const double lo = t.coef > 0 ? t.coef * lb : t.coef * ub;
      const double hi = t.coef > 0 ? t.coef * ub : t.coef * lb;
      if (std::isfinite(lo)) min_act += lo; else min_inf = true;
      if (std::isfinite(hi)) max_act += hi; else max_inf = true;
    }
    // Drop rows satisfied for every point of the domain box.
    constexpr double kTol = 1e-9;
    bool redundant = false;
    switch (info.sense) {
      case Sense::kLessEqual:
        redundant = !max_inf && max_act <= rhs + kTol;
        break;
      case Sense::kGreaterEqual:
        redundant = !min_inf && min_act >= rhs - kTol;
        break;
      case Sense::kEqual:
        redundant = !max_inf && !min_inf && max_act <= rhs + kTol &&
                    min_act >= rhs - kTol;
        break;
    }
    if (redundant) {
      ++result.stats.rows_dropped;
      continue;
    }
    reduced.add_constraint(lhs, info.sense, rhs, info.name);
  }

  if (model.has_objective()) {
    reduced.set_objective(model.objective(), model.minimize());
  }
  span.arg("vars_fixed", static_cast<std::int64_t>(result.stats.vars_fixed));
  span.arg("rows_dropped",
           static_cast<std::int64_t>(result.stats.rows_dropped));
  result.model = std::move(reduced);
  return result;
}

}  // namespace sparcs::milp

// Compiled (solver-internal) form of a Model: CSR constraint storage,
// variable -> constraint adjacency, and an optional dynamic objective-cutoff
// row used by branch & bound to turn incumbent objectives into a constraint.
#pragma once

#include <vector>

#include "milp/model.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// One compiled constraint; its terms live in the shared CSR arrays.
struct CompiledConstraint {
  std::int32_t begin = 0;  ///< first term index
  std::int32_t end = 0;    ///< one past the last term index
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

/// Immutable-by-convention compiled model (the cutoff rhs is the one mutable
/// field, owned by the branch & bound).
class CompiledModel {
 public:
  /// Compiles `model`. When `with_objective_cutoff` is true and the model has
  /// an objective, an extra row `obj <= +inf` is appended whose rhs the
  /// search tightens as incumbents are found (the objective is negated first
  /// for maximization so the compiled problem always minimizes).
  explicit CompiledModel(const Model& model, bool with_objective_cutoff = false);

  [[nodiscard]] int num_vars() const { return static_cast<int>(types_.size()); }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }

  [[nodiscard]] const CompiledConstraint& constraint(int c) const {
    return constraints_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const double* coefs(const CompiledConstraint& c) const {
    return coef_.data() + c.begin;
  }
  [[nodiscard]] const VarId* vars(const CompiledConstraint& c) const {
    return var_.data() + c.begin;
  }
  [[nodiscard]] int size(const CompiledConstraint& c) const {
    return c.end - c.begin;
  }

  [[nodiscard]] VarType var_type(VarId v) const {
    return types_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool is_integral(VarId v) const {
    return types_[static_cast<std::size_t>(v)] != VarType::kContinuous;
  }
  [[nodiscard]] double lb(VarId v) const { return lb_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] double ub(VarId v) const { return ub_[static_cast<std::size_t>(v)]; }

  /// Constraints containing variable v.
  [[nodiscard]] const std::vector<std::int32_t>& constraints_of(VarId v) const {
    return vadj_[static_cast<std::size_t>(v)];
  }

  /// Minimization objective (already sign-normalized); empty terms when the
  /// model is a pure feasibility problem.
  [[nodiscard]] const std::vector<LinTerm>& objective_terms() const {
    return obj_terms_;
  }
  [[nodiscard]] bool objective_flipped() const { return obj_flipped_; }

  [[nodiscard]] bool has_cutoff_row() const { return cutoff_row_ >= 0; }
  [[nodiscard]] int cutoff_row() const { return cutoff_row_; }
  /// Tightens the cutoff row to `obj <= value`.
  void set_cutoff(double value) {
    constraints_[static_cast<std::size_t>(cutoff_row_)].rhs = value;
  }

  /// Variable ids ordered by descending branch priority (ties: ascending id).
  [[nodiscard]] const std::vector<VarId>& branch_order() const {
    return branch_order_;
  }
  [[nodiscard]] double branch_hint(VarId v) const {
    return hints_[static_cast<std::size_t>(v)];
  }

 private:
  std::vector<double> coef_;
  std::vector<VarId> var_;
  std::vector<CompiledConstraint> constraints_;
  std::vector<std::vector<std::int32_t>> vadj_;
  std::vector<VarType> types_;
  std::vector<double> lb_, ub_;
  std::vector<double> hints_;
  std::vector<LinTerm> obj_terms_;
  std::vector<VarId> branch_order_;
  bool obj_flipped_ = false;
  int cutoff_row_ = -1;
};

}  // namespace sparcs::milp

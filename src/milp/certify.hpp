// Independent certificate checker: re-establishes solver verdicts in exact
// rational arithmetic (support/rational), with zero tolerance.
//
// This is the trust anchor of the certified-verdict pipeline: it shares no
// state with the solver, reads only the Model and the certificate, and every
// comparison it makes is exact. A passing check means the verdict is true of
// the Model as written (real arithmetic), not merely plausible under
// floating-point tolerances. A failing check never proves the verdict wrong
// — certificates are floating-point hints — it demotes it to "uncertified",
// which the solver answers with one distrust-and-retry re-solve.
#pragma once

#include <string>
#include <vector>

#include "milp/certificate.hpp"
#include "milp/model.hpp"

namespace sparcs::milp {

/// Outcome of one certificate check.
struct CertifyCheck {
  bool ok = false;
  /// Human-readable reason for a failed check, or a note on how a passing
  /// feasibility check was closed (e.g. "repaired 2 continuous values").
  std::string detail;
};

/// Exact feasibility check of `values` against the model: bounds and
/// integrality of every variable, then every constraint, all with zero
/// tolerance. When the direct check fails on a constraint, the checker
/// attempts an exact repair of the *continuous* variables only (the integral
/// assignment — the part the partitioner decodes — is never altered): bounds
/// implied by single-variable residuals are tightened to an exact fixpoint,
/// each continuous value is clamped into its exact interval, and the whole
/// model is re-evaluated. Success either way certifies the claim "the
/// integral assignment extends to an exactly feasible solution".
[[nodiscard]] CertifyCheck certify_feasible(const Model& model,
                                            const std::vector<double>& values);

/// Exact check of a tree-shaped infeasibility proof: walks the tree from the
/// root box (the model bounds), replays every node's bound derivations
/// soundly (the checker derives its own exact bounds; recorded values are
/// never trusted), verifies that interior nodes' branch boxes cover the
/// variable's integral domain, and verifies every leaf refutation — row
/// conflicts and emptied domains exactly, Farkas rays by exact product signs
/// against the node's exact box.
[[nodiscard]] CertifyCheck certify_infeasible(const Model& model,
                                              const InfeasibilityProof& proof);

}  // namespace sparcs::milp

// Linear expressions over MILP variables, with value-semantics operators so
// formulations read like the paper's equations:
//
//   LinExpr lhs;
//   lhs += D(m) * y(p, t, m);
//   model.add_constraint(lhs <= d_p, "latency_p3_path7");
#pragma once

#include <string>
#include <vector>

#include "milp/types.hpp"

namespace sparcs::milp {

/// One coefficient * variable term.
struct LinTerm {
  VarId var = -1;
  double coef = 0.0;
};

/// A linear expression: sum of terms plus a constant offset.
class LinExpr {
 public:
  LinExpr() = default;
  /// Implicit conversions let constants and bare variables appear in
  /// constraint expressions, mirroring algebraic notation.
  LinExpr(double constant) : constant_(constant) {}          // NOLINT
  LinExpr(VarId var) { terms_.push_back({var, 1.0}); }       // NOLINT
  LinExpr(VarId var, double coef) { terms_.push_back({var, coef}); }

  [[nodiscard]] const std::vector<LinTerm>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }

  LinExpr& operator+=(const LinExpr& other);
  LinExpr& operator-=(const LinExpr& other);
  LinExpr& operator*=(double factor);

  /// Adds `coef * var` to the expression.
  void add_term(VarId var, double coef);
  /// Adds a constant offset.
  void add_constant(double value) { constant_ += value; }

  /// Merges duplicate variables and drops (near-)zero coefficients.
  /// Terms end up sorted by variable id.
  void normalize(double drop_tol = 0.0);

  /// Evaluates the expression under the given assignment.
  [[nodiscard]] double evaluate(const std::vector<double>& values) const;

  /// Renders e.g. "3 x2 - 1.5 x7 + 4" for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<LinTerm> terms_;
  double constant_ = 0.0;
};

LinExpr operator+(LinExpr lhs, const LinExpr& rhs);
LinExpr operator-(LinExpr lhs, const LinExpr& rhs);
LinExpr operator*(double factor, LinExpr expr);
LinExpr operator*(LinExpr expr, double factor);
LinExpr operator-(LinExpr expr);

/// A constraint-in-flight produced by comparison operators; consumed by
/// Model::add_constraint.
struct Relation {
  LinExpr lhs;  ///< normalized so the rhs is a bare constant
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

Relation operator<=(LinExpr lhs, const LinExpr& rhs);
Relation operator>=(LinExpr lhs, const LinExpr& rhs);
Relation operator==(LinExpr lhs, const LinExpr& rhs);

}  // namespace sparcs::milp

// Solver session: the single entry point the rest of the system uses,
// mirroring the narrow slice of a commercial ILP solver's API the paper
// depends on (CPLEX-style "build model, create solver, solve, re-solve").
//
// A Solver owns a reference to the model plus a mutable copy of the solve
// parameters, so one session can be re-solved several times with tightened
// limits or bounds between calls (the paper's Reduce_Latency loop re-probes
// the same formulation with shrinking latency windows). cancel() aborts an
// in-flight solve() from another thread; set_incumbent_callback() observes
// every accepted incumbent as it is found.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

#include "milp/model.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// Owned copy of the best incumbent a solve has accepted so far: the carried
/// upper bound plus the full assignment (decodable into a design and reusable
/// as a warm-start hint). Unlike IncumbentEvent, the storage is the caller's.
struct IncumbentSnapshot {
  double objective = 0.0;
  std::vector<double> values;
  std::int64_t nodes_explored = 0;
};

/// One solving session over a fixed model.
///
/// Thread-safety contract: solve() itself may spin up worker threads
/// (SolverParams::num_threads), but the session object is externally
/// synchronized — at most one solve() may be in flight at a time, and
/// params() must not be mutated while one is. cancel() is the exception:
/// it is safe to call from any thread at any time.
class Solver {
 public:
  /// Binds the session to `model`, which must outlive the Solver and stay
  /// unmodified while any solve() is in flight.
  explicit Solver(const Model& model, SolverParams params = {});

  /// Runs the search with the current parameters. Reusable: later calls see
  /// any parameter changes made through params() in between.
  MilpSolution solve();

  /// Requests cooperative cancellation of the in-flight solve (it returns
  /// kLimitReached, or kFeasible when an incumbent is already in hand).
  /// Sticky: cancels every later solve() too, until reset_cancel().
  void cancel();

  /// Re-arms a session whose cancel() was used, allowing further solves.
  /// The session keeps one cancellation flag for its whole lifetime (the
  /// flag is cleared in place), so a cancel() racing a reset from another
  /// thread is never dropped: it either cancels the finishing solve or the
  /// next one, never neither.
  void reset_cancel();

  [[nodiscard]] bool cancel_requested() const { return cancel_.cancelled(); }

  /// Observes every accepted incumbent. In multi-threaded solves the
  /// callback runs on a worker thread under the incumbent lock: keep it
  /// cheap, and only call back into the solver via cancel().
  void set_incumbent_callback(IncumbentCallback callback);

  /// The best incumbent of the in-flight (or most recent) solve(), copied
  /// when the search accepted it. Safe from any thread at any time — this is
  /// how a checkpointer exports the carried upper bound and its assignment
  /// out of a long solve without waiting for it to return. nullopt until the
  /// current solve accepts a first incumbent (cleared when solve() starts).
  [[nodiscard]] std::optional<IncumbentSnapshot> incumbent_snapshot() const;

  /// Mutable parameters, applied to the next solve() call. Typical re-solve
  /// pattern: tighten time_limit_sec / node_limit, flip
  /// stop_at_first_feasible, then call solve() again.
  [[nodiscard]] SolverParams& params() { return params_; }
  [[nodiscard]] const SolverParams& params() const { return params_; }

  [[nodiscard]] const Model& model() const { return model_; }

 private:
  const Model& model_;
  SolverParams params_;
  CancelToken cancel_;
  IncumbentCallback on_incumbent_;
  /// Guards snapshot_ against concurrent incumbent_snapshot() readers while
  /// solver workers publish new incumbents.
  mutable std::mutex snapshot_mu_;
  std::optional<IncumbentSnapshot> snapshot_;
};

/// Parameter preset for constraint-satisfaction queries (the paper's
/// SolveModel()): stop at the first feasible assignment.
[[nodiscard]] SolverParams first_feasible_params(SolverParams base = {});

/// Parameter preset for optimality queries, with LP bounding enabled for
/// models small enough to afford it.
[[nodiscard]] SolverParams optimality_params(SolverParams base = {});

/// Solves the MILP in one shot.
[[deprecated("construct a milp::Solver session instead")]]
MilpSolution solve(const Model& model, const SolverParams& params = {});

/// Convenience wrapper for constraint-satisfaction queries.
[[deprecated("use Solver(model, first_feasible_params()).solve()")]]
MilpSolution solve_first_feasible(const Model& model, SolverParams params = {});

/// Convenience wrapper for optimality queries.
[[deprecated("use Solver(model, optimality_params()).solve()")]]
MilpSolution solve_to_optimality(const Model& model, SolverParams params = {});

}  // namespace sparcs::milp

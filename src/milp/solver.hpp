// Solver façade: the single entry point the rest of the system uses, mirroring
// the narrow slice of a commercial ILP solver's API the paper depends on.
#pragma once

#include "milp/model.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// Solves the MILP. With params.stop_at_first_feasible the call returns the
/// first constraint-satisfying assignment found (the paper's SolveModel());
/// otherwise the search runs to proven optimality or a limit.
MilpSolution solve(const Model& model, const SolverParams& params = {});

/// Convenience wrapper for constraint-satisfaction queries.
MilpSolution solve_first_feasible(const Model& model,
                                  SolverParams params = {});

/// Convenience wrapper for optimality queries with LP bounding enabled for
/// models small enough to afford it.
MilpSolution solve_to_optimality(const Model& model, SolverParams params = {});

}  // namespace sparcs::milp

// CPLEX LP-format writer, for model debugging and interoperability with
// external solvers.
#pragma once

#include <iosfwd>
#include <string>

#include "milp/model.hpp"

namespace sparcs::milp {

/// Renders the model in CPLEX LP text format.
void write_lp(std::ostream& os, const Model& model);

/// Convenience wrapper returning the LP text as a string.
std::string to_lp_string(const Model& model);

}  // namespace sparcs::milp

// Trail-based variable domains and activity-based bound propagation.
//
// The propagation engine implements the classic MIP "bound strengthening"
// rule: for a row  sum_j a_j x_j (<=|>=|=) b  it computes the row's minimum
// and maximum activity from the current bounds, detects conflicts, and
// tightens every variable's bound implied by the other terms. Run to a
// fixpoint it subsumes unit propagation on the 0/1 structure of the temporal
// partitioning model (uniqueness rows fix siblings to 0, temporal-order rows
// prune partitions of successors, area/latency rows prune design points).
#pragma once

#include <cstdint>
#include <vector>

#include "milp/certificate.hpp"
#include "milp/compiled.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// Current bounds of every variable plus an undo trail for backtracking.
class Domains {
 public:
  explicit Domains(const CompiledModel& model);

  [[nodiscard]] double lb(VarId v) const { return lb_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] double ub(VarId v) const { return ub_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] bool is_fixed(VarId v) const {
    return lb_[static_cast<std::size_t>(v)] >= ub_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int num_vars() const { return static_cast<int>(lb_.size()); }

  /// Raises the lower bound (no-op when not an improvement). Returns true
  /// when the bound actually changed. Records the old value on the trail.
  bool set_lb(VarId v, double value);
  /// Lowers the upper bound, symmetric to set_lb.
  bool set_ub(VarId v, double value);

  /// Trail position to roll back to later.
  [[nodiscard]] std::size_t checkpoint() const { return trail_.size(); }
  /// Restores all bounds recorded after `mark`.
  void rollback(std::size_t mark);

  /// Replaces every bound and clears the trail. Used by branch & bound
  /// workers to seat a subproblem snapshot taken on another thread.
  void reset_to(const std::vector<double>& lb, const std::vector<double>& ub);

 private:
  struct TrailEntry {
    VarId var;
    bool is_lb;
    double old_value;
  };
  std::vector<double> lb_, ub_;
  std::vector<TrailEntry> trail_;
};

/// Statistics accumulated over propagate() calls.
struct PropagationStats {
  std::int64_t constraints_processed = 0;
  std::int64_t bounds_tightened = 0;
  std::int64_t vars_fixed = 0;  ///< tightenings that emptied a var's slack
  std::int64_t conflicts = 0;
};

/// Activity-based bound propagation over a compiled model.
class Propagator {
 public:
  Propagator(const CompiledModel& model, double feasibility_tol,
             int max_rounds);

  /// Propagates to a fixpoint starting from the constraints adjacent to
  /// `seed_vars` (or all constraints when empty). Returns false on conflict
  /// (some constraint proved unsatisfiable or a domain emptied).
  bool propagate(Domains& domains, const std::vector<VarId>& seed_vars,
                 PropagationStats& stats);

  /// Installs a derivation log (nullptr to detach). While attached, every
  /// bound tightening appends a Derivation and a conflict records its row or
  /// emptied variable, giving the certificate checker a replayable trace.
  /// The caller clears the log between propagate() calls.
  void set_log(DerivationLog* log) { log_ = log; }

 private:
  bool process_constraint(int c, Domains& domains, PropagationStats& stats);
  void enqueue_var(VarId v);
  void enqueue_all();

  const CompiledModel& model_;
  double tol_;
  int max_rounds_;
  DerivationLog* log_ = nullptr;
  std::vector<std::int32_t> queue_;
  std::vector<bool> in_queue_;
};

}  // namespace sparcs::milp

// Standalone presolve: tightens a Model before solving or exporting.
//
// Runs activity-based bound propagation to a fixpoint on the full model,
// then rewrites it: variable bounds tightened, variables fixed by
// propagation substituted into the rows, rows that became trivially
// satisfiable dropped, and empty rows checked for consistency. The solver
// performs the same propagation internally at the root node; this pass
// exists so reduced models can be inspected, exported to LP format, or fed
// to external tools.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "milp/model.hpp"

namespace sparcs::milp {

struct PresolveStats {
  int vars_fixed = 0;
  int bounds_tightened = 0;
  int rows_dropped = 0;
  bool infeasible = false;
};

struct PresolveResult {
  /// The reduced model (same variable ids as the input; fixed variables
  /// remain with lb == ub). Unset when the model is proven infeasible.
  std::optional<Model> model;
  PresolveStats stats;
};

/// Presolves `model` (the input is not modified).
PresolveResult presolve(const Model& model);

}  // namespace sparcs::milp

#include "milp/propagation.hpp"

#include <cmath>

#include "support/error.hpp"

namespace sparcs::milp {

Domains::Domains(const CompiledModel& model) {
  const int n = model.num_vars();
  lb_.reserve(static_cast<std::size_t>(n));
  ub_.reserve(static_cast<std::size_t>(n));
  for (VarId v = 0; v < n; ++v) {
    lb_.push_back(model.lb(v));
    ub_.push_back(model.ub(v));
  }
}

bool Domains::set_lb(VarId v, double value) {
  double& slot = lb_[static_cast<std::size_t>(v)];
  if (value <= slot) return false;
  trail_.push_back({v, true, slot});
  slot = value;
  return true;
}

bool Domains::set_ub(VarId v, double value) {
  double& slot = ub_[static_cast<std::size_t>(v)];
  if (value >= slot) return false;
  trail_.push_back({v, false, slot});
  slot = value;
  return true;
}

void Domains::reset_to(const std::vector<double>& lb,
                       const std::vector<double>& ub) {
  SPARCS_CHECK(lb.size() == lb_.size() && ub.size() == ub_.size(),
               "domain snapshot arity mismatch");
  lb_ = lb;
  ub_ = ub;
  trail_.clear();
}

void Domains::rollback(std::size_t mark) {
  while (trail_.size() > mark) {
    const TrailEntry& e = trail_.back();
    if (e.is_lb) {
      lb_[static_cast<std::size_t>(e.var)] = e.old_value;
    } else {
      ub_[static_cast<std::size_t>(e.var)] = e.old_value;
    }
    trail_.pop_back();
  }
}

Propagator::Propagator(const CompiledModel& model, double feasibility_tol,
                       int max_rounds)
    : model_(model),
      tol_(feasibility_tol),
      max_rounds_(max_rounds),
      in_queue_(static_cast<std::size_t>(model.num_constraints()), false) {}

void Propagator::enqueue_var(VarId v) {
  for (const std::int32_t c : model_.constraints_of(v)) {
    if (!in_queue_[static_cast<std::size_t>(c)]) {
      in_queue_[static_cast<std::size_t>(c)] = true;
      queue_.push_back(c);
    }
  }
}

void Propagator::enqueue_all() {
  for (int c = 0; c < model_.num_constraints(); ++c) {
    if (!in_queue_[static_cast<std::size_t>(c)]) {
      in_queue_[static_cast<std::size_t>(c)] = true;
      queue_.push_back(c);
    }
  }
}

bool Propagator::propagate(Domains& domains,
                           const std::vector<VarId>& seed_vars,
                           PropagationStats& stats) {
  queue_.clear();
  std::fill(in_queue_.begin(), in_queue_.end(), false);
  if (seed_vars.empty()) {
    enqueue_all();
  } else {
    for (const VarId v : seed_vars) enqueue_var(v);
  }

  const std::int64_t budget =
      static_cast<std::int64_t>(max_rounds_) *
      std::max(1, model_.num_constraints());
  std::int64_t processed = 0;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const int c = queue_[head++];
    in_queue_[static_cast<std::size_t>(c)] = false;
    if (!process_constraint(c, domains, stats)) {
      ++stats.conflicts;
      return false;
    }
    if (++processed > budget) break;  // settle for the bounds found so far
    // Compact the consumed prefix occasionally to bound memory.
    if (head > 4096 && head * 2 > queue_.size()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  }
  stats.constraints_processed += processed;
  return true;
}

bool Propagator::process_constraint(int c, Domains& domains,
                                    PropagationStats& stats) {
  const CompiledConstraint& cc = model_.constraint(c);
  const double* coefs = model_.coefs(cc);
  const VarId* vars = model_.vars(cc);
  const int len = model_.size(cc);
  if (!std::isfinite(cc.rhs)) return true;  // inactive cutoff row

  // Row activity bounds with infinite-contribution counters.
  double min_act = 0.0, max_act = 0.0;
  int min_infs = 0, max_infs = 0;
  for (int k = 0; k < len; ++k) {
    const double a = coefs[k];
    const double lo = domains.lb(vars[k]);
    const double hi = domains.ub(vars[k]);
    const double contrib_min = a > 0.0 ? a * lo : a * hi;
    const double contrib_max = a > 0.0 ? a * hi : a * lo;
    if (std::isfinite(contrib_min)) min_act += contrib_min; else ++min_infs;
    if (std::isfinite(contrib_max)) max_act += contrib_max; else ++max_infs;
  }

  const bool need_le =
      cc.sense == Sense::kLessEqual || cc.sense == Sense::kEqual;
  const bool need_ge =
      cc.sense == Sense::kGreaterEqual || cc.sense == Sense::kEqual;

  if ((need_le && min_infs == 0 && min_act > cc.rhs + tol_) ||
      (need_ge && max_infs == 0 && max_act < cc.rhs - tol_)) {
    if (log_ != nullptr) log_->conflict_row = c;
    return false;
  }

  // Tighten each variable from the residual activity of the others.
  for (int k = 0; k < len; ++k) {
    const VarId v = vars[k];
    const double a = coefs[k];
    const double lo = domains.lb(v);
    const double hi = domains.ub(v);
    const double contrib_min = a > 0.0 ? a * lo : a * hi;
    const double contrib_max = a > 0.0 ? a * hi : a * lo;
    const bool self_min_inf = !std::isfinite(contrib_min);
    const bool self_max_inf = !std::isfinite(contrib_max);

    if (need_le && (min_infs == 0 || (min_infs == 1 && self_min_inf))) {
      // residual = min activity of the other terms
      const double residual = self_min_inf ? min_act : min_act - contrib_min;
      const double slack = cc.rhs - residual;
      // a*x <= slack
      double new_bound = slack / a;
      bool changed = false;
      if (a > 0.0) {
        if (model_.is_integral(v)) new_bound = std::floor(new_bound + tol_);
        if (new_bound < hi - tol_) changed = domains.set_ub(v, new_bound);
      } else {
        if (model_.is_integral(v)) new_bound = std::ceil(new_bound - tol_);
        if (new_bound > lo + tol_) changed = domains.set_lb(v, new_bound);
      }
      if (changed) {
        ++stats.bounds_tightened;
        if (log_ != nullptr) {
          log_->derivations.push_back({c, v, /*is_lb=*/a <= 0.0});
        }
        if (domains.lb(v) > domains.ub(v) + tol_) {
          if (log_ != nullptr) log_->conflict_var = v;
          return false;
        }
        if (domains.ub(v) - domains.lb(v) <= tol_) ++stats.vars_fixed;
        enqueue_var(v);
      }
    }
    if (need_ge && (max_infs == 0 || (max_infs == 1 && self_max_inf))) {
      const double residual = self_max_inf ? max_act : max_act - contrib_max;
      const double slack = cc.rhs - residual;
      // a*x >= slack
      double new_bound = slack / a;
      bool changed = false;
      if (a > 0.0) {
        if (model_.is_integral(v)) new_bound = std::ceil(new_bound - tol_);
        if (new_bound > domains.lb(v) + tol_) changed = domains.set_lb(v, new_bound);
      } else {
        if (model_.is_integral(v)) new_bound = std::floor(new_bound + tol_);
        if (new_bound < domains.ub(v) - tol_) changed = domains.set_ub(v, new_bound);
      }
      if (changed) {
        ++stats.bounds_tightened;
        if (log_ != nullptr) {
          log_->derivations.push_back({c, v, /*is_lb=*/a > 0.0});
        }
        if (domains.lb(v) > domains.ub(v) + tol_) {
          if (log_ != nullptr) log_->conflict_var = v;
          return false;
        }
        if (domains.ub(v) - domains.lb(v) <= tol_) ++stats.vars_fixed;
        enqueue_var(v);
      }
    }
  }
  return true;
}

}  // namespace sparcs::milp

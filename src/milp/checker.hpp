// Independent solution checker: verifies a candidate assignment against a
// Model without using any solver state. Used as the final acceptance gate in
// branch & bound and by the test suites to cross-validate solutions.
#pragma once

#include <string>
#include <vector>

#include "milp/model.hpp"

namespace sparcs::milp {

/// Outcome of checking an assignment against a model.
struct CheckResult {
  bool ok = true;
  /// Human-readable description of the first violation found (empty if ok).
  std::string violation;
};

/// Verifies bounds, integrality, and every constraint within `tolerance`.
/// Violations of magnitude up to `tolerance * max(1, |rhs|)` are accepted.
CheckResult check_solution(const Model& model, const std::vector<double>& values,
                           double tolerance = 1e-6);

}  // namespace sparcs::milp

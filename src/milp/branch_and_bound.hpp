// Branch & bound over propagated domains, single- or multi-threaded.
//
// Search skeleton: propagate to a fixpoint; if a conflict arises backtrack;
// if integral variables remain, branch on the highest-priority one (value
// enumeration for small domains, interval bisection for large ones, the
// model's branch hint tried first); once every integral variable is fixed,
// the remaining continuous variables are completed exactly with a small LP.
// Optimality is enforced through a dynamic objective-cutoff row, so the same
// machinery serves both the paper's constraint-satisfaction mode
// (stop_at_first_feasible) and the optimal reference runs.
//
// With SolverParams::num_threads != 1 the tree is explored by a worker pool
// fed from a rank-ordered subproblem pool (ranks are branch-index paths, so
// rank order == the serial DFS order). Workers donate untried sibling
// branches whenever the pool runs low, share the incumbent through an atomic
// objective, and in first-feasible mode accept candidates in rank order —
// which makes the returned solution identical to the single-threaded one.
#pragma once

#include <cstdint>

#include "milp/model.hpp"
#include "milp/types.hpp"

namespace sparcs::telemetry {
struct LiveSolve;
}  // namespace sparcs::telemetry

namespace sparcs::milp {

/// Out-of-band hooks threaded from the Solver session into the search.
struct BnbCallbacks {
  /// Session-level cancellation (Solver::cancel()), checked alongside the
  /// caller-supplied SolverParams::cancel token.
  CancelToken session_cancel;
  /// Invoked on every accepted incumbent; may be empty.
  IncumbentCallback on_incumbent;
  /// Live telemetry slot of the enclosing solve (owned by the Solver
  /// session's telemetry::SolveScope); null when telemetry is inactive.
  telemetry::LiveSolve* live = nullptr;
  /// Correlation id of the enclosing solve (0 when telemetry is inactive);
  /// worker threads adopt it so their spans and log lines join the solve.
  std::uint64_t correlation = 0;
};

/// Solves `model` with propagation-based branch & bound.
MilpSolution solve_branch_and_bound(const Model& model,
                                    const SolverParams& params,
                                    const BnbCallbacks& callbacks = {});

}  // namespace sparcs::milp

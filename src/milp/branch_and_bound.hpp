// Depth-first branch & bound over propagated domains.
//
// Search skeleton: propagate to a fixpoint; if a conflict arises backtrack;
// if integral variables remain, branch on the highest-priority one (value
// enumeration for small domains, interval bisection for large ones, the
// model's branch hint tried first); once every integral variable is fixed,
// the remaining continuous variables are completed exactly with a small LP.
// Optimality is enforced through a dynamic objective-cutoff row, so the same
// machinery serves both the paper's constraint-satisfaction mode
// (stop_at_first_feasible) and the optimal reference runs.
#pragma once

#include "milp/model.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// Solves `model` with propagation-based depth-first branch & bound.
MilpSolution solve_branch_and_bound(const Model& model,
                                    const SolverParams& params);

}  // namespace sparcs::milp

#include "milp/model.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::milp {

VarId Model::add_var(VarType type, double lb, double ub, std::string name) {
  SPARCS_REQUIRE(lb <= ub, "variable " + name + " has empty bound box");
  SPARCS_REQUIRE(!std::isnan(lb) && !std::isnan(ub),
                 "variable bounds must not be NaN");
  VarInfo info;
  info.name = std::move(name);
  info.type = type;
  info.lb = lb;
  info.ub = ub;
  if (type == VarType::kBinary) {
    info.lb = std::max(lb, 0.0);
    info.ub = std::min(ub, 1.0);
    SPARCS_REQUIRE(info.lb <= info.ub, "binary variable bounds exclude {0,1}");
  }
  vars_.push_back(std::move(info));
  return static_cast<VarId>(vars_.size() - 1);
}

VarId Model::add_binary(std::string name) {
  return add_var(VarType::kBinary, 0.0, 1.0, std::move(name));
}

VarId Model::add_integer(double lb, double ub, std::string name) {
  return add_var(VarType::kInteger, lb, ub, std::move(name));
}

VarId Model::add_continuous(double lb, double ub, std::string name) {
  return add_var(VarType::kContinuous, lb, ub, std::move(name));
}

const VarInfo& Model::var(VarId id) const {
  SPARCS_REQUIRE(id >= 0 && id < num_vars(), "variable id out of range");
  return vars_[static_cast<std::size_t>(id)];
}

void Model::tighten_bounds(VarId id, double lb, double ub) {
  SPARCS_REQUIRE(id >= 0 && id < num_vars(), "variable id out of range");
  VarInfo& info = vars_[static_cast<std::size_t>(id)];
  info.lb = std::max(info.lb, lb);
  info.ub = std::min(info.ub, ub);
  SPARCS_REQUIRE(info.lb <= info.ub,
                 "tighten_bounds made variable " + info.name + " infeasible");
}

void Model::set_branch_priority(VarId id, int priority) {
  SPARCS_REQUIRE(id >= 0 && id < num_vars(), "variable id out of range");
  vars_[static_cast<std::size_t>(id)].branch_priority = priority;
}

void Model::set_branch_hint(VarId id, double value) {
  SPARCS_REQUIRE(id >= 0 && id < num_vars(), "variable id out of range");
  vars_[static_cast<std::size_t>(id)].branch_hint = value;
}

ConstraintId Model::add_constraint(Relation relation, std::string name) {
  ConstraintInfo info;
  info.name = std::move(name);
  LinExpr lhs = std::move(relation.lhs);
  lhs.normalize();
  info.terms = lhs.terms();
  info.sense = relation.sense;
  info.rhs = relation.rhs - lhs.constant();
  constraints_.push_back(std::move(info));
  return static_cast<ConstraintId>(constraints_.size() - 1);
}

ConstraintId Model::add_constraint(const LinExpr& lhs, Sense sense, double rhs,
                                   std::string name) {
  Relation relation;
  relation.lhs = lhs;
  relation.sense = sense;
  relation.rhs = rhs;
  return add_constraint(std::move(relation), std::move(name));
}

const ConstraintInfo& Model::constraint(ConstraintId id) const {
  SPARCS_REQUIRE(id >= 0 && id < num_constraints(),
                 "constraint id out of range");
  return constraints_[static_cast<std::size_t>(id)];
}

void Model::set_objective(LinExpr objective, bool minimize) {
  objective.normalize();
  objective_ = std::move(objective);
  minimize_ = minimize;
  has_objective_ = true;
}

ModelStats Model::stats() const {
  ModelStats s;
  s.num_vars = num_vars();
  for (const VarInfo& v : vars_) {
    switch (v.type) {
      case VarType::kBinary:
        ++s.num_binary;
        break;
      case VarType::kInteger:
        ++s.num_integer;
        break;
      case VarType::kContinuous:
        ++s.num_continuous;
        break;
    }
  }
  s.num_constraints = num_constraints();
  for (const ConstraintInfo& c : constraints_) {
    s.num_nonzeros += static_cast<std::int64_t>(c.terms.size());
  }
  return s;
}

void Model::validate() const {
  for (int i = 0; i < num_vars(); ++i) {
    const VarInfo& v = vars_[static_cast<std::size_t>(i)];
    SPARCS_REQUIRE(v.lb <= v.ub, "variable " + v.name + " has empty bounds");
    if (v.type != VarType::kContinuous) {
      SPARCS_REQUIRE(std::isfinite(v.lb) && std::isfinite(v.ub),
                     "integer variable " + v.name + " must have finite bounds");
    }
  }
  auto check_terms = [&](const std::vector<LinTerm>& terms,
                         const std::string& where) {
    for (const LinTerm& t : terms) {
      SPARCS_REQUIRE(t.var >= 0 && t.var < num_vars(),
                     where + " references unknown variable");
      SPARCS_REQUIRE(std::isfinite(t.coef),
                     where + " has a non-finite coefficient");
    }
  };
  for (const ConstraintInfo& c : constraints_) {
    check_terms(c.terms, "constraint " + c.name);
    SPARCS_REQUIRE(std::isfinite(c.rhs),
                   "constraint " + c.name + " has non-finite rhs");
  }
  check_terms(objective_.terms(), "objective");
}

}  // namespace sparcs::milp

#include "milp/lp_writer.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

namespace sparcs::milp {
namespace {

/// Shortest decimal form that parses back to the identical double
/// (std::to_chars round-trip guarantee). LP files are a model interchange
/// format, not a display surface: a fixed decimal trim would silently
/// perturb coefficients on reload, which the exact certificate checker
/// would then correctly flag as a different model.
std::string lp_number(double value) {
  char buf[64];
  const std::to_chars_result res =
      std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

/// LP format requires names without spaces; fall back to x<i> for anonymous
/// variables.
std::string var_name(const Model& model, VarId v) {
  const std::string& name = model.var(v).name;
  if (name.empty()) return "x" + std::to_string(v);
  std::string sanitized = name;
  for (char& ch : sanitized) {
    if (ch == ' ' || ch == ',' || ch == '+' || ch == '-') ch = '_';
  }
  return sanitized;
}

void write_terms(std::ostream& os, const Model& model,
                 const std::vector<LinTerm>& terms) {
  bool first = true;
  for (const LinTerm& t : terms) {
    const double coef = t.coef;
    if (coef == 0.0) continue;
    if (first) {
      if (coef < 0) os << "- ";
      first = false;
    } else {
      os << (coef < 0 ? " - " : " + ");
    }
    const double mag = std::abs(coef);
    if (mag != 1.0) os << lp_number(mag) << " ";
    os << var_name(model, t.var);
  }
  if (first) os << "0 " << var_name(model, 0);
}

}  // namespace

void write_lp(std::ostream& os, const Model& model) {
  os << "\\ Model: " << (model.name().empty() ? "unnamed" : model.name())
     << "\n";
  os << (model.minimize() ? "Minimize" : "Maximize") << "\n obj: ";
  write_terms(os, model, model.objective().terms());
  os << "\nSubject To\n";
  for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
    const ConstraintInfo& info = model.constraint(c);
    os << " " << (info.name.empty() ? "c" + std::to_string(c) : info.name)
       << ": ";
    write_terms(os, model, info.terms);
    switch (info.sense) {
      case Sense::kLessEqual:
        os << " <= ";
        break;
      case Sense::kGreaterEqual:
        os << " >= ";
        break;
      case Sense::kEqual:
        os << " = ";
        break;
    }
    os << lp_number(info.rhs) << "\n";
  }
  os << "Bounds\n";
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const VarInfo& info = model.var(v);
    if (info.type == VarType::kBinary) continue;  // declared below
    os << " ";
    if (std::isinf(info.lb) && std::isinf(info.ub)) {
      os << var_name(model, v) << " free\n";
      continue;
    }
    if (std::isinf(info.lb)) {
      os << "-inf <= ";
    } else {
      os << lp_number(info.lb) << " <= ";
    }
    os << var_name(model, v);
    if (!std::isinf(info.ub)) os << " <= " << lp_number(info.ub);
    os << "\n";
  }
  bool have_general = false, have_binary = false;
  for (VarId v = 0; v < model.num_vars(); ++v) {
    if (model.var(v).type == VarType::kInteger) have_general = true;
    if (model.var(v).type == VarType::kBinary) have_binary = true;
  }
  if (have_general) {
    os << "General\n";
    for (VarId v = 0; v < model.num_vars(); ++v) {
      if (model.var(v).type == VarType::kInteger) {
        os << " " << var_name(model, v) << "\n";
      }
    }
  }
  if (have_binary) {
    os << "Binary\n";
    for (VarId v = 0; v < model.num_vars(); ++v) {
      if (model.var(v).type == VarType::kBinary) {
        os << " " << var_name(model, v) << "\n";
      }
    }
  }
  os << "End\n";
}

std::string to_lp_string(const Model& model) {
  std::ostringstream os;
  write_lp(os, model);
  return os.str();
}

}  // namespace sparcs::milp

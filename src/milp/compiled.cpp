#include "milp/compiled.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sparcs::milp {

CompiledModel::CompiledModel(const Model& model, bool with_objective_cutoff) {
  model.validate();
  const int n = model.num_vars();
  types_.reserve(static_cast<std::size_t>(n));
  lb_.reserve(static_cast<std::size_t>(n));
  ub_.reserve(static_cast<std::size_t>(n));
  hints_.reserve(static_cast<std::size_t>(n));
  for (const VarInfo& v : model.vars()) {
    types_.push_back(v.type);
    double lo = v.lb, hi = v.ub;
    if (v.type != VarType::kContinuous) {
      lo = std::ceil(lo - 1e-9);
      hi = std::floor(hi + 1e-9);
    }
    lb_.push_back(lo);
    ub_.push_back(hi);
    hints_.push_back(v.branch_hint);
  }

  auto append_row = [&](const std::vector<LinTerm>& terms, Sense sense,
                        double rhs) {
    CompiledConstraint cc;
    cc.begin = static_cast<std::int32_t>(var_.size());
    for (const LinTerm& t : terms) {
      if (t.coef == 0.0) continue;
      var_.push_back(t.var);
      coef_.push_back(t.coef);
    }
    cc.end = static_cast<std::int32_t>(var_.size());
    cc.sense = sense;
    cc.rhs = rhs;
    constraints_.push_back(cc);
  };

  for (const ConstraintInfo& c : model.constraints()) {
    append_row(c.terms, c.sense, c.rhs);
  }

  // Sign-normalize the objective to minimization.
  obj_flipped_ = model.has_objective() && !model.minimize();
  if (model.has_objective()) {
    const double sign = obj_flipped_ ? -1.0 : 1.0;
    for (const LinTerm& t : model.objective().terms()) {
      if (t.coef != 0.0) obj_terms_.push_back({t.var, sign * t.coef});
    }
  }

  if (with_objective_cutoff && !obj_terms_.empty()) {
    cutoff_row_ = static_cast<int>(constraints_.size());
    append_row(obj_terms_, Sense::kLessEqual, kInfinity);
  }

  vadj_.assign(static_cast<std::size_t>(n), {});
  for (int c = 0; c < num_constraints(); ++c) {
    const CompiledConstraint& cc = constraints_[static_cast<std::size_t>(c)];
    for (std::int32_t k = cc.begin; k < cc.end; ++k) {
      vadj_[static_cast<std::size_t>(var_[static_cast<std::size_t>(k)])]
          .push_back(c);
    }
  }

  branch_order_.reserve(static_cast<std::size_t>(n));
  for (VarId v = 0; v < n; ++v) {
    if (is_integral(v)) branch_order_.push_back(v);
  }
  std::stable_sort(branch_order_.begin(), branch_order_.end(),
                   [&](VarId a, VarId b) {
                     return model.var(a).branch_priority >
                            model.var(b).branch_priority;
                   });
}

}  // namespace sparcs::milp

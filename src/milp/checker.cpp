#include "milp/checker.hpp"

#include <cmath>

#include "support/strings.hpp"

namespace sparcs::milp {

CheckResult check_solution(const Model& model,
                           const std::vector<double>& values,
                           double tolerance) {
  CheckResult result;
  if (static_cast<int>(values.size()) != model.num_vars()) {
    result.ok = false;
    result.violation = str_format(
        "assignment has %zu values for %d variables", values.size(),
        model.num_vars());
    return result;
  }
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const VarInfo& info = model.var(v);
    const double x = values[static_cast<std::size_t>(v)];
    if (x < info.lb - tolerance || x > info.ub + tolerance) {
      result.ok = false;
      result.violation =
          str_format("variable %s = %g outside [%g, %g]", info.name.c_str(),
                     x, info.lb, info.ub);
      return result;
    }
    if (info.type != VarType::kContinuous &&
        std::abs(x - std::round(x)) > tolerance) {
      result.ok = false;
      result.violation = str_format("variable %s = %g is not integral",
                                    info.name.c_str(), x);
      return result;
    }
  }
  for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
    const ConstraintInfo& info = model.constraint(c);
    double lhs = 0.0;
    for (const LinTerm& t : info.terms) {
      lhs += t.coef * values[static_cast<std::size_t>(t.var)];
    }
    const double slack = tolerance * std::max(1.0, std::abs(info.rhs));
    const bool le_ok = lhs <= info.rhs + slack;
    const bool ge_ok = lhs >= info.rhs - slack;
    bool violated = false;
    switch (info.sense) {
      case Sense::kLessEqual:
        violated = !le_ok;
        break;
      case Sense::kGreaterEqual:
        violated = !ge_ok;
        break;
      case Sense::kEqual:
        violated = !(le_ok && ge_ok);
        break;
    }
    if (violated) {
      result.ok = false;
      result.violation = str_format("constraint %s violated: lhs=%g rhs=%g",
                                    info.name.c_str(), lhs, info.rhs);
      return result;
    }
  }
  return result;
}

}  // namespace sparcs::milp

#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/logging.hpp"
#include "support/span.hpp"

namespace sparcs::milp {

int LpProblem::add_var(double objective, double lower, double upper) {
  obj.push_back(objective);
  lb.push_back(lower);
  ub.push_back(upper);
  return num_vars() - 1;
}

void LpProblem::add_row(std::vector<LinTerm> terms, Sense sense, double rhs) {
  rows.push_back(Row{std::move(terms), sense, rhs});
}

namespace {

enum class ColStatus : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kFreeZero,  ///< nonbasic free variable pinned at 0
};

/// Dense bounded-variable simplex working state.
class SimplexTableau {
 public:
  SimplexTableau(const LpProblem& problem, const LpParams& params)
      : params_(params),
        problem_(problem),
        m_(problem.num_rows()),
        n_struct_(problem.num_vars()) {
    build(problem);
  }

  LpResult run();

 private:
  LpResult run_phases();
  void build(const LpProblem& problem);
  void compute_reduced_costs();
  /// Returns entering column or -1 when the current phase is optimal.
  int choose_entering(bool bland) const;
  /// Performs one simplex iteration; returns false on unboundedness.
  bool iterate(int entering, bool* made_progress);
  double& tab(int row, int col) { return tab_[static_cast<std::size_t>(row) * ncols_ + col]; }
  double tab(int row, int col) const { return tab_[static_cast<std::size_t>(row) * ncols_ + col]; }
  double nonbasic_value(int col) const;
  void set_phase(int phase);
  double infeasibility_sum() const;
  void extract(LpResult& result) const;
  /// False once roundoff has blown up: any non-finite basic value or reduced
  /// cost. Declaring optimality/infeasibility from such a state would be
  /// wrong (NaN comparisons silently read as "optimal"), so callers bail out
  /// with kNumericalFailure instead.
  bool state_is_finite() const;
  /// Reads the phase-1 dual ray off the slack reduced costs and attaches it
  /// as a Farkas certificate when a float pre-check orients it successfully.
  void attach_farkas(LpResult& result);

  const LpParams& params_;
  const LpProblem& problem_;
  int m_ = 0;         ///< number of rows
  int n_struct_ = 0;  ///< structural variables
  int ncols_ = 0;     ///< structural + slack + artificial columns
  int first_artificial_ = 0;

  std::vector<double> tab_;     ///< m x ncols dense tableau (B^-1 A)
  std::vector<double> xb_;      ///< value of the basic variable of each row
  std::vector<int> basis_;      ///< column basic in each row
  std::vector<ColStatus> stat_;
  std::vector<double> lb_, ub_;
  std::vector<double> cost_;        ///< current phase objective
  std::vector<double> real_cost_;   ///< phase-2 objective
  std::vector<double> d_;           ///< reduced costs for current phase
  int phase_ = 1;
  int iterations_ = 0;
  int pivots_ = 0;
  int refactorizations_ = 0;
};

void SimplexTableau::build(const LpProblem& problem) {
  const int n_slack = m_;
  const int n_art = m_;
  ncols_ = n_struct_ + n_slack + n_art;
  first_artificial_ = n_struct_ + n_slack;
  SPARCS_REQUIRE(static_cast<std::int64_t>(m_) * ncols_ <=
                     params_.max_tableau_entries,
                 "LP too large for the dense simplex tableau");

  lb_.assign(static_cast<std::size_t>(ncols_), 0.0);
  ub_.assign(static_cast<std::size_t>(ncols_), kInfinity);
  real_cost_.assign(static_cast<std::size_t>(ncols_), 0.0);
  for (int j = 0; j < n_struct_; ++j) {
    lb_[j] = problem.lb[static_cast<std::size_t>(j)];
    ub_[j] = problem.ub[static_cast<std::size_t>(j)];
    real_cost_[j] = problem.obj[static_cast<std::size_t>(j)];
  }
  // Slack bounds encode the row sense: Ax + s = b.
  for (int i = 0; i < m_; ++i) {
    const int j = n_struct_ + i;
    switch (problem.rows[static_cast<std::size_t>(i)].sense) {
      case Sense::kLessEqual:
        lb_[j] = 0.0;
        ub_[j] = kInfinity;
        break;
      case Sense::kGreaterEqual:
        lb_[j] = -kInfinity;
        ub_[j] = 0.0;
        break;
      case Sense::kEqual:
        lb_[j] = 0.0;
        ub_[j] = 0.0;
        break;
    }
  }

  // Nonbasic statuses: every structural/slack column at its finite bound
  // nearest zero (free columns pinned at zero).
  stat_.assign(static_cast<std::size_t>(ncols_), ColStatus::kAtLower);
  for (int j = 0; j < first_artificial_; ++j) {
    const double lo = lb_[j], hi = ub_[j];
    if (std::isfinite(lo) && std::isfinite(hi)) {
      stat_[j] = std::abs(lo) <= std::abs(hi) ? ColStatus::kAtLower
                                              : ColStatus::kAtUpper;
    } else if (std::isfinite(lo)) {
      stat_[j] = ColStatus::kAtLower;
    } else if (std::isfinite(hi)) {
      stat_[j] = ColStatus::kAtUpper;
    } else {
      stat_[j] = ColStatus::kFreeZero;
    }
  }

  // Tableau = [A | I_slack | +-I_art]; artificial signs chosen so the initial
  // artificial basis has non-negative values.
  tab_.assign(static_cast<std::size_t>(m_) * ncols_, 0.0);
  std::vector<double> residual(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const auto& row = problem.rows[static_cast<std::size_t>(i)];
    for (const LinTerm& term : row.terms) {
      SPARCS_REQUIRE(term.var >= 0 && term.var < n_struct_,
                     "LP row references unknown variable");
      tab(i, term.var) += term.coef;
    }
    tab(i, n_struct_ + i) = 1.0;  // slack
    double lhs = 0.0;
    for (int j = 0; j < n_struct_ + m_; ++j) {
      if (tab(i, j) != 0.0) lhs += tab(i, j) * nonbasic_value(j);
    }
    residual[static_cast<std::size_t>(i)] = row.rhs - lhs;
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  xb_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i) {
    const int art = first_artificial_ + i;
    const double r = residual[static_cast<std::size_t>(i)];
    if (r < 0.0) {
      // The artificial enters with coefficient -1; scale the row by -1 so the
      // basis column is the identity (tableau rows must be B^-1 A).
      double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
      for (int j = 0; j < ncols_; ++j) row[j] = -row[j];
    }
    tab(i, art) = 1.0;
    basis_[static_cast<std::size_t>(i)] = art;
    stat_[static_cast<std::size_t>(art)] = ColStatus::kBasic;
    xb_[static_cast<std::size_t>(i)] = std::abs(r);
  }

  set_phase(1);
}

double SimplexTableau::nonbasic_value(int col) const {
  switch (stat_[static_cast<std::size_t>(col)]) {
    case ColStatus::kAtLower:
      return lb_[static_cast<std::size_t>(col)];
    case ColStatus::kAtUpper:
      return ub_[static_cast<std::size_t>(col)];
    case ColStatus::kFreeZero:
      return 0.0;
    case ColStatus::kBasic:
      break;
  }
  for (int i = 0; i < m_; ++i) {
    if (basis_[static_cast<std::size_t>(i)] == col) {
      return xb_[static_cast<std::size_t>(i)];
    }
  }
  return 0.0;
}

void SimplexTableau::set_phase(int phase) {
  phase_ = phase;
  cost_.assign(static_cast<std::size_t>(ncols_), 0.0);
  if (phase == 1) {
    for (int j = first_artificial_; j < ncols_; ++j) cost_[j] = 1.0;
  } else {
    for (int j = 0; j < first_artificial_; ++j) cost_[j] = real_cost_[j];
    // Artificials are pinned at zero for phase 2.
    for (int j = first_artificial_; j < ncols_; ++j) {
      lb_[j] = 0.0;
      ub_[j] = 0.0;
      if (stat_[static_cast<std::size_t>(j)] != ColStatus::kBasic) {
        stat_[static_cast<std::size_t>(j)] = ColStatus::kAtLower;
      }
    }
  }
  compute_reduced_costs();
}

void SimplexTableau::compute_reduced_costs() {
  d_ = cost_;
  for (int i = 0; i < m_; ++i) {
    const double cb = cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
    if (cb == 0.0) continue;
    const double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
    for (int j = 0; j < ncols_; ++j) d_[static_cast<std::size_t>(j)] -= cb * row[j];
  }
  // Basic columns have zero reduced cost by definition; enforce exactly.
  for (int i = 0; i < m_; ++i) {
    d_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = 0.0;
  }
}

int SimplexTableau::choose_entering(bool bland) const {
  int best = -1;
  double best_score = params_.optimality_tol;
  for (int j = 0; j < ncols_; ++j) {
    const ColStatus s = stat_[static_cast<std::size_t>(j)];
    if (s == ColStatus::kBasic) continue;
    const double dj = d_[static_cast<std::size_t>(j)];
    double score = 0.0;
    if ((s == ColStatus::kAtLower || s == ColStatus::kFreeZero) && dj < -params_.optimality_tol) {
      score = -dj;
    } else if ((s == ColStatus::kAtUpper || s == ColStatus::kFreeZero) && dj > params_.optimality_tol) {
      score = dj;
    } else {
      continue;
    }
    if (bland) return j;  // first eligible index
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool SimplexTableau::iterate(int entering, bool* made_progress) {
  const std::size_t q = static_cast<std::size_t>(entering);
  const double dq = d_[q];
  // Direction of movement of the entering variable.
  const ColStatus s = stat_[q];
  int dir;
  if (s == ColStatus::kAtLower) {
    dir = +1;
  } else if (s == ColStatus::kAtUpper) {
    dir = -1;
  } else {  // free at zero: move against the gradient
    dir = dq < 0.0 ? +1 : -1;
  }

  // Ratio test.
  double t_max = ub_[q] - lb_[q];  // bound-flip distance (may be inf/NaN)
  if (!std::isfinite(t_max)) t_max = kInfinity;
  int leave_row = -1;
  double leave_pivot = 0.0;
  bool leave_at_upper = false;
  for (int i = 0; i < m_; ++i) {
    const double y = tab(i, entering);
    if (std::abs(y) < params_.pivot_tol) continue;
    const int b = basis_[static_cast<std::size_t>(i)];
    const double v = xb_[static_cast<std::size_t>(i)];
    const double delta = -static_cast<double>(dir) * y;  // d(xB_i)/dt
    double limit;
    bool hits_upper;
    if (delta < 0.0) {
      limit = lb_[static_cast<std::size_t>(b)];
      if (!std::isfinite(limit)) continue;
      hits_upper = false;
    } else {
      limit = ub_[static_cast<std::size_t>(b)];
      if (!std::isfinite(limit)) continue;
      hits_upper = true;
    }
    double t_i = (limit - v) / delta;
    if (t_i < 0.0) t_i = 0.0;  // degenerate step
    if (t_i < t_max - params_.pivot_tol ||
        (t_i < t_max + params_.pivot_tol &&
         std::abs(y) > std::abs(leave_pivot))) {
      if (t_i <= t_max) {
        t_max = t_i;
        leave_row = i;
        leave_pivot = y;
        leave_at_upper = hits_upper;
      }
    }
  }

  if (!std::isfinite(t_max)) {
    return false;  // unbounded direction
  }

  const double step = t_max;
  *made_progress = std::abs(step * dq) > 1e-12;

  // Apply the step to the basic values.
  if (step != 0.0) {
    for (int i = 0; i < m_; ++i) {
      const double y = tab(i, entering);
      if (y != 0.0) {
        xb_[static_cast<std::size_t>(i)] -= static_cast<double>(dir) * step * y;
      }
    }
  }

  if (leave_row < 0) {
    // Pure bound flip: the entering variable traverses to its other bound.
    stat_[q] = (dir > 0) ? ColStatus::kAtUpper : ColStatus::kAtLower;
    return true;
  }

  // Basis change: entering becomes basic at its new value; the leaving
  // variable exits at the bound it hit.
  ++pivots_;
  const std::size_t r = static_cast<std::size_t>(leave_row);
  const int leaving = basis_[r];
  const double entering_value =
      (s == ColStatus::kAtUpper ? ub_[q]
       : s == ColStatus::kAtLower ? lb_[q]
                                  : 0.0) +
      static_cast<double>(dir) * step;

  stat_[static_cast<std::size_t>(leaving)] =
      leave_at_upper ? ColStatus::kAtUpper : ColStatus::kAtLower;
  basis_[r] = entering;
  stat_[q] = ColStatus::kBasic;
  xb_[r] = entering_value;

  // Gauss-Jordan elimination on the pivot column.
  double* prow = &tab_[r * ncols_];
  const double pivot = prow[entering];
  const double inv = 1.0 / pivot;
  for (int j = 0; j < ncols_; ++j) prow[j] *= inv;
  prow[entering] = 1.0;
  for (int i = 0; i < m_; ++i) {
    if (i == leave_row) continue;
    double* row = &tab_[static_cast<std::size_t>(i) * ncols_];
    const double factor = row[entering];
    if (factor == 0.0) continue;
    for (int j = 0; j < ncols_; ++j) row[j] -= factor * prow[j];
    row[entering] = 0.0;
  }
  const double dfac = d_[q];
  if (dfac != 0.0) {
    for (int j = 0; j < ncols_; ++j) d_[static_cast<std::size_t>(j)] -= dfac * prow[j];
  }
  d_[q] = 0.0;
  return true;
}

bool SimplexTableau::state_is_finite() const {
  for (const double v : xb_) {
    if (!std::isfinite(v)) return false;
  }
  for (const double v : d_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double SimplexTableau::infeasibility_sum() const {
  double total = 0.0;
  for (int i = 0; i < m_; ++i) {
    if (basis_[static_cast<std::size_t>(i)] >= first_artificial_) {
      total += std::abs(xb_[static_cast<std::size_t>(i)]);
    }
  }
  return total;
}

void SimplexTableau::extract(LpResult& result) const {
  result.x.assign(static_cast<std::size_t>(n_struct_), 0.0);
  for (int j = 0; j < n_struct_; ++j) {
    if (stat_[static_cast<std::size_t>(j)] != ColStatus::kBasic) {
      result.x[static_cast<std::size_t>(j)] = nonbasic_value(j);
    }
  }
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (b < n_struct_) {
      result.x[static_cast<std::size_t>(b)] = xb_[static_cast<std::size_t>(i)];
    }
  }
  double obj = 0.0;
  for (int j = 0; j < n_struct_; ++j) {
    obj += real_cost_[static_cast<std::size_t>(j)] * result.x[static_cast<std::size_t>(j)];
  }
  result.objective = obj;
}

void SimplexTableau::attach_farkas(LpResult& result) {
  // Phase-1 duals live in the slack reduced costs: slack k's column is
  // D_k e_k (D the row-flip signs applied in build()), so with y = c_B B^-1,
  // d_slack_k = 0 - y_k D_k, i.e. the multiplier of original row k is
  // +-d_slack_k. Refresh first — the incrementally-updated cost row drifts.
  compute_reduced_costs();
  ++refactorizations_;
  if (!state_is_finite()) return;
  std::vector<double> ray(static_cast<std::size_t>(m_));
  double scale = 0.0;
  for (int k = 0; k < m_; ++k) {
    ray[static_cast<std::size_t>(k)] = d_[static_cast<std::size_t>(n_struct_ + k)];
    scale = std::max(scale, std::abs(ray[static_cast<std::size_t>(k)]));
  }
  if (scale == 0.0) return;
  // The overall sign of the ray depends on conventions that are easy to get
  // wrong and on which phase-1 exit we came through; try both orientations
  // against a float evaluation of the Farkas condition and keep the one that
  // works. The exact checker (milp/certify) is authoritative either way.
  for (const double orient : {1.0, -1.0}) {
    std::vector<double> y(static_cast<std::size_t>(m_));
    bool signs_ok = true;
    for (int k = 0; k < m_ && signs_ok; ++k) {
      double v = orient * ray[static_cast<std::size_t>(k)];
      const Sense sense = problem_.rows[static_cast<std::size_t>(k)].sense;
      if ((sense == Sense::kLessEqual && v < 0.0) ||
          (sense == Sense::kGreaterEqual && v > 0.0)) {
        // Clamp roundoff-level sign violations; reject real ones.
        if (std::abs(v) <= 1e-7 * scale) {
          v = 0.0;
        } else {
          signs_ok = false;
        }
      }
      y[static_cast<std::size_t>(k)] = v;
    }
    if (!signs_ok) continue;
    // Aggregate w = sum y_k a_k and its box-minimum over the variable
    // bounds; infeasibility needs min > y.b strictly.
    std::vector<double> w(static_cast<std::size_t>(n_struct_), 0.0);
    double yb = 0.0;
    for (int k = 0; k < m_; ++k) {
      const double yk = y[static_cast<std::size_t>(k)];
      if (yk == 0.0) continue;
      const auto& row = problem_.rows[static_cast<std::size_t>(k)];
      for (const LinTerm& term : row.terms) {
        w[static_cast<std::size_t>(term.var)] += yk * term.coef;
      }
      yb += yk * row.rhs;
    }
    double box_min = 0.0;
    bool finite = true;
    for (int j = 0; j < n_struct_ && finite; ++j) {
      const double wj = w[static_cast<std::size_t>(j)];
      if (wj == 0.0) continue;
      const double bound = wj > 0.0 ? problem_.lb[static_cast<std::size_t>(j)]
                                    : problem_.ub[static_cast<std::size_t>(j)];
      if (!std::isfinite(bound)) {
        finite = false;
      } else {
        box_min += wj * bound;
      }
    }
    if (finite && box_min > yb) {
      result.certificate.kind = LpCertificate::Kind::kFarkas;
      result.certificate.y = std::move(y);
      return;
    }
  }
}

LpResult SimplexTableau::run() {
  LpResult result = run_phases();
  result.iterations = iterations_;
  result.pivots = pivots_;
  result.refactorizations = refactorizations_;
  return result;
}

LpResult SimplexTableau::run_phases() {
  LpResult result;
  if (SPARCS_FAILPOINT("milp.simplex.blowup")) {
    // Poison the state the way a real blow-up would (instead of returning the
    // failure status directly) so the detection path itself is exercised.
    if (!xb_.empty()) {
      xb_[0] = std::numeric_limits<double>::quiet_NaN();
    } else {
      result.status = LpStatus::kNumericalFailure;
      return result;
    }
  }
  if (SPARCS_FAILPOINT("milp.simplex.cycle")) {
    // Emulates the degenerate-cycling detector giving up (Bland's rule ran
    // cycle_limit iterations without terminating).
    result.status = LpStatus::kNumericalFailure;
    return result;
  }
  int stall = 0;
  int bland_run = 0;  ///< consecutive iterations under Bland's rule
  for (phase_ = 1; phase_ <= 2;) {
    const bool bland = stall > params_.stall_threshold;
    if (bland) {
      // Bland's rule terminates in exact arithmetic; if it spins this long we
      // are cycling on roundoff and no pivoting rule will save us.
      if (++bland_run > params_.cycle_limit) {
        result.status = LpStatus::kNumericalFailure;
        result.iterations = iterations_;
        return result;
      }
    } else {
      bland_run = 0;
    }
    const int entering = choose_entering(bland);
    if (entering < 0) {
      // Current phase optimal.
      if (!state_is_finite()) {
        result.status = LpStatus::kNumericalFailure;
        result.iterations = iterations_;
        return result;
      }
      if (phase_ == 1) {
        if (infeasibility_sum() > 1e3 * params_.feasibility_tol) {
          result.status = LpStatus::kInfeasible;
          result.iterations = iterations_;
          if (params_.want_certificate) attach_farkas(result);
          return result;
        }
        set_phase(2);
        stall = 0;
        bland_run = 0;
        continue;
      }
      result.status = LpStatus::kOptimal;
      result.iterations = iterations_;
      extract(result);
      return result;
    }
    bool progress = false;
    if (!iterate(entering, &progress)) {
      if (!state_is_finite()) {
        result.status = LpStatus::kNumericalFailure;
        result.iterations = iterations_;
        return result;
      }
      result.status =
          phase_ == 1 ? LpStatus::kInfeasible : LpStatus::kUnbounded;
      result.iterations = iterations_;
      if (phase_ == 1 && params_.want_certificate) attach_farkas(result);
      return result;
    }
    stall = progress ? 0 : stall + 1;
    if (++iterations_ >= params_.max_iterations) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iterations_;
      return result;
    }
    if (params_.should_abort && iterations_ % 128 == 0 &&
        params_.should_abort()) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iterations_;
      return result;
    }
    // Periodic refresh guards against accumulated roundoff in the cost row.
    if (iterations_ % 512 == 0) {
      compute_reduced_costs();
      ++refactorizations_;
      if (!state_is_finite()) {
        result.status = LpStatus::kNumericalFailure;
        result.iterations = iterations_;
        return result;
      }
    }
  }
  result.status = LpStatus::kIterationLimit;
  result.iterations = iterations_;
  return result;
}

}  // namespace

namespace {

/// Relaxes every finite bound outward by a relative epsilon. The perturbed
/// feasible region is a superset of the original, so an LP bound computed on
/// it is still a valid (conservative) bound for branch & bound pruning.
LpProblem perturb_bounds_outward(const LpProblem& problem, double eps) {
  LpProblem out = problem;
  for (int j = 0; j < out.num_vars(); ++j) {
    const std::size_t i = static_cast<std::size_t>(j);
    if (std::isfinite(out.lb[i])) out.lb[i] -= eps * (1.0 + std::abs(out.lb[i]));
    if (std::isfinite(out.ub[i])) out.ub[i] += eps * (1.0 + std::abs(out.ub[i]));
  }
  return out;
}

}  // namespace

LpResult solve_lp(const LpProblem& problem, const LpParams& params) {
  trace::Span span("simplex");
  span.arg("rows", static_cast<std::int64_t>(problem.num_rows()));
  span.arg("cols", static_cast<std::int64_t>(problem.num_vars()));
  for (int j = 0; j < problem.num_vars(); ++j) {
    if (problem.lb[static_cast<std::size_t>(j)] >
        problem.ub[static_cast<std::size_t>(j)] + params.feasibility_tol) {
      LpResult result;
      result.status = LpStatus::kInfeasible;
      if (params.want_certificate) {
        result.certificate.kind = LpCertificate::Kind::kEmptyBound;
        result.certificate.var = j;
      }
      return result;
    }
  }
  LpResult result = SimplexTableau(problem, params).run();
  // Numerical-failure recovery: retry with Bland's rule from iteration 0
  // (attempt 1) and additionally with outward bound perturbation (later
  // attempts). Iteration/pivot counts accumulate across attempts.
  for (int attempt = 1;
       result.status == LpStatus::kNumericalFailure &&
       attempt <= params.max_recoveries;
       ++attempt) {
    SPARCS_LOG(kDebug) << "simplex recovery attempt " << attempt
                       << " (Bland" << (attempt > 1 ? " + perturbation" : "")
                       << ")";
    LpParams retry = params;
    retry.stall_threshold = 0;  // Bland's rule from the first iteration
    LpResult prior = result;
    if (attempt > 1) {
      const LpProblem perturbed = perturb_bounds_outward(
          problem, params.perturbation * static_cast<double>(attempt));
      result = SimplexTableau(perturbed, retry).run();
    } else {
      result = SimplexTableau(problem, retry).run();
    }
    result.iterations += prior.iterations;
    result.pivots += prior.pivots;
    result.refactorizations += prior.refactorizations;
    result.recoveries = attempt;
  }
  if (result.certificate.kind == LpCertificate::Kind::kFarkas &&
      SPARCS_FAILPOINT("milp.certify.corrupt_ray")) {
    // Zero the dual ray: the aggregated Farkas product degenerates to
    // 0 > 0, so the exact checker must reject it — exercising the
    // distrust-and-retry demotion path end-to-end.
    std::fill(result.certificate.y.begin(), result.certificate.y.end(), 0.0);
  }
  return result;
}

LpProblem relaxation_of(const Model& model, bool* flip_objective) {
  LpProblem lp;
  const double sign = model.minimize() ? 1.0 : -1.0;
  if (flip_objective != nullptr) *flip_objective = !model.minimize();
  lp.obj.assign(static_cast<std::size_t>(model.num_vars()), 0.0);
  lp.lb.reserve(static_cast<std::size_t>(model.num_vars()));
  lp.ub.reserve(static_cast<std::size_t>(model.num_vars()));
  for (const VarInfo& v : model.vars()) {
    lp.lb.push_back(v.lb);
    lp.ub.push_back(v.ub);
  }
  for (const LinTerm& term : model.objective().terms()) {
    lp.obj[static_cast<std::size_t>(term.var)] += sign * term.coef;
  }
  for (const ConstraintInfo& c : model.constraints()) {
    lp.rows.push_back(LpProblem::Row{c.terms, c.sense, c.rhs});
  }
  return lp;
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kFeasible:
      return "feasible";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kLimitReached:
      return "limit-reached";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
    case LpStatus::kNumericalFailure:
      return "numerical-failure";
  }
  return "unknown";
}

}  // namespace sparcs::milp

// Certificate data carried alongside solver verdicts so an independent
// checker (milp/certify) can re-establish them in exact rational arithmetic.
//
// Two kinds of claims flow out of the solver:
//  - "this assignment is feasible": the certificate is the assignment itself,
//    re-evaluated exactly against the Model (no tolerances);
//  - "this model is infeasible": the certificate is a tree-shaped proof that
//    mirrors the branch & bound tree. Interior nodes record the branching
//    decision (whose boxes must cover the variable's integral domain); leaves
//    record why their box holds no solution — a propagation conflict (with
//    the bound derivations that led to it, replayed soundly by the checker),
//    an LP infeasibility (a Farkas dual ray whose product signs are checked
//    exactly), or a branch box that emptied a domain outright.
//
// The certificates themselves are plain doubles — they are hints, not
// trusted data. Only the exact re-check in milp/certify decides; a corrupt
// or unluckily-rounded certificate makes the verdict *uncertified*, never
// unsound.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "milp/types.hpp"

namespace sparcs::milp {

// CertifyMode, CertifyStatus and LpCertificate live in milp/types.hpp (they
// are embedded in SolverParams/LpResult); this header adds the proof shapes.

/// One bound tightening performed by propagation: constraint `constraint`
/// tightened `var`'s lower (is_lb) or upper bound. The derived value is NOT
/// recorded — the checker recomputes the implied bound exactly from its own
/// current box, which keeps the replay sound even when the floating-point
/// propagation over-tightened.
struct Derivation {
  ConstraintId constraint = -1;
  VarId var = -1;
  bool is_lb = false;
};

/// Derivation trace of one propagate() call, including how it ended.
struct DerivationLog {
  std::vector<Derivation> derivations;
  /// Row whose activity range excluded every point of the box (-1: none).
  ConstraintId conflict_row = -1;
  /// Variable whose domain was emptied by a tightening (-1: none).
  VarId conflict_var = -1;

  void clear() {
    derivations.clear();
    conflict_row = -1;
    conflict_var = -1;
  }
};

/// One node of a tree-shaped infeasibility proof. `rank` is the node's
/// position in the depth-first order of the branch & bound tree (the branch
/// indices from the root), which is also how parallel workers' fragments are
/// stitched back into one tree.
struct ProofNode {
  enum class Kind : std::uint8_t {
    kBranched,  ///< interior: branched `var` into `branches` boxes
    kConflict,  ///< leaf: propagation conflict (see conflict_row/conflict_var)
    kEmptyBox,  ///< leaf: the branch box emptied `var`'s domain on arrival
    kFarkas,    ///< leaf: LP infeasible; ray `y` over model rows `rows`
    kUnproven,  ///< leaf refuted by a means that yields no certificate
  };

  std::vector<std::int32_t> rank;
  Kind kind = Kind::kUnproven;
  /// Bound derivations of the propagate() call that entered this node;
  /// replayed by the checker before the kind-specific verification.
  std::vector<Derivation> derivations;
  VarId var = -1;  ///< kBranched: branch variable; kEmptyBox: emptied var
  std::vector<std::pair<double, double>> branches;  ///< kBranched boxes
  ConstraintId conflict_row = -1;  ///< kConflict: violated row (-1: none)
  VarId conflict_var = -1;         ///< kConflict: emptied var (-1: none)
  std::vector<ConstraintId> rows;  ///< kFarkas: model row of each multiplier
  std::vector<double> y;           ///< kFarkas: dual ray
};

/// Tree-shaped infeasibility proof for a whole MILP, assembled by branch &
/// bound (serial search or stitched parallel fragments).
struct InfeasibilityProof {
  std::vector<ProofNode> nodes;
  /// Recording hit its size cap; the proof is incomplete and uncheckable.
  bool overflowed = false;
};

}  // namespace sparcs::milp

// MILP model container: variables, linear constraints, objective, and the
// search annotations (branching priorities and hints) the temporal
// partitioning formulation uses to direct the solver.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "milp/expr.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// A decision variable's static description.
struct VarInfo {
  std::string name;
  VarType type = VarType::kContinuous;
  double lb = -kInfinity;
  double ub = kInfinity;
  /// Higher priority variables are branched on first (default 0).
  int branch_priority = 0;
  /// Preferred branching value (tried first); NaN when unset.
  double branch_hint = std::numeric_limits<double>::quiet_NaN();
};

/// A stored linear constraint (expression terms are normalized and the
/// constant folded into rhs).
struct ConstraintInfo {
  std::string name;
  std::vector<LinTerm> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

/// Summary statistics of a model.
struct ModelStats {
  int num_vars = 0;
  int num_binary = 0;
  int num_integer = 0;
  int num_continuous = 0;
  int num_constraints = 0;
  std::int64_t num_nonzeros = 0;
};

/// A mixed-integer linear program: min (or max) c'x subject to linear
/// constraints and variable bounds/integrality.
class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  // ---- Variables -------------------------------------------------------
  VarId add_var(VarType type, double lb, double ub, std::string name);
  VarId add_binary(std::string name);
  VarId add_integer(double lb, double ub, std::string name);
  VarId add_continuous(double lb, double ub, std::string name);

  [[nodiscard]] int num_vars() const { return static_cast<int>(vars_.size()); }
  [[nodiscard]] const VarInfo& var(VarId id) const;
  [[nodiscard]] const std::vector<VarInfo>& vars() const { return vars_; }

  /// Tightens a variable's bounds (never relaxes them).
  void tighten_bounds(VarId id, double lb, double ub);
  void set_branch_priority(VarId id, int priority);
  void set_branch_hint(VarId id, double value);

  // ---- Constraints -----------------------------------------------------
  /// Adds `relation` (built with <=, >=, == on LinExpr) under `name`.
  ConstraintId add_constraint(Relation relation, std::string name);
  ConstraintId add_constraint(const LinExpr& lhs, Sense sense, double rhs,
                              std::string name);

  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const ConstraintInfo& constraint(ConstraintId id) const;
  [[nodiscard]] const std::vector<ConstraintInfo>& constraints() const {
    return constraints_;
  }

  // ---- Objective -------------------------------------------------------
  /// Sets the objective; `minimize` false means maximize. Without a call the
  /// model is a pure feasibility problem (objective identically 0).
  void set_objective(LinExpr objective, bool minimize = true);
  [[nodiscard]] const LinExpr& objective() const { return objective_; }
  [[nodiscard]] bool minimize() const { return minimize_; }
  [[nodiscard]] bool has_objective() const { return has_objective_; }

  // ---- Misc ------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ModelStats stats() const;

  /// Throws InvalidArgumentError on malformed models (empty bounds boxes,
  /// terms referencing unknown variables, non-finite coefficients).
  void validate() const;

 private:
  std::string name_;
  std::vector<VarInfo> vars_;
  std::vector<ConstraintInfo> constraints_;
  LinExpr objective_;
  bool minimize_ = true;
  bool has_objective_ = false;
};

}  // namespace sparcs::milp

#include "milp/lp_reader.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::milp {
namespace {

enum class Section {
  kNone,
  kObjective,
  kConstraints,
  kBounds,
  kGeneral,
  kBinary,
  kEnd,
};

/// Tokenizer over the LP text: names, numbers, operators.
class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  /// Next token, or empty at end. Skips whitespace and \ comments.
  std::string next() {
    skip_ws();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (c == '+' || c == '-' || c == ':') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '<' || c == '>' || c == '=') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        op += '=';
        ++pos_;
      }
      return op;
    }
    std::string token;
    auto take_word = [&] {
      while (pos_ < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
             text_[pos_] != '+' && text_[pos_] != '-' && text_[pos_] != ':' &&
             text_[pos_] != '<' && text_[pos_] != '>' && text_[pos_] != '=') {
        token += text_[pos_++];
      }
    };
    take_word();
    // Scientific-notation exponents: "2e-07" must stay one token, but the
    // loop above stops at '+'/'-'. Re-join the sign (and the exponent
    // digits after it) when it follows the trailing 'e'/'E' of a purely
    // numeric mantissa — variable names like "rate" never qualify.
    if (!token.empty() && (token.back() == 'e' || token.back() == 'E') &&
        pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      bool numeric_mantissa = token.size() > 1;
      for (std::size_t i = 0; i + 1 < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i])) &&
            token[i] != '.') {
          numeric_mantissa = false;
          break;
        }
      }
      if (numeric_mantissa) {
        token += text_[pos_++];
        take_word();
      }
    }
    return token;
  }

  [[nodiscard]] std::string peek() {
    const std::size_t saved = pos_;
    std::string token = next();
    pos_ = saved;
    return token;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

bool is_number(const std::string& token) {
  if (token.empty()) return false;
  char* end = nullptr;
  std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

/// Consumes an optional run of '+'/'-' sign tokens followed by a numeric
/// token. The lexer emits signs as standalone tokens, so negative rhs and
/// bound values ("<= -3") arrive as two tokens that must be recombined here.
double parse_signed_number(Lexer& lexer, const char* what) {
  double sign = 1.0;
  std::string t = lexer.next();
  while (t == "+" || t == "-") {
    if (t == "-") sign = -sign;
    t = lexer.next();
  }
  SPARCS_REQUIRE(is_number(t), std::string("expected numeric ") + what +
                                   ", got '" + t + "'");
  return sign * std::strtod(t.c_str(), nullptr);
}

bool iequals(const std::string& a, const char* b) {
  std::string lower = a;
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower == b;
}

/// Section keyword lookup ("subject" consumes the following "to").
Section section_of(const std::string& token, Lexer& lexer, bool* maximize) {
  if (iequals(token, "minimize") || iequals(token, "min")) {
    *maximize = false;
    return Section::kObjective;
  }
  if (iequals(token, "maximize") || iequals(token, "max")) {
    *maximize = true;
    return Section::kObjective;
  }
  if (iequals(token, "subject")) {
    const std::string to = lexer.next();
    SPARCS_REQUIRE(iequals(to, "to"), "expected 'To' after 'Subject'");
    return Section::kConstraints;
  }
  if (iequals(token, "st") || iequals(token, "s.t.")) {
    return Section::kConstraints;
  }
  if (iequals(token, "bounds")) return Section::kBounds;
  if (iequals(token, "general") || iequals(token, "generals") ||
      iequals(token, "gen")) {
    return Section::kGeneral;
  }
  if (iequals(token, "binary") || iequals(token, "binaries") ||
      iequals(token, "bin")) {
    return Section::kBinary;
  }
  if (iequals(token, "end")) return Section::kEnd;
  return Section::kNone;
}

}  // namespace

Model read_lp_string(const std::string& text) {
  Lexer lexer(text);

  struct PendingVar {
    double lb = 0.0;  // LP format default: x >= 0
    double ub = kInfinity;
    VarType type = VarType::kContinuous;
  };
  std::vector<std::string> var_names;
  std::map<std::string, int> var_index;
  std::vector<PendingVar> pending;
  auto intern = [&](const std::string& name) {
    const auto it = var_index.find(name);
    if (it != var_index.end()) return it->second;
    const int id = static_cast<int>(var_names.size());
    var_index[name] = id;
    var_names.push_back(name);
    pending.push_back({});
    return id;
  };

  struct PendingRow {
    std::string name;
    std::vector<std::pair<int, double>> terms;
    Sense sense = Sense::kLessEqual;
    double rhs = 0.0;
  };
  std::vector<std::pair<int, double>> objective;
  bool maximize = false;
  std::vector<PendingRow> rows;

  // Parses "[label:] {(+|-) [coef] var}* sense rhs"; for the objective no
  // sense/rhs. Returns when a section keyword or EOF is met.
  auto parse_expressions = [&](bool is_objective, Section* next_section) {
    while (true) {
      std::string token = lexer.peek();
      if (token.empty()) {
        *next_section = Section::kEnd;
        return;
      }
      bool dummy = false;
      Lexer probe_lexer("");  // section_of may consume "to"; re-probe below
      (void)probe_lexer;
      if (!is_number(token) && token != "+" && token != "-") {
        // Candidate section keyword or a label/variable.
        const std::string lowered = token;
        Lexer saved = lexer;  // copy for rollback
        std::string consumed = lexer.next();
        const Section section = section_of(consumed, lexer, &dummy);
        if (section != Section::kNone) {
          *next_section = section;
          return;
        }
        lexer = saved;  // plain name: fall through to expression parsing
      }

      // Optional label "name:".
      PendingRow row;
      {
        Lexer saved = lexer;
        const std::string maybe_label = lexer.next();
        if (!maybe_label.empty() && lexer.peek() == ":") {
          lexer.next();  // consume ':'
          row.name = maybe_label;
        } else {
          lexer = saved;
        }
      }

      // Terms until a sense operator (constraints) or next label/section
      // (objective).
      auto& terms = is_objective ? objective : row.terms;
      double sign = 1.0;
      bool have_pending_coef = false;
      double pending_coef = 1.0;
      while (true) {
        const std::string t = lexer.peek();
        if (t.empty()) break;
        if (t == "+" || t == "-") {
          lexer.next();
          sign *= (t == "-") ? -1.0 : 1.0;
          // consecutive signs accumulate; reset pending coefficient state
          continue;
        }
        if (t == "<=" || t == ">=" || t == "=" || t == "<" || t == ">") {
          SPARCS_REQUIRE(!is_objective, "unexpected relation in objective");
          lexer.next();
          row.sense = (t == "<=" || t == "<")   ? Sense::kLessEqual
                      : (t == ">=" || t == ">") ? Sense::kGreaterEqual
                                                : Sense::kEqual;
          row.rhs = parse_signed_number(lexer, "rhs");
          rows.push_back(std::move(row));
          break;
        }
        if (is_number(t)) {
          lexer.next();
          pending_coef = std::strtod(t.c_str(), nullptr);
          have_pending_coef = true;
          continue;
        }
        // A name: either a variable of this expression, or (objective only)
        // the label of the first constraint / a section keyword — those are
        // handled by the outer loop, so a bare name here is a variable
        // unless we are in the objective and the following token is ':'.
        if (is_objective) {
          Lexer saved = lexer;
          const std::string name = lexer.next();
          bool dummy2 = false;
          Lexer saved2 = lexer;
          const Section section = section_of(name, lexer, &dummy2);
          if (section != Section::kNone) {
            lexer = saved2;
            // rewind so the outer loop re-reads the keyword
            lexer = saved;
            break;
          }
          if (lexer.peek() == ":") {
            lexer = saved;  // next constraint's label
            break;
          }
          terms.emplace_back(intern(name),
                             sign * (have_pending_coef ? pending_coef : 1.0));
          sign = 1.0;
          have_pending_coef = false;
          continue;
        }
        const std::string name = lexer.next();
        terms.emplace_back(intern(name),
                           sign * (have_pending_coef ? pending_coef : 1.0));
        sign = 1.0;
        have_pending_coef = false;
      }
      if (is_objective) {
        // Objective has exactly one expression; decide what follows.
        const std::string t = lexer.peek();
        if (t.empty()) {
          *next_section = Section::kEnd;
          return;
        }
        bool dummy3 = false;
        Lexer saved = lexer;
        const std::string consumed = lexer.next();
        const Section section = section_of(consumed, lexer, &dummy3);
        SPARCS_REQUIRE(section != Section::kNone,
                       "unexpected token after objective: " + consumed);
        *next_section = section;
        return;
      }
    }
  };

  // ---- main driver ----
  Section section = Section::kNone;
  {
    const std::string first = lexer.next();
    SPARCS_REQUIRE(!first.empty(), "empty LP text");
    section = section_of(first, lexer, &maximize);
    SPARCS_REQUIRE(section == Section::kObjective,
                   "LP must start with Minimize/Maximize, got '" + first + "'");
  }
  // Optional objective label.
  {
    Lexer saved = lexer;
    const std::string maybe = lexer.next();
    if (lexer.peek() == ":") {
      lexer.next();
    } else {
      lexer = saved;
    }
  }
  Section next = Section::kEnd;
  parse_expressions(/*is_objective=*/true, &next);
  section = next;
  while (section == Section::kConstraints) {
    parse_expressions(/*is_objective=*/false, &next);
    section = next;
  }
  while (section != Section::kEnd) {
    if (section == Section::kBounds) {
      // Forms: "lb <= x <= ub", "x <= ub", "x >= lb", "x free", "-inf <= x".
      while (true) {
        Lexer saved = lexer;
        std::string t = lexer.next();
        if (t.empty()) {
          section = Section::kEnd;
          break;
        }
        bool dummy = false;
        {
          Lexer saved2 = lexer;
          const Section s = section_of(t, lexer, &dummy);
          if (s != Section::kNone) {
            section = s;
            break;
          }
          lexer = saved2;
        }
        double lb = -kInfinity;
        bool have_lb = false;
        if (is_number(t) || t == "-") {
          double sign = 1.0;
          if (t == "-") {
            const std::string n = lexer.next();
            if (iequals(n, "inf") || iequals(n, "infinity")) {
              lb = -kInfinity;
            } else {
              SPARCS_REQUIRE(is_number(n), "bad bound token: " + n);
              lb = -std::strtod(n.c_str(), nullptr);
            }
            (void)sign;
          } else {
            lb = std::strtod(t.c_str(), nullptr);
          }
          have_lb = true;
          const std::string le = lexer.next();
          SPARCS_REQUIRE(le == "<=" || le == "<",
                         "expected <= after bound value");
          t = lexer.next();
        }
        SPARCS_REQUIRE(!t.empty() && !is_number(t), "expected variable name");
        const int var = intern(t);
        if (have_lb) pending[static_cast<std::size_t>(var)].lb = lb;
        const std::string op = lexer.peek();
        if (op == "<=" || op == "<") {
          lexer.next();
          pending[static_cast<std::size_t>(var)].ub =
              parse_signed_number(lexer, "upper bound");
        } else if (op == ">=" || op == ">") {
          lexer.next();
          pending[static_cast<std::size_t>(var)].lb =
              parse_signed_number(lexer, "lower bound");
        } else if (iequals(op, "free")) {
          lexer.next();
          pending[static_cast<std::size_t>(var)].lb = -kInfinity;
          pending[static_cast<std::size_t>(var)].ub = kInfinity;
        }
        (void)saved;
      }
    } else if (section == Section::kGeneral || section == Section::kBinary) {
      const VarType type =
          section == Section::kGeneral ? VarType::kInteger : VarType::kBinary;
      while (true) {
        const std::string t = lexer.next();
        if (t.empty()) {
          section = Section::kEnd;
          break;
        }
        bool dummy = false;
        const Section s = section_of(t, lexer, &dummy);
        if (s != Section::kNone) {
          section = s;
          break;
        }
        const int var = intern(t);
        pending[static_cast<std::size_t>(var)].type = type;
        if (type == VarType::kBinary) {
          pending[static_cast<std::size_t>(var)].lb =
              std::max(pending[static_cast<std::size_t>(var)].lb, 0.0);
          pending[static_cast<std::size_t>(var)].ub =
              std::min(pending[static_cast<std::size_t>(var)].ub, 1.0);
        }
      }
    } else {
      break;
    }
  }

  // Materialize the model.
  Model model("lp_import");
  for (std::size_t v = 0; v < var_names.size(); ++v) {
    PendingVar& pv = pending[v];
    if (pv.type == VarType::kInteger) {
      // LP General default bounds when unstated: [0, +inf) is not allowed
      // for our integer vars; clamp to a wide box.
      if (!std::isfinite(pv.lb)) pv.lb = -1e9;
      if (!std::isfinite(pv.ub)) pv.ub = 1e9;
    }
    model.add_var(pv.type, pv.lb, pv.ub, var_names[v]);
  }
  for (PendingRow& row : rows) {
    LinExpr lhs;
    for (const auto& [var, coef] : row.terms) {
      lhs.add_term(var, coef);
    }
    model.add_constraint(lhs, row.sense, row.rhs,
                         row.name.empty() ? "c" + std::to_string(model.num_constraints())
                                          : row.name);
  }
  LinExpr obj;
  for (const auto& [var, coef] : objective) obj.add_term(var, coef);
  if (!objective.empty()) model.set_objective(obj, !maximize);
  model.validate();
  return model;
}

Model read_lp(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return read_lp_string(buffer.str());
}

}  // namespace sparcs::milp

#include "milp/solver.hpp"

#include "milp/branch_and_bound.hpp"

namespace sparcs::milp {

MilpSolution solve(const Model& model, const SolverParams& params) {
  return solve_branch_and_bound(model, params);
}

MilpSolution solve_first_feasible(const Model& model, SolverParams params) {
  params.stop_at_first_feasible = true;
  return solve_branch_and_bound(model, params);
}

MilpSolution solve_to_optimality(const Model& model, SolverParams params) {
  params.stop_at_first_feasible = false;
  params.use_lp_bounding = true;
  return solve_branch_and_bound(model, params);
}

}  // namespace sparcs::milp

#include "milp/solver.hpp"

#include <utility>

#include "milp/branch_and_bound.hpp"
#include "milp/certify.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/span.hpp"
#include "support/telemetry.hpp"

namespace sparcs::milp {
namespace {

/// Runs the exact certificate check matching the solution's verdict, stamping
/// `certified` / `certify_detail` and the check counters. Statuses that make
/// no certifiable claim (limits, cancellation, unbounded, numerical failure)
/// keep kNotRequested.
void certify_verdict(const Model& model, const SolverParams& params,
                     MilpSolution& solution) {
  solution.certified = CertifyStatus::kNotRequested;
  solution.certify_detail.clear();
  if (params.certify == CertifyMode::kOff) return;

  const bool feasible_verdict = (solution.status == SolveStatus::kOptimal ||
                                 solution.status == SolveStatus::kFeasible) &&
                                !solution.values.empty();
  const bool infeasible_verdict =
      solution.status == SolveStatus::kInfeasible &&
      params.certify == CertifyMode::kFull;

  if (feasible_verdict) {
    ++solution.stats.certificates_checked;
    const CertifyCheck check = certify_feasible(model, solution.values);
    solution.certified =
        check.ok ? CertifyStatus::kCertified : CertifyStatus::kUncertified;
    solution.certify_detail = check.detail;
    if (!check.ok) ++solution.stats.certificates_failed;
  } else if (infeasible_verdict) {
    ++solution.stats.certificates_checked;
    if (solution.proof == nullptr) {
      solution.certified = CertifyStatus::kUncertified;
      solution.certify_detail = "no infeasibility proof was recorded";
      ++solution.stats.certificates_failed;
      return;
    }
    const CertifyCheck check = certify_infeasible(model, *solution.proof);
    solution.certified =
        check.ok ? CertifyStatus::kCertified : CertifyStatus::kUncertified;
    solution.certify_detail = check.detail;
    if (!check.ok) ++solution.stats.certificates_failed;
  }
}

/// Publishes one solve's statistics to the process-wide metrics registry.
/// Handles are resolved once; the adds are relaxed atomics gated on the
/// global enable flag, so the per-solve cost is negligible either way.
void export_to_registry(const MilpSolution& solution) {
  if (!metrics::enabled()) return;
  metrics::Registry& reg = metrics::registry();
  static metrics::Counter& solves = reg.counter("milp.solves");
  static metrics::Counter& nodes = reg.counter("milp.bnb.nodes_explored");
  static metrics::Counter& pruned_bound =
      reg.counter("milp.bnb.nodes_pruned_by_bound");
  static metrics::Counter& pruned_infeasible =
      reg.counter("milp.bnb.nodes_pruned_infeasible");
  static metrics::Counter& incumbents =
      reg.counter("milp.bnb.incumbent_updates");
  static metrics::Counter& propagated =
      reg.counter("milp.propagation.constraints");
  static metrics::Counter& tightened =
      reg.counter("milp.propagation.bounds_tightened");
  static metrics::Counter& fixed = reg.counter("milp.propagation.vars_fixed");
  static metrics::Counter& conflicts =
      reg.counter("milp.propagation.conflicts");
  static metrics::Counter& sx_calls = reg.counter("milp.simplex.calls");
  static metrics::Counter& sx_iters = reg.counter("milp.simplex.iterations");
  static metrics::Counter& sx_pivots = reg.counter("milp.simplex.pivots");
  static metrics::Counter& sx_refactor =
      reg.counter("milp.simplex.refactorizations");
  static metrics::Counter& num_failures =
      reg.counter("milp.numerical_failures");
  static metrics::Counter& lp_recoveries = reg.counter("milp.lp_recoveries");
  static metrics::Counter& checker_rejections =
      reg.counter("milp.checker_rejections");
  static metrics::Counter& alloc_failures =
      reg.counter("milp.allocation_failures");
  static metrics::Counter& cert_checked =
      reg.counter("milp.certify.checked");
  static metrics::Counter& cert_failed = reg.counter("milp.certify.failed");
  static metrics::Counter& cert_retries =
      reg.counter("milp.certify.retries");
  static metrics::Counter& cert_uncertified =
      reg.counter("milp.certify.uncertified");
  static metrics::Timer& solve_timer = reg.timer("milp.solve");
  static metrics::Gauge& depth_gauge = reg.gauge("milp.bnb.last_max_depth");

  const SolverStats& s = solution.stats;
  solves.add(1);
  nodes.add(s.nodes_explored);
  pruned_bound.add(s.nodes_pruned_by_bound);
  pruned_infeasible.add(s.nodes_pruned_infeasible);
  incumbents.add(s.incumbent_updates);
  propagated.add(s.propagated_constraints);
  tightened.add(s.bounds_tightened);
  fixed.add(s.vars_fixed);
  conflicts.add(s.conflicts);
  sx_calls.add(s.simplex_calls);
  sx_iters.add(s.simplex_iterations);
  sx_pivots.add(s.simplex_pivots);
  sx_refactor.add(s.simplex_refactorizations);
  num_failures.add(s.numerical_failures);
  lp_recoveries.add(s.lp_recoveries);
  checker_rejections.add(s.checker_rejections);
  alloc_failures.add(s.allocation_failures);
  cert_checked.add(s.certificates_checked);
  cert_failed.add(s.certificates_failed);
  cert_retries.add(s.certify_retries);
  cert_uncertified.add(s.uncertified_verdicts);
  solve_timer.record(solution.seconds);
  depth_gauge.set(static_cast<double>(s.max_depth));
}

}  // namespace

Solver::Solver(const Model& model, SolverParams params)
    : model_(model),
      params_(std::move(params)),
      cancel_(CancelToken::create()) {}

MilpSolution Solver::solve() {
  // Registers the solve in the live telemetry table (no-op while telemetry
  // is inactive) and pins its correlation id to this thread.
  telemetry::SolveScope live("milp::solve");
  // The span keeps the historical "milp::solve" name so trace consumers see
  // an unchanged event stream across the free-function -> session migration.
  trace::Span span("milp::solve");
  span.arg("vars", static_cast<std::int64_t>(model_.num_vars()));
  span.arg("constraints",
           static_cast<std::int64_t>(model_.num_constraints()));
  if (live.id() != 0) {
    span.arg("corr", static_cast<std::int64_t>(live.id()));
  }
  {
    // New solve, new incumbent lineage: a stale snapshot from the previous
    // solve must not masquerade as progress of this one.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.reset();
  }
  BnbCallbacks callbacks;
  callbacks.session_cancel = cancel_;
  // Tee every accepted incumbent into the session's exportable snapshot
  // before forwarding to the user callback (if any).
  callbacks.on_incumbent = [this](const IncumbentEvent& event) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      IncumbentSnapshot snap;
      snap.objective = event.objective;
      if (event.values != nullptr) snap.values = *event.values;
      snap.nodes_explored = event.nodes_explored;
      snapshot_ = std::move(snap);
    }
    if (on_incumbent_) on_incumbent_(event);
  };
  callbacks.live = live.slot();
  callbacks.correlation = live.id();
  MilpSolution solution = solve_branch_and_bound(model_, params_, callbacks);
  certify_verdict(model_, params_, solution);
  if (solution.certified == CertifyStatus::kUncertified && !params_.distrust) {
    // Distrust-and-retry: one re-solve under numerically cautious settings
    // (Bland's rule from the start, tightened tolerances). The retry's
    // verdict replaces the distrusted one; its stats absorb the first
    // attempt's so the session accounts for the total work.
    SPARCS_WLOG << "verdict " << to_string(solution.status)
                << " failed exact certification (" << solution.certify_detail
                << "); re-solving with distrust settings";
    SolverParams retry_params = params_;
    retry_params.distrust = true;
    MilpSolution retried =
        solve_branch_and_bound(model_, retry_params, callbacks);
    retried.stats.merge(solution.stats);
    retried.stats.certify_retries += 1;
    solution = std::move(retried);
    certify_verdict(model_, retry_params, solution);
  }
  if (solution.certified == CertifyStatus::kUncertified) {
    ++solution.stats.uncertified_verdicts;
    SPARCS_WLOG << "verdict " << to_string(solution.status)
                << " remains uncertified: " << solution.certify_detail;
  }
  span.arg("status", to_string(solution.status));
  if (params_.certify != CertifyMode::kOff) {
    span.arg("certified", to_string(solution.certified));
  }
  span.arg("nodes", solution.stats.nodes_explored);
  span.arg("simplex_iterations", solution.stats.simplex_iterations);
  export_to_registry(solution);
  return solution;
}

void Solver::cancel() { cancel_.request_cancel(); }

// Clears the shared flag in place rather than swapping in a fresh token:
// cancel() is documented safe from any thread, and re-assigning the
// shared_ptr would both race the concurrent read and let a cancel() that
// grabbed the old token fire into a retired flag — silently dropping the
// cancellation meant for the next solve.
void Solver::reset_cancel() { cancel_.reset(); }

void Solver::set_incumbent_callback(IncumbentCallback callback) {
  on_incumbent_ = std::move(callback);
}

std::optional<IncumbentSnapshot> Solver::incumbent_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

SolverParams first_feasible_params(SolverParams base) {
  base.stop_at_first_feasible = true;
  return base;
}

SolverParams optimality_params(SolverParams base) {
  base.stop_at_first_feasible = false;
  base.use_lp_bounding = true;
  return base;
}

MilpSolution solve(const Model& model, const SolverParams& params) {
  return Solver(model, params).solve();
}

MilpSolution solve_first_feasible(const Model& model, SolverParams params) {
  return Solver(model, first_feasible_params(std::move(params))).solve();
}

MilpSolution solve_to_optimality(const Model& model, SolverParams params) {
  return Solver(model, optimality_params(std::move(params))).solve();
}

}  // namespace sparcs::milp

#include "milp/certify.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "support/rational.hpp"
#include "support/strings.hpp"

namespace sparcs::milp {
namespace {

using support::Rational;

/// A variable bound that may be absent (infinite).
using Bound = std::optional<Rational>;

/// One model row with duplicate terms merged and everything exact. Merging
/// makes activity ranges as tight as possible (a +a/-a duplicate pair would
/// otherwise widen them), so the checker is never weaker than it has to be.
struct ExactRow {
  std::vector<std::pair<VarId, Rational>> terms;
  Sense sense = Sense::kLessEqual;
  Rational rhs;
};

ExactRow make_exact_row(const ConstraintInfo& info) {
  ExactRow row;
  row.sense = info.sense;
  row.rhs = Rational::from_double(info.rhs);
  std::map<VarId, Rational> merged;
  for (const LinTerm& t : info.terms) {
    merged[t.var] += Rational::from_double(t.coef);
  }
  row.terms.reserve(merged.size());
  for (auto& [var, coef] : merged) {
    if (!coef.is_zero()) row.terms.emplace_back(var, std::move(coef));
  }
  return row;
}

/// Exact variable box with an undo trail (mirrors milp::Domains, but over
/// rationals and with absent-as-infinite bounds).
class ExactDomains {
 public:
  explicit ExactDomains(const Model& model) {
    const auto n = static_cast<std::size_t>(model.num_vars());
    lb_.resize(n);
    ub_.resize(n);
    for (VarId v = 0; v < model.num_vars(); ++v) {
      const VarInfo& info = model.var(v);
      const auto i = static_cast<std::size_t>(v);
      if (std::isfinite(info.lb)) lb_[i] = Rational::from_double(info.lb);
      if (std::isfinite(info.ub)) ub_[i] = Rational::from_double(info.ub);
    }
  }

  [[nodiscard]] const Bound& lb(VarId v) const {
    return lb_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const Bound& ub(VarId v) const {
    return ub_[static_cast<std::size_t>(v)];
  }

  /// Raises the lower bound when `value` is stronger (trail-recorded).
  void tighten_lb(VarId v, const Rational& value) {
    Bound& slot = lb_[static_cast<std::size_t>(v)];
    if (slot.has_value() && *slot >= value) return;
    trail_.push_back({v, true, slot});
    slot = value;
  }

  void tighten_ub(VarId v, const Rational& value) {
    Bound& slot = ub_[static_cast<std::size_t>(v)];
    if (slot.has_value() && *slot <= value) return;
    trail_.push_back({v, false, slot});
    slot = value;
  }

  [[nodiscard]] std::size_t checkpoint() const { return trail_.size(); }

  void rollback(std::size_t mark) {
    while (trail_.size() > mark) {
      TrailEntry& e = trail_.back();
      if (e.is_lb) {
        lb_[static_cast<std::size_t>(e.var)] = std::move(e.old_value);
      } else {
        ub_[static_cast<std::size_t>(e.var)] = std::move(e.old_value);
      }
      trail_.pop_back();
    }
  }

 private:
  struct TrailEntry {
    VarId var;
    bool is_lb;
    Bound old_value;
  };
  std::vector<Bound> lb_, ub_;
  std::vector<TrailEntry> trail_;
};

/// Minimum of coef*x over the box of `var`; nullopt when unbounded below.
Bound term_min(const ExactDomains& box, VarId var, const Rational& coef) {
  const Bound& b = coef.sign() > 0 ? box.lb(var) : box.ub(var);
  if (!b.has_value()) return std::nullopt;
  return coef * *b;
}

/// Maximum of coef*x over the box of `var`; nullopt when unbounded above.
Bound term_max(const ExactDomains& box, VarId var, const Rational& coef) {
  const Bound& b = coef.sign() > 0 ? box.ub(var) : box.lb(var);
  if (!b.has_value()) return std::nullopt;
  return coef * *b;
}

/// True when the row is exactly violated over the whole box (its minimum
/// activity exceeds the rhs, or its maximum activity falls short of it).
bool row_conflicts(const ExactRow& row, const ExactDomains& box) {
  const bool need_le =
      row.sense == Sense::kLessEqual || row.sense == Sense::kEqual;
  const bool need_ge =
      row.sense == Sense::kGreaterEqual || row.sense == Sense::kEqual;
  if (need_le) {
    Rational min_act;
    bool finite = true;
    for (const auto& [var, coef] : row.terms) {
      const Bound c = term_min(box, var, coef);
      if (!c.has_value()) {
        finite = false;
        break;
      }
      min_act += *c;
    }
    if (finite && min_act > row.rhs) return true;
  }
  if (need_ge) {
    Rational max_act;
    bool finite = true;
    for (const auto& [var, coef] : row.terms) {
      const Bound c = term_max(box, var, coef);
      if (!c.has_value()) {
        finite = false;
        break;
      }
      max_act += *c;
    }
    if (finite && max_act < row.rhs) return true;
  }
  return false;
}

/// Replays one recorded derivation: recomputes the implied bound of
/// (row, var) exactly from the current box and applies it when it tightens.
/// The recorded floating-point bound is never used, which makes the replay
/// sound by construction — at worst the exact bound is weaker and a later
/// conflict fails to verify.
void replay_derivation(const ExactRow& row, const Derivation& d,
                       bool integral, ExactDomains& box) {
  Rational a;
  for (const auto& [var, coef] : row.terms) {
    if (var == d.var) {
      a = coef;
      break;
    }
  }
  const int sa = a.sign();
  if (sa == 0) return;  // derivation names a var absent from the row
  // Which activity side implies this bound is determined by the recorded
  // side and the coefficient sign: a lower bound on var comes from the
  // row's max-activity side when a > 0 and min-activity side when a < 0.
  const bool use_min_side = d.is_lb ? (sa < 0) : (sa > 0);
  if (use_min_side &&
      !(row.sense == Sense::kLessEqual || row.sense == Sense::kEqual)) {
    return;
  }
  if (!use_min_side &&
      !(row.sense == Sense::kGreaterEqual || row.sense == Sense::kEqual)) {
    return;
  }
  Rational residual;
  for (const auto& [var, coef] : row.terms) {
    if (var == d.var) continue;
    const Bound c =
        use_min_side ? term_min(box, var, coef) : term_max(box, var, coef);
    if (!c.has_value()) return;  // residual unbounded: nothing implied
    residual += *c;
  }
  Rational bound = (row.rhs - residual) / a;
  if (d.is_lb) {
    if (integral) bound = bound.ceil();
    box.tighten_lb(d.var, bound);
  } else {
    if (integral) bound = bound.floor();
    box.tighten_ub(d.var, bound);
  }
}

/// Exact Farkas check of a dual ray over the node's box: with w = sum_i
/// y_i * A_i, infeasibility of {A x (sense) b, x in box} follows when
/// min_{x in box} w.x  >  sum_i y_i b_i, provided every multiplier respects
/// its row's sign condition (y_i >= 0 for <=, y_i <= 0 for >=, free for =).
CertifyCheck check_farkas(const std::vector<ExactRow>& rows,
                          const std::vector<ConstraintId>& ids,
                          const std::vector<double>& y,
                          const ExactDomains& box, int num_rows) {
  CertifyCheck out;
  if (ids.size() != y.size()) {
    out.detail = "farkas ray/row arity mismatch";
    return out;
  }
  std::map<VarId, Rational> w;
  Rational yb;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ConstraintId c = ids[i];
    if (c < 0 || c >= num_rows) {
      out.detail = sparcs::str_format("farkas ray references row %d", c);
      return out;
    }
    if (!std::isfinite(y[i])) {
      out.detail = "farkas multiplier not finite";
      return out;
    }
    const Rational yi = Rational::from_double(y[i]);
    if (yi.is_zero()) continue;
    const ExactRow& row = rows[static_cast<std::size_t>(c)];
    if (row.sense == Sense::kLessEqual && yi.sign() < 0) {
      out.detail = sparcs::str_format("negative multiplier on <= row %d", c);
      return out;
    }
    if (row.sense == Sense::kGreaterEqual && yi.sign() > 0) {
      out.detail = sparcs::str_format("positive multiplier on >= row %d", c);
      return out;
    }
    for (const auto& [var, coef] : row.terms) w[var] += yi * coef;
    yb += yi * row.rhs;
  }
  Rational box_min;
  for (const auto& [var, coef] : w) {
    if (coef.is_zero()) continue;
    const Bound c = term_min(box, var, coef);
    if (!c.has_value()) {
      out.detail =
          sparcs::str_format("farkas aggregate unbounded on var %d", var);
      return out;
    }
    box_min += *c;
  }
  if (box_min > yb) {
    out.ok = true;
    return out;
  }
  out.detail = sparcs::str_format(
      "farkas product not positive: min %s <= rhs %s",
      box_min.to_string().c_str(), yb.to_string().c_str());
  return out;
}

/// Verifies that the branch boxes cover every integer of the branch
/// variable's exact domain, so refuting all children refutes the node.
CertifyCheck check_branch_coverage(const ProofNode& node,
                                   const ExactDomains& box) {
  CertifyCheck out;
  const Bound& lo = box.lb(node.var);
  const Bound& hi = box.ub(node.var);
  if (!lo.has_value() || !hi.has_value()) {
    out.detail = sparcs::str_format(
        "branched var %d has an unbounded domain", node.var);
    return out;
  }
  const Rational first = lo->ceil();
  const Rational last = hi->floor();
  if (first > last) {
    out.ok = true;  // empty integral domain: nothing to cover
    return out;
  }
  std::vector<std::pair<Rational, Rational>> intervals;
  intervals.reserve(node.branches.size());
  for (const auto& [blo, bhi] : node.branches) {
    if (!std::isfinite(blo) || !std::isfinite(bhi)) {
      out.detail = "non-finite branch box";
      return out;
    }
    intervals.emplace_back(Rational::from_double(blo).ceil(),
                           Rational::from_double(bhi).floor());
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Rational next = first;  // smallest integer not yet covered
  for (const auto& [ilo, ihi] : intervals) {
    if (next > last) break;
    if (ilo > next) {
      out.detail = sparcs::str_format(
          "branch boxes of var %d leave value %s uncovered", node.var,
          next.to_string().c_str());
      return out;
    }
    const Rational follow = ihi + Rational(1);
    if (follow > next) next = follow;
  }
  if (next <= last) {
    out.detail = sparcs::str_format(
        "branch boxes of var %d end before value %s", node.var,
        next.to_string().c_str());
    return out;
  }
  out.ok = true;
  return out;
}

std::string rank_string(const std::vector<std::int32_t>& rank) {
  if (rank.empty()) return "root";
  std::string out;
  for (const std::int32_t digit : rank) {
    if (!out.empty()) out += '.';
    out += std::to_string(digit);
  }
  return out;
}

}  // namespace

const char* to_string(CertifyStatus status) {
  switch (status) {
    case CertifyStatus::kNotRequested:
      return "not-requested";
    case CertifyStatus::kCertified:
      return "certified";
    case CertifyStatus::kUncertified:
      return "uncertified";
  }
  return "unknown";
}

const char* to_string(CertifyMode mode) {
  switch (mode) {
    case CertifyMode::kOff:
      return "off";
    case CertifyMode::kIncumbents:
      return "incumbents";
    case CertifyMode::kFull:
      return "full";
  }
  return "unknown";
}

CertifyCheck certify_feasible(const Model& model,
                              const std::vector<double>& values) {
  CertifyCheck out;
  if (static_cast<int>(values.size()) != model.num_vars()) {
    out.detail = sparcs::str_format("assignment has %zu values for %d vars",
                                     values.size(), model.num_vars());
    return out;
  }
  for (const double v : values) {
    if (!std::isfinite(v)) {
      out.detail = "assignment contains a non-finite value";
      return out;
    }
  }
  std::vector<Rational> x;
  x.reserve(values.size());
  for (const double v : values) x.push_back(Rational::from_double(v));

  // Bounds and integrality, exactly.
  for (VarId v = 0; v < model.num_vars(); ++v) {
    const VarInfo& info = model.var(v);
    const auto i = static_cast<std::size_t>(v);
    if (std::isfinite(info.lb) && x[i] < Rational::from_double(info.lb)) {
      out.detail = sparcs::str_format("var %s below its lower bound",
                                       info.name.c_str());
      return out;
    }
    if (std::isfinite(info.ub) && x[i] > Rational::from_double(info.ub)) {
      out.detail = sparcs::str_format("var %s above its upper bound",
                                       info.name.c_str());
      return out;
    }
    if (info.type != VarType::kContinuous && !x[i].is_integer()) {
      out.detail =
          sparcs::str_format("var %s is not integral", info.name.c_str());
      return out;
    }
  }

  std::vector<ExactRow> rows;
  rows.reserve(static_cast<std::size_t>(model.num_constraints()));
  for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
    rows.push_back(make_exact_row(model.constraint(c)));
  }

  auto violated_row = [&](const std::vector<Rational>& point) -> int {
    for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
      const ExactRow& row = rows[static_cast<std::size_t>(c)];
      Rational lhs;
      for (const auto& [var, coef] : row.terms) {
        lhs += coef * point[static_cast<std::size_t>(var)];
      }
      const int cmp = lhs.compare(row.rhs);
      const bool bad = (row.sense == Sense::kLessEqual && cmp > 0) ||
                       (row.sense == Sense::kGreaterEqual && cmp < 0) ||
                       (row.sense == Sense::kEqual && cmp != 0);
      if (bad) return c;
    }
    return -1;
  };

  const int direct = violated_row(x);
  if (direct < 0) {
    out.ok = true;
    return out;
  }

  // Exact repair of the continuous completion: the integral assignment (the
  // part the partitioner decodes into a design) is kept verbatim; continuous
  // variables are re-derived by exact bound tightening and clamped into
  // their exact intervals. The final re-evaluation decides — the repair is a
  // heuristic, the acceptance is exact.
  ExactDomains box(model);
  for (VarId v = 0; v < model.num_vars(); ++v) {
    if (model.var(v).type == VarType::kContinuous) continue;
    const auto i = static_cast<std::size_t>(v);
    box.tighten_lb(v, x[i]);
    box.tighten_ub(v, x[i]);
  }
  constexpr int kRepairSweeps = 8;
  for (int sweep = 0; sweep < kRepairSweeps; ++sweep) {
    const std::size_t before = box.checkpoint();
    for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
      const ExactRow& row = rows[static_cast<std::size_t>(c)];
      for (const auto& [var, coef] : row.terms) {
        if (model.var(var).type != VarType::kContinuous) continue;
        Derivation d;
        d.constraint = c;
        d.var = var;
        d.is_lb = false;
        replay_derivation(row, d, /*integral=*/false, box);
        d.is_lb = true;
        replay_derivation(row, d, /*integral=*/false, box);
        const Bound& lo = box.lb(var);
        const Bound& hi = box.ub(var);
        if (lo.has_value() && hi.has_value() && *lo > *hi) {
          out.detail = sparcs::str_format(
              "no exact completion: var %s interval is empty",
              model.var(var).name.c_str());
          return out;
        }
      }
    }
    if (box.checkpoint() == before) break;  // fixpoint
  }
  std::vector<Rational> repaired = x;
  int repairs = 0;
  for (VarId v = 0; v < model.num_vars(); ++v) {
    if (model.var(v).type != VarType::kContinuous) continue;
    const auto i = static_cast<std::size_t>(v);
    const Bound& lo = box.lb(v);
    const Bound& hi = box.ub(v);
    if (lo.has_value() && repaired[i] < *lo) {
      repaired[i] = *lo;
      ++repairs;
    } else if (hi.has_value() && repaired[i] > *hi) {
      repaired[i] = *hi;
      ++repairs;
    }
  }
  if (repairs > 0 && violated_row(repaired) < 0) {
    out.ok = true;
    out.detail = sparcs::str_format("repaired %d continuous values", repairs);
    return out;
  }
  out.detail = sparcs::str_format(
      "constraint %s exactly violated by the assignment",
      model.constraint(direct).name.c_str());
  return out;
}

CertifyCheck certify_infeasible(const Model& model,
                                const InfeasibilityProof& proof) {
  CertifyCheck out;
  if (proof.overflowed) {
    out.detail = "proof recording overflowed its size cap";
    return out;
  }
  if (proof.nodes.empty()) {
    out.detail = "empty infeasibility proof";
    return out;
  }
  std::map<std::vector<std::int32_t>, const ProofNode*> by_rank;
  for (const ProofNode& node : proof.nodes) {
    if (!by_rank.emplace(node.rank, &node).second) {
      out.detail =
          sparcs::str_format("duplicate proof node %s",
                              rank_string(node.rank).c_str());
      return out;
    }
  }
  const auto root_it = by_rank.find({});
  if (root_it == by_rank.end()) {
    out.detail = "proof has no root node";
    return out;
  }

  std::vector<ExactRow> rows;
  rows.reserve(static_cast<std::size_t>(model.num_constraints()));
  for (ConstraintId c = 0; c < model.num_constraints(); ++c) {
    rows.push_back(make_exact_row(model.constraint(c)));
  }
  ExactDomains box(model);

  // Iterative DFS; each entry's trail mark is taken BEFORE its branch box is
  // applied, so popping the entry undoes both its derivations and the branch
  // bounds — siblings start from the parent's box, not each other's.
  struct WalkItem {
    const ProofNode* node;
    std::size_t trail_mark;
    std::size_t next_child = 0;
    bool entered = false;
  };
  std::vector<WalkItem> stack;
  stack.push_back({root_it->second, box.checkpoint()});

  auto fail_at = [&out](const ProofNode& node, std::string reason) {
    out.ok = false;
    out.detail = sparcs::str_format("node %s: %s",
                                     rank_string(node.rank).c_str(),
                                     reason.c_str());
    return out;
  };

  while (!stack.empty()) {
    WalkItem& item = stack.back();
    const ProofNode& node = *item.node;
    if (!item.entered) {
      item.entered = true;
      // Replay this node's propagation derivations on the current box.
      for (const Derivation& d : node.derivations) {
        if (d.constraint < 0 || d.constraint >= model.num_constraints() ||
            d.var < 0 || d.var >= model.num_vars()) {
          return fail_at(node, "derivation references unknown row/var");
        }
        replay_derivation(rows[static_cast<std::size_t>(d.constraint)], d,
                          model.var(d.var).type != VarType::kContinuous, box);
      }
      switch (node.kind) {
        case ProofNode::Kind::kBranched: {
          if (node.var < 0 || node.var >= model.num_vars() ||
              model.var(node.var).type == VarType::kContinuous) {
            return fail_at(node, "branched on a non-integral variable");
          }
          if (node.branches.empty()) {
            return fail_at(node, "branched node has no branches");
          }
          CertifyCheck coverage = check_branch_coverage(node, box);
          if (!coverage.ok) return fail_at(node, coverage.detail);
          break;  // children visited below
        }
        case ProofNode::Kind::kConflict: {
          bool proven = false;
          if (node.conflict_row >= 0 &&
              node.conflict_row < model.num_constraints()) {
            proven = row_conflicts(
                rows[static_cast<std::size_t>(node.conflict_row)], box);
          } else if (node.conflict_var >= 0 &&
                     node.conflict_var < model.num_vars()) {
            const Bound& lo = box.lb(node.conflict_var);
            const Bound& hi = box.ub(node.conflict_var);
            proven = lo.has_value() && hi.has_value() && *lo > *hi;
          }
          if (!proven) {
            return fail_at(node, "conflict does not hold exactly");
          }
          break;
        }
        case ProofNode::Kind::kEmptyBox: {
          if (node.var < 0 || node.var >= model.num_vars()) {
            return fail_at(node, "empty-box leaf names an unknown var");
          }
          const Bound& lo = box.lb(node.var);
          const Bound& hi = box.ub(node.var);
          if (!(lo.has_value() && hi.has_value() && *lo > *hi)) {
            return fail_at(node, "domain is not exactly empty");
          }
          break;
        }
        case ProofNode::Kind::kFarkas: {
          CertifyCheck farkas = check_farkas(rows, node.rows, node.y, box,
                                             model.num_constraints());
          if (!farkas.ok) return fail_at(node, farkas.detail);
          break;
        }
        case ProofNode::Kind::kUnproven:
          return fail_at(node, "leaf carries no certificate");
      }
    }
    if (node.kind != ProofNode::Kind::kBranched ||
        item.next_child >= node.branches.size()) {
      box.rollback(item.trail_mark);
      stack.pop_back();
      continue;
    }
    // Descend into the next child: apply its branch box, then look it up.
    const std::size_t j = item.next_child++;
    std::vector<std::int32_t> child_rank = node.rank;
    child_rank.push_back(static_cast<std::int32_t>(j));
    const auto child_it = by_rank.find(child_rank);
    if (child_it == by_rank.end()) {
      return fail_at(node, sparcs::str_format("child %zu has no proof", j));
    }
    const auto [blo, bhi] = node.branches[j];
    const std::size_t mark = box.checkpoint();
    box.tighten_lb(node.var, Rational::from_double(blo));
    box.tighten_ub(node.var, Rational::from_double(bhi));
    stack.push_back({child_it->second, mark});
  }
  out.ok = true;
  return out;
}

}  // namespace sparcs::milp

// Common types of the MILP subsystem.
//
// This subsystem is the repository's stand-in for the commercial ILP solver
// (CPLEX) used in the paper: a 0/1-oriented mixed-integer linear programming
// solver built from a bounded-variable two-phase simplex, activity-based
// bound propagation, and depth-first branch & bound with feasibility
// emphasis. The paper's algorithms only require "return the first feasible
// solution or prove infeasibility, under a time budget", plus an optimality
// mode for the small reference experiments; both are provided.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sparcs::milp {

/// Index of a decision variable within its Model.
using VarId = std::int32_t;
/// Index of a linear constraint within its Model.
using ConstraintId = std::int32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType : std::uint8_t {
  kContinuous,
  kBinary,   ///< integer restricted to {0, 1}
  kInteger,  ///< general bounded integer
};

/// Relational sense of a linear constraint.
enum class Sense : std::uint8_t {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

/// Outcome of a MILP solve.
enum class SolveStatus : std::uint8_t {
  kOptimal,       ///< search exhausted; incumbent is proven optimal
  kFeasible,      ///< a feasible solution was found (first-feasible mode, or
                  ///< limits hit with an incumbent in hand)
  kInfeasible,    ///< search exhausted with no feasible solution
  kUnbounded,     ///< objective unbounded below (minimization)
  kLimitReached,  ///< node/time limit hit before any feasible solution
};

[[nodiscard]] std::string to_string(SolveStatus status);

/// Tuning knobs of the MILP solver.
struct SolverParams {
  /// Stop as soon as any feasible solution is found (constraint-satisfaction
  /// mode, the mode the paper's SolveModel() uses).
  bool stop_at_first_feasible = false;

  /// Wall-clock budget in seconds; exceeded => kLimitReached / kFeasible.
  double time_limit_sec = kInfinity;

  /// Maximum number of branch & bound nodes explored.
  std::int64_t node_limit = std::numeric_limits<std::int64_t>::max();

  /// Use LP-relaxation bounding/pruning at search nodes. Strong but costly;
  /// enabled automatically for optimality runs on models below
  /// `lp_bounding_max_vars`.
  bool use_lp_bounding = false;
  int lp_bounding_max_vars = 2000;

  /// Integrality and feasibility tolerances.
  double integrality_tol = 1e-6;
  double feasibility_tol = 1e-6;

  /// Minimum improvement required of a new incumbent (objective cutoff step).
  double objective_improvement = 1e-6;

  /// Maximum propagation sweeps per node before settling.
  int max_propagation_rounds = 50;

  /// Emit per-node progress at kInfo level every this many nodes (0 = off).
  std::int64_t log_every_nodes = 0;
};

/// Result of a MILP solve.
struct MilpSolution {
  SolveStatus status = SolveStatus::kLimitReached;
  double objective = 0.0;              ///< valid when a solution exists
  std::vector<double> values;          ///< per-variable values (empty if none)
  std::int64_t nodes_explored = 0;
  std::int64_t propagations = 0;
  double seconds = 0.0;

  [[nodiscard]] bool has_solution() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

/// Outcome of an LP solve.
enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

[[nodiscard]] std::string to_string(LpStatus status);

/// Result of a pure LP solve.
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal values, one per variable
  int iterations = 0;
};

}  // namespace sparcs::milp

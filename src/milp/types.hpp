// Common types of the MILP subsystem.
//
// This subsystem is the repository's stand-in for the commercial ILP solver
// (CPLEX) used in the paper: a 0/1-oriented mixed-integer linear programming
// solver built from a bounded-variable two-phase simplex, activity-based
// bound propagation, and depth-first branch & bound with feasibility
// emphasis. The paper's algorithms only require "return the first feasible
// solution or prove infeasibility, under a time budget", plus an optimality
// mode for the small reference experiments; both are provided.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace sparcs::milp {

/// Index of a decision variable within its Model.
using VarId = std::int32_t;
/// Index of a linear constraint within its Model.
using ConstraintId = std::int32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType : std::uint8_t {
  kContinuous,
  kBinary,   ///< integer restricted to {0, 1}
  kInteger,  ///< general bounded integer
};

/// Relational sense of a linear constraint.
enum class Sense : std::uint8_t {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

/// How much of the solve to certify (see milp/certificate.hpp and
/// milp/certify.hpp for the certificate data and the exact checker).
enum class CertifyMode : std::uint8_t {
  kOff,         ///< trust the floating-point verdicts (no overhead)
  kIncumbents,  ///< exact feasibility check of every returned solution
  kFull,        ///< kIncumbents plus infeasibility proofs for kInfeasible
};

/// Certification outcome of one verdict.
enum class CertifyStatus : std::uint8_t {
  kNotRequested,  ///< certification off, or nothing to certify (limit/cancel)
  kCertified,     ///< the verdict was re-established in exact arithmetic
  kUncertified,   ///< certificate check failed even after the distrust retry
};

[[nodiscard]] const char* to_string(CertifyStatus status);
[[nodiscard]] const char* to_string(CertifyMode mode);

/// Tree-shaped infeasibility proof (milp/certificate.hpp); carried by
/// MilpSolution behind a shared_ptr so types.hpp need not see its layout.
struct InfeasibilityProof;

/// Certificate attached to an infeasible LpResult by the simplex. The data
/// is plain doubles — a hint for the exact checker, never trusted directly.
struct LpCertificate {
  enum class Kind : std::uint8_t {
    kNone,        ///< no certificate available (extraction failed)
    kFarkas,      ///< dual ray `y`, one multiplier per LP row
    kEmptyBound,  ///< variable `var` arrived with lb > ub
  };
  Kind kind = Kind::kNone;
  std::vector<double> y;
  int var = -1;
};

/// Outcome of a MILP solve.
enum class SolveStatus : std::uint8_t {
  kOptimal,       ///< search exhausted; incumbent is proven optimal
  kFeasible,      ///< a feasible solution was found (first-feasible mode, or
                  ///< limits hit with an incumbent in hand)
  kInfeasible,    ///< search exhausted with no feasible solution
  kUnbounded,     ///< objective unbounded below (minimization)
  kLimitReached,  ///< node/time limit hit before any feasible solution
  kNumericalFailure,  ///< simplex blow-up/cycling exhausted every recovery
                      ///< (Bland's rule, bound perturbation, node rollback)
                      ///< before any feasible solution was found
};

[[nodiscard]] std::string to_string(SolveStatus status);

/// Shareable cooperative-cancellation handle. Copies share one flag, so a
/// token stored in SolverParams keeps working after the params are copied
/// into a Solver session. A default-constructed token is inert: it never
/// reports cancellation and ignores requests. All operations are thread-safe.
class CancelToken {
 public:
  CancelToken() = default;

  /// Makes a live token (the only way to obtain a non-inert one).
  [[nodiscard]] static CancelToken create() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// True when this token can carry a cancellation request.
  [[nodiscard]] bool valid() const { return flag_ != nullptr; }

  /// Requests cancellation; every copy of the token observes it.
  void request_cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// Re-arms a live token by clearing the shared flag in place. Unlike
  /// re-assigning a fresh token, every existing copy keeps observing the
  /// same flag, so there is no window where a concurrent request_cancel()
  /// lands on a retired flag and gets dropped.
  void reset() const {
    if (flag_) flag_->store(false, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Snapshot handed to incumbent callbacks when the search accepts a new best
/// solution. `values` points at solver-owned storage that is only valid for
/// the duration of the callback.
struct IncumbentEvent {
  double objective = 0.0;  ///< sign-corrected (caller's min/max convention)
  const std::vector<double>* values = nullptr;
  std::int64_t nodes_explored = 0;  ///< nodes explored when accepted
};

/// Invoked on every accepted incumbent. In multi-threaded solves the callback
/// runs on a worker thread under the incumbent lock: keep it cheap, and do
/// not call back into the solver except CancelToken::request_cancel().
using IncumbentCallback = std::function<void(const IncumbentEvent&)>;

/// Tuning knobs of the MILP solver.
struct SolverParams {
  /// Stop as soon as any feasible solution is found (constraint-satisfaction
  /// mode, the mode the paper's SolveModel() uses).
  bool stop_at_first_feasible = false;

  /// Wall-clock budget in seconds; exceeded => kLimitReached / kFeasible.
  double time_limit_sec = kInfinity;

  /// Maximum number of branch & bound nodes explored.
  std::int64_t node_limit = std::numeric_limits<std::int64_t>::max();

  /// Use LP-relaxation bounding/pruning at search nodes. Strong but costly;
  /// enabled automatically for optimality runs on models below
  /// `lp_bounding_max_vars`.
  bool use_lp_bounding = false;
  int lp_bounding_max_vars = 2000;

  /// Integrality and feasibility tolerances.
  double integrality_tol = 1e-6;
  double feasibility_tol = 1e-6;

  /// Minimum improvement required of a new incumbent (objective cutoff step).
  double objective_improvement = 1e-6;

  /// Maximum propagation sweeps per node before settling.
  int max_propagation_rounds = 50;

  /// Emit per-node progress at kInfo level every this many nodes (0 = off).
  std::int64_t log_every_nodes = 0;

  /// Branch & bound worker threads. 0 = hardware_concurrency; 1 runs the
  /// legacy single-threaded search and preserves today's exact node order.
  /// With more than one worker the returned first-feasible solution is still
  /// deterministic (identical to the single-threaded one) because candidates
  /// are accepted in depth-first rank order; see DESIGN.md.
  int num_threads = 0;

  /// Cooperative cancellation: when the token reports cancellation the solve
  /// stops at the next node boundary and returns kLimitReached (or kFeasible
  /// when an incumbent is already in hand). Inert by default.
  CancelToken cancel;

  /// Certify verdicts in exact rational arithmetic (milp/certify). A failed
  /// check triggers one distrust re-solve; see Solver::solve().
  CertifyMode certify = CertifyMode::kOff;

  /// Distrust mode, set internally by the certification retry: the simplex
  /// runs Bland's rule from the first iteration and the solver tightens its
  /// tolerances, trading speed for the numerical caution that usually makes
  /// the second certificate check pass.
  bool distrust = false;
};

/// One timestamped event on a solve's convergence timeline: an accepted
/// incumbent or a tightened global bound, in caller convention (maximization
/// objectives are reported as the caller sees them).
struct ConvergenceEvent {
  enum class Kind : std::uint8_t { kIncumbent, kBound };
  double t_sec = 0.0;      ///< since the solve started
  double objective = 0.0;  ///< incumbent objective or bound value
  std::int64_t nodes = 0;  ///< nodes explored when the event fired
  Kind kind = Kind::kIncumbent;
};

/// Per-layer search statistics of one MILP solve, filled by the simplex,
/// propagation and branch & bound layers and returned in MilpSolution. All
/// fields are plain accumulators (no atomics): each worker thread fills its
/// own instance and the per-worker copies are merge()d on exit, so the
/// reported totals are exact at any thread count.
struct SolverStats {
  // Branch & bound.
  std::int64_t nodes_explored = 0;
  std::int64_t nodes_pruned_by_bound = 0;    ///< LP-relaxation refutations
  std::int64_t nodes_pruned_infeasible = 0;  ///< propagation conflicts
  std::int64_t incumbent_updates = 0;
  std::int64_t max_depth = 0;  ///< deepest DFS stack reached

  // Bound propagation (all nodes, root included).
  std::int64_t propagated_constraints = 0;
  std::int64_t bounds_tightened = 0;
  std::int64_t vars_fixed = 0;
  std::int64_t conflicts = 0;

  // Root-node propagation, the solver's built-in presolve.
  std::int64_t presolve_bounds_tightened = 0;
  std::int64_t presolve_vars_fixed = 0;

  // Simplex (LP bounding + continuous-completion solves).
  std::int64_t simplex_calls = 0;
  std::int64_t simplex_iterations = 0;
  std::int64_t simplex_pivots = 0;           ///< basis changes
  std::int64_t simplex_refactorizations = 0;  ///< reduced-cost refreshes

  // Robustness: numerical-failure recovery and incumbent validation.
  std::int64_t numerical_failures = 0;   ///< LP solves lost to blow-up/cycling
  std::int64_t lp_recoveries = 0;        ///< LP solves saved by Bland/perturb
  std::int64_t checker_rejections = 0;   ///< incumbents rejected by validation
  std::int64_t allocation_failures = 0;  ///< nodes rolled back on bad_alloc

  // Certification (exact rational verdict checking, milp/certify).
  std::int64_t certificates_checked = 0;  ///< exact checks performed
  std::int64_t certificates_failed = 0;   ///< checks that did not verify
  std::int64_t certify_retries = 0;       ///< distrust re-solves triggered
  std::int64_t uncertified_verdicts = 0;  ///< verdicts demoted after retry

  /// Incumbent/bound improvement timeline, time-ordered. Serial solves
  /// append directly; parallel solves record under the shared incumbent lock
  /// so the timeline stays time-ordered across workers.
  std::vector<ConvergenceEvent> convergence;

  /// Renders every accumulator plus the convergence timeline as one JSON
  /// object (implemented in stats_json.cpp; shared by the CLI report and the
  /// telemetry stream).
  [[nodiscard]] std::string to_json() const;

  /// Accumulates another solve's stats (sums; max for max_depth; timelines
  /// concatenate and re-sort by timestamp).
  void merge(const SolverStats& other) {
    nodes_explored += other.nodes_explored;
    nodes_pruned_by_bound += other.nodes_pruned_by_bound;
    nodes_pruned_infeasible += other.nodes_pruned_infeasible;
    incumbent_updates += other.incumbent_updates;
    max_depth = max_depth > other.max_depth ? max_depth : other.max_depth;
    propagated_constraints += other.propagated_constraints;
    bounds_tightened += other.bounds_tightened;
    vars_fixed += other.vars_fixed;
    conflicts += other.conflicts;
    presolve_bounds_tightened += other.presolve_bounds_tightened;
    presolve_vars_fixed += other.presolve_vars_fixed;
    simplex_calls += other.simplex_calls;
    simplex_iterations += other.simplex_iterations;
    simplex_pivots += other.simplex_pivots;
    simplex_refactorizations += other.simplex_refactorizations;
    numerical_failures += other.numerical_failures;
    lp_recoveries += other.lp_recoveries;
    checker_rejections += other.checker_rejections;
    allocation_failures += other.allocation_failures;
    certificates_checked += other.certificates_checked;
    certificates_failed += other.certificates_failed;
    certify_retries += other.certify_retries;
    uncertified_verdicts += other.uncertified_verdicts;
    convergence.insert(convergence.end(), other.convergence.begin(),
                       other.convergence.end());
    std::stable_sort(convergence.begin(), convergence.end(),
                     [](const ConvergenceEvent& a, const ConvergenceEvent& b) {
                       return a.t_sec < b.t_sec;
                     });
  }
};

/// Result of a MILP solve.
struct MilpSolution {
  SolveStatus status = SolveStatus::kLimitReached;
  double objective = 0.0;              ///< valid when a solution exists
  std::vector<double> values;          ///< per-variable values (empty if none)
  std::int64_t nodes_explored = 0;     ///< == stats.nodes_explored
  std::int64_t propagations = 0;       ///< == stats.propagated_constraints
  double seconds = 0.0;
  SolverStats stats;                   ///< per-layer search statistics

  /// Certification outcome of this verdict (kNotRequested unless
  /// SolverParams::certify asked for it and the verdict was certifiable).
  CertifyStatus certified = CertifyStatus::kNotRequested;
  /// Reason of a failed certification, or a note on how it was closed.
  std::string certify_detail;
  /// Infeasibility proof recorded by branch & bound (kFull mode only; kept
  /// for report/debug dumps after the exact check has consumed it).
  std::shared_ptr<const InfeasibilityProof> proof;

  [[nodiscard]] bool has_solution() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

/// Outcome of an LP solve.
enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,  ///< non-finite tableau values or unrecoverable cycling
};

[[nodiscard]] std::string to_string(LpStatus status);

/// Result of a pure LP solve.
struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal values, one per variable
  int iterations = 0;
  int pivots = 0;            ///< basis changes (iterations minus bound flips)
  int refactorizations = 0;  ///< periodic reduced-cost refreshes
  int recoveries = 0;  ///< numerical-failure retries (Bland / perturbation)
                       ///< that were needed to produce this result
  /// Infeasibility certificate (LpParams::want_certificate; kNone otherwise
  /// or when extraction failed — never required to be present).
  LpCertificate certificate;
};

}  // namespace sparcs::milp

// Bounded-variable two-phase primal simplex (dense tableau).
//
// Scope: the LP sizes this project needs are small-to-medium (the continuous
// completion problems of the branch & bound are tiny; LP-relaxation bounding
// is only enabled for models below a size threshold), so a dense full-tableau
// method with Dantzig pricing, a Bland anti-cycling fallback and explicit
// artificial variables is the robust, simple choice. Rows are converted to
// equalities with a bounded slack; Phase 1 minimizes the sum of artificial
// variables started from all structural/slack columns at their bound nearest
// zero.
#pragma once

#include <functional>
#include <vector>

#include "milp/expr.hpp"
#include "milp/model.hpp"
#include "milp/types.hpp"

namespace sparcs::milp {

/// A linear program in computational form: min obj'x subject to the rows and
/// the variable bounds (use +-kInfinity for free directions).
struct LpProblem {
  std::vector<double> obj;
  std::vector<double> lb;
  std::vector<double> ub;

  struct Row {
    std::vector<LinTerm> terms;
    Sense sense = Sense::kLessEqual;
    double rhs = 0.0;
  };
  std::vector<Row> rows;

  [[nodiscard]] int num_vars() const { return static_cast<int>(obj.size()); }
  [[nodiscard]] int num_rows() const { return static_cast<int>(rows.size()); }

  /// Appends a variable, returning its index.
  int add_var(double objective, double lower, double upper);
  /// Appends a row.
  void add_row(std::vector<LinTerm> terms, Sense sense, double rhs);
};

struct LpParams {
  int max_iterations = 200000;
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  double pivot_tol = 1e-9;
  /// Switch to Bland's rule after this many iterations without improvement.
  int stall_threshold = 500;
  /// Hard cap on tableau entries (rows * columns) to avoid runaway memory;
  /// exceeding it throws InvalidArgumentError.
  std::int64_t max_tableau_entries = 60'000'000;

  /// Give up on anti-cycling once Bland's rule has run this many iterations
  /// without terminating; the solve returns kNumericalFailure instead of
  /// spinning until max_iterations.
  int cycle_limit = 20000;

  /// Numerical-failure recovery attempts in solve_lp: each retry restarts
  /// with Bland's rule from iteration 0, and retries past the first also
  /// perturb the finite variable bounds outward (keeping the original
  /// feasible region a subset, so bounding stays conservative). 0 disables.
  int max_recoveries = 2;
  /// Relative magnitude of the outward bound perturbation per retry.
  double perturbation = 1e-9;

  /// Polled roughly every 128 iterations; returning true aborts the solve
  /// with kIterationLimit. Lets a deadline or cancellation unwind from
  /// inside a long LP run instead of waiting for the next node boundary.
  std::function<bool()> should_abort;

  /// On an infeasible verdict, extract a Farkas dual ray from the phase-1
  /// tableau into LpResult::certificate (best-effort: extraction can fail,
  /// leaving Kind::kNone). Costs one reduced-cost refresh per infeasible
  /// solve and nothing on any other path.
  bool want_certificate = false;
};

/// Solves the LP with the two-phase bounded-variable simplex.
LpResult solve_lp(const LpProblem& problem, const LpParams& params = {});

/// Builds the LP relaxation of a MILP model (integrality dropped). A
/// maximization objective is negated so the LP is always a minimization;
/// `flip_objective` reports whether the sign was flipped.
LpProblem relaxation_of(const Model& model, bool* flip_objective = nullptr);

}  // namespace sparcs::milp

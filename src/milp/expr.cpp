#include "milp/expr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::milp {

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  constant_ += other.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  for (const LinTerm& term : other.terms_) {
    terms_.push_back({term.var, -term.coef});
  }
  constant_ -= other.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(double factor) {
  for (LinTerm& term : terms_) term.coef *= factor;
  constant_ *= factor;
  return *this;
}

void LinExpr::add_term(VarId var, double coef) {
  SPARCS_REQUIRE(var >= 0, "add_term requires a valid variable id");
  terms_.push_back({var, coef});
}

void LinExpr::normalize(double drop_tol) {
  std::sort(terms_.begin(), terms_.end(),
            [](const LinTerm& a, const LinTerm& b) { return a.var < b.var; });
  std::vector<LinTerm> merged;
  merged.reserve(terms_.size());
  for (const LinTerm& term : terms_) {
    if (!merged.empty() && merged.back().var == term.var) {
      merged.back().coef += term.coef;
    } else {
      merged.push_back(term);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [&](const LinTerm& t) {
                                return std::abs(t.coef) <= drop_tol;
                              }),
               merged.end());
  terms_ = std::move(merged);
}

double LinExpr::evaluate(const std::vector<double>& values) const {
  double total = constant_;
  for (const LinTerm& term : terms_) {
    SPARCS_REQUIRE(term.var >= 0 &&
                       static_cast<std::size_t>(term.var) < values.size(),
                   "assignment does not cover all variables");
    total += term.coef * values[static_cast<std::size_t>(term.var)];
  }
  return total;
}

std::string LinExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const LinTerm& term : terms_) {
    const double coef = term.coef;
    if (first) {
      if (coef < 0) os << "- ";
      first = false;
    } else {
      os << (coef < 0 ? " - " : " + ");
    }
    const double mag = std::abs(coef);
    if (mag != 1.0) os << trim_double(mag) << " ";
    os << "x" << term.var;
  }
  if (constant_ != 0.0 || first) {
    if (!first) os << (constant_ < 0 ? " - " : " + ");
    os << trim_double(first ? constant_ : std::abs(constant_));
  }
  return os.str();
}

LinExpr operator+(LinExpr lhs, const LinExpr& rhs) {
  lhs += rhs;
  return lhs;
}

LinExpr operator-(LinExpr lhs, const LinExpr& rhs) {
  lhs -= rhs;
  return lhs;
}

LinExpr operator*(double factor, LinExpr expr) {
  expr *= factor;
  return expr;
}

LinExpr operator*(LinExpr expr, double factor) {
  expr *= factor;
  return expr;
}

LinExpr operator-(LinExpr expr) {
  expr *= -1.0;
  return expr;
}

namespace {

Relation make_relation(LinExpr lhs, const LinExpr& rhs, Sense sense) {
  lhs -= rhs;
  const double constant = lhs.constant();
  LinExpr normalized = lhs - LinExpr(constant);
  normalized.normalize();
  return Relation{std::move(normalized), sense, -constant};
}

}  // namespace

Relation operator<=(LinExpr lhs, const LinExpr& rhs) {
  return make_relation(std::move(lhs), rhs, Sense::kLessEqual);
}

Relation operator>=(LinExpr lhs, const LinExpr& rhs) {
  return make_relation(std::move(lhs), rhs, Sense::kGreaterEqual);
}

Relation operator==(LinExpr lhs, const LinExpr& rhs) {
  return make_relation(std::move(lhs), rhs, Sense::kEqual);
}

}  // namespace sparcs::milp

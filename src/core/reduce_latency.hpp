// Algorithm Reduce_Latency (Figure 1): binary subdivision on the latency
// window for a fixed partition bound N. Each probe re-forms the ILP with a
// tighter upper bound and asks the solver for any feasible solution; a
// feasible probe moves the upper bound down to the achieved latency, an
// infeasible probe moves the lower bound up to the probed midpoint, until
// the window (or the gap to the incumbent) is below the latency tolerance
// delta.
#pragma once

#include <optional>

#include "arch/device.hpp"
#include "core/search_budget.hpp"
#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/task_graph.hpp"
#include "milp/types.hpp"

namespace sparcs::core {

struct ReduceLatencyParams {
  /// Shared tolerance/limit/formulation block (delta, solver, formulation).
  SearchBudget budget;
  /// Optional warm start for the first probe (e.g. the best design from a
  /// smaller partition bound); a greedy first-fit placement is used when
  /// absent or unusable within the window.
  std::optional<PartitionedDesign> warm_start;
};

struct ReduceLatencyResult {
  /// Best design found, or nullopt when the partition bound is infeasible
  /// (the paper's "Da = 0" case).
  std::optional<PartitionedDesign> best;
  double achieved_latency = 0.0;  ///< Da; 0 when infeasible
  int ilp_solves = 0;
  milp::SolverStats solver_stats;  ///< aggregate over all probes
  /// True when the refinement stopped early (deadline/cancellation) instead
  /// of converging the window to delta: `best` is an anytime result.
  bool cut_short = false;
};

/// Runs the latency refinement for `num_partitions`, appending one
/// IterationRecord per solve to `trace`.
ReduceLatencyResult reduce_latency(const graph::TaskGraph& graph,
                                   const arch::Device& device,
                                   int num_partitions, double d_max,
                                   double d_min,
                                   const ReduceLatencyParams& params,
                                   Trace& trace);

}  // namespace sparcs::core

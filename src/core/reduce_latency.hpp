// Algorithm Reduce_Latency (Figure 1): binary subdivision on the latency
// window for a fixed partition bound N. Each probe re-forms the ILP with a
// tighter upper bound and asks the solver for any feasible solution; a
// feasible probe moves the upper bound down to the achieved latency, an
// infeasible probe moves the lower bound up to the probed midpoint, until
// the window (or the gap to the incumbent) is below the latency tolerance
// delta.
#pragma once

#include <functional>
#include <optional>

#include "arch/device.hpp"
#include "core/search_budget.hpp"
#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/task_graph.hpp"
#include "milp/types.hpp"

namespace sparcs::core {

/// Mid-refinement state restored from a checkpoint. The refinement skips the
/// initial full-window probe and re-enters the subdivision loop exactly where
/// the interrupted run left it: same window, same incumbent, and iteration
/// numbering continuing from the saved count (so the resumed trace and solve
/// totals line up with an uninterrupted run's).
struct BisectionResume {
  double d_max = 0.0;
  double d_min = 0.0;
  int iteration = 0;  ///< probes already recorded before the interruption
  PartitionedDesign incumbent;
};

struct ReduceLatencyParams {
  /// Shared tolerance/limit/formulation block (delta, solver, formulation).
  SearchBudget budget;
  /// Optional warm start for the first probe (e.g. the best design from a
  /// smaller partition bound); a greedy first-fit placement is used when
  /// absent or unusable within the window.
  std::optional<PartitionedDesign> warm_start;
  /// Re-enter an interrupted refinement instead of starting the window from
  /// scratch (the caller's d_max/d_min arguments are superseded).
  std::optional<BisectionResume> resume;
  /// Observed after every probe that left an incumbent in hand, with the
  /// current window state — everything a checkpoint needs to re-enter here.
  /// Runs on the refinement's own thread; keep it cheap and exception-free.
  std::function<void(double d_max, double d_min, int iteration,
                     const PartitionedDesign& incumbent)>
      on_progress;
};

struct ReduceLatencyResult {
  /// Best design found, or nullopt when the partition bound is infeasible
  /// (the paper's "Da = 0" case).
  std::optional<PartitionedDesign> best;
  double achieved_latency = 0.0;  ///< Da; 0 when infeasible
  int ilp_solves = 0;
  milp::SolverStats solver_stats;  ///< aggregate over all probes
  /// True when the refinement stopped early (deadline/cancellation) instead
  /// of converging the window to delta: `best` is an anytime result.
  bool cut_short = false;
  /// True when a probe's verdict stayed uncertified after the distrust
  /// retry: the subdivision stopped on a conservative window (no bound was
  /// moved on the distrusted verdict) and `best` is the last certified
  /// incumbent. See DESIGN.md, "Certified verdicts".
  bool degraded = false;
};

/// Runs the latency refinement for `num_partitions`, appending one
/// IterationRecord per solve to `trace`.
ReduceLatencyResult reduce_latency(const graph::TaskGraph& graph,
                                   const arch::Device& device,
                                   int num_partitions, double d_max,
                                   double d_min,
                                   const ReduceLatencyParams& params,
                                   Trace& trace);

}  // namespace sparcs::core

#include "core/partitioner.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "core/deadline.hpp"
#include "core/formulation.hpp"
#include "milp/solver.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/stopwatch.hpp"

namespace sparcs::core {

TemporalPartitioner::TemporalPartitioner(const graph::TaskGraph& graph,
                                         const arch::Device& device,
                                         PartitionerOptions options)
    : graph_(graph), device_(device), options_(std::move(options)) {
  graph_.validate();
  device_.validate();
}

PartitionerReport TemporalPartitioner::run() const {
  PartitionerReport report;
  report.n_min_lower = min_area_partitions(graph_, device_);
  report.n_min_upper = max_area_partitions(graph_, device_);

  double delta = options_.budget.delta;
  if (delta <= 0.0) {
    const int n_start = report.n_min_lower + options_.alpha;
    delta = std::max(1e-9, options_.delta_fraction *
                               max_latency(graph_, device_, n_start));
  }
  report.delta_used = delta;

  RefinePartitionsParams params;
  params.alpha = options_.alpha;
  params.gamma = options_.gamma;
  params.budget = options_.budget;
  params.budget.delta = delta;
  params.max_partitions = options_.max_partitions;

  // Checkpoint/resume: the fingerprint binds the snapshot to everything that
  // shapes the search trajectory (graph, device, alpha/gamma/delta/cap,
  // formulation) — a resume against different inputs is rejected and the run
  // proceeds fresh, never mixing two searches.
  std::unique_ptr<CheckpointWriter> ckpt_writer;
  std::optional<SweepCheckpoint> restored;
  if (!options_.checkpoint.path.empty()) {
    const std::uint64_t fingerprint = checkpoint_fingerprint(
        graph_, device_, options_.alpha, options_.gamma, delta,
        options_.max_partitions, params.budget.formulation);
    if (options_.checkpoint.resume) {
      CheckpointLoadResult loaded = load_checkpoint(
          options_.checkpoint.path, fingerprint, graph_, device_);
      switch (loaded.status) {
        case CheckpointLoadStatus::kOk:
          restored = std::move(loaded.checkpoint);
          report.resumed = true;
          SPARCS_ILOG << "resuming sweep from checkpoint "
                      << options_.checkpoint.path;
          break;
        case CheckpointLoadStatus::kMissing:
          // Nothing to resume (first run, or the crash happened before the
          // first snapshot): a fresh run is exactly what --resume wants.
          SPARCS_ILOG << "no checkpoint to resume at "
                      << options_.checkpoint.path << "; starting fresh";
          break;
        default:
          report.resume_error = loaded.error;
          SPARCS_WLOG << "checkpoint " << options_.checkpoint.path
                      << " rejected (" << to_string(loaded.status)
                      << "): " << loaded.error << "; starting fresh";
          break;
      }
    }
    ckpt_writer = std::make_unique<CheckpointWriter>(
        options_.checkpoint.path, options_.checkpoint.min_interval_sec,
        fingerprint);
    if (options_.checkpoint.observer) {
      ckpt_writer->set_observer(options_.checkpoint.observer);
    }
    params.checkpoint = ckpt_writer.get();
    if (restored.has_value()) params.resume = &*restored;
  }

  // Deadline enforcement is layered: every solve clamps its time limit to
  // the remaining budget (cooperative), and the watchdog force-cancels the
  // run through the token if a solve still overruns by the grace margin.
  if (params.budget.deadline.valid() && !params.budget.solver.cancel.valid()) {
    params.budget.solver.cancel = milp::CancelToken::create();
  }
  const double grace =
      options_.watchdog_grace_sec > 0.0
          ? options_.watchdog_grace_sec
          : DeadlineWatchdog::default_grace_sec(params.budget.deadline);
  DeadlineWatchdog watchdog(params.budget.deadline, grace,
                            params.budget.solver.cancel);

  RefinePartitionsResult refined =
      refine_partitions_bound(graph_, device_, params);
  report.feasible = refined.best.has_value();
  report.best = std::move(refined.best);
  report.achieved_latency = refined.achieved_latency;
  report.best_num_partitions = refined.best_num_partitions;
  report.trace = std::move(refined.trace);
  report.ilp_solves = refined.ilp_solves;
  report.seconds = refined.seconds;
  report.stopped_by_lower_bound = refined.stopped_by_lower_bound;
  report.degraded = refined.degraded;
  report.watchdog_fired = watchdog.fired();
  report.stages = std::move(refined.stages);
  report.solver_stats = refined.solver_stats;

  if (report.best) {
    const DesignCheck check = validate_design(graph_, device_, *report.best);
    SPARCS_CHECK(check.ok, "partitioner returned an invalid design: " +
                               check.violation);
  }
  return report;
}

OptimalResult solve_optimal(const graph::TaskGraph& graph,
                            const arch::Device& device, int num_partitions,
                            milp::SolverParams solver_params,
                            FormulationOptions formulation) {
  Stopwatch stopwatch;
  IlpFormulation form(graph, device, num_partitions,
                      max_latency(graph, device, num_partitions),
                      min_latency(graph, device, num_partitions),
                      formulation);
  form.set_latency_objective();
  // Optimality proofs need the LP relaxation bound (bound propagation alone
  // cannot refute near-ties), and a 1 ns incumbent-improvement step: all
  // workload latencies are integral nanoseconds, so requiring the next
  // incumbent to be >= 1 ns better prunes the tie plateau without losing
  // the true optimum.
  solver_params = milp::optimality_params(std::move(solver_params));
  solver_params.objective_improvement =
      std::max(solver_params.objective_improvement, 1.0);
  milp::Solver solver(form.model(), solver_params);
  const milp::MilpSolution solution = solver.solve();
  OptimalResult result;
  result.status = solution.status;
  result.seconds = stopwatch.seconds();
  result.nodes = solution.nodes_explored;
  result.solver_stats = solution.stats;
  if (solution.has_solution()) {
    result.best = form.decode(solution.values);
    result.latency_ns = result.best->total_latency_ns;
  }
  return result;
}

OptimalResult solve_optimal_over_range(const graph::TaskGraph& graph,
                                       const arch::Device& device, int alpha,
                                       int gamma,
                                       milp::SolverParams solver_params,
                                       FormulationOptions formulation) {
  const int n_lo = min_area_partitions(graph, device) + alpha;
  const int n_hi = max_area_partitions(graph, device) + gamma;
  OptimalResult best;
  Stopwatch stopwatch;
  for (int n = n_lo; n <= n_hi; ++n) {
    OptimalResult r =
        solve_optimal(graph, device, n, solver_params, formulation);
    best.nodes += r.nodes;
    best.solver_stats.merge(r.solver_stats);
    if (r.best && (!best.best || r.latency_ns < best.latency_ns)) {
      best.best = std::move(r.best);
      best.latency_ns = r.latency_ns;
      best.status = r.status;
    } else if (!best.best) {
      best.status = r.status;
    }
  }
  best.seconds = stopwatch.seconds();
  return best;
}

}  // namespace sparcs::core

#include "core/baselines.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "support/error.hpp"

namespace sparcs::core {
namespace {

int pick_point(const graph::Task& task, PointPolicy policy) {
  const auto& points = task.design_points;
  int best = 0;
  for (int i = 1; i < static_cast<int>(points.size()); ++i) {
    const auto& cand = points[static_cast<std::size_t>(i)];
    const auto& incumbent = points[static_cast<std::size_t>(best)];
    bool better = false;
    switch (policy) {
      case PointPolicy::kMinArea:
        better = cand.area < incumbent.area;
        break;
      case PointPolicy::kMinLatency:
        better = cand.latency_ns < incumbent.latency_ns;
        break;
      case PointPolicy::kMaxArea:
        better = cand.area > incumbent.area;
        break;
    }
    if (better) best = i;
  }
  return best;
}

}  // namespace

std::optional<PartitionedDesign> greedy_first_fit(
    const graph::TaskGraph& graph, const arch::Device& device,
    PointPolicy policy, int max_partitions) {
  graph.validate();
  device.validate();

  PartitionedDesign design;
  design.assignment.assign(static_cast<std::size_t>(graph.num_tasks()), {});
  std::vector<double> used_area(static_cast<std::size_t>(max_partitions),
                                0.0);
  int highest = 1;
  for (const graph::TaskId t : graph::topological_order(graph)) {
    const int point = pick_point(graph.task(t), policy);
    const double area =
        graph.task(t).design_points[static_cast<std::size_t>(point)].area;
    if (area > device.resource_capacity) return std::nullopt;
    int p_min = 1;
    for (const graph::TaskId pred : graph.predecessors(t)) {
      p_min = std::max(
          p_min,
          design.assignment[static_cast<std::size_t>(pred)].partition);
    }
    int placed = -1;
    for (int p = p_min; p <= max_partitions; ++p) {
      if (used_area[static_cast<std::size_t>(p - 1)] + area <=
          device.resource_capacity + 1e-9) {
        placed = p;
        break;
      }
    }
    if (placed < 0) return std::nullopt;
    design.assignment[static_cast<std::size_t>(t)] =
        TaskAssignment{placed, point};
    used_area[static_cast<std::size_t>(placed - 1)] += area;
    highest = std::max(highest, placed);
  }
  design.num_partitions_allocated = highest;
  recompute_latency(graph, device, design);
  if (!validate_design(graph, device, design).ok) {
    return std::nullopt;  // e.g. the frozen points violate the memory budget
  }
  return design;
}

std::optional<PartitionedDesign> exhaustive_optimal(
    const graph::TaskGraph& graph, const arch::Device& device,
    int max_partitions) {
  graph.validate();
  device.validate();
  const int n_tasks = graph.num_tasks();
  SPARCS_REQUIRE(n_tasks <= 8, "exhaustive_optimal is for tiny graphs only");

  PartitionedDesign current;
  current.num_partitions_allocated = max_partitions;
  current.assignment.assign(static_cast<std::size_t>(n_tasks), {});
  std::optional<PartitionedDesign> best;
  double best_latency = std::numeric_limits<double>::infinity();

  const std::vector<graph::TaskId> order = graph::topological_order(graph);

  // Depth-first enumeration over (partition, point) per task in topological
  // order; precedence lets us prune partitions before the predecessors'.
  auto recurse = [&](auto&& self, std::size_t depth) -> void {
    if (depth == order.size()) {
      recompute_latency(graph, device, current);
      if (current.total_latency_ns < best_latency &&
          validate_design(graph, device, current).ok) {
        best = current;
        best_latency = current.total_latency_ns;
      }
      return;
    }
    const graph::TaskId t = order[depth];
    int p_min = 1;
    for (const graph::TaskId pred : graph.predecessors(t)) {
      p_min = std::max(
          p_min,
          current.assignment[static_cast<std::size_t>(pred)].partition);
    }
    const int n_points =
        static_cast<int>(graph.task(t).design_points.size());
    for (int p = p_min; p <= max_partitions; ++p) {
      for (int k = 0; k < n_points; ++k) {
        current.assignment[static_cast<std::size_t>(t)] =
            TaskAssignment{p, k};
        // Cheap area prune on the partial assignment.
        if (partition_area(graph, current, p) >
            device.resource_capacity + 1e-9) {
          continue;
        }
        self(self, depth + 1);
      }
    }
    current.assignment[static_cast<std::size_t>(t)] = TaskAssignment{};
  };
  recurse(recurse, 0);
  return best;
}

}  // namespace sparcs::core

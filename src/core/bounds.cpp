#include "core/bounds.hpp"

#include <cmath>

#include "graph/algorithms.hpp"
#include "support/error.hpp"

namespace sparcs::core {

int min_area_partitions(const graph::TaskGraph& graph,
                        const arch::Device& device) {
  graph.validate();
  device.validate();
  const double total = graph::total_task_weight(
      graph, [&](graph::TaskId t) { return graph.min_area(t); });
  return std::max(
      1, static_cast<int>(std::ceil(total / device.resource_capacity - 1e-9)));
}

int max_area_partitions(const graph::TaskGraph& graph,
                        const arch::Device& device) {
  graph.validate();
  device.validate();
  const double total = graph::total_task_weight(
      graph, [&](graph::TaskId t) { return graph.max_area(t); });
  return std::max(
      1, static_cast<int>(std::ceil(total / device.resource_capacity - 1e-9)));
}

double max_latency(const graph::TaskGraph& graph, const arch::Device& device,
                   int num_partitions) {
  SPARCS_REQUIRE(num_partitions >= 1, "need at least one partition");
  const double serial = graph::total_task_weight(
      graph, [&](graph::TaskId t) { return graph.max_latency(t); });
  return serial + num_partitions * device.reconfig_time_ns;
}

double min_latency(const graph::TaskGraph& graph, const arch::Device& device,
                   int num_partitions) {
  SPARCS_REQUIRE(num_partitions >= 1, "need at least one partition");
  return graph::min_latency_critical_path(graph) +
         num_partitions * device.reconfig_time_ns;
}

}  // namespace sparcs::core

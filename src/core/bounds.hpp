// Partition-count and latency bounds (Section 3.1 of the paper).
#pragma once

#include "arch/device.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {

/// MinAreaPartitions(): lower bound N^l_min on the number of partitions —
/// total area of the minimum-area design point of every task divided by the
/// device capacity, rounded up (at least 1).
int min_area_partitions(const graph::TaskGraph& graph,
                        const arch::Device& device);

/// MaxAreaPartitions(): N^u_min — the partition count needed if every task
/// used its maximum-area design point. Together with the ending partition
/// relaxation gamma this caps the partition-space sweep.
int max_area_partitions(const graph::TaskGraph& graph,
                        const arch::Device& device);

/// MaxLatency(N): all tasks serialized at their slowest design points, plus
/// the reconfiguration overhead of N partitions (upper bound, eq. in §3.1).
double max_latency(const graph::TaskGraph& graph, const arch::Device& device,
                   int num_partitions);

/// MinLatency(N): the critical path using each task's fastest design point,
/// plus the reconfiguration overhead of N partitions (lower bound).
double min_latency(const graph::TaskGraph& graph, const arch::Device& device,
                   int num_partitions);

}  // namespace sparcs::core

#include "core/reduce_latency.hpp"

#include "core/baselines.hpp"
#include "milp/solver.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/span.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

namespace sparcs::core {
namespace {

/// One FormModel() + SolveModel() probe of the window [d_min, d_max].
struct Probe {
  IterationOutcome outcome = IterationOutcome::kInfeasible;
  std::optional<PartitionedDesign> design;
  double seconds = 0.0;
  std::int64_t nodes = 0;
  milp::SolverStats stats;
  milp::CertifyStatus certified = milp::CertifyStatus::kNotRequested;
};

Probe solve_window(const graph::TaskGraph& graph, const arch::Device& device,
                   int num_partitions, double d_max, double d_min,
                   const ReduceLatencyParams& params,
                   const PartitionedDesign* hint) {
  Probe probe;
  // Fresh correlation id scoped over the probe: the span below and the
  // Solver::solve inside share it, which is what lets a telemetry sample, a
  // JSON log line and this trace span be joined post-hoc.
  const std::uint64_t corr =
      telemetry::active() ? telemetry::next_correlation_id() : 0;
  telemetry::CorrelationScope corr_scope(corr);
  trace::Span span("Reduce_Latency probe");
  span.arg("N", static_cast<std::int64_t>(num_partitions));
  span.arg("d_max", d_max);
  span.arg("d_min", d_min);
  if (corr != 0) span.arg("corr", static_cast<std::int64_t>(corr));
  Stopwatch stopwatch;
  IlpFormulation formulation(graph, device, num_partitions, d_max, d_min,
                             params.budget.formulation);
  if (hint != nullptr) formulation.apply_hints(*hint);
  // clamped_solver() caps the probe's time limit at the deadline's remaining
  // wall clock, so budget expiry surfaces from inside this solve.
  milp::Solver solver(formulation.model(),
                      milp::first_feasible_params(params.budget.clamped_solver()));
  const milp::MilpSolution solution = solver.solve();
  probe.seconds = stopwatch.seconds();
  probe.nodes = solution.nodes_explored;
  probe.stats = solution.stats;
  span.arg("status", milp::to_string(solution.status));
  // Emitted inside the correlation scope, so a --log-json record exists for
  // every probe that joins with the matching span and telemetry entries.
  SPARCS_DLOG << "probe N=" << num_partitions << " window=[" << d_min << ", "
              << d_max << "] -> " << milp::to_string(solution.status) << " in "
              << probe.seconds << " s (" << probe.nodes << " nodes)";
  switch (solution.status) {
    case milp::SolveStatus::kFeasible:
    case milp::SolveStatus::kOptimal:
      probe.outcome = IterationOutcome::kFeasible;
      probe.design = formulation.decode(solution.values);
      break;
    case milp::SolveStatus::kInfeasible:
      probe.outcome = IterationOutcome::kInfeasible;
      break;
    case milp::SolveStatus::kUnbounded:
    case milp::SolveStatus::kLimitReached:
    case milp::SolveStatus::kNumericalFailure:
      // A limit (or an unrecoverable numerical failure) without a solution
      // is treated like an infeasible probe by the search (as a time-limited
      // CPLEX run would be), but the trace records it distinctly.
      probe.outcome = IterationOutcome::kLimit;
      break;
  }
  probe.certified = solution.certified;
  if (solution.certified == milp::CertifyStatus::kUncertified) {
    // The verdict survived neither the exact check nor the distrust retry:
    // neither "a design exists" nor "none exists below this bound" can be
    // trusted, so the probe carries no design and moves no window bound.
    probe.outcome = IterationOutcome::kUncertified;
    probe.design.reset();
    SPARCS_WLOG << "probe N=" << num_partitions << " window=[" << d_min
                << ", " << d_max << "] verdict uncertified ("
                << solution.certify_detail << "); treating as inconclusive";
  }
  return probe;
}

}  // namespace

ReduceLatencyResult reduce_latency(const graph::TaskGraph& graph,
                                   const arch::Device& device,
                                   int num_partitions, double d_max,
                                   double d_min,
                                   const ReduceLatencyParams& params,
                                   Trace& trace) {
  SPARCS_REQUIRE(params.budget.delta > 0.0,
                 "latency tolerance delta must be > 0");
  trace::Span span("Reduce_Latency");
  span.arg("N", static_cast<std::int64_t>(num_partitions));
  ReduceLatencyResult result;
  // A resumed refinement continues the interrupted run's numbering: the
  // solves it already recorded count toward this stage's total, so a resumed
  // sweep reports the same per-stage solve counts as an uninterrupted one.
  int iteration = params.resume ? params.resume->iteration : 0;
  if (params.resume) result.ilp_solves = params.resume->iteration;

  auto record = [&](double ub, double lb, const Probe& probe) {
    IterationRecord row;
    row.num_partitions = num_partitions;
    row.iteration = ++iteration;
    row.d_max_bound = ub;
    row.d_min_bound = lb;
    row.outcome = probe.outcome;
    row.achieved_latency =
        probe.design ? probe.design->total_latency_ns : 0.0;
    row.seconds = probe.seconds;
    row.nodes = probe.nodes;
    row.stats = probe.stats;
    row.certified = probe.certified;
    trace.push_back(row);
    result.solver_stats.merge(probe.stats);
    ++result.ilp_solves;
  };

  // Warm-start portfolio (the analog of seeding CPLEX with MIP starts): the
  // caller's design plus greedy first-fit placements with min-area and
  // min-latency points. The two greedy shapes are structurally different
  // (few dense-packed partitions vs. level-style fast partitions), which
  // lets the DFS reach whichever regime the current latency window favors
  // without a global reshuffle.
  std::vector<PartitionedDesign> portfolio;
  if (params.warm_start.has_value() &&
      params.warm_start->num_partitions_used <= num_partitions) {
    portfolio.push_back(*params.warm_start);
  }
  for (const PointPolicy policy :
       {PointPolicy::kMinArea, PointPolicy::kMinLatency}) {
    if (auto design =
            greedy_first_fit(graph, device, policy, num_partitions)) {
      portfolio.push_back(std::move(*design));
    }
  }
  // Best hint for a window: the fastest portfolio design that satisfies the
  // latency bound, else the fastest overall (pure guidance).
  auto pick_hint = [&](double window_max) -> const PartitionedDesign* {
    const PartitionedDesign* fitting = nullptr;
    const PartitionedDesign* fastest = nullptr;
    for (const PartitionedDesign& design : portfolio) {
      if (fastest == nullptr ||
          design.total_latency_ns < fastest->total_latency_ns) {
        fastest = &design;
      }
      if (design.total_latency_ns <= window_max + 1e-9 &&
          (fitting == nullptr ||
           design.total_latency_ns < fitting->total_latency_ns)) {
        fitting = &design;
      }
    }
    return fitting != nullptr ? fitting : fastest;
  };

  // Everything a checkpoint needs to re-enter the loop below, published
  // after every probe once an incumbent exists.
  auto notify_progress = [&] {
    if (params.on_progress && result.best) {
      params.on_progress(d_max, d_min, iteration, *result.best);
    }
  };

  if (params.budget.interrupted()) {
    // Deadline already gone: report a cut-short, empty refinement rather
    // than launching a solve that cannot finish.
    result.cut_short = true;
    return result;
  }

  if (params.resume) {
    // Re-enter the interrupted refinement: the initial probe already ran in
    // the previous process, its incumbent and window carry over verbatim.
    d_max = params.resume->d_max;
    d_min = params.resume->d_min;
    result.best = params.resume->incumbent;
    result.achieved_latency = result.best->total_latency_ns;
    portfolio.push_back(*result.best);
    SPARCS_ILOG << "Reduce_Latency(N=" << num_partitions
                << ") resumed from checkpoint: window=[" << d_min << ", "
                << d_max << "], Da=" << result.achieved_latency << " after "
                << iteration << " solves";
  } else {
    Probe probe = solve_window(graph, device, num_partitions, d_max, d_min,
                               params, pick_hint(d_max));
    record(d_max, d_min, probe);
    if (probe.outcome != IterationOutcome::kFeasible) {
      result.cut_short = params.budget.interrupted();
      result.degraded = probe.outcome == IterationOutcome::kUncertified;
      return result;  // Da = 0: this partition bound yields no solution
    }
    result.best = std::move(probe.design);
    result.achieved_latency = result.best->total_latency_ns;
    portfolio.push_back(*result.best);
    notify_progress();
  }

  // Binary subdivision of the latency window. A cancellation or an expired
  // deadline unwinds here directly instead of burning a (fast but pointless)
  // probe per halving; `best` stays valid as the anytime incumbent.
  while (d_max - d_min >= params.budget.delta &&
         result.achieved_latency - d_min >= params.budget.delta &&
         !(result.cut_short = params.budget.interrupted())) {
    double target = (d_max + d_min) / 2.0;
    // The probe must ask for something strictly better than the incumbent.
    while (target >= result.achieved_latency) {
      target = (target + d_min) / 2.0;
    }
    // Warm-start from the portfolio (which includes the running incumbent):
    // the next solution is often a local perturbation of one of its shapes.
    Probe probe = solve_window(graph, device, num_partitions, target, d_min,
                               params, pick_hint(target));
    record(target, d_min, probe);
    if (probe.outcome == IterationOutcome::kUncertified) {
      // Conservative stop: raising d_min on a distrusted "infeasible" could
      // fence off the true optimum, and a distrusted "feasible" design must
      // not become the reported latency. The incumbent (last probe that DID
      // certify) stands; the window simply stops refining.
      result.degraded = true;
      break;
    }
    if (probe.outcome == IterationOutcome::kFeasible) {
      result.best = std::move(probe.design);
      result.achieved_latency = result.best->total_latency_ns;
      d_max = result.achieved_latency;
      portfolio.push_back(*result.best);
    } else {
      d_min = target;
    }
    notify_progress();
  }
  SPARCS_ILOG << "Reduce_Latency(N=" << num_partitions
              << ") achieved Da=" << result.achieved_latency << " ns in "
              << result.ilp_solves << " solves";
  return result;
}

}  // namespace sparcs::core

// Iteration trace records, mirroring the columns of the paper's result
// tables (N, I, Dmax, Dmin, Da / "Inf.").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "milp/types.hpp"

namespace sparcs::core {

/// Outcome of one SolveModel() call inside the refinement loops.
enum class IterationOutcome : std::uint8_t {
  kFeasible,
  kInfeasible,
  kLimit,  ///< solver hit its node/time budget without an answer
  /// The verdict failed exact certification even after the distrust retry:
  /// the refinement treats the probe as inconclusive (no window movement).
  kUncertified,
};

/// One row of the paper-style trace tables.
struct IterationRecord {
  int num_partitions = 0;       ///< N
  int iteration = 0;            ///< I (1-based within this N)
  double d_max_bound = 0.0;     ///< latency upper bound used by the solve
  double d_min_bound = 0.0;     ///< latency lower bound used by the solve
  IterationOutcome outcome = IterationOutcome::kInfeasible;
  double achieved_latency = 0.0;  ///< Da (recomputed), valid when feasible
  double seconds = 0.0;           ///< wall time of the solve
  std::int64_t nodes = 0;         ///< branch & bound nodes explored
  milp::SolverStats stats;        ///< full per-layer stats of the solve
  /// Exact-certificate status of the probe's verdict (kNotRequested unless
  /// the solve ran with --certify).
  milp::CertifyStatus certified = milp::CertifyStatus::kNotRequested;
};

using Trace = std::vector<IterationRecord>;

}  // namespace sparcs::core

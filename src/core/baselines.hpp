// Baseline partitioners for comparison:
//  - greedy first-fit with a fixed design-point policy, the "partition after
//    synthesis" approach of gate/RT-level temporal partitioners ([5],[11]):
//    design points are frozen before partitioning, so no design space
//    exploration happens;
//  - exhaustive enumeration for tiny instances, used by the property tests
//    as ground truth for the combined problem.
#pragma once

#include <optional>

#include "arch/device.hpp"
#include "core/solution.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {

/// How the greedy baseline freezes each task's design point.
enum class PointPolicy {
  kMinArea,     ///< smallest area (fewest partitions, slowest tasks)
  kMinLatency,  ///< fastest (largest area, most partitions)
  kMaxArea,     ///< largest area (for the N''/gamma heuristic of §3.2.2)
};

/// Greedy first-fit temporal partitioning with frozen design points: tasks in
/// topological order, each placed into the lowest-indexed partition that is
/// at or after all its predecessors and still has area for it. Returns
/// nullopt when no placement within `max_partitions` satisfies area and
/// memory constraints.
std::optional<PartitionedDesign> greedy_first_fit(
    const graph::TaskGraph& graph, const arch::Device& device,
    PointPolicy policy, int max_partitions = 64);

/// Exhaustively enumerates every (partition, design point) assignment with at
/// most `max_partitions` partitions and returns a minimum-total-latency valid
/// design (nullopt when none exists). Exponential: tiny graphs only.
std::optional<PartitionedDesign> exhaustive_optimal(
    const graph::TaskGraph& graph, const arch::Device& device,
    int max_partitions);

}  // namespace sparcs::core

#include "core/formulation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/algorithms.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

namespace sparcs::core {

using graph::TaskId;
using milp::LinExpr;
using milp::Sense;
using milp::VarId;

IlpFormulation::IlpFormulation(const graph::TaskGraph& graph,
                               const arch::Device& device, int num_partitions,
                               double d_max, double d_min,
                               FormulationOptions options)
    : graph_(graph),
      device_(device),
      n_(num_partitions),
      d_max_(d_max),
      d_min_(d_min),
      options_(options),
      model_("tp_n" + std::to_string(num_partitions)) {
  graph.validate();
  device.validate();
  SPARCS_REQUIRE(n_ >= 1, "need at least one partition");
  SPARCS_REQUIRE(d_min_ <= d_max_, "latency window is empty");

  create_variables();
  add_uniqueness();
  add_temporal_order();
  if (options_.include_memory &&
      std::isfinite(device_.memory_capacity)) {
    add_memory();
  }
  add_resource();
  bool use_paths = options_.latency_form == FormulationOptions::LatencyForm::kPathBased;
  if (use_paths) {
    const graph::PathEnumeration paths =
        graph::enumerate_root_leaf_paths(graph_, options_.max_paths);
    if (paths.truncated) {
      SPARCS_WLOG << "path enumeration exceeded " << options_.max_paths
                  << " paths; falling back to the flow-based latency form";
      flow_fallback_ = true;
      use_paths = false;
    }
  }
  if (use_paths) {
    add_latency_path_based();
  } else {
    add_latency_flow_based();
  }
  add_eta_definition();
  add_latency_window();
  if (options_.strengthening_cuts) add_strengthening_cuts();
}

void IlpFormulation::create_variables() {
  const int num_tasks = graph_.num_tasks();
  const std::vector<TaskId> topo = graph::topological_order(graph_);

  y_.assign(static_cast<std::size_t>(num_tasks), {});
  sorted_points_.assign(static_cast<std::size_t>(num_tasks), {});
  for (TaskId t = 0; t < num_tasks; ++t) {
    const auto& points = graph_.task(t).design_points;
    std::vector<int> order(points.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto& pa = points[static_cast<std::size_t>(a)];
      const auto& pb = points[static_cast<std::size_t>(b)];
      if (pa.latency_ns != pb.latency_ns) return pa.latency_ns < pb.latency_ns;
      return pa.area < pb.area;
    });
    sorted_points_[static_cast<std::size_t>(t)] = std::move(order);
  }

  // Y variables in topological task order so the DFS assigns producers
  // before consumers; priority decreases along the topological order.
  int topo_pos = 0;
  for (const TaskId t : topo) {
    auto& slots = y_[static_cast<std::size_t>(t)];
    const int points = num_points(t);
    slots.assign(static_cast<std::size_t>(n_ * points), -1);
    for (int p = 1; p <= n_; ++p) {
      for (int k = 0; k < points; ++k) {
        const auto& dp =
            graph_.task(t).design_points[static_cast<std::size_t>(
                design_point_index(t, k))];
        const VarId v = model_.add_binary(
            str_format("Y_p%d_%s_%s", p, graph_.task(t).name.c_str(),
                       dp.module_set.c_str()));
        model_.set_branch_priority(v, 2 * (num_tasks - topo_pos));
        slots[static_cast<std::size_t>((p - 1) * points + k)] = v;
      }
    }
    ++topo_pos;
  }

  const double d_ub = std::max(0.0, d_max_ - device_.reconfig_time_ns);
  d_.clear();
  for (int p = 1; p <= n_; ++p) {
    d_.push_back(
        model_.add_continuous(0.0, d_ub, "d_p" + std::to_string(p)));
  }
  eta_ = model_.add_integer(1, n_, "eta");
}

VarId IlpFormulation::y(TaskId t, int p, int k) const {
  SPARCS_REQUIRE(p >= 1 && p <= n_, "partition index out of range");
  const auto& slots = y_[static_cast<std::size_t>(t)];
  const int points = num_points(t);
  SPARCS_REQUIRE(k >= 0 && k < points, "design point index out of range");
  return slots[static_cast<std::size_t>((p - 1) * points + k)];
}

int IlpFormulation::num_points(TaskId t) const {
  return static_cast<int>(sorted_points_[static_cast<std::size_t>(t)].size());
}

int IlpFormulation::design_point_index(TaskId t, int k) const {
  return sorted_points_[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)];
}

VarId IlpFormulation::d(int p) const {
  SPARCS_REQUIRE(p >= 1 && p <= n_, "partition index out of range");
  return d_[static_cast<std::size_t>(p - 1)];
}

LinExpr IlpFormulation::y_sum(TaskId t, int p) const {
  LinExpr expr;
  for (int k = 0; k < num_points(t); ++k) expr += LinExpr(y(t, p, k));
  return expr;
}

LinExpr IlpFormulation::y_range_sum(TaskId t, int p_lo, int p_hi) const {
  LinExpr expr;
  for (int p = std::max(1, p_lo); p <= std::min(n_, p_hi); ++p) {
    expr += y_sum(t, p);
  }
  return expr;
}

LinExpr IlpFormulation::task_latency_expr(TaskId t) const {
  LinExpr expr;
  for (int p = 1; p <= n_; ++p) expr += task_latency_in_partition(t, p);
  return expr;
}

LinExpr IlpFormulation::task_latency_in_partition(TaskId t, int p) const {
  LinExpr expr;
  const auto& points = graph_.task(t).design_points;
  for (int k = 0; k < num_points(t); ++k) {
    const double latency =
        points[static_cast<std::size_t>(design_point_index(t, k))].latency_ns;
    expr += LinExpr(y(t, p, k), latency);
  }
  return expr;
}

LinExpr IlpFormulation::partition_index_expr(TaskId t) const {
  LinExpr expr;
  for (int p = 1; p <= n_; ++p) {
    for (int k = 0; k < num_points(t); ++k) {
      expr += LinExpr(y(t, p, k), static_cast<double>(p));
    }
  }
  return expr;
}

// (1): every task placed in exactly one partition with one module set.
void IlpFormulation::add_uniqueness() {
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
    model_.add_constraint(y_range_sum(t, 1, n_) == 1.0,
                          "uniq_" + graph_.task(t).name);
  }
}

// (2): a producer may not land in a later partition than its consumer.
// Ordering rows are only needed for the transitive reduction of the edge
// set; edges implied transitively add nothing (optional, on by default).
void IlpFormulation::add_temporal_order() {
  std::vector<int> order_edges;
  if (options_.reduce_order_edges) {
    order_edges = graph::transitive_reduction_edges(graph_);
  } else {
    order_edges.resize(static_cast<std::size_t>(graph_.num_edges()));
    for (int e = 0; e < graph_.num_edges(); ++e) {
      order_edges[static_cast<std::size_t>(e)] = e;
    }
  }
  for (const int ei : order_edges) {
    const graph::DataEdge& e = graph_.edges()[static_cast<std::size_t>(ei)];
    if (options_.order_form == FormulationOptions::OrderForm::kAggregated) {
      model_.add_constraint(
          partition_index_expr(e.from) <= partition_index_expr(e.to),
          str_format("order_%s_%s", graph_.task(e.from).name.c_str(),
                     graph_.task(e.to).name.c_str()));
      continue;
    }
    for (int p = 1; p <= n_ - 1; ++p) {
      // t2 in partition p excludes t1 from partitions p+1..N.
      LinExpr lhs = y_sum(e.to, p) + y_range_sum(e.from, p + 1, n_);
      model_.add_constraint(
          std::move(lhs) <= 1.0,
          str_format("order_%s_%s_p%d", graph_.task(e.from).name.c_str(),
                     graph_.task(e.to).name.c_str(), p));
    }
  }
}

// (3)-(5): live data while partition p executes must fit in M_max.
void IlpFormulation::add_memory() {
  // One w variable per edge per partition p in 2..N, with the linearized
  // lower bound w >= sum(t1 in 1..p-1) + sum(t2 in p..N) - 1 (eqs (4)/(5)).
  std::vector<std::vector<VarId>> w(graph_.edges().size());
  for (std::size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const graph::DataEdge& e = graph_.edges()[ei];
    if (e.data_units <= 0.0) continue;
    for (int p = 2; p <= n_; ++p) {
      const VarId wv = model_.add_binary(
          str_format("w_p%d_%s_%s", p, graph_.task(e.from).name.c_str(),
                     graph_.task(e.to).name.c_str()));
      model_.set_branch_hint(wv, 0.0);  // prefer "no crossing"
      w[ei].push_back(wv);
      LinExpr forcing = y_range_sum(e.from, 1, p - 1) +
                        y_range_sum(e.to, p, n_) - LinExpr(wv);
      model_.add_constraint(std::move(forcing) <= 1.0,
                            str_format("wdef_p%d_e%zu", p, ei));
    }
  }

  for (int p = 1; p <= n_; ++p) {
    LinExpr usage;
    bool any = false;
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const graph::Task& task = graph_.task(t);
      if (task.env_in > 0.0) {
        usage += task.env_in * y_range_sum(t, p, n_);
        any = true;
      }
      if (task.env_out > 0.0) {
        usage += task.env_out * y_range_sum(t, 1, p);
        any = true;
      }
    }
    for (std::size_t ei = 0; ei < graph_.edges().size(); ++ei) {
      const graph::DataEdge& e = graph_.edges()[ei];
      if (e.data_units <= 0.0 || p < 2) continue;
      usage += e.data_units * LinExpr(w[ei][static_cast<std::size_t>(p - 2)]);
      any = true;
    }
    if (any) {
      model_.add_constraint(std::move(usage) <= device_.memory_capacity,
                            "mem_p" + std::to_string(p));
    }
  }
}

// (6): per-partition area capacity.
void IlpFormulation::add_resource() {
  for (int p = 1; p <= n_; ++p) {
    LinExpr usage;
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      const auto& points = graph_.task(t).design_points;
      for (int k = 0; k < num_points(t); ++k) {
        const double area =
            points[static_cast<std::size_t>(design_point_index(t, k))].area;
        usage += LinExpr(y(t, p, k), area);
      }
    }
    model_.add_constraint(std::move(usage) <= device_.resource_capacity,
                          "area_p" + std::to_string(p));
  }
}

// (7): d_p dominates the latency of every root->leaf path restricted to p.
void IlpFormulation::add_latency_path_based() {
  const graph::PathEnumeration paths =
      graph::enumerate_root_leaf_paths(graph_, options_.max_paths);
  SPARCS_CHECK(!paths.truncated, "caller must have checked the path cap");
  for (std::size_t pi = 0; pi < paths.paths.size(); ++pi) {
    for (int p = 1; p <= n_; ++p) {
      LinExpr lhs;
      for (const TaskId t : paths.paths[pi]) {
        lhs += task_latency_in_partition(t, p);
      }
      lhs -= LinExpr(d(p));
      model_.add_constraint(std::move(lhs) <= 0.0,
                            str_format("lat_path%zu_p%d", pi, p));
    }
  }
}

// Flow-based alternative to (7): completion times chain along edges that do
// not cross a partition boundary; d_p dominates completions inside p.
void IlpFormulation::add_latency_flow_based() {
  const double big_m = std::max(0.0, d_max_ - device_.reconfig_time_ns);
  std::vector<VarId> completion;
  completion.reserve(static_cast<std::size_t>(graph_.num_tasks()));
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
    const VarId c = model_.add_continuous(0.0, big_m,
                                          "c_" + graph_.task(t).name);
    completion.push_back(c);
    // Completion covers at least the task's own latency.
    model_.add_constraint(task_latency_expr(t) - LinExpr(c) <= 0.0,
                          "cself_" + graph_.task(t).name);
  }
  for (std::size_t ei = 0; ei < graph_.edges().size(); ++ei) {
    const graph::DataEdge& e = graph_.edges()[ei];
    // z = 1 iff the edge crosses partitions.
    const VarId z = model_.add_binary(str_format(
        "z_%s_%s", graph_.task(e.from).name.c_str(),
        graph_.task(e.to).name.c_str()));
    LinExpr diff = partition_index_expr(e.to) - partition_index_expr(e.from);
    model_.add_constraint(static_cast<double>(n_) * LinExpr(z) >= diff,
                          str_format("zlo_e%zu", ei));
    model_.add_constraint(LinExpr(z) <= diff, str_format("zhi_e%zu", ei));
    // Same-partition chaining: c_t2 >= c_t1 + latency(t2) - M*z.
    LinExpr chain =
        LinExpr(completion[static_cast<std::size_t>(e.from)]) +
        task_latency_expr(e.to) - LinExpr(completion[static_cast<std::size_t>(e.to)]) -
        big_m * LinExpr(z);
    model_.add_constraint(std::move(chain) <= 0.0,
                          str_format("chain_e%zu", ei));
  }
  // d_p >= c_t when t is in p.
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
    for (int p = 1; p <= n_; ++p) {
      LinExpr lhs = LinExpr(completion[static_cast<std::size_t>(t)]) -
                    LinExpr(d(p)) - big_m * (1.0 - y_sum(t, p));
      model_.add_constraint(std::move(lhs) <= 0.0,
                            str_format("dcover_%s_p%d",
                                       graph_.task(t).name.c_str(), p));
    }
  }
}

// (8): eta dominates the partition index of every leaf task.
void IlpFormulation::add_eta_definition() {
  for (const TaskId t : graph_.leaves()) {
    model_.add_constraint(partition_index_expr(t) - LinExpr(eta_) <= 0.0,
                          "eta_" + graph_.task(t).name);
  }
}

// (9)/(10): total latency (execution plus reconfiguration) inside the window.
void IlpFormulation::add_latency_window() {
  LinExpr total;
  for (int p = 1; p <= n_; ++p) total += LinExpr(d(p));
  total += LinExpr(eta_, device_.reconfig_time_ns);
  model_.add_constraint(total <= d_max_, "latency_ub");
  LinExpr total2;
  for (int p = 1; p <= n_; ++p) total2 += LinExpr(d(p));
  total2 += LinExpr(eta_, device_.reconfig_time_ns);
  model_.add_constraint(std::move(total2) >= d_min_, "latency_lb");
}

// Valid inequalities: per-task area/latency aggregation variables give the
// solver's activity-based propagation a global view (e.g. total minimum area
// exceeding N * R_max is detected before any branching).
void IlpFormulation::add_strengthening_cuts() {
  LinExpr total_area;
  std::vector<VarId> task_latency_vars(
      static_cast<std::size_t>(graph_.num_tasks()), -1);
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
    const auto& points = graph_.task(t).design_points;
    const VarId a = model_.add_continuous(graph_.min_area(t),
                                          graph_.max_area(t),
                                          "a_" + graph_.task(t).name);
    LinExpr area_expr;
    for (int p = 1; p <= n_; ++p) {
      for (int k = 0; k < num_points(t); ++k) {
        area_expr += LinExpr(
            y(t, p, k),
            points[static_cast<std::size_t>(design_point_index(t, k))].area);
      }
    }
    model_.add_constraint(std::move(area_expr) - LinExpr(a) == 0.0,
                          "adef_" + graph_.task(t).name);
    total_area += LinExpr(a);

    const VarId l = model_.add_continuous(graph_.min_latency(t),
                                          graph_.max_latency(t),
                                          "l_" + graph_.task(t).name);
    model_.add_constraint(task_latency_expr(t) - LinExpr(l) == 0.0,
                          "ldef_" + graph_.task(t).name);
    task_latency_vars[static_cast<std::size_t>(t)] = l;
  }
  model_.add_constraint(std::move(total_area) <=
                            static_cast<double>(n_) *
                                device_.resource_capacity,
                        "total_area_cut");

  // For every root->leaf path: its tasks' latencies, wherever they land,
  // are covered by the sum of partition latencies.
  const graph::PathEnumeration paths =
      graph::enumerate_root_leaf_paths(graph_, options_.max_paths);
  if (!paths.truncated) {
    LinExpr dsum;
    for (int p = 1; p <= n_; ++p) dsum += LinExpr(d(p));
    for (std::size_t pi = 0; pi < paths.paths.size(); ++pi) {
      LinExpr lhs;
      for (const TaskId t : paths.paths[pi]) {
        lhs += LinExpr(task_latency_vars[static_cast<std::size_t>(t)]);
      }
      lhs -= dsum;
      model_.add_constraint(std::move(lhs) <= 0.0,
                            str_format("path_cut%zu", pi));
    }
  }
}

void IlpFormulation::apply_hints(const PartitionedDesign& design) {
  SPARCS_REQUIRE(static_cast<int>(design.assignment.size()) ==
                     graph_.num_tasks(),
                 "hint design does not cover all tasks");
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
    const TaskAssignment& a = design.assignment[static_cast<std::size_t>(t)];
    if (a.partition < 1 || a.partition > n_) continue;  // not hintable here
    for (int p = 1; p <= n_; ++p) {
      for (int k = 0; k < num_points(t); ++k) {
        const bool selected =
            p == a.partition && design_point_index(t, k) == a.design_point;
        model_.set_branch_hint(y(t, p, k), selected ? 1.0 : 0.0);
      }
    }
  }
}

void IlpFormulation::set_latency_objective() {
  LinExpr obj;
  for (int p = 1; p <= n_; ++p) obj += LinExpr(d(p));
  obj += LinExpr(eta_, device_.reconfig_time_ns);
  model_.set_objective(std::move(obj), /*minimize=*/true);
}

PartitionedDesign IlpFormulation::decode(
    const std::vector<double>& values) const {
  SPARCS_REQUIRE(static_cast<int>(values.size()) == model_.num_vars(),
                 "assignment arity mismatch");
  PartitionedDesign design;
  design.num_partitions_allocated = n_;
  design.assignment.assign(static_cast<std::size_t>(graph_.num_tasks()), {});
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
    bool found = false;
    for (int p = 1; p <= n_ && !found; ++p) {
      for (int k = 0; k < num_points(t) && !found; ++k) {
        if (values[static_cast<std::size_t>(y(t, p, k))] > 0.5) {
          design.assignment[static_cast<std::size_t>(t)] =
              TaskAssignment{p, design_point_index(t, k)};
          found = true;
        }
      }
    }
    SPARCS_CHECK(found, "no Y variable selected for task " +
                            graph_.task(t).name);
  }
  recompute_latency(graph_, device_, design);
  return design;
}

}  // namespace sparcs::core

// Wall-clock deadline for the whole partitioning pipeline, threaded from
// PartitionerOptions through SearchBudget into every milp::Solver call: the
// remaining budget becomes each solve's time_limit_sec, so an expired
// deadline unwinds the sweep from inside a solve instead of waiting for the
// next between-probe poll. A DeadlineWatchdog force-cancels (via CancelToken)
// any session that misses the deadline by a grace margin.
#pragma once

#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "milp/types.hpp"

namespace sparcs::core {

/// A monotonic-clock deadline. Default-constructed deadlines never expire
/// (and report an infinite remaining budget), so existing unconstrained runs
/// behave bit-identically.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `seconds` of wall time from now (monotonic clock).
  [[nodiscard]] static Deadline after_seconds(double seconds) {
    Deadline d;
    d.valid_ = true;
    d.horizon_sec_ = seconds;
    d.at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// True when this deadline can expire.
  [[nodiscard]] bool valid() const { return valid_; }

  /// Wall time until expiry, in seconds (negative once expired; +inf when
  /// the deadline is inert).
  [[nodiscard]] double remaining_sec() const {
    if (!valid_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - clock::now()).count();
  }

  [[nodiscard]] bool expired() const { return valid_ && remaining_sec() <= 0.0; }

  /// The total budget this deadline was created with (+inf when inert);
  /// used to size the watchdog's grace margin.
  [[nodiscard]] double horizon_sec() const { return horizon_sec_; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point at_{};
  double horizon_sec_ = std::numeric_limits<double>::infinity();
  bool valid_ = false;
};

/// Background thread that requests cancellation through `token` when the
/// deadline is missed by `grace_sec` — the backstop for a solve stuck past
/// its clamped time limit (numerical stall, stuck worker). Destruction stops
/// the thread without firing. No thread is spawned for an inert deadline.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(const Deadline& deadline, double grace_sec,
                   milp::CancelToken token);
  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;
  ~DeadlineWatchdog();

  /// True when the watchdog timed out and force-cancelled the pipeline.
  [[nodiscard]] bool fired() const;

  /// Default grace margin for a deadline: 10% of the horizon, floored so
  /// very tight deadlines still get a scheduling-jitter allowance.
  [[nodiscard]] static double default_grace_sec(const Deadline& deadline);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool fired_ = false;
  std::thread thread_;
};

}  // namespace sparcs::core

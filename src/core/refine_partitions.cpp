#include "core/refine_partitions.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "core/bounds.hpp"
#include "core/checkpoint.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/span.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

namespace sparcs::core {
namespace {

/// A Reduce_Latency run for partition bound `n` launched on a worker thread
/// while the sweep is still busy with `n - 1`. Its iterations go into a
/// private trace buffer; the sweep either adopts them (when the launch-time
/// window turns out to equal the one the serial sweep would have used) or
/// cancels the run and discards the buffer. The destructor cancels and
/// joins, so an unwinding sweep never leaks the worker.
struct SpeculativeProbe {
  int n = 0;
  double d_max = 0.0;  ///< launch-time window upper bound (predicted Da)
  milp::CancelToken cancel;
  Trace trace;
  ReduceLatencyResult result;
  std::exception_ptr error;
  std::thread thread;

  ~SpeculativeProbe() { discard(); }

  void join() {
    if (thread.joinable()) thread.join();
  }

  void discard() {
    cancel.request_cancel();
    join();
  }
};

std::unique_ptr<SpeculativeProbe> launch_speculative(
    const graph::TaskGraph& graph, const arch::Device& device, int n,
    double d_max, double d_min, const ReduceLatencyParams& inner) {
  auto spec = std::make_unique<SpeculativeProbe>();
  spec->n = n;
  spec->d_max = d_max;
  spec->cancel = milp::CancelToken::create();
  ReduceLatencyParams params = inner;  // worker-private copy
  params.budget.solver.cancel = spec->cancel;
  // Speculative runs must not touch the durable sweep state: no progress
  // snapshots (the serial sweep owns the checkpoint), and never a bisection
  // resume (that state belongs to the stage the sweep re-enters inline).
  params.on_progress = nullptr;
  params.resume.reset();
  spec->thread = std::thread([probe = spec.get(), &graph, &device, n, d_max,
                              d_min, params = std::move(params)] {
    try {
      probe->result = reduce_latency(graph, device, n, d_max, d_min, params,
                                     probe->trace);
    } catch (...) {
      probe->error = std::current_exception();
    }
  });
  return spec;
}

/// Speculation needs a second execution lane: disabled when the solver is
/// pinned to one thread or the machine only has one.
bool speculation_enabled(const SearchBudget& budget) {
  if (budget.solver.num_threads == 1) return false;
  if (budget.solver.num_threads > 1) return true;
  return std::thread::hardware_concurrency() > 1;
}

}  // namespace

std::string to_string(StageStatus status) {
  switch (status) {
    case StageStatus::kProbed:
      return "probed";
    case StageStatus::kCutShort:
      return "cut-short";
    case StageStatus::kSkipped:
      return "skipped";
    case StageStatus::kDegraded:
      return "degraded";
  }
  return "unknown";
}

RefinePartitionsResult refine_partitions_bound(
    const graph::TaskGraph& graph, const arch::Device& device,
    const RefinePartitionsParams& params) {
  SPARCS_REQUIRE(params.alpha >= 0, "alpha must be non-negative");
  SPARCS_REQUIRE(params.gamma >= 0, "gamma must be non-negative");
  graph.validate();
  device.validate();

  RefinePartitionsResult result;
  trace::Span sweep_span("Refine_Partitions_Bound");
  Stopwatch stopwatch;

  ReduceLatencyParams inner;
  inner.budget = params.budget;

  const int n_min_lower = min_area_partitions(graph, device);
  const int n_min_upper = max_area_partitions(graph, device);
  const int n_stop = n_min_upper + params.gamma;
  const bool speculate = speculation_enabled(params.budget);

  // ---- checkpoint plumbing ----
  // `ckpt` is the evolving durable state: completed stages only, kept apart
  // from result.stages (which finish() additionally pollutes with skipped
  // placeholders). Mid-refinement snapshots carry the pre-stage globals plus
  // an in_progress window; stage completions fold the stage in and clear it.
  CheckpointWriter* const ckpt_writer = params.checkpoint;
  const SweepCheckpoint* const resume = params.resume;
  SweepCheckpoint ckpt;
  double base_seconds = 0.0;

  auto sync_ckpt_globals = [&] {
    ckpt.best = result.best;
    ckpt.achieved_latency = result.achieved_latency;
    ckpt.best_num_partitions = result.best_num_partitions;
    ckpt.ilp_solves = result.ilp_solves;
    ckpt.seconds = base_seconds + stopwatch.seconds();
    ckpt.stopped_by_lower_bound = result.stopped_by_lower_bound;
  };

  /// Declares the stage the sweep is about to run: mid-refinement snapshots
  /// written while it runs restore to "re-enter stage `stage_n` in `phase`,
  /// globals as of the previous stage".
  auto arm_stage = [&](int stage_n, int phase) {
    inner.on_progress = nullptr;
    if (ckpt_writer == nullptr) return;
    ckpt.phase = phase;
    ckpt.next_n = stage_n;
    sync_ckpt_globals();
    inner.on_progress = [&ckpt, ckpt_writer, stage_n](
                            double d_max, double d_min, int iteration,
                            const PartitionedDesign& incumbent) {
      CheckpointInProgress ip;
      ip.num_partitions = stage_n;
      ip.d_max = d_max;
      ip.d_min = d_min;
      ip.iteration = iteration;
      ip.achieved_latency = incumbent.total_latency_ns;
      ip.incumbent = incumbent;
      ckpt.in_progress = std::move(ip);
      ckpt_writer->write(ckpt, /*force=*/false);
    };
  };

  /// Persists a completed (not cut-short) stage. Cut-short stages are never
  /// recorded as done: a resume re-enters them through in_progress instead.
  auto checkpoint_stage_done = [&](int stage_n, bool cut_short, int phase) {
    if (ckpt_writer == nullptr || cut_short) return;
    ckpt.stages.push_back(result.stages.back());
    ckpt.in_progress.reset();
    ckpt.phase = phase;
    ckpt.next_n = stage_n + 1;
    sync_ckpt_globals();
    ckpt_writer->write(ckpt, /*force=*/true);
  };

  if (resume != nullptr) {
    // Restore the globals of the interrupted run; the loops below then skip
    // every stage the checkpoint accounts as completed.
    result.best = resume->best;
    result.achieved_latency = resume->achieved_latency;
    result.best_num_partitions = resume->best_num_partitions;
    result.ilp_solves = resume->ilp_solves;
    result.stages = resume->stages;
    result.stopped_by_lower_bound = resume->stopped_by_lower_bound;
    base_seconds = resume->seconds;
    ckpt = *resume;
    if (result.best) {
      telemetry::publish_best_latency(result.achieved_latency,
                                      result.best_num_partitions);
    }
    SPARCS_ILOG << "Refine_Partitions_Bound: resuming from checkpoint ("
                << resume->stages.size() << " stages done, phase "
                << resume->phase << ", next N=" << resume->next_n
                << (resume->in_progress ? ", mid-refinement" : "") << ")";
  }

  auto time_expired = [&] {
    return stopwatch.seconds() >= params.budget.time_budget_sec ||
           params.budget.interrupted();
  };

  /// Appends the stage account for partition bound `n`: its solve count and
  /// the solver wall time of the trace rows it appended (uniform across
  /// inline and adopted speculative runs).
  auto record_stage = [&](int stage_n, const ReduceLatencyResult& reduced,
                          std::size_t first_row) {
    StageAccount account;
    account.num_partitions = stage_n;
    account.status = reduced.cut_short    ? StageStatus::kCutShort
                     : reduced.degraded ? StageStatus::kDegraded
                                        : StageStatus::kProbed;
    account.solves = reduced.ilp_solves;
    for (std::size_t i = first_row; i < result.trace.size(); ++i) {
      account.seconds += result.trace[i].seconds;
    }
    result.stages.push_back(account);
  };

  /// Marks every bound in [first_n, n_stop] as skipped: the budget expired
  /// before the sweep reached them.
  auto mark_skipped = [&](int first_n, int n_stop_bound) {
    for (int skipped = first_n; skipped <= n_stop_bound; ++skipped) {
      result.stages.push_back(
          StageAccount{skipped, StageStatus::kSkipped, 0, 0.0});
    }
  };

  /// Folds a finished speculative run into the result as if the sweep had
  /// run it inline. Valid only when its launch-time inputs match the ones
  /// the serial sweep would use at this point.
  auto adopt = [&](SpeculativeProbe& spec) -> ReduceLatencyResult {
    spec.join();
    if (spec.error) std::rethrow_exception(spec.error);
    result.trace.insert(result.trace.end(), spec.trace.begin(),
                        spec.trace.end());
    result.ilp_solves += spec.result.ilp_solves;
    result.solver_stats.merge(spec.result.solver_stats);
    return std::move(spec.result);
  };

  auto finish = [&] {
    // Normalization rule: the trace is ordered by (N, iteration). Inline
    // runs append in exactly that order and adopted buffers slot in at
    // their N, so this is a stable no-op re-ordering that pins the
    // determinism contract regardless of how probes were scheduled.
    std::stable_sort(result.trace.begin(), result.trace.end(),
                     [](const IterationRecord& a, const IterationRecord& b) {
                       return a.num_partitions != b.num_partitions
                                  ? a.num_partitions < b.num_partitions
                                  : a.iteration < b.iteration;
                     });
    // A stage interrupted mid-refinement — or stopped on an uncertified
    // verdict — degrades the result even when the sweep then terminated at
    // its natural end of range.
    for (const StageAccount& account : result.stages) {
      if (account.status == StageStatus::kCutShort ||
          account.status == StageStatus::kDegraded) {
        result.degraded = true;
      }
    }
    result.seconds = base_seconds + stopwatch.seconds();
    if (ckpt_writer != nullptr) {
      if (!result.degraded) {
        // Natural termination: seal the checkpoint as a complete record of
        // the answer; resuming it reproduces the report without solving.
        ckpt.complete = true;
        ckpt.in_progress.reset();
        sync_ckpt_globals();
      }
      // A degraded finish deliberately does NOT sync the globals: the
      // cut-short stage's partial solves are already folded into
      // result.ilp_solves, but on resume that stage re-runs from
      // in_progress and re-reports its full count — syncing here would
      // double-count them. The checkpoint keeps the last consistent
      // (stage-boundary) globals plus the freshest in_progress window,
      // which the throttle may have withheld from disk until now.
      ckpt_writer->write(ckpt, /*force=*/true);
    }
    telemetry::publish_degraded(result.degraded);
    telemetry::set_stage("done", result.best_num_partitions);
  };

  std::unique_ptr<SpeculativeProbe> spec;

  if (resume != nullptr && resume->complete) {
    // The interrupted run had already terminated naturally; the restored
    // globals and stage accounts ARE the final answer.
    finish();
    return result;
  }

  // The stage (if any) the checkpoint left mid-refinement; consumed by the
  // first matching stage below, which re-enters its bisection window.
  int resume_mid_stage = -1;
  if (resume != nullptr && resume->in_progress) {
    resume_mid_stage = resume->in_progress->num_partitions;
  }
  auto consume_mid_stage = [&](int stage_n) {
    inner.resume.reset();
    if (resume_mid_stage != stage_n) return;
    BisectionResume bisection;
    bisection.d_max = resume->in_progress->d_max;
    bisection.d_min = resume->in_progress->d_min;
    bisection.iteration = resume->in_progress->iteration;
    bisection.incumbent = resume->in_progress->incumbent;
    inner.resume = std::move(bisection);
    resume_mid_stage = -1;
  };

  // Phase 1: find the first feasible partition bound, starting at
  // N^l_min + alpha and incrementing while Reduce_Latency returns Da = 0.
  // Any design uses at most one partition per task, so feasibility is
  // settled once N reaches the task count: growing N further cannot help.
  // Phase-1 windows depend only on N, so a speculative run for N+1 is
  // always adoptable when the sweep reaches N+1.
  const int n_phase1_cap = std::min(
      params.max_partitions, std::max(graph.num_tasks(), n_stop));
  int n = n_min_lower + params.alpha;
  const bool skip_phase1 = resume != nullptr && resume->phase == 2;
  if (skip_phase1) {
    // The checkpointed run already found its first feasible bound; re-enter
    // phase 2 so its next iteration probes exactly N = resume->next_n.
    n = std::max(n, resume->next_n - 1);
  } else {
    if (resume != nullptr) n = std::max(n, resume->next_n);
    while (true) {
      if (n > n_phase1_cap) {
        finish();
        return result;  // provably no solution in the explorable range
      }
      telemetry::set_stage("phase1", n);
      arm_stage(n, /*phase=*/1);
      consume_mid_stage(n);
      ReduceLatencyResult reduced;
      const std::size_t first_row = result.trace.size();
      if (spec != nullptr && spec->n == n) {
        reduced = adopt(*spec);
        spec.reset();
      } else {
        spec.reset();
        if (speculate && n + 1 <= n_phase1_cap && !time_expired()) {
          spec = launch_speculative(graph, device, n + 1,
                                    max_latency(graph, device, n + 1),
                                    min_latency(graph, device, n + 1), inner);
        }
        const double d_max = max_latency(graph, device, n);
        const double d_min = min_latency(graph, device, n);
        reduced = reduce_latency(graph, device, n, d_max, d_min, inner,
                                 result.trace);
        result.ilp_solves += reduced.ilp_solves;
        result.solver_stats.merge(reduced.solver_stats);
      }
      record_stage(n, reduced, first_row);
      if (reduced.best) {
        result.best = std::move(reduced.best);
        result.achieved_latency = reduced.achieved_latency;
        result.best_num_partitions = n;
        telemetry::publish_best_latency(result.achieved_latency, n);
        checkpoint_stage_done(n, reduced.cut_short, /*phase=*/2);
        // Any in-flight speculation used the phase-1 window for N+1; phase 2
        // caps the window at Da instead, so the prediction cannot match.
        spec.reset();
        break;
      }
      checkpoint_stage_done(n, reduced.cut_short, /*phase=*/1);
      if (time_expired()) {
        spec.reset();
        result.degraded = true;
        mark_skipped(n + 1, n_stop);
        finish();
        return result;  // no solution within the budget
      }
      ++n;
    }
  }

  // Phase 2: relax N looking for strictly better solutions; the achieved
  // latency Da becomes the upper bound of every further search. The
  // speculative run for N+1 predicts that N will not improve Da (the common
  // case near the end of a sweep); when N does improve, the prediction is
  // wrong, the run is cancelled, and N+1 is probed inline with the true Da.
  while (n < n_stop && !time_expired()) {
    ++n;
    telemetry::set_stage("phase2", n);
    const double d_min = min_latency(graph, device, n);
    if (d_min >= result.achieved_latency) {
      // Even a perfect schedule at N partitions pays more reconfiguration
      // overhead than the incumbent: the incumbent is final.
      result.stopped_by_lower_bound = true;
      break;
    }
    arm_stage(n, /*phase=*/2);
    consume_mid_stage(n);
    // Seed the new partition bound with the incumbent design: it stays valid
    // when N grows and focuses the solver on local improvements.
    inner.warm_start = result.best;
    ReduceLatencyResult reduced;
    const std::size_t first_row = result.trace.size();
    if (spec != nullptr && spec->n == n &&
        spec->d_max == result.achieved_latency) {
      // Prediction held (the previous bound left Da — and therefore the
      // warm start — unchanged): the speculative run saw exactly the
      // serial sweep's inputs.
      reduced = adopt(*spec);
      spec.reset();
    } else {
      spec.reset();
      if (speculate && n + 1 <= n_stop) {
        const double d_min_next = min_latency(graph, device, n + 1);
        if (d_min_next < result.achieved_latency) {
          spec = launch_speculative(graph, device, n + 1,
                                    result.achieved_latency, d_min_next,
                                    inner);
        }
      }
      reduced = reduce_latency(graph, device, n, result.achieved_latency,
                               d_min, inner, result.trace);
      result.ilp_solves += reduced.ilp_solves;
      result.solver_stats.merge(reduced.solver_stats);
    }
    record_stage(n, reduced, first_row);
    if (reduced.best &&
        reduced.achieved_latency < result.achieved_latency) {
      result.best = std::move(reduced.best);
      result.achieved_latency = reduced.achieved_latency;
      result.best_num_partitions = n;
      telemetry::publish_best_latency(result.achieved_latency, n);
    }
    checkpoint_stage_done(n, reduced.cut_short, /*phase=*/2);
  }
  spec.reset();
  if (!result.stopped_by_lower_bound && n < n_stop) {
    // The phase-2 loop gave up before its natural end of range: the budget
    // or deadline expired. Account the bounds that never ran.
    result.degraded = true;
    mark_skipped(n + 1, n_stop);
  }

  finish();
  sweep_span.arg("Da_ns", result.achieved_latency);
  sweep_span.arg("best_N", static_cast<std::int64_t>(result.best_num_partitions));
  sweep_span.arg("ilp_solves", static_cast<std::int64_t>(result.ilp_solves));
  if (metrics::enabled()) {
    metrics::Registry& reg = metrics::registry();
    reg.counter("core.sweeps").add(1);
    if (result.degraded) reg.counter("core.sweeps_degraded").add(1);
    reg.counter("core.ilp_solves").add(result.ilp_solves);
    reg.timer("core.sweep").record(result.seconds);
    if (result.best) {
      reg.gauge("core.best_latency_ns").set(result.achieved_latency);
      reg.gauge("core.best_num_partitions")
          .set(static_cast<double>(result.best_num_partitions));
    }
  }
  SPARCS_ILOG << "Refine_Partitions_Bound: Da=" << result.achieved_latency
              << " ns at N=" << result.best_num_partitions << " ("
              << result.ilp_solves << " solves, "
              << result.seconds << " s)";
  return result;
}

}  // namespace sparcs::core

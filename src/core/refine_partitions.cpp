#include "core/refine_partitions.hpp"

#include <algorithm>

#include "core/bounds.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/span.hpp"
#include "support/stopwatch.hpp"

namespace sparcs::core {

RefinePartitionsResult refine_partitions_bound(
    const graph::TaskGraph& graph, const arch::Device& device,
    const RefinePartitionsParams& params) {
  SPARCS_REQUIRE(params.alpha >= 0, "alpha must be non-negative");
  SPARCS_REQUIRE(params.gamma >= 0, "gamma must be non-negative");
  graph.validate();
  device.validate();

  RefinePartitionsResult result;
  trace::Span sweep_span("Refine_Partitions_Bound");
  Stopwatch stopwatch;

  ReduceLatencyParams inner;
  inner.delta = params.delta;
  inner.solver = params.solver;
  inner.formulation = params.formulation;

  const int n_min_lower = min_area_partitions(graph, device);
  const int n_min_upper = max_area_partitions(graph, device);
  const int n_stop = n_min_upper + params.gamma;

  auto time_expired = [&] {
    return stopwatch.seconds() >= params.time_budget_sec;
  };

  // Phase 1: find the first feasible partition bound, starting at
  // N^l_min + alpha and incrementing while Reduce_Latency returns Da = 0.
  // Any design uses at most one partition per task, so feasibility is
  // settled once N reaches the task count: growing N further cannot help.
  const int n_phase1_cap = std::min(
      params.max_partitions, std::max(graph.num_tasks(), n_stop));
  int n = n_min_lower + params.alpha;
  while (true) {
    if (n > n_phase1_cap) {
      result.seconds = stopwatch.seconds();
      return result;  // provably no solution in the explorable range
    }
    const double d_max = max_latency(graph, device, n);
    const double d_min = min_latency(graph, device, n);
    ReduceLatencyResult reduced = reduce_latency(graph, device, n, d_max,
                                                 d_min, inner, result.trace);
    result.ilp_solves += reduced.ilp_solves;
    result.solver_stats.merge(reduced.solver_stats);
    if (reduced.best) {
      result.best = std::move(reduced.best);
      result.achieved_latency = reduced.achieved_latency;
      result.best_num_partitions = n;
      break;
    }
    if (time_expired()) {
      result.seconds = stopwatch.seconds();
      return result;  // no solution within the budget
    }
    ++n;
  }

  // Phase 2: relax N looking for strictly better solutions; the achieved
  // latency Da becomes the upper bound of every further search.
  while (n < n_stop && !time_expired()) {
    ++n;
    const double d_min = min_latency(graph, device, n);
    if (d_min >= result.achieved_latency) {
      // Even a perfect schedule at N partitions pays more reconfiguration
      // overhead than the incumbent: the incumbent is final.
      result.stopped_by_lower_bound = true;
      break;
    }
    // Seed the new partition bound with the incumbent design: it stays valid
    // when N grows and focuses the solver on local improvements.
    inner.warm_start = result.best;
    ReduceLatencyResult reduced =
        reduce_latency(graph, device, n, result.achieved_latency, d_min,
                       inner, result.trace);
    result.ilp_solves += reduced.ilp_solves;
    result.solver_stats.merge(reduced.solver_stats);
    if (reduced.best &&
        reduced.achieved_latency < result.achieved_latency) {
      result.best = std::move(reduced.best);
      result.achieved_latency = reduced.achieved_latency;
      result.best_num_partitions = n;
    }
  }

  result.seconds = stopwatch.seconds();
  sweep_span.arg("Da_ns", result.achieved_latency);
  sweep_span.arg("best_N", static_cast<std::int64_t>(result.best_num_partitions));
  sweep_span.arg("ilp_solves", static_cast<std::int64_t>(result.ilp_solves));
  if (metrics::enabled()) {
    metrics::Registry& reg = metrics::registry();
    reg.counter("core.sweeps").add(1);
    reg.counter("core.ilp_solves").add(result.ilp_solves);
    reg.timer("core.sweep").record(result.seconds);
    if (result.best) {
      reg.gauge("core.best_latency_ns").set(result.achieved_latency);
      reg.gauge("core.best_num_partitions")
          .set(static_cast<double>(result.best_num_partitions));
    }
  }
  SPARCS_ILOG << "Refine_Partitions_Bound: Da=" << result.achieved_latency
              << " ns at N=" << result.best_num_partitions << " ("
              << result.ilp_solves << " solves, "
              << result.seconds << " s)";
  return result;
}

}  // namespace sparcs::core

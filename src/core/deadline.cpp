#include "core/deadline.hpp"

#include <algorithm>

#include "support/metrics.hpp"

namespace sparcs::core {

double DeadlineWatchdog::default_grace_sec(const Deadline& deadline) {
  if (!deadline.valid()) return 0.0;
  return std::max(0.05, 0.1 * deadline.horizon_sec());
}

DeadlineWatchdog::DeadlineWatchdog(const Deadline& deadline, double grace_sec,
                                   milp::CancelToken token) {
  if (!deadline.valid() || !token.valid()) return;
  thread_ = std::thread([this, deadline, grace_sec, token]() mutable {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const double wait_sec = deadline.remaining_sec() + grace_sec;
      if (wait_sec <= 0.0) break;
      // Re-check remaining_sec after each wake: wait_for can return early
      // and the deadline is re-read against the monotonic clock anyway.
      if (cv_.wait_for(lock, std::chrono::duration<double>(wait_sec),
                       [this] { return stop_; })) {
        return;
      }
    }
    fired_ = true;
    lock.unlock();
    token.request_cancel();
    metrics::registry().counter("core.watchdog.fired").add();
  });
}

DeadlineWatchdog::~DeadlineWatchdog() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

bool DeadlineWatchdog::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

}  // namespace sparcs::core

#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "support/atomic_file.hpp"
#include "support/failpoint.hpp"
#include "support/json.hpp"
#include "support/report_writer.hpp"

namespace sparcs::core {
namespace {

constexpr const char* kFormatName = "sparcs-sweep-checkpoint";

// ---------------------------------------------------------------------------
// Fingerprint (FNV-1a 64 over the semantic inputs)

struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ull;

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  void mix(double v) {
    // Bit pattern, not value: 0.0 vs -0.0 differ, NaN payloads differ — both
    // acceptable for an equality fingerprint of inputs we wrote ourselves.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const std::string& text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    v = v * 16 + digit;
  }
  *out = v;
  return true;
}

// ---------------------------------------------------------------------------
// Serialization

void write_design(report::ReportWriter& w, const std::string& key,
                  const PartitionedDesign& design) {
  w.begin_object(key);
  w.field("num_partitions_allocated", design.num_partitions_allocated);
  // Only the assignment is stored; latencies and eta are recomputed on load,
  // so a checkpoint can never smuggle in a latency the design does not have.
  w.begin_array("assignment");
  for (const TaskAssignment& a : design.assignment) {
    w.begin_array();
    w.element(static_cast<std::int64_t>(a.partition));
    w.element(static_cast<std::int64_t>(a.design_point));
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

// ---------------------------------------------------------------------------
// Parsing helpers. Each returns false and fills *error on the first problem;
// parse_checkpoint maps any failure to kCorrupt.

bool fail(std::string* error, const std::string& message) {
  *error = message;
  return false;
}

bool parse_design(const json::Value& v, const graph::TaskGraph& graph,
                  const arch::Device& device, const std::string& what,
                  PartitionedDesign* out, std::string* error) {
  if (!v.is_object()) return fail(error, what + ": not an object");
  const std::int64_t allocated = v.member_int("num_partitions_allocated", -1);
  if (allocated < 1 || allocated > 100000) {
    return fail(error, what + ": bad num_partitions_allocated");
  }
  const json::Value* assignment = v.find("assignment");
  if (assignment == nullptr || !assignment->is_array()) {
    return fail(error, what + ": missing assignment array");
  }
  if (static_cast<int>(assignment->array().size()) != graph.num_tasks()) {
    return fail(error, what + ": assignment covers " +
                           std::to_string(assignment->array().size()) +
                           " tasks, graph has " +
                           std::to_string(graph.num_tasks()));
  }
  PartitionedDesign design;
  design.num_partitions_allocated = static_cast<int>(allocated);
  design.assignment.reserve(assignment->array().size());
  for (std::size_t t = 0; t < assignment->array().size(); ++t) {
    const json::Value& pair = assignment->array()[t];
    if (!pair.is_array() || pair.array().size() != 2 ||
        !pair.array()[0].is_number() || !pair.array()[1].is_number()) {
      return fail(error, what + ": assignment entry " + std::to_string(t) +
                             " is not a [partition, design_point] pair");
    }
    TaskAssignment a;
    a.partition = static_cast<int>(pair.array()[0].as_int());
    a.design_point = static_cast<int>(pair.array()[1].as_int());
    const auto& points =
        graph.task(static_cast<graph::TaskId>(t)).design_points;
    if (a.partition < 1 || a.partition > design.num_partitions_allocated ||
        a.design_point < 0 ||
        a.design_point >= static_cast<int>(points.size())) {
      return fail(error, what + ": assignment entry " + std::to_string(t) +
                             " is out of range");
    }
    design.assignment.push_back(a);
  }
  recompute_latency(graph, device, design);
  const DesignCheck check = validate_design(graph, device, design);
  if (!check.ok) {
    return fail(error, what + ": restored design is invalid (" +
                           check.violation + ")");
  }
  *out = std::move(design);
  return true;
}

bool parse_stage(const json::Value& v, StageAccount* out, std::string* error) {
  if (!v.is_object()) return fail(error, "stage entry is not an object");
  out->num_partitions = static_cast<int>(v.member_int("num_partitions", -1));
  out->solves = static_cast<int>(v.member_int("solves", -1));
  out->seconds = v.member_double("seconds", -1.0);
  const std::string status = v.member_string("status");
  if (status == to_string(StageStatus::kProbed)) {
    out->status = StageStatus::kProbed;
  } else if (status == to_string(StageStatus::kCutShort)) {
    out->status = StageStatus::kCutShort;
  } else if (status == to_string(StageStatus::kSkipped)) {
    out->status = StageStatus::kSkipped;
  } else if (status == to_string(StageStatus::kDegraded)) {
    out->status = StageStatus::kDegraded;
  } else {
    return fail(error, "stage entry has unknown status '" + status + "'");
  }
  if (out->num_partitions < 1 || out->solves < 0 || out->seconds < 0.0) {
    return fail(error, "stage entry for N=" +
                           std::to_string(out->num_partitions) +
                           " has out-of-range fields");
  }
  return true;
}

}  // namespace

std::uint64_t checkpoint_fingerprint(const graph::TaskGraph& graph,
                                     const arch::Device& device, int alpha,
                                     int gamma, double delta,
                                     int max_partitions,
                                     const FormulationOptions& formulation) {
  Fnv1a h;
  h.mix(graph.name());
  h.mix(graph.num_tasks());
  for (const graph::Task& task : graph.tasks()) {
    h.mix(task.name);
    h.mix(task.env_in);
    h.mix(task.env_out);
    h.mix(static_cast<std::uint64_t>(task.design_points.size()));
    for (const graph::DesignPoint& dp : task.design_points) {
      h.mix(dp.module_set);
      h.mix(dp.area);
      h.mix(dp.latency_ns);
    }
  }
  h.mix(graph.num_edges());
  for (const graph::DataEdge& e : graph.edges()) {
    h.mix(static_cast<int>(e.from));
    h.mix(static_cast<int>(e.to));
    h.mix(e.data_units);
  }
  h.mix(device.name);
  h.mix(device.resource_capacity);
  h.mix(device.memory_capacity);
  h.mix(device.reconfig_time_ns);
  h.mix(alpha);
  h.mix(gamma);
  h.mix(delta);
  h.mix(max_partitions);
  h.mix(static_cast<int>(formulation.order_form));
  h.mix(static_cast<int>(formulation.latency_form));
  h.mix(formulation.reduce_order_edges);
  h.mix(formulation.include_memory);
  h.mix(formulation.strengthening_cuts);
  h.mix(static_cast<std::uint64_t>(formulation.max_paths));
  return h.hash;
}

std::string serialize_checkpoint(const SweepCheckpoint& cp,
                                 std::uint64_t fingerprint) {
  report::ReportWriter w;
  w.begin_object();
  w.field("format", kFormatName);
  w.field("version", kCheckpointVersion);
  w.field("fingerprint", hex64(fingerprint));
  w.field("complete", cp.complete);
  w.field("phase", cp.phase);
  w.field("next_n", cp.next_n);
  w.field("achieved_latency_ns", cp.achieved_latency);
  w.field("best_num_partitions", cp.best_num_partitions);
  w.field("ilp_solves", cp.ilp_solves);
  w.field("seconds", cp.seconds);
  w.field("stopped_by_lower_bound", cp.stopped_by_lower_bound);
  if (cp.best.has_value()) {
    write_design(w, "best", *cp.best);
  } else {
    w.raw_field("best", "null");
  }
  w.begin_array("stages");
  for (const StageAccount& stage : cp.stages) {
    w.begin_object();
    w.field("num_partitions", stage.num_partitions);
    w.field("status", to_string(stage.status));
    w.field("solves", stage.solves);
    w.field("seconds", stage.seconds);
    w.end_object();
  }
  w.end_array();
  if (cp.in_progress.has_value()) {
    const CheckpointInProgress& ip = *cp.in_progress;
    w.begin_object("in_progress");
    w.field("num_partitions", ip.num_partitions);
    w.field("d_max", ip.d_max);
    w.field("d_min", ip.d_min);
    w.field("iteration", ip.iteration);
    w.field("achieved_latency_ns", ip.achieved_latency);
    write_design(w, "incumbent", ip.incumbent);
    w.end_object();
  } else {
    w.raw_field("in_progress", "null");
  }
  w.end_object();
  return atomicfile::seal_json_with_crc(w.str());
}

const char* to_string(CheckpointLoadStatus status) {
  switch (status) {
    case CheckpointLoadStatus::kOk: return "ok";
    case CheckpointLoadStatus::kMissing: return "missing";
    case CheckpointLoadStatus::kCorrupt: return "corrupt";
    case CheckpointLoadStatus::kVersionSkew: return "version-skew";
    case CheckpointLoadStatus::kFingerprintMismatch:
      return "fingerprint-mismatch";
  }
  return "unknown";
}

CheckpointLoadResult parse_checkpoint(const std::string& sealed_text,
                                      std::uint64_t expected_fingerprint,
                                      const graph::TaskGraph& graph,
                                      const arch::Device& device) {
  CheckpointLoadResult result;
  result.status = CheckpointLoadStatus::kCorrupt;

  std::string seal_error;
  const std::optional<std::string> body =
      atomicfile::unseal_json_with_crc(sealed_text, &seal_error);
  if (!body.has_value()) {
    result.error = "checkpoint damaged: " + seal_error;
    return result;
  }
  const json::ParseResult parsed = json::parse(*body);
  if (!parsed.ok) {
    result.error = "checkpoint is not valid JSON: " + parsed.error;
    return result;
  }
  const json::Value& root = parsed.value;
  if (!root.is_object()) {
    result.error = "checkpoint root is not an object";
    return result;
  }
  if (root.member_string("format") != kFormatName) {
    result.error = "not a sweep checkpoint (format field mismatch)";
    return result;
  }
  const std::int64_t version = root.member_int("version", -1);
  if (version != kCheckpointVersion) {
    result.status = CheckpointLoadStatus::kVersionSkew;
    result.error = "checkpoint version " + std::to_string(version) +
                   " is not supported (this build reads version " +
                   std::to_string(kCheckpointVersion) + ")";
    return result;
  }
  std::uint64_t stored_fingerprint = 0;
  if (!parse_hex64(root.member_string("fingerprint"), &stored_fingerprint)) {
    result.error = "checkpoint fingerprint field is malformed";
    return result;
  }
  if (stored_fingerprint != expected_fingerprint) {
    result.status = CheckpointLoadStatus::kFingerprintMismatch;
    result.error =
        "checkpoint was written for different inputs (fingerprint " +
        hex64(stored_fingerprint) + ", this run is " +
        hex64(expected_fingerprint) +
        "); pass a different --checkpoint path or drop --resume";
    return result;
  }

  SweepCheckpoint cp;
  cp.complete = root.member_bool("complete", false);
  cp.phase = static_cast<int>(root.member_int("phase", -1));
  cp.next_n = static_cast<int>(root.member_int("next_n", -1));
  cp.achieved_latency = root.member_double("achieved_latency_ns", -1.0);
  cp.best_num_partitions =
      static_cast<int>(root.member_int("best_num_partitions", -1));
  cp.ilp_solves = static_cast<int>(root.member_int("ilp_solves", -1));
  cp.seconds = root.member_double("seconds", -1.0);
  cp.stopped_by_lower_bound =
      root.member_bool("stopped_by_lower_bound", false);
  if (cp.phase != 1 && cp.phase != 2) {
    result.error = "checkpoint phase is out of range";
    return result;
  }
  if (cp.next_n < 0 || cp.achieved_latency < 0.0 ||
      cp.best_num_partitions < 0 || cp.ilp_solves < 0 || cp.seconds < 0.0) {
    result.error = "checkpoint counters are out of range";
    return result;
  }

  std::string error;
  const json::Value* best = root.find("best");
  if (best == nullptr) {
    result.error = "checkpoint is missing the best field";
    return result;
  }
  if (!best->is_null()) {
    PartitionedDesign design;
    if (!parse_design(*best, graph, device, "best design", &design, &error)) {
      result.error = error;
      return result;
    }
    // The stored Da must be the design's own latency; a disagreement means
    // the file was edited or the writer was broken — do not trust it.
    const double tolerance =
        1e-6 * std::max(1.0, design.total_latency_ns);
    if (cp.achieved_latency < design.total_latency_ns - tolerance ||
        cp.achieved_latency > design.total_latency_ns + tolerance) {
      result.error = "checkpoint achieved latency does not match its design";
      return result;
    }
    if (cp.best_num_partitions < 1) {
      result.error = "checkpoint has a best design but no partition count";
      return result;
    }
    cp.best = std::move(design);
  } else if (cp.achieved_latency != 0.0 || cp.best_num_partitions != 0) {
    result.error = "checkpoint claims a latency without a best design";
    return result;
  }
  if (cp.phase == 2 && !cp.best.has_value()) {
    result.error = "phase-2 checkpoint has no best design";
    return result;
  }

  const json::Value* stages = root.find("stages");
  if (stages == nullptr || !stages->is_array()) {
    result.error = "checkpoint is missing the stages array";
    return result;
  }
  for (const json::Value& entry : stages->array()) {
    StageAccount stage;
    if (!parse_stage(entry, &stage, &error)) {
      result.error = error;
      return result;
    }
    cp.stages.push_back(stage);
  }

  const json::Value* in_progress = root.find("in_progress");
  if (in_progress == nullptr) {
    result.error = "checkpoint is missing the in_progress field";
    return result;
  }
  if (!in_progress->is_null()) {
    if (cp.complete) {
      result.error = "complete checkpoint still carries in-progress state";
      return result;
    }
    CheckpointInProgress ip;
    ip.num_partitions =
        static_cast<int>(in_progress->member_int("num_partitions", -1));
    ip.d_max = in_progress->member_double("d_max", -1.0);
    ip.d_min = in_progress->member_double("d_min", -1.0);
    ip.iteration = static_cast<int>(in_progress->member_int("iteration", -1));
    ip.achieved_latency =
        in_progress->member_double("achieved_latency_ns", -1.0);
    const json::Value* incumbent = in_progress->find("incumbent");
    if (incumbent == nullptr ||
        !parse_design(*incumbent, graph, device, "in-progress incumbent",
                      &ip.incumbent, &error)) {
      result.error = error.empty()
                         ? "in-progress state is missing its incumbent"
                         : error;
      return result;
    }
    if (ip.num_partitions < 1 || ip.iteration < 0 || ip.d_min < 0.0 ||
        ip.d_max < ip.d_min || ip.achieved_latency <= 0.0 ||
        ip.incumbent.num_partitions_allocated != ip.num_partitions) {
      result.error = "in-progress window state is out of range";
      return result;
    }
    if (ip.num_partitions != cp.next_n) {
      // The writer always snapshots the stage it declared as next; a
      // disagreement means the two halves come from different writes.
      result.error = "in-progress stage does not match the sweep position";
      return result;
    }
    cp.in_progress = std::move(ip);
  }

  result.status = CheckpointLoadStatus::kOk;
  result.checkpoint = std::move(cp);
  return result;
}

CheckpointLoadResult load_checkpoint(const std::string& path,
                                     std::uint64_t expected_fingerprint,
                                     const graph::TaskGraph& graph,
                                     const arch::Device& device) {
  const std::optional<std::string> text = atomicfile::read_file(path);
  if (!text.has_value()) {
    CheckpointLoadResult result;
    result.status = CheckpointLoadStatus::kMissing;
    result.error = "cannot read checkpoint file: " + path;
    return result;
  }
  return parse_checkpoint(*text, expected_fingerprint, graph, device);
}

CheckpointWriter::CheckpointWriter(std::string path, double min_interval_sec,
                                   std::uint64_t fingerprint)
    : path_(std::move(path)),
      min_interval_sec_(min_interval_sec),
      fingerprint_(fingerprint) {}

bool CheckpointWriter::write(const SweepCheckpoint& cp, bool force) {
  std::function<void(const SweepCheckpoint&)> observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    if (!force && wrote_any_) {
      const double elapsed =
          std::chrono::duration<double>(now - last_write_).count();
      if (elapsed < min_interval_sec_) return false;
    }
    const std::string doc = serialize_checkpoint(cp, fingerprint_);
    std::string error;
    if (!atomicfile::write_file_atomic(path_, doc, &error)) {
      if (!failed_) {
        std::fprintf(stderr, "sparcs: warning: checkpoint write failed: %s\n",
                     error.c_str());
      }
      failed_ = true;
      return false;
    }
    wrote_any_ = true;
    last_write_ = now;
    ++writes_;
    observer = observer_;
  }
  // Crash site for the recovery suite: the snapshot above is durable, the
  // process dies before doing anything else — the worst-possible crash point
  // a resume must survive.
  if (SPARCS_FAILPOINT("core.checkpoint.crash_after_write")) {
    std::_Exit(70);
  }
  if (observer) observer(cp);
  return true;
}

int CheckpointWriter::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

bool CheckpointWriter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void CheckpointWriter::set_observer(
    std::function<void(const SweepCheckpoint&)> observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

}  // namespace sparcs::core

// ILP formulation of combined temporal partitioning and design space
// exploration (Section 3.2.3 of the paper).
//
// Variables:
//   Y_ptm  binary — task t in partition p using module set m  (uniqueness (1))
//   w_pt1t2 binary — edge (t1,t2) crosses the boundary into partition p,
//           i.e. t1 in 1..p-1 while t2 in p..N (memory modeling (3)-(5))
//   d_p    continuous — execution latency of partition p (7)
//   eta    integer — number of partitions actually used (8)
// Constraints: uniqueness (1), temporal order (2), memory (3) with the
// linearized w lower bounds (4)/(5), resource (6), per-partition latency via
// root->leaf paths (7), eta definition (8), and the latency window (9)/(10)
//   sum_p d_p + eta*C_T in [Dmin, Dmax].
//
// Options cover the paper's formulation plus documented variants:
//  - temporal order as the paper's pairwise rows or an aggregated
//    partition-index row per edge (smaller model, weaker relaxation);
//  - latency via path enumeration (paper) or a flow-based big-M form that
//    stays polynomial when the task graph has exponentially many paths;
//  - optional valid inequalities (per-task area/latency aggregation
//    variables, a total-area cut, and path cuts on sum_p d_p) that make the
//    solver's bound propagation detect global infeasibility early.
#pragma once

#include <vector>

#include "arch/device.hpp"
#include "core/solution.hpp"
#include "graph/task_graph.hpp"
#include "milp/model.hpp"

namespace sparcs::core {

struct FormulationOptions {
  enum class OrderForm {
    kPairwise,    ///< the paper's eq. (2): one row per edge per partition
    kAggregated,  ///< one row per edge on partition-index sums
  };
  enum class LatencyForm {
    kPathBased,  ///< the paper's eq. (7): one row per root-leaf path per partition
    kFlowBased,  ///< big-M completion-time chaining (polynomial size)
  };

  OrderForm order_form = OrderForm::kPairwise;
  LatencyForm latency_form = LatencyForm::kPathBased;
  /// Emit temporal-order rows only for the transitive reduction of the edge
  /// set (edges implied by two-hop paths add no ordering information).
  bool reduce_order_edges = true;
  /// Model the on-board memory constraint (disable for M_max = infinity).
  bool include_memory = true;
  /// Add the valid inequalities described above.
  bool strengthening_cuts = true;
  /// Path-enumeration cap; beyond it the latency form automatically falls
  /// back to kFlowBased.
  std::size_t max_paths = 20000;
};

/// Builds and owns the MILP model for one (N, Dmax, Dmin) query.
class IlpFormulation {
 public:
  IlpFormulation(const graph::TaskGraph& graph, const arch::Device& device,
                 int num_partitions, double d_max, double d_min,
                 FormulationOptions options = {});

  [[nodiscard]] const milp::Model& model() const { return model_; }
  [[nodiscard]] milp::Model& mutable_model() { return model_; }
  [[nodiscard]] int num_partitions() const { return n_; }
  [[nodiscard]] const FormulationOptions& options() const { return options_; }
  /// True when path enumeration overflowed and the flow-based latency form
  /// was used instead of the requested path-based one.
  [[nodiscard]] bool fell_back_to_flow() const { return flow_fallback_; }

  /// Y variable of (task, partition p in 1..N, sorted design point k).
  [[nodiscard]] milp::VarId y(graph::TaskId t, int p, int k) const;
  /// Number of design points of task t (== its sorted list length).
  [[nodiscard]] int num_points(graph::TaskId t) const;
  /// Maps sorted design point index k to the task's design_points index.
  [[nodiscard]] int design_point_index(graph::TaskId t, int k) const;
  [[nodiscard]] milp::VarId d(int p) const;
  [[nodiscard]] milp::VarId eta() const { return eta_; }

  /// Switches the model from feasibility to minimize sum_p d_p + C_T * eta
  /// (used by the optimal reference mode).
  void set_latency_objective();

  /// Warm start (the analog of a CPLEX MIP start): biases the solver's
  /// branching toward `design` by hinting each task's Y variables. The
  /// search still explores the full space on backtracking.
  void apply_hints(const PartitionedDesign& design);

  /// Decodes a solver assignment into a partitioned design (latencies are
  /// recomputed from the assignment, not read from d_p).
  [[nodiscard]] PartitionedDesign decode(
      const std::vector<double>& values) const;

 private:
  void create_variables();
  void add_uniqueness();
  void add_temporal_order();
  void add_memory();
  void add_resource();
  void add_latency_path_based();
  void add_latency_flow_based();
  void add_eta_definition();
  void add_latency_window();
  void add_strengthening_cuts();

  /// Sum over module sets of Y_ptm for fixed (t, p).
  [[nodiscard]] milp::LinExpr y_sum(graph::TaskId t, int p) const;
  /// Sum over partitions in [p_lo, p_hi] and module sets for task t.
  [[nodiscard]] milp::LinExpr y_range_sum(graph::TaskId t, int p_lo,
                                          int p_hi) const;
  /// Task latency expression sum_{p,m} D(m) * Y_ptm.
  [[nodiscard]] milp::LinExpr task_latency_expr(graph::TaskId t) const;
  /// Task latency restricted to partition p.
  [[nodiscard]] milp::LinExpr task_latency_in_partition(graph::TaskId t,
                                                        int p) const;
  /// Task partition-index expression sum_{p,m} p * Y_ptm.
  [[nodiscard]] milp::LinExpr partition_index_expr(graph::TaskId t) const;

  const graph::TaskGraph& graph_;
  const arch::Device& device_;
  int n_;
  double d_max_, d_min_;
  FormulationOptions options_;
  bool flow_fallback_ = false;

  milp::Model model_;
  /// y_[t][ (p-1) * num_points(t) + k ]
  std::vector<std::vector<milp::VarId>> y_;
  /// Per task: design point indices sorted by increasing latency.
  std::vector<std::vector<int>> sorted_points_;
  std::vector<milp::VarId> d_;
  milp::VarId eta_ = -1;
};

}  // namespace sparcs::core

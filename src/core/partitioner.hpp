// Public façade of the temporal partitioning system: the iterative
// partitioner (the paper's contribution) and the optimal-ILP reference mode
// used for the AR-filter comparison and the "optimality does not scale"
// experiment.
#pragma once

#include <optional>

#include <functional>
#include <string>

#include "arch/device.hpp"
#include "core/bounds.hpp"
#include "core/checkpoint.hpp"
#include "core/refine_partitions.hpp"
#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/task_graph.hpp"
#include "milp/types.hpp"

namespace sparcs::core {

struct PartitionerOptions {
  int alpha = 0;  ///< starting partition relaxation
  int gamma = 1;  ///< ending partition relaxation
  /// Shared tolerance/limit/formulation block. budget.delta is the absolute
  /// latency tolerance (ns); when <= 0, delta is derived as
  /// delta_fraction * MaxLatency(N_start) (the paper's "small percentage of
  /// MaxLatency" guidance).
  SearchBudget budget;
  double delta_fraction = 0.02;
  int max_partitions = 64;
  /// Watchdog grace past budget.deadline before the run is force-cancelled
  /// (<= 0 derives max(0.05 s, 10% of the deadline horizon)). Only used when
  /// the deadline is valid.
  double watchdog_grace_sec = 0.0;

  /// Crash-safe checkpoint/resume of the sweep (core/checkpoint).
  struct CheckpointOptions {
    /// Snapshot file; empty disables checkpointing entirely.
    std::string path;
    /// Throttle for mid-refinement snapshots (stage completions always
    /// write). <= 0 writes on every probe.
    double min_interval_sec = 5.0;
    /// Load `path` before solving and continue from it. A missing file
    /// falls back to a fresh run; a damaged or mismatched one is rejected
    /// (diagnostic in PartitionerReport::resume_error) and the run starts
    /// fresh rather than trusting it.
    bool resume = false;
    /// Test hook forwarded to the CheckpointWriter: observes every snapshot
    /// that landed on disk.
    std::function<void(const SweepCheckpoint&)> observer;
  };
  CheckpointOptions checkpoint;
};

/// Everything the partitioner learned, including the paper-table trace.
struct PartitionerReport {
  bool feasible = false;
  std::optional<PartitionedDesign> best;
  double achieved_latency = 0.0;
  int best_num_partitions = 0;
  Trace trace;
  int ilp_solves = 0;
  double seconds = 0.0;
  bool stopped_by_lower_bound = false;
  /// True when the run stopped on the time budget / deadline / cancellation
  /// before natural termination: `best` is the anytime incumbent.
  bool degraded = false;
  /// True when the deadline watchdog had to force-cancel the run (a solve
  /// overran the deadline by more than the grace margin).
  bool watchdog_fired = false;
  /// Per-partition-bound account (probed / cut short / skipped).
  std::vector<StageAccount> stages;
  /// Aggregate solver statistics over every ILP solve of the run.
  milp::SolverStats solver_stats;
  /// Derived inputs, for reporting.
  int n_min_lower = 0;
  int n_min_upper = 0;
  double delta_used = 0.0;
  /// True when the run continued from a loaded checkpoint: the trace covers
  /// only the resumed portion, while counters span the whole logical run.
  bool resumed = false;
  /// Why a requested --resume did not restore (empty when it did, or when no
  /// resume was requested). The run proceeded fresh.
  std::string resume_error;

  /// Renders the report as a JSON object (shared ReportWriter schema); the
  /// CLI's --report-json output.
  [[nodiscard]] std::string to_json() const;
};

/// Combined temporal partitioning and design space exploration.
class TemporalPartitioner {
 public:
  TemporalPartitioner(const graph::TaskGraph& graph,
                      const arch::Device& device,
                      PartitionerOptions options = {});

  /// Runs Refine_Partitions_Bound over Reduce_Latency over the ILP.
  [[nodiscard]] PartitionerReport run() const;

 private:
  const graph::TaskGraph& graph_;
  const arch::Device& device_;
  PartitionerOptions options_;
};

/// Result of an optimal-ILP reference solve.
struct OptimalResult {
  milp::SolveStatus status = milp::SolveStatus::kLimitReached;
  std::optional<PartitionedDesign> best;
  double latency_ns = 0.0;
  double seconds = 0.0;
  std::int64_t nodes = 0;
  milp::SolverStats solver_stats;  ///< aggregate over the reference solves

  /// Renders the result as a JSON object (shared ReportWriter schema).
  [[nodiscard]] std::string to_json() const;
};

/// Solves the full model at a fixed N to optimality (minimize
/// sum_p d_p + C_T * eta), subject to the given solver limits. LP-relaxation
/// bounding is forced on and the incumbent-improvement step is raised to
/// 1 ns (latencies are integral nanoseconds in every workload here), which
/// is what makes optimality proofs tractable on small graphs.
OptimalResult solve_optimal(const graph::TaskGraph& graph,
                            const arch::Device& device, int num_partitions,
                            milp::SolverParams solver_params = {},
                            FormulationOptions formulation = {});

/// Optimal reference over the same partition range the iterative procedure
/// explores (N^l_min + alpha .. N^u_min + gamma); returns the best proven
/// design, or the limit status when no N finished.
OptimalResult solve_optimal_over_range(const graph::TaskGraph& graph,
                                       const arch::Device& device,
                                       int alpha = 0, int gamma = 1,
                                       milp::SolverParams solver_params = {},
                                       FormulationOptions formulation = {});

}  // namespace sparcs::core

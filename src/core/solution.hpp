// Partitioned design: the output of the temporal partitioner, plus an
// independent validator that re-checks every constraint of Section 3.2.3
// directly against the task graph and device (without trusting the solver).
#pragma once

#include <string>
#include <vector>

#include "arch/device.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {

/// Placement of one task: its temporal partition (1-based) and the index of
/// the selected design point within the task's design_points vector.
struct TaskAssignment {
  int partition = 0;
  int design_point = -1;
};

/// A complete temporal partitioning + design point selection.
struct PartitionedDesign {
  int num_partitions_allocated = 0;  ///< N given to the formulation
  int num_partitions_used = 0;       ///< eta: highest partition actually used
  std::vector<TaskAssignment> assignment;  ///< indexed by TaskId

  /// Recomputed per-partition critical-path latencies d_p, 1-based partition
  /// p stored at index p-1; size == num_partitions_allocated.
  std::vector<double> partition_latency_ns;
  double execution_latency_ns = 0.0;  ///< sum of partition latencies
  double total_latency_ns = 0.0;      ///< execution + eta * C_T

  [[nodiscard]] std::string to_string(const graph::TaskGraph& graph) const;
};

/// Area occupied in partition p (1-based) under `design`.
double partition_area(const graph::TaskGraph& graph,
                      const PartitionedDesign& design, int p);

/// Memory alive while partition p executes: environment inputs not yet
/// consumed, environment outputs already produced, and edge data crossing
/// the partition (produced before p, consumed at or after p).
double partition_memory(const graph::TaskGraph& graph,
                        const PartitionedDesign& design, int p);

/// Critical-path latency of the tasks mapped to partition p (edges between
/// co-located tasks chain; cross-partition edges do not).
double partition_path_latency(const graph::TaskGraph& graph,
                              const PartitionedDesign& design, int p);

/// Recomputes partition_latency_ns / execution / total / eta fields from the
/// assignment. Called by decoders after the solver returns.
void recompute_latency(const graph::TaskGraph& graph,
                       const arch::Device& device, PartitionedDesign& design);

/// Result of validating a partitioned design.
struct DesignCheck {
  bool ok = true;
  std::string violation;
};

/// Independently verifies: every task assigned exactly once to a valid
/// partition and design point, temporal order along every edge, per-partition
/// area <= R_max, per-partition live memory <= M_max, and that the stored
/// latency fields match a recomputation.
DesignCheck validate_design(const graph::TaskGraph& graph,
                            const arch::Device& device,
                            const PartitionedDesign& design);

}  // namespace sparcs::core

#include "core/solution.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/algorithms.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::core {
namespace {

constexpr double kTol = 1e-6;

double task_latency(const graph::TaskGraph& graph,
                    const PartitionedDesign& design, graph::TaskId t) {
  const TaskAssignment& a = design.assignment[static_cast<std::size_t>(t)];
  return graph.task(t)
      .design_points[static_cast<std::size_t>(a.design_point)]
      .latency_ns;
}

}  // namespace

std::string PartitionedDesign::to_string(const graph::TaskGraph& graph) const {
  std::ostringstream os;
  os << "partitions used: " << num_partitions_used << "/"
     << num_partitions_allocated << ", total latency "
     << trim_double(total_latency_ns) << " ns (execution "
     << trim_double(execution_latency_ns) << " ns)\n";
  for (int p = 1; p <= num_partitions_allocated; ++p) {
    std::vector<std::string> names;
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      const TaskAssignment& a = assignment[static_cast<std::size_t>(t)];
      if (a.partition == p) {
        const auto& dp =
            graph.task(t).design_points[static_cast<std::size_t>(a.design_point)];
        names.push_back(graph.task(t).name + "(" + dp.module_set + ")");
      }
    }
    if (names.empty()) continue;
    os << "  P" << p << " [d=" << trim_double(partition_latency_ns.empty()
                                                  ? 0.0
                                                  : partition_latency_ns
                                                        [static_cast<std::size_t>(
                                                            p - 1)])
       << " ns]: " << join(names, ", ") << "\n";
  }
  return os.str();
}

double partition_area(const graph::TaskGraph& graph,
                      const PartitionedDesign& design, int p) {
  double area = 0.0;
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const TaskAssignment& a = design.assignment[static_cast<std::size_t>(t)];
    if (a.partition == p) {
      area += graph.task(t)
                  .design_points[static_cast<std::size_t>(a.design_point)]
                  .area;
    }
  }
  return area;
}

double partition_memory(const graph::TaskGraph& graph,
                        const PartitionedDesign& design, int p) {
  double memory = 0.0;
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const TaskAssignment& a = design.assignment[static_cast<std::size_t>(t)];
    const graph::Task& task = graph.task(t);
    if (a.partition >= p) memory += task.env_in;   // input still pending
    if (a.partition <= p) memory += task.env_out;  // output already produced
  }
  for (const graph::DataEdge& e : graph.edges()) {
    const int p1 =
        design.assignment[static_cast<std::size_t>(e.from)].partition;
    const int p2 = design.assignment[static_cast<std::size_t>(e.to)].partition;
    if (p1 < p && p <= p2) memory += e.data_units;
  }
  return memory;
}

double partition_path_latency(const graph::TaskGraph& graph,
                              const PartitionedDesign& design, int p) {
  // Longest chain within the partition-p induced subgraph.
  const std::vector<graph::TaskId> order = graph::topological_order(graph);
  std::vector<double> finish(static_cast<std::size_t>(graph.num_tasks()), 0.0);
  double best = 0.0;
  for (const graph::TaskId t : order) {
    if (design.assignment[static_cast<std::size_t>(t)].partition != p) {
      continue;
    }
    double start = 0.0;
    for (const graph::TaskId pred : graph.predecessors(t)) {
      if (design.assignment[static_cast<std::size_t>(pred)].partition == p) {
        start = std::max(start, finish[static_cast<std::size_t>(pred)]);
      }
    }
    finish[static_cast<std::size_t>(t)] =
        start + task_latency(graph, design, t);
    best = std::max(best, finish[static_cast<std::size_t>(t)]);
  }
  return best;
}

void recompute_latency(const graph::TaskGraph& graph,
                       const arch::Device& device, PartitionedDesign& design) {
  const int n_parts = design.num_partitions_allocated;
  design.partition_latency_ns.assign(static_cast<std::size_t>(n_parts), 0.0);
  int eta = 0;
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    eta = std::max(eta,
                   design.assignment[static_cast<std::size_t>(t)].partition);
  }
  design.num_partitions_used = eta;
  double total = 0.0;
  for (int p = 1; p <= n_parts; ++p) {
    const double d = partition_path_latency(graph, design, p);
    design.partition_latency_ns[static_cast<std::size_t>(p - 1)] = d;
    total += d;
  }
  design.execution_latency_ns = total;
  design.total_latency_ns = total + eta * device.reconfig_time_ns;
}

DesignCheck validate_design(const graph::TaskGraph& graph,
                            const arch::Device& device,
                            const PartitionedDesign& design) {
  DesignCheck check;
  auto fail = [&](std::string why) {
    check.ok = false;
    check.violation = std::move(why);
    return check;
  };

  if (static_cast<int>(design.assignment.size()) != graph.num_tasks()) {
    return fail("assignment does not cover all tasks");
  }
  const int n_parts = design.num_partitions_allocated;
  if (n_parts < 1) return fail("no partitions allocated");

  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const TaskAssignment& a = design.assignment[static_cast<std::size_t>(t)];
    if (a.partition < 1 || a.partition > n_parts) {
      return fail(str_format("task %s assigned to invalid partition %d",
                             graph.task(t).name.c_str(), a.partition));
    }
    const int n_points =
        static_cast<int>(graph.task(t).design_points.size());
    if (a.design_point < 0 || a.design_point >= n_points) {
      return fail(str_format("task %s uses invalid design point %d",
                             graph.task(t).name.c_str(), a.design_point));
    }
  }

  // Temporal order along every edge.
  for (const graph::DataEdge& e : graph.edges()) {
    const int p1 =
        design.assignment[static_cast<std::size_t>(e.from)].partition;
    const int p2 = design.assignment[static_cast<std::size_t>(e.to)].partition;
    if (p1 > p2) {
      return fail(str_format(
          "temporal order violated: %s (P%d) precedes %s (P%d)",
          graph.task(e.from).name.c_str(), p1, graph.task(e.to).name.c_str(),
          p2));
    }
  }

  for (int p = 1; p <= n_parts; ++p) {
    const double area = partition_area(graph, design, p);
    if (area > device.resource_capacity + kTol) {
      return fail(str_format("partition %d area %.3f exceeds R_max %.3f", p,
                             area, device.resource_capacity));
    }
    const double memory = partition_memory(graph, design, p);
    if (memory > device.memory_capacity + kTol) {
      return fail(str_format("partition %d memory %.3f exceeds M_max %.3f", p,
                             memory, device.memory_capacity));
    }
  }

  // Latency bookkeeping must match a recomputation.
  PartitionedDesign copy = design;
  recompute_latency(graph, device, copy);
  if (copy.num_partitions_used != design.num_partitions_used) {
    return fail("stored eta does not match recomputation");
  }
  if (std::abs(copy.total_latency_ns - design.total_latency_ns) >
      kTol * std::max(1.0, copy.total_latency_ns)) {
    return fail(str_format("stored total latency %.3f != recomputed %.3f",
                           design.total_latency_ns, copy.total_latency_ns));
  }
  return check;
}

}  // namespace sparcs::core

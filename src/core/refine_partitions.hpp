// Algorithm Refine_Partitions_Bound (Figure 2): the partition-space sweep.
//
// Starting from N = N^l_min + alpha, the sweep calls Reduce_Latency per
// partition bound. Infeasible bounds increase N until a first solution
// exists; afterwards N keeps relaxing (up to N^u_min + gamma or the time
// budget), each time searching only below the best achieved latency Da, and
// stops early as soon as MinLatency(N) >= Da — for large reconfiguration
// overheads that fires immediately after the first solution.
#pragma once

#include <optional>

#include "arch/device.hpp"
#include "core/reduce_latency.hpp"
#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {

struct RefinePartitionsParams {
  int alpha = 0;  ///< starting partition relaxation (added to N^l_min)
  int gamma = 1;  ///< ending partition relaxation (added to N^u_min)
  double delta = 0.0;  ///< latency tolerance forwarded to Reduce_Latency
  double time_budget_sec = 1e30;  ///< TimeExpired() threshold for the sweep
  milp::SolverParams solver;
  FormulationOptions formulation;
  /// Hard cap on N in case a pathological instance never becomes feasible.
  int max_partitions = 64;
};

struct RefinePartitionsResult {
  std::optional<PartitionedDesign> best;
  double achieved_latency = 0.0;  ///< Da of the returned design; 0 if none
  int best_num_partitions = 0;    ///< N at which `best` was found
  Trace trace;                    ///< all SolveModel() calls, in order
  int ilp_solves = 0;
  double seconds = 0.0;
  /// True when the sweep ended because MinLatency(N) >= Da.
  bool stopped_by_lower_bound = false;
  milp::SolverStats solver_stats;  ///< aggregate over the whole sweep
};

RefinePartitionsResult refine_partitions_bound(
    const graph::TaskGraph& graph, const arch::Device& device,
    const RefinePartitionsParams& params);

}  // namespace sparcs::core

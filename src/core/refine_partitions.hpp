// Algorithm Refine_Partitions_Bound (Figure 2): the partition-space sweep.
//
// Starting from N = N^l_min + alpha, the sweep calls Reduce_Latency per
// partition bound. Infeasible bounds increase N until a first solution
// exists; afterwards N keeps relaxing (up to N^u_min + gamma or the time
// budget), each time searching only below the best achieved latency Da, and
// stops early as soon as MinLatency(N) >= Da — for large reconfiguration
// overheads that fires immediately after the first solution.
//
// With more than one solver thread available the sweep overlaps consecutive
// partition bounds: while Reduce_Latency runs for N, the probe for N+1 is
// launched speculatively on a worker thread and either adopted (when its
// predicted inputs match what the serial sweep would have used) or cancelled
// and re-run. Adopted runs recorded their iterations into a private buffer,
// so the final trace is identical to the single-threaded sweep's; see
// DESIGN.md ("Deterministic speculation").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/reduce_latency.hpp"
#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {

// Defined in core/checkpoint.hpp; the sweep takes them by pointer so the
// checkpoint subsystem can layer on top of this header without a cycle.
struct SweepCheckpoint;
class CheckpointWriter;

/// How the sweep treated one partition bound N.
enum class StageStatus : std::uint8_t {
  kProbed,    ///< Reduce_Latency ran to natural termination
  kCutShort,  ///< Reduce_Latency started but was interrupted mid-refinement
  kSkipped,   ///< never started: the budget/deadline expired first
  /// An uncertified solver verdict stopped the stage's refinement on a
  /// conservative window; its incumbent (if any) is certified, but the
  /// window did not converge to delta.
  kDegraded,
};

[[nodiscard]] std::string to_string(StageStatus status);

/// Per-partition-bound account of the sweep, the basis of the anytime
/// degradation report: on budget expiry the caller can see exactly which N
/// values were probed, which were cut short, and which never ran.
struct StageAccount {
  int num_partitions = 0;
  StageStatus status = StageStatus::kProbed;
  int solves = 0;        ///< ILP solves spent on this bound
  double seconds = 0.0;  ///< solver wall time spent on this bound
};

struct RefinePartitionsParams {
  int alpha = 0;  ///< starting partition relaxation (added to N^l_min)
  int gamma = 1;  ///< ending partition relaxation (added to N^u_min)
  /// Shared tolerance/limit/formulation block (delta, time budget, solver,
  /// formulation), forwarded to every Reduce_Latency call.
  SearchBudget budget;
  /// Hard cap on N in case a pathological instance never becomes feasible.
  int max_partitions = 64;
  /// Validated snapshot to continue from instead of starting the sweep at
  /// N^l_min + alpha. Borrowed; may be null. The caller is responsible for
  /// fingerprint-checking it against this run's inputs (core/checkpoint).
  const SweepCheckpoint* resume = nullptr;
  /// Destination for ongoing snapshots (stage completions and throttled
  /// mid-refinement states). Borrowed; may be null = no checkpointing.
  CheckpointWriter* checkpoint = nullptr;
};

struct RefinePartitionsResult {
  std::optional<PartitionedDesign> best;
  double achieved_latency = 0.0;  ///< Da of the returned design; 0 if none
  int best_num_partitions = 0;    ///< N at which `best` was found
  Trace trace;                    ///< all SolveModel() calls, in order
  int ilp_solves = 0;
  double seconds = 0.0;
  /// True when the sweep ended because MinLatency(N) >= Da.
  bool stopped_by_lower_bound = false;
  milp::SolverStats solver_stats;  ///< aggregate over the whole sweep
  /// True when the sweep stopped on a time budget / deadline / cancellation
  /// before natural termination: `best` (when present) is an anytime
  /// incumbent, not the converged answer.
  bool degraded = false;
  /// One entry per partition bound the nominal sweep range covers, in N
  /// order: probed, cut short, or skipped (see StageStatus).
  std::vector<StageAccount> stages;

  /// Renders the result as a JSON object (shared ReportWriter schema).
  [[nodiscard]] std::string to_json() const;
};

RefinePartitionsResult refine_partitions_bound(
    const graph::TaskGraph& graph, const arch::Device& device,
    const RefinePartitionsParams& params);

}  // namespace sparcs::core

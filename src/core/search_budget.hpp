// The slice of search configuration shared by every layer of the paper's
// procedure. PartitionerOptions, RefinePartitionsParams and
// ReduceLatencyParams all embed one SearchBudget instead of re-declaring the
// same four fields, so a budget configured once (CLI, benches, tests) flows
// unchanged from the partitioner facade down to each SolveModel() call.
#pragma once

#include "core/formulation.hpp"
#include "milp/types.hpp"

namespace sparcs::core {

struct SearchBudget {
  /// Latency tolerance delta (same unit as latencies: ns).
  double delta = 0.0;
  /// TimeExpired() threshold for the partition-space sweep, in seconds.
  double time_budget_sec = 1e30;
  /// Per-SolveModel limits, thread count and cancellation token.
  milp::SolverParams solver;
  FormulationOptions formulation;

  /// True when a cancellation was requested through the solver token; the
  /// sweep layers poll this between probes to unwind promptly.
  [[nodiscard]] bool cancelled() const { return solver.cancel.cancelled(); }
};

}  // namespace sparcs::core

// The slice of search configuration shared by every layer of the paper's
// procedure. PartitionerOptions, RefinePartitionsParams and
// ReduceLatencyParams all embed one SearchBudget instead of re-declaring the
// same four fields, so a budget configured once (CLI, benches, tests) flows
// unchanged from the partitioner facade down to each SolveModel() call.
#pragma once

#include <algorithm>

#include "core/deadline.hpp"
#include "core/formulation.hpp"
#include "milp/types.hpp"

namespace sparcs::core {

struct SearchBudget {
  /// Latency tolerance delta (same unit as latencies: ns).
  double delta = 0.0;
  /// TimeExpired() threshold for the partition-space sweep, in seconds.
  double time_budget_sec = 1e30;
  /// Wall-clock deadline for the whole run (inert by default). Every solve's
  /// time limit is clamped to the remaining budget via clamped_solver(), so
  /// an expired deadline unwinds from inside a solve, not just between them.
  Deadline deadline;
  /// Per-SolveModel limits, thread count and cancellation token.
  milp::SolverParams solver;
  FormulationOptions formulation;

  /// True when a cancellation was requested through the solver token; the
  /// sweep layers poll this between probes to unwind promptly.
  [[nodiscard]] bool cancelled() const { return solver.cancel.cancelled(); }

  /// True when the run should stop producing new work: cancelled or past the
  /// deadline.
  [[nodiscard]] bool interrupted() const {
    return cancelled() || deadline.expired();
  }

  /// Solver parameters with time_limit_sec clamped to the deadline's
  /// remaining wall clock (a small floor keeps an almost-expired deadline
  /// from producing a zero-length, status-ambiguous solve).
  [[nodiscard]] milp::SolverParams clamped_solver() const {
    milp::SolverParams out = solver;
    if (deadline.valid()) {
      const double remaining = std::max(0.001, deadline.remaining_sec());
      out.time_limit_sec = std::min(out.time_limit_sec, remaining);
    }
    return out;
  }
};

}  // namespace sparcs::core

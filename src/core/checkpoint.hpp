// Crash-safe checkpoint/resume for the partition sweep.
//
// The paper's outer loops (Refine_Partitions_Bound over Reduce_Latency) are
// long-running searches whose only durable output used to be the final
// report: a crash or preemption at minute 59 lost everything. A
// SweepCheckpoint is a versioned snapshot of everything the sweep needs to
// re-enter where it left off: the completed partition bounds with their
// per-N accounts, the incumbent design and its latency Da (the carried upper
// bound and warm-start hint), and — when a Reduce_Latency bisection was
// interrupted mid-window — the exact (d_max, d_min, incumbent) window state,
// so resume continues the subdivision instead of re-probing from scratch.
//
// Snapshots are sealed (CRC32 trailer, see support/atomic_file.hpp) and
// written atomically; a resume validates version, CRC and a fingerprint of
// the inputs (task graph, device, search tolerances, formulation), and the
// restored designs are re-validated against the graph and device before they
// are trusted. Any mismatch degrades to "reject with a diagnostic and start
// fresh" — a damaged checkpoint can cost time, never correctness.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/formulation.hpp"
#include "core/refine_partitions.hpp"
#include "core/solution.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {

/// Bump when the snapshot schema changes incompatibly; older files are
/// rejected with kVersionSkew (never reinterpreted).
inline constexpr int kCheckpointVersion = 1;

/// Mid-bisection state of one interrupted Reduce_Latency(N) run: the window
/// as left after the last recorded probe, plus this N's incumbent, so resume
/// re-enters the subdivision loop at the exact next target the uninterrupted
/// run would have probed.
struct CheckpointInProgress {
  int num_partitions = 0;
  double d_max = 0.0;
  double d_min = 0.0;
  int iteration = 0;  ///< probes already recorded for this N
  double achieved_latency = 0.0;
  PartitionedDesign incumbent;
};

/// Durable state of the partition sweep between two solves.
struct SweepCheckpoint {
  /// True only when the sweep reached natural termination: resuming a
  /// complete checkpoint reproduces the final report without solving.
  bool complete = false;
  int phase = 1;   ///< 1 = searching first feasible N, 2 = relaxing N
  int next_n = 0;  ///< partition bound the sweep runs next
  double achieved_latency = 0.0;  ///< Da carried into resumed searches
  int best_num_partitions = 0;
  int ilp_solves = 0;  ///< solves accounted in completed stages
  double seconds = 0.0;  ///< solver wall time accumulated before this run
  bool stopped_by_lower_bound = false;
  std::optional<PartitionedDesign> best;
  /// Completed stages only; an interrupted stage lives in `in_progress` and
  /// is re-entered (not re-counted) on resume.
  std::vector<StageAccount> stages;
  std::optional<CheckpointInProgress> in_progress;
};

/// FNV-1a fingerprint of everything that determines the sweep's trajectory:
/// the task graph (tasks, design points, edges), the device capacities, the
/// search shape (alpha, gamma, delta, max_partitions) and the formulation
/// options. Deliberately excludes time limits, deadlines and thread counts —
/// a resume may legitimately run with a new budget or on different hardware.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(
    const graph::TaskGraph& graph, const arch::Device& device, int alpha,
    int gamma, double delta, int max_partitions,
    const FormulationOptions& formulation);

/// Renders the snapshot as one sealed JSON document (CRC32 trailer included)
/// ready for atomic writing.
[[nodiscard]] std::string serialize_checkpoint(const SweepCheckpoint& cp,
                                               std::uint64_t fingerprint);

enum class CheckpointLoadStatus : std::uint8_t {
  kOk,
  kMissing,              ///< file absent or unreadable
  kCorrupt,              ///< bad CRC, malformed JSON, or invalid contents
  kVersionSkew,          ///< written by an incompatible schema version
  kFingerprintMismatch,  ///< inputs differ from the run that wrote it
};

[[nodiscard]] const char* to_string(CheckpointLoadStatus status);

struct CheckpointLoadResult {
  CheckpointLoadStatus status = CheckpointLoadStatus::kCorrupt;
  SweepCheckpoint checkpoint;
  std::string error;  ///< diagnostic for non-kOk outcomes
};

/// Parses and fully validates a sealed snapshot: CRC, version, fingerprint,
/// schema, and every restored design re-checked against `graph`/`device`.
[[nodiscard]] CheckpointLoadResult parse_checkpoint(
    const std::string& sealed_text, std::uint64_t expected_fingerprint,
    const graph::TaskGraph& graph, const arch::Device& device);

/// parse_checkpoint over the contents of `path` (kMissing when unreadable).
[[nodiscard]] CheckpointLoadResult load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint,
    const graph::TaskGraph& graph, const arch::Device& device);

/// Serializes snapshots to one path with atomic writes and interval
/// throttling. Stage completions and terminal snapshots are written with
/// force=true and always land; mid-bisection snapshots pass force=false and
/// are skipped while the minimum interval has not elapsed. Thread-safe;
/// write failures are logged once per run and never abort the solve.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, double min_interval_sec,
                   std::uint64_t fingerprint);

  /// Returns true when a snapshot landed on disk (false: throttled or
  /// failed; see failed()).
  bool write(const SweepCheckpoint& cp, bool force);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int writes() const;
  [[nodiscard]] bool failed() const;

  /// Test hook: observes every snapshot that landed, after the write.
  void set_observer(std::function<void(const SweepCheckpoint&)> observer);

 private:
  std::string path_;
  double min_interval_sec_;
  std::uint64_t fingerprint_;
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point last_write_{};
  bool wrote_any_ = false;
  bool failed_ = false;
  int writes_ = 0;
  std::function<void(const SweepCheckpoint&)> observer_;
};

}  // namespace sparcs::core

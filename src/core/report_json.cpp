// JSON rendering of the core result structs through the shared ReportWriter,
// so PartitionerReport, RefinePartitionsResult and OptimalResult agree on
// field names and number formatting (the CLI's --report-json contract).
#include "core/partitioner.hpp"
#include "core/refine_partitions.hpp"
#include "support/report_writer.hpp"

namespace sparcs::core {
namespace {

const char* to_string(IterationOutcome outcome) {
  switch (outcome) {
    case IterationOutcome::kFeasible:
      return "feasible";
    case IterationOutcome::kInfeasible:
      return "infeasible";
    case IterationOutcome::kLimit:
      return "limit";
    case IterationOutcome::kUncertified:
      return "uncertified";
  }
  return "unknown";
}

void write_solver_stats(report::ReportWriter& w,
                        const milp::SolverStats& stats) {
  // Delegates to the canonical renderer so the report, the telemetry stream
  // and the CLI agree on the schema (including the convergence timeline).
  w.raw_field("solver_stats", stats.to_json());
}

void write_convergence(report::ReportWriter& w,
                       const std::vector<milp::ConvergenceEvent>& events) {
  w.begin_array("convergence");
  for (const milp::ConvergenceEvent& event : events) {
    w.begin_object();
    w.field("t_sec", event.t_sec);
    w.field("objective", event.objective);
    w.field("nodes", event.nodes);
    w.field("kind", event.kind == milp::ConvergenceEvent::Kind::kIncumbent
                        ? "incumbent"
                        : "bound");
    w.end_object();
  }
  w.end_array();
}

void write_stages(report::ReportWriter& w,
                  const std::vector<StageAccount>& stages) {
  w.begin_array("stages");
  for (const StageAccount& stage : stages) {
    w.begin_object();
    w.field("N", stage.num_partitions);
    w.field("status", to_string(stage.status));
    w.field("solves", stage.solves);
    w.field("seconds", stage.seconds);
    w.end_object();
  }
  w.end_array();
}

void write_trace(report::ReportWriter& w, const Trace& trace) {
  w.begin_array("trace");
  for (const IterationRecord& row : trace) {
    w.begin_object();
    w.field("N", row.num_partitions);
    w.field("iteration", row.iteration);
    w.field("d_max_ns", row.d_max_bound);
    w.field("d_min_ns", row.d_min_bound);
    w.field("outcome", to_string(row.outcome));
    w.field("achieved_latency_ns", row.achieved_latency);
    w.field("seconds", row.seconds);
    w.field("nodes", row.nodes);
    if (row.certified != milp::CertifyStatus::kNotRequested) {
      w.field("certified", milp::to_string(row.certified));
    }
    // Per-(N, iteration) convergence timeline of the probe's solve.
    write_convergence(w, row.stats.convergence);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string RefinePartitionsResult::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("feasible", best.has_value());
  w.field("achieved_latency_ns", achieved_latency);
  w.field("best_num_partitions", best_num_partitions);
  w.field("ilp_solves", ilp_solves);
  w.field("seconds", seconds);
  w.field("stopped_by_lower_bound", stopped_by_lower_bound);
  w.field("degraded", degraded);
  write_stages(w, stages);
  write_solver_stats(w, solver_stats);
  write_trace(w, trace);
  w.end_object();
  return w.str();
}

std::string PartitionerReport::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("feasible", feasible);
  w.field("achieved_latency_ns", achieved_latency);
  w.field("best_num_partitions", best_num_partitions);
  w.field("ilp_solves", ilp_solves);
  w.field("seconds", seconds);
  w.field("stopped_by_lower_bound", stopped_by_lower_bound);
  w.field("degraded", degraded);
  w.field("watchdog_fired", watchdog_fired);
  w.field("n_min_lower", n_min_lower);
  w.field("n_min_upper", n_min_upper);
  w.field("delta_used_ns", delta_used);
  w.field("resumed", resumed);
  if (!resume_error.empty()) w.field("resume_error", resume_error);
  write_stages(w, stages);
  write_solver_stats(w, solver_stats);
  write_trace(w, trace);
  w.end_object();
  return w.str();
}

std::string OptimalResult::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("status", milp::to_string(status));
  w.field("feasible", best.has_value());
  w.field("latency_ns", latency_ns);
  w.field("seconds", seconds);
  w.field("nodes", nodes);
  write_solver_stats(w, solver_stats);
  w.end_object();
  return w.str();
}

}  // namespace sparcs::core

// JSON rendering of the core result structs through the shared ReportWriter,
// so PartitionerReport, RefinePartitionsResult and OptimalResult agree on
// field names and number formatting (the CLI's --report-json contract).
#include "core/partitioner.hpp"
#include "core/refine_partitions.hpp"
#include "support/report_writer.hpp"

namespace sparcs::core {
namespace {

const char* to_string(IterationOutcome outcome) {
  switch (outcome) {
    case IterationOutcome::kFeasible:
      return "feasible";
    case IterationOutcome::kInfeasible:
      return "infeasible";
    case IterationOutcome::kLimit:
      return "limit";
  }
  return "unknown";
}

void write_solver_stats(report::ReportWriter& w,
                        const milp::SolverStats& stats) {
  w.begin_object("solver_stats");
  w.field("nodes_explored", stats.nodes_explored);
  w.field("nodes_pruned_by_bound", stats.nodes_pruned_by_bound);
  w.field("nodes_pruned_infeasible", stats.nodes_pruned_infeasible);
  w.field("incumbent_updates", stats.incumbent_updates);
  w.field("max_depth", stats.max_depth);
  w.field("propagated_constraints", stats.propagated_constraints);
  w.field("bounds_tightened", stats.bounds_tightened);
  w.field("vars_fixed", stats.vars_fixed);
  w.field("conflicts", stats.conflicts);
  w.field("simplex_calls", stats.simplex_calls);
  w.field("simplex_iterations", stats.simplex_iterations);
  w.field("numerical_failures", stats.numerical_failures);
  w.field("lp_recoveries", stats.lp_recoveries);
  w.field("checker_rejections", stats.checker_rejections);
  w.field("allocation_failures", stats.allocation_failures);
  w.end_object();
}

void write_stages(report::ReportWriter& w,
                  const std::vector<StageAccount>& stages) {
  w.begin_array("stages");
  for (const StageAccount& stage : stages) {
    w.begin_object();
    w.field("N", stage.num_partitions);
    w.field("status", to_string(stage.status));
    w.field("solves", stage.solves);
    w.field("seconds", stage.seconds);
    w.end_object();
  }
  w.end_array();
}

void write_trace(report::ReportWriter& w, const Trace& trace) {
  w.begin_array("trace");
  for (const IterationRecord& row : trace) {
    w.begin_object();
    w.field("N", row.num_partitions);
    w.field("iteration", row.iteration);
    w.field("d_max_ns", row.d_max_bound);
    w.field("d_min_ns", row.d_min_bound);
    w.field("outcome", to_string(row.outcome));
    w.field("achieved_latency_ns", row.achieved_latency);
    w.field("seconds", row.seconds);
    w.field("nodes", row.nodes);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string RefinePartitionsResult::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("feasible", best.has_value());
  w.field("achieved_latency_ns", achieved_latency);
  w.field("best_num_partitions", best_num_partitions);
  w.field("ilp_solves", ilp_solves);
  w.field("seconds", seconds);
  w.field("stopped_by_lower_bound", stopped_by_lower_bound);
  w.field("degraded", degraded);
  write_stages(w, stages);
  write_solver_stats(w, solver_stats);
  write_trace(w, trace);
  w.end_object();
  return w.str();
}

std::string PartitionerReport::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("feasible", feasible);
  w.field("achieved_latency_ns", achieved_latency);
  w.field("best_num_partitions", best_num_partitions);
  w.field("ilp_solves", ilp_solves);
  w.field("seconds", seconds);
  w.field("stopped_by_lower_bound", stopped_by_lower_bound);
  w.field("degraded", degraded);
  w.field("watchdog_fired", watchdog_fired);
  w.field("n_min_lower", n_min_lower);
  w.field("n_min_upper", n_min_upper);
  w.field("delta_used_ns", delta_used);
  write_stages(w, stages);
  write_solver_stats(w, solver_stats);
  write_trace(w, trace);
  w.end_object();
  return w.str();
}

std::string OptimalResult::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("status", milp::to_string(status));
  w.field("feasible", best.has_value());
  w.field("latency_ns", latency_ns);
  w.field("seconds", seconds);
  w.field("nodes", nodes);
  write_solver_stats(w, solver_stats);
  w.end_object();
  return w.str();
}

}  // namespace sparcs::core

// Reconfigurable processor model: the three architecture parameters the
// formulation consumes (resource capacity R_max, on-board memory M_max,
// reconfiguration time C_T) plus presets for the two architecture classes
// the paper distinguishes by reconfiguration overhead.
#pragma once

#include <string>

namespace sparcs::arch {

/// Target run-time reconfigurable processor.
struct Device {
  std::string name;
  double resource_capacity = 0.0;   ///< R_max, in CLB equivalents
  double memory_capacity = 0.0;     ///< M_max, in data units
  double reconfig_time_ns = 0.0;    ///< C_T per reconfiguration

  /// Throws InvalidArgumentError unless all capacities are positive and the
  /// reconfiguration time is non-negative.
  void validate() const;
};

/// Wildforce-class board: millisecond-scale reconfiguration (the
/// "reconfiguration time orders of magnitude greater than task latency"
/// regime). `rmax` defaults to the 576-CLB experiment of the paper.
Device wildforce_like(double rmax = 576.0, double mmax = 4096.0);

/// Time-multiplexed-FPGA-class device: nanosecond/microsecond-scale
/// reconfiguration (the "comparable to task latency" regime).
Device time_multiplexed_like(double rmax = 576.0, double mmax = 4096.0);

/// Fully custom device.
Device custom(std::string name, double rmax, double mmax, double ct_ns);

}  // namespace sparcs::arch

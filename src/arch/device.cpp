#include "arch/device.hpp"

#include "support/error.hpp"

namespace sparcs::arch {

void Device::validate() const {
  SPARCS_REQUIRE(resource_capacity > 0.0,
                 "device resource capacity must be positive");
  SPARCS_REQUIRE(memory_capacity >= 0.0,
                 "device memory capacity must be non-negative");
  SPARCS_REQUIRE(reconfig_time_ns >= 0.0,
                 "reconfiguration time must be non-negative");
}

Device wildforce_like(double rmax, double mmax) {
  Device d;
  d.name = "wildforce-like";
  d.resource_capacity = rmax;
  d.memory_capacity = mmax;
  d.reconfig_time_ns = 1.0e7;  // 10 ms
  d.validate();
  return d;
}

Device time_multiplexed_like(double rmax, double mmax) {
  Device d;
  d.name = "tm-fpga-like";
  d.resource_capacity = rmax;
  d.memory_capacity = mmax;
  d.reconfig_time_ns = 100.0;  // comparable to task latencies
  d.validate();
  return d;
}

Device custom(std::string name, double rmax, double mmax, double ct_ns) {
  Device d;
  d.name = std::move(name);
  d.resource_capacity = rmax;
  d.memory_capacity = mmax;
  d.reconfig_time_ns = ct_ns;
  d.validate();
  return d;
}

}  // namespace sparcs::arch

#include "cli/app.hpp"

#include <atomic>
#include <csignal>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "io/csv.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "io/tg_format.hpp"
#include "milp/types.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/executor.hpp"
#include "support/json.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/span.hpp"
#include "support/telemetry.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"
#include "workloads/ewf.hpp"

namespace sparcs::cli {
namespace {

struct Arguments {
  std::string input_file;
  std::string workload;
  std::optional<double> rmax, mmax, ct;
  double delta = 0.0;
  int alpha = 0;
  int gamma = 1;
  double time_limit = 10.0;
  double deadline_sec = 0.0;  ///< whole-run wall deadline; 0 = none
  int threads = 0;
  bool optimal = false;
  bool simulate = false;
  bool quiet = false;
  std::optional<LogLevel> log_level;
  std::string dot_file;
  std::string csv_file;
  std::string metrics_json_file;
  std::string trace_json_file;
  std::string report_json_file;
  std::string telemetry_jsonl_file;
  double telemetry_interval_ms = 200.0;
  bool progress = false;
  std::string search_tree_json_file;
  std::string search_tree_dot_file;
  std::string log_json_file;
  std::string checkpoint_file;
  double checkpoint_interval_sec = 5.0;
  bool resume = false;
  milp::CertifyMode certify = milp::CertifyMode::kOff;
};

milp::CertifyMode parse_certify(const std::string& name) {
  if (name == "off") return milp::CertifyMode::kOff;
  if (name == "incumbents") return milp::CertifyMode::kIncumbents;
  if (name == "full") return milp::CertifyMode::kFull;
  SPARCS_REQUIRE(false, "unknown --certify mode '" + name +
                            "' (expected off, incumbents or full)");
  return milp::CertifyMode::kOff;
}

// ---------------------------------------------------------------------------
// Graceful preemption. SIGINT/SIGTERM flip an atomic flag and trip the run's
// cancellation token — both async-signal-safe relaxed stores — so the solve
// unwinds cooperatively through the same anytime-degradation path a deadline
// uses: destructors run, the final checkpoint and telemetry records land,
// and the process reports exit code 5 instead of dying mid-write.

std::atomic<bool> g_preempted{false};
std::atomic<int> g_signal{0};
milp::CancelToken g_signal_token;  // NOLINT: reassigned per run()

void handle_preempt_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_preempted.store(true, std::memory_order_relaxed);
  g_signal_token.request_cancel();
}

/// Installs the preemption handlers for the duration of one run() and
/// restores default dispositions afterwards, so embedding processes (tests)
/// keep their own signal behavior outside the run.
class SignalGuard {
 public:
  explicit SignalGuard(milp::CancelToken token) {
    g_signal_token = std::move(token);
    g_preempted.store(false, std::memory_order_relaxed);
    g_signal.store(0, std::memory_order_relaxed);
    previous_int_ = std::signal(SIGINT, handle_preempt_signal);
    previous_term_ = std::signal(SIGTERM, handle_preempt_signal);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;
  ~SignalGuard() {
    std::signal(SIGINT, previous_int_);
    std::signal(SIGTERM, previous_term_);
  }

  [[nodiscard]] static bool preempted() {
    return g_preempted.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static const char* signal_name() {
    return g_signal.load(std::memory_order_relaxed) == SIGTERM ? "SIGTERM"
                                                               : "SIGINT";
  }

 private:
  void (*previous_int_)(int) = SIG_DFL;
  void (*previous_term_)(int) = SIG_DFL;
};

/// Lands one artifact atomically (temp + fsync + rename). Failures are a
/// warning, not an abort — the run's result has already been computed and
/// printed — but they surface in the exit code (6) when the run was
/// otherwise clean, so scripts cannot mistake a half-written artifact set
/// for success.
bool write_artifact(const std::string& path, std::string_view contents,
                    const char* what, std::ostream& out, std::ostream& err) {
  std::string error;
  if (!atomicfile::write_file_atomic(path, contents, &error)) {
    err << "warning: cannot write " << what << " to " << path << ": " << error
        << "\n";
    return false;
  }
  out << "wrote " << path << "\n";
  return true;
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  SPARCS_REQUIRE(false, "unknown log level '" + name +
                            "' (expected debug, info, warning, error or off)");
  return LogLevel::kWarning;
}

Arguments parse_args(const std::vector<std::string>& args) {
  Arguments parsed;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      SPARCS_REQUIRE(i + 1 < args.size(), arg + " needs a value");
      return args[++i];
    };
    if (arg == "--workload") {
      parsed.workload = value();
    } else if (arg == "--rmax") {
      parsed.rmax = std::stod(value());
    } else if (arg == "--mmax") {
      parsed.mmax = std::stod(value());
    } else if (arg == "--ct") {
      parsed.ct = std::stod(value());
    } else if (arg == "--delta") {
      parsed.delta = std::stod(value());
    } else if (arg == "--alpha") {
      parsed.alpha = std::stoi(value());
    } else if (arg == "--gamma") {
      parsed.gamma = std::stoi(value());
    } else if (arg == "--time-limit") {
      parsed.time_limit = std::stod(value());
    } else if (arg == "--deadline-sec") {
      parsed.deadline_sec = std::stod(value());
      SPARCS_REQUIRE(parsed.deadline_sec > 0.0, "--deadline-sec must be > 0");
    } else if (arg == "--threads") {
      parsed.threads = std::stoi(value());
      SPARCS_REQUIRE(parsed.threads >= 0,
                     "--threads must be >= 0 (0 = all hardware threads)");
    } else if (arg == "--optimal") {
      parsed.optimal = true;
    } else if (arg == "--simulate") {
      parsed.simulate = true;
    } else if (arg == "--quiet") {
      parsed.quiet = true;
    } else if (arg == "--log-level") {
      parsed.log_level = parse_log_level(value());
    } else if (arg == "--dot") {
      parsed.dot_file = value();
    } else if (arg == "--csv") {
      parsed.csv_file = value();
    } else if (arg == "--metrics-json") {
      parsed.metrics_json_file = value();
    } else if (arg == "--trace-json") {
      parsed.trace_json_file = value();
    } else if (arg == "--report-json") {
      parsed.report_json_file = value();
    } else if (arg == "--telemetry-jsonl") {
      parsed.telemetry_jsonl_file = value();
    } else if (arg == "--telemetry-interval-ms") {
      parsed.telemetry_interval_ms = std::stod(value());
      SPARCS_REQUIRE(parsed.telemetry_interval_ms > 0.0,
                     "--telemetry-interval-ms must be > 0");
    } else if (arg == "--progress") {
      parsed.progress = true;
    } else if (arg == "--search-tree-json") {
      parsed.search_tree_json_file = value();
    } else if (arg == "--search-tree-dot") {
      parsed.search_tree_dot_file = value();
    } else if (arg == "--log-json") {
      parsed.log_json_file = value();
    } else if (arg == "--checkpoint") {
      parsed.checkpoint_file = value();
    } else if (arg == "--checkpoint-interval-sec") {
      parsed.checkpoint_interval_sec = std::stod(value());
      SPARCS_REQUIRE(parsed.checkpoint_interval_sec >= 0.0,
                     "--checkpoint-interval-sec must be >= 0");
    } else if (arg == "--resume") {
      parsed.resume = true;
    } else if (arg == "--certify") {
      parsed.certify = parse_certify(value());
    } else if (arg.rfind("--certify=", 0) == 0) {
      parsed.certify = parse_certify(arg.substr(std::string("--certify=").size()));
    } else if (!arg.empty() && arg[0] == '-') {
      SPARCS_REQUIRE(false, "unknown option " + arg);
    } else {
      SPARCS_REQUIRE(parsed.input_file.empty(),
                     "multiple input files given");
      parsed.input_file = arg;
    }
  }
  SPARCS_REQUIRE(parsed.input_file.empty() != parsed.workload.empty(),
                 "give exactly one of <graph.tg> or --workload");
  SPARCS_REQUIRE(!parsed.resume || !parsed.checkpoint_file.empty(),
                 "--resume needs --checkpoint FILE to resume from");
  return parsed;
}

graph::TaskGraph builtin_workload(const std::string& name) {
  if (name == "ar") return workloads::ar_filter_task_graph();
  if (name == "dct") return workloads::dct_task_graph();
  if (name == "ewf") return workloads::ewf_task_graph();
  SPARCS_REQUIRE(false, "unknown workload '" + name +
                            "' (expected ar, dct or ewf)");
  return {};
}

/// Enables the requested observability subsystems (metrics registry, trace
/// recorder, telemetry sampler, search-tree recorder, JSON log sink) for the
/// duration of one `run()`, and writes their output files in finalize()
/// (called explicitly so a write failure can drive the exit code; the
/// destructor finalizes as a backstop when an exception unwinds past it).
/// Restores the disabled state on every exit path so repeated in-process
/// runs (tests, library embedding) start clean.
///
/// Sharing rules: every subsystem this guard touches — the metrics registry,
/// the trace recorder, the sampler, the search-tree recorder, the *global*
/// JSON log sink (set_json_log_sink) and reset_pipeline() — is process-global
/// state; there is exactly one observability pipeline per process. Guards are
/// therefore serialized on a process-wide mutex held from construction until
/// finalize(): concurrent in-process run() calls (tests, embedders) queue
/// here instead of interleaving resets and sink swaps mid-run. Code that
/// needs concurrent per-run observability must not use this guard — the
/// solve service attaches per-job correlation-routed log sinks
/// (add_correlation_json_log_sink) and per-job artifacts instead.
class ObservabilityGuard {
 public:
  ObservabilityGuard(const Arguments& parsed, std::ostream& out,
                     std::ostream& err)
      : lock_(pipeline_mutex()),
        metrics_file_(parsed.metrics_json_file),
        trace_file_(parsed.trace_json_file),
        telemetry_file_(parsed.telemetry_jsonl_file),
        tree_json_file_(parsed.search_tree_json_file),
        tree_dot_file_(parsed.search_tree_dot_file),
        log_json_file_(parsed.log_json_file),
        out_(out),
        err_(err) {
    // The telemetry samples embed a metrics snapshot, so --telemetry-jsonl
    // turns collection on even without --metrics-json (which controls only
    // whether the end-of-run snapshot file is written).
    if (!metrics_file_.empty() || !telemetry_file_.empty()) {
      metrics::registry().reset();
      metrics::set_enabled(true);
    }
    if (!trace_file_.empty()) {
      trace::clear();
      trace::set_enabled(true);
    }
    telemetry::reset_pipeline();
    if (!tree_json_file_.empty() || !tree_dot_file_.empty()) {
      telemetry::tree_clear();
      telemetry::set_tree_active(true);
    }
    if (!log_json_file_.empty()) {
      log_json_os_.open(log_json_file_);
      if (log_json_os_.good()) {
        set_json_log_sink(&log_json_os_);
        // Correlation ids are only allocated while telemetry is active;
        // without this a sampler-less --log-json run would log corr-less
        // records that cannot be joined with --trace-json spans.
        telemetry::set_active(true);
        activated_telemetry_ = true;
      } else {
        SPARCS_ELOG << "cannot write JSON logs to " << log_json_file_;
        log_json_file_.clear();
      }
    }
    if (!telemetry_file_.empty() || parsed.progress) {
      std::ostream* sink = &discard_;
      if (!telemetry_file_.empty()) {
        telemetry_os_.open(telemetry_file_);
        if (telemetry_os_.good()) {
          sink = &telemetry_os_;
        } else {
          SPARCS_ELOG << "cannot write telemetry to " << telemetry_file_;
          telemetry_file_.clear();
        }
      }
      // --progress without --telemetry-jsonl still runs the sampler (it
      // drives the progress line); records go to an in-memory discard
      // buffer, bounded by the CLI run's lifetime.
      telemetry::SamplerOptions sampler;
      sampler.interval_sec = parsed.telemetry_interval_ms / 1000.0;
      sampler.sink = sink;
      sampler.progress = parsed.progress ? &err : nullptr;
      sampler.include_metrics = true;
      sampler_started_ = telemetry::start_sampler(sampler);
    }
  }
  ObservabilityGuard(const ObservabilityGuard&) = delete;
  ObservabilityGuard& operator=(const ObservabilityGuard&) = delete;
  ~ObservabilityGuard() { finalize(); }

  /// Stops the collectors and lands every requested artifact atomically.
  /// Idempotent; returns false if any artifact failed to land (including a
  /// telemetry/log JSONL stream that went bad mid-run). The JSONL sinks are
  /// flushed after the sampler stops, so --telemetry-jsonl files end with
  /// the well-formed `final` record even on preemption or degradation.
  bool finalize() {
    if (finalized_) return finalize_ok_;
    finalized_ = true;
    bool ok = true;
    if (sampler_started_) {
      telemetry::stop_sampler();
      if (!telemetry_file_.empty()) {
        telemetry_os_.flush();
        if (telemetry_os_.good()) {
          out_ << "wrote " << telemetry_file_ << "\n";
        } else {
          err_ << "warning: telemetry stream to " << telemetry_file_
               << " failed\n";
          ok = false;
        }
      }
    }
    if (!metrics_file_.empty() || !telemetry_file_.empty()) {
      metrics::set_enabled(false);
    }
    if (!metrics_file_.empty()) {
      ok &= write_artifact(metrics_file_,
                           metrics::registry().snapshot().to_json() + "\n",
                           "metrics", out_, err_);
    }
    if (!trace_file_.empty()) {
      trace::set_enabled(false);
      std::ostringstream os;
      trace::write_chrome_json(os);
      os << "\n";
      ok &= write_artifact(trace_file_, os.str(), "trace", out_, err_);
    }
    if (!tree_json_file_.empty() || !tree_dot_file_.empty()) {
      telemetry::set_tree_active(false);
      if (!tree_json_file_.empty()) {
        std::ostringstream os;
        telemetry::write_tree_json(os);
        ok &= write_artifact(tree_json_file_, os.str(), "search tree", out_,
                             err_);
      }
      if (!tree_dot_file_.empty()) {
        std::ostringstream os;
        telemetry::write_tree_dot(os);
        ok &= write_artifact(tree_dot_file_, os.str(), "search tree", out_,
                             err_);
      }
      telemetry::tree_clear();
    }
    if (!log_json_file_.empty()) {
      set_json_log_sink(nullptr);
      log_json_os_.flush();
      if (!log_json_os_.good()) {
        err_ << "warning: JSON log stream to " << log_json_file_
             << " failed\n";
        ok = false;
      }
    }
    if (activated_telemetry_) telemetry::set_active(false);
    telemetry::reset_pipeline();
    finalize_ok_ = ok;
    lock_.unlock();
    return ok;
  }

 private:
  /// Leaked (never destroyed) so guards in static-teardown paths stay safe.
  static std::mutex& pipeline_mutex() {
    static std::mutex* mu = new std::mutex;
    return *mu;
  }

  std::unique_lock<std::mutex> lock_;
  std::string metrics_file_;
  std::string trace_file_;
  std::string telemetry_file_;
  std::string tree_json_file_;
  std::string tree_dot_file_;
  std::string log_json_file_;
  std::ostream& out_;
  std::ostream& err_;
  std::ofstream telemetry_os_;
  std::ofstream log_json_os_;
  std::ostringstream discard_;
  bool sampler_started_ = false;
  bool activated_telemetry_ = false;
  bool finalized_ = false;
  bool finalize_ok_ = true;
};

// ---------------------------------------------------------------------------
// Solve service: daemon mode (--serve) and the client verbs.
// ---------------------------------------------------------------------------

struct ServeArguments {
  std::string socket_path;
  int workers = 2;
  int queue_depth = 16;
  double memory_mb = 4096.0;
  std::string artifact_dir;
  int threads_per_job = 1;
  bool quiet = false;
  std::optional<LogLevel> log_level;
};

ServeArguments parse_serve_args(const std::vector<std::string>& args) {
  ServeArguments parsed;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      SPARCS_REQUIRE(i + 1 < args.size(), arg + " needs a value");
      return args[++i];
    };
    if (arg == "--serve") {
      parsed.socket_path = value();
    } else if (arg == "--serve-workers") {
      parsed.workers = std::stoi(value());
      SPARCS_REQUIRE(parsed.workers >= 0, "--serve-workers must be >= 0");
    } else if (arg == "--serve-queue-depth") {
      parsed.queue_depth = std::stoi(value());
      SPARCS_REQUIRE(parsed.queue_depth > 0,
                     "--serve-queue-depth must be > 0");
    } else if (arg == "--serve-memory-mb") {
      parsed.memory_mb = std::stod(value());
      SPARCS_REQUIRE(parsed.memory_mb > 0.0, "--serve-memory-mb must be > 0");
    } else if (arg == "--serve-artifact-dir") {
      parsed.artifact_dir = value();
    } else if (arg == "--serve-threads-per-job") {
      parsed.threads_per_job = std::stoi(value());
      SPARCS_REQUIRE(parsed.threads_per_job >= 0,
                     "--serve-threads-per-job must be >= 0");
    } else if (arg == "--log-level") {
      parsed.log_level = parse_log_level(value());
    } else if (arg == "--quiet") {
      parsed.quiet = true;
    } else {
      SPARCS_REQUIRE(false, "unknown --serve option " + arg);
    }
  }
  SPARCS_REQUIRE(!parsed.socket_path.empty(), "--serve needs a socket path");
  return parsed;
}

int run_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  const ServeArguments parsed = parse_serve_args(args);
  // The daemon defaults to kInfo: job lifecycle messages are its primary
  // human-facing output (clients get JSON responses, not this stream).
  set_log_level(parsed.log_level.value_or(parsed.quiet ? LogLevel::kError
                                                       : LogLevel::kInfo));

  service::ServerOptions options;
  options.socket_path = parsed.socket_path;
  options.num_workers = parsed.workers;
  options.max_queue_depth = parsed.queue_depth;
  options.max_est_memory_mb = parsed.memory_mb;
  options.artifact_dir = parsed.artifact_dir;
  options.threads_per_job = parsed.threads_per_job;
  options.stop = milp::CancelToken::create();

  // SIGINT/SIGTERM trip the server's stop token: the accept loop notices,
  // preempts in-flight jobs through their cancel tokens (running sweeps land
  // checkpoints and reports on the way out) and returns cleanly.
  SignalGuard signals(options.stop);
  out << "serving on " << parsed.socket_path << "\n";
  service::Server server(std::move(options));
  const int code = server.serve();
  if (SignalGuard::preempted()) {
    err << "shut down by " << SignalGuard::signal_name()
        << ": in-flight jobs preempted, artifacts flushed\n";
  }
  return code;
}

bool is_client_verb(const std::string& arg) {
  return arg == "submit" || arg == "status" || arg == "result" ||
         arg == "cancel" || arg == "list" || arg == "shutdown";
}

struct ClientArguments {
  std::string verb;
  std::string socket_path;
  std::string job;
  bool wait = false;
  service::SubmitRequest submit;
  std::string input_file;  ///< .tg file read client-side into graph_text
};

ClientArguments parse_client_args(const std::vector<std::string>& args) {
  ClientArguments parsed;
  parsed.verb = args[0];
  parsed.submit.threads = 0;  // server default unless --threads is given
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      SPARCS_REQUIRE(i + 1 < args.size(), arg + " needs a value");
      return args[++i];
    };
    if (arg == "--socket") {
      parsed.socket_path = value();
    } else if (arg == "--job") {
      parsed.job = value();
    } else if (arg == "--wait") {
      parsed.wait = true;
    } else if (arg == "--priority") {
      parsed.submit.priority = std::stoi(value());
    } else if (arg == "--detach") {
      parsed.submit.detach = true;
    } else if (arg == "--workload") {
      parsed.submit.workload = value();
    } else if (arg == "--rmax") {
      parsed.submit.rmax = std::stod(value());
    } else if (arg == "--mmax") {
      parsed.submit.mmax = std::stod(value());
    } else if (arg == "--ct") {
      parsed.submit.ct = std::stod(value());
    } else if (arg == "--delta") {
      parsed.submit.delta = std::stod(value());
    } else if (arg == "--alpha") {
      parsed.submit.alpha = std::stoi(value());
    } else if (arg == "--gamma") {
      parsed.submit.gamma = std::stoi(value());
    } else if (arg == "--time-limit") {
      parsed.submit.time_limit_sec = std::stod(value());
    } else if (arg == "--deadline-sec") {
      parsed.submit.deadline_sec = std::stod(value());
    } else if (arg == "--threads") {
      parsed.submit.threads = std::stoi(value());
    } else if (arg == "--certify") {
      parsed.submit.certify = value();
    } else if (arg == "--no-checkpoint") {
      parsed.submit.checkpoint = false;
    } else if (arg == "--est-memory-mb") {
      parsed.submit.est_memory_mb = std::stod(value());
    } else if (!arg.empty() && arg[0] == '-') {
      SPARCS_REQUIRE(false, "unknown " + parsed.verb + " option " + arg);
    } else {
      SPARCS_REQUIRE(parsed.input_file.empty(), "multiple input files given");
      parsed.input_file = arg;
    }
  }
  SPARCS_REQUIRE(!parsed.socket_path.empty(),
                 parsed.verb + " needs --socket PATH");
  if (parsed.verb == "submit") {
    SPARCS_REQUIRE(parsed.input_file.empty() != parsed.submit.workload.empty(),
                   "submit needs exactly one of <graph.tg> or --workload");
  } else {
    SPARCS_REQUIRE(parsed.input_file.empty() && parsed.submit.workload.empty(),
                   parsed.verb + " takes no graph argument");
  }
  if (parsed.verb == "status" || parsed.verb == "result" ||
      parsed.verb == "cancel") {
    SPARCS_REQUIRE(!parsed.job.empty(), parsed.verb + " needs --job ID");
  }
  return parsed;
}

/// Maps one response line to a process exit code: admission rejections get
/// their own code (8) so scripts can distinguish backpressure from a bad
/// request, and a terminal job result carries the exit code the equivalent
/// one-shot run would have returned.
int client_exit_code(const json::Value& response) {
  if (!response.member_bool("ok")) {
    const json::Value* error = response.find("error");
    const std::string code =
        error != nullptr ? error->member_string("code") : "";
    if (code == "queue_full" || code == "memory_limit" ||
        code == "shutting_down") {
      return 8;
    }
    return 4;
  }
  const json::Value* exit_code = response.find("exit_code");
  if (exit_code != nullptr) return static_cast<int>(exit_code->as_int());
  return 0;
}

int run_client(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  const ClientArguments parsed = parse_client_args(args);
  set_log_level(LogLevel::kWarning);

  service::Request request;
  request.op = parsed.verb;
  request.job = parsed.job;
  request.wait = parsed.wait && parsed.verb == "result";
  if (parsed.verb == "submit") {
    request.submit = parsed.submit;
    if (!parsed.input_file.empty()) {
      std::ifstream file(parsed.input_file);
      SPARCS_REQUIRE(file.good(), "cannot open " + parsed.input_file);
      std::ostringstream text;
      text << file.rdbuf();
      request.submit.graph_text = text.str();
    }
  }

  service::Client client(parsed.socket_path);
  std::string line = client.call(request);
  out << line << "\n";
  json::ParseResult response = json::parse(line);
  if (!response.ok) {
    err << "error: malformed response from the service: " << response.error
        << "\n";
    return 4;
  }
  // submit --wait blocks on the same connection for the job's terminal
  // result and prints it as a second response line, so one command covers
  // the submit-then-collect loop (and keeps the connection open — closing
  // it would cancel the job we are waiting on).
  if (parsed.verb == "submit" && parsed.wait &&
      response.value.member_bool("ok")) {
    service::Request result_request;
    result_request.op = "result";
    result_request.job = response.value.member_string("job");
    result_request.wait = true;
    line = client.call(result_request);
    out << line << "\n";
    response = json::parse(line);
    if (!response.ok) {
      err << "error: malformed response from the service: " << response.error
          << "\n";
      return 4;
    }
  }
  return client_exit_code(response.value);
}

}  // namespace

std::string usage() {
  return R"(usage: sparcs-tp <graph.tg> [options]
       sparcs-tp --workload {ar|dct|ewf} [options]
       sparcs-tp --serve SOCKET [service options]
       sparcs-tp {submit|status|result|cancel|list|shutdown} --socket SOCKET
                 [client options]

options:
  --rmax R --mmax M --ct CT  device parameters (override the file's device)
  --delta D                  latency tolerance in ns (default: 2% of MaxLatency)
  --alpha A / --gamma G      partition relaxations (defaults 0 / 1)
  --time-limit S             per-ILP-solve wall budget (default 10 s)
  --deadline-sec S           wall-clock deadline for the whole run; on expiry
                             the best incumbent so far is returned with a
                             degraded report (exit code 3)
  --threads T                solver worker threads (0 = all hardware threads,
                             1 = single-threaded legacy search; default 0)
  --certify MODE             exact-rational certificate checking of solver
                             verdicts: off (default), incumbents (every
                             reported design re-checked exactly), full
                             (incumbents plus Farkas/propagation proofs for
                             every infeasible verdict). A failed check
                             triggers one distrust re-solve; a verdict still
                             uncertified afterwards degrades the run
                             conservatively and exits with code 7
  --optimal                  also run the optimal-ILP reference
  --simulate                 simulate the best design (Gantt-style report)
  --dot FILE / --csv FILE    export the design / the iteration trace
  --metrics-json FILE        write a metrics snapshot (counters/gauges/timers)
  --trace-json FILE          write Chrome trace-event JSON (chrome://tracing)
  --report-json FILE         write the partitioner report as JSON
  --telemetry-jsonl FILE     stream live telemetry samples as JSON Lines: one
                             record per sampling interval, stage transition
                             and incumbent improvement (plus start/final)
  --telemetry-interval-ms N  sampling period for --telemetry-jsonl/--progress
                             (default 200)
  --progress                 rewrite a one-line live status report on stderr
                             (stage, N, incumbent, solves, elapsed)
  --search-tree-json FILE    dump the recorded branch & bound search tree as
                             JSON (ring-buffered; schema in DESIGN.md)
  --search-tree-dot FILE     dump the search tree as Graphviz DOT
  --log-json FILE            mirror every log statement as a JSON Lines
                             record carrying the solve correlation id
  --checkpoint FILE          maintain a crash-safe sweep checkpoint (atomic
                             rename, CRC-sealed JSON): rewritten after every
                             completed partition bound and, rate-limited by
                             --checkpoint-interval-sec, after bisection steps
  --checkpoint-interval-sec S
                             minimum seconds between mid-stage checkpoint
                             writes (default 5; stage completions always
                             write immediately)
  --resume                   resume from --checkpoint FILE: finished bounds
                             are not re-solved and an interrupted bisection
                             continues from its saved window. A checkpoint
                             written for different inputs (or a damaged one)
                             is rejected with a warning and the run starts
                             fresh; a missing file also starts fresh
  --log-level L              debug|info|warning|error|off (default: warning)
  --quiet                    shorthand for --log-level error; also suppresses
                             the iteration trace table (the --*-json files are
                             still written)

service (daemon):
  --serve SOCKET             run as a persistent solve service on a unix
                             socket: line-delimited JSON requests (submit,
                             status, result, cancel, list, shutdown), a
                             bounded priority job queue with admission
                             control, and a shared solver worker pool
  --serve-workers N          concurrent solver workers (default 2)
  --serve-queue-depth N      max queued jobs before submits are rejected
                             with queue_full (default 16)
  --serve-memory-mb X        summed per-job memory-estimate ceiling before
                             submits are rejected with memory_limit
                             (default 4096)
  --serve-artifact-dir DIR   land per-job artifacts here (<job>.report.json,
                             <job>.ckpt, <job>.logs.jsonl); omit to keep
                             results in memory only
  --serve-threads-per-job N  default solver threads per job (default 1)

service (client verbs; all print the raw JSON response to stdout):
  submit {<graph.tg>|--workload W} [--priority N] [--detach] [--wait]
         [solve options: --rmax/--mmax/--ct/--delta/--alpha/--gamma/
          --time-limit/--deadline-sec/--threads/--certify/--no-checkpoint/
          --est-memory-mb]
                             queue one job; --wait blocks for its terminal
                             result (a second response line) and exits with
                             the job's one-shot-equivalent exit code; without
                             --detach, closing the connection cancels the job
  status --job ID            one job's live state
  result --job ID [--wait]   a terminal job's full report
  cancel --job ID            cancel a queued or running job
  list                       queue depth, running jobs, admission headroom
  shutdown                   graceful daemon shutdown (in-flight jobs are
                             preempted through their checkpoint path)

signals:
  SIGINT/SIGTERM preempt the run gracefully: the in-flight solve cancels
  cooperatively, the best incumbent so far is reported, and the final
  checkpoint plus all artifact files are flushed before exiting with code 5.
  A daemon (--serve) shuts down the same way: queued jobs cancel, running
  jobs preempt and land their artifacts, then the socket is unlinked.

exit codes:
  0  success (converged result)
  2  no feasible partitioning in the explored range
  3  degraded: the time budget or --deadline-sec expired before the sweep
     finished (any printed result is the best incumbent so far)
  4  bad input: unusable arguments or a malformed graph file
  5  preempted by SIGINT/SIGTERM (state flushed; rerun with --resume)
  6  an artifact file (--report-json, --dot, ...) failed to land on an
     otherwise successful run
  7  uncertified: with --certify, at least one solver verdict failed its
     exact certificate check even after the distrust re-solve (the report
     marks the affected probes; printed results are conservative)
  8  rejected: the solve service refused the submission (queue_full,
     memory_limit or shutting_down; the response's error.code says which)
)";
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    err << usage();
    return 4;
  }
  // Service modes peel off before the one-shot path: a client verb as the
  // first argument, or --serve anywhere, select them.
  try {
    if (is_client_verb(args[0])) return run_client(args, out, err);
    for (const std::string& arg : args) {
      if (arg == "--serve") return run_serve(args, out, err);
    }
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n" << usage();
    return 4;
  }
  try {
    const Arguments parsed = parse_args(args);

    // --log-level wins over --quiet; set explicitly every run so repeated
    // in-process invocations do not inherit a previous run's level.
    set_log_level(parsed.log_level.value_or(
        parsed.quiet ? LogLevel::kError : LogLevel::kWarning));
    ObservabilityGuard observability(parsed, out, err);

    // One cancellation token is shared by the signal handler, the deadline
    // watchdog and every solve: SIGINT/SIGTERM preempt the run through the
    // same cooperative path a deadline uses.
    milp::CancelToken run_cancel = milp::CancelToken::create();
    SignalGuard signals(run_cancel);
    bool artifacts_ok = true;

    int code = [&]() -> int {
    graph::TaskGraph graph;
    std::optional<arch::Device> device;
    if (!parsed.workload.empty()) {
      graph = builtin_workload(parsed.workload);
    } else {
      std::ifstream file(parsed.input_file);
      SPARCS_REQUIRE(file.good(), "cannot open " + parsed.input_file);
      io::TaskGraphFile parsed_file = io::read_task_graph(file);
      graph = std::move(parsed_file.graph);
      device = parsed_file.device;
    }

    const double rmax = parsed.rmax.value_or(
        device ? device->resource_capacity : 576.0);
    const double mmax =
        parsed.mmax.value_or(device ? device->memory_capacity : 4096.0);
    const double ct =
        parsed.ct.value_or(device ? device->reconfig_time_ns : 100.0);
    const arch::Device dev = arch::custom("cli-device", rmax, mmax, ct);

    out << "graph '" << graph.name() << "': " << graph.num_tasks()
        << " tasks, " << graph.num_edges() << " edges; device Rmax=" << rmax
        << " Mmax=" << mmax << " Ct=" << ct << " ns\n";

    core::PartitionerOptions options;
    options.budget.delta = parsed.delta;
    options.alpha = parsed.alpha;
    options.gamma = parsed.gamma;
    options.budget.solver.time_limit_sec = parsed.time_limit;
    options.budget.solver.num_threads = parsed.threads;
    options.budget.solver.cancel = run_cancel;
    if (parsed.deadline_sec > 0.0) {
      options.budget.deadline =
          core::Deadline::after_seconds(parsed.deadline_sec);
    }
    options.budget.solver.certify = parsed.certify;
    options.checkpoint.path = parsed.checkpoint_file;
    options.checkpoint.min_interval_sec = parsed.checkpoint_interval_sec;
    options.checkpoint.resume = parsed.resume;
    const core::PartitionerReport report =
        core::TemporalPartitioner(graph, dev, options).run();

    if (report.resumed) {
      out << "resumed from checkpoint " << parsed.checkpoint_file << "\n";
    }
    if (!report.resume_error.empty()) {
      err << "warning: started fresh, " << report.resume_error << "\n";
    }

    // The human trace table follows the log level (--quiet implies kError),
    // but the observability files above never do: --trace-json and
    // --metrics-json are written even at --log-level error/off.
    if (log_level() < LogLevel::kError) {
      out << io::render_trace(report.trace, ct, false);
    }
    if (!parsed.report_json_file.empty()) {
      artifacts_ok &= write_artifact(parsed.report_json_file,
                                     report.to_json() + "\n", "report", out,
                                     err);
    }
    // Certification summary: how many verdicts were checked exactly and
    // whether any stayed uncertified after the distrust retry.
    const bool uncertified = report.solver_stats.uncertified_verdicts > 0;
    if (parsed.certify != milp::CertifyMode::kOff) {
      out << "certified: " << report.solver_stats.certificates_checked
          << " verdicts checked exactly, "
          << report.solver_stats.certify_retries << " distrust retries, "
          << report.solver_stats.uncertified_verdicts << " uncertified\n";
    }
    // Degradation summary: which partition bounds the sweep probed, cut
    // short or never reached before the budget/deadline expired — or
    // stopped conservatively on an uncertified verdict.
    if (report.degraded) {
      int probed = 0, cut_short = 0, skipped = 0, degraded_stages = 0;
      for (const core::StageAccount& stage : report.stages) {
        switch (stage.status) {
          case core::StageStatus::kProbed:
            ++probed;
            break;
          case core::StageStatus::kCutShort:
            ++cut_short;
            break;
          case core::StageStatus::kSkipped:
            ++skipped;
            break;
          case core::StageStatus::kDegraded:
            ++degraded_stages;
            break;
        }
      }
      out << "degraded: budget/deadline expired or verdicts went uncertified ("
          << probed << " bounds probed, " << cut_short << " cut short, "
          << skipped << " skipped, " << degraded_stages << " uncertified"
          << (report.watchdog_fired ? "; watchdog fired" : "") << ")\n";
    }
    if (!report.feasible) {
      out << "no feasible partitioning in the explored range\n";
      if (uncertified) return 7;
      return report.degraded ? 3 : 2;
    }
    out << (report.degraded ? "best so far: " : "best: ")
        << report.achieved_latency << " ns at N="
        << report.best_num_partitions << " (delta=" << report.delta_used
        << ", " << report.ilp_solves << " ILP solves, " << report.seconds
        << " s)\n"
        << report.best->to_string(graph);

    // A preempted run still reports its incumbent and flushes artifacts,
    // but skips the optional extra solves (--optimal) and the simulation:
    // the user asked the process to wind down, not start new work.
    if (parsed.optimal && !SignalGuard::preempted()) {
      const core::OptimalResult optimal = core::solve_optimal_over_range(
          graph, dev, parsed.alpha, parsed.gamma, options.budget.solver);
      if (optimal.best) {
        out << "optimal reference: " << optimal.latency_ns << " ns ("
            << milp::to_string(optimal.status) << ")\n";
      } else {
        out << "optimal reference: no solution ("
            << milp::to_string(optimal.status) << ")\n";
      }
    }
    if (parsed.simulate && !SignalGuard::preempted()) {
      out << sim::simulate(graph, dev, *report.best).to_string(graph);
    }
    if (!parsed.dot_file.empty()) {
      std::ostringstream dot;
      io::write_dot(dot, graph, *report.best);
      artifacts_ok &=
          write_artifact(parsed.dot_file, dot.str(), "design DOT", out, err);
    }
    if (!parsed.csv_file.empty()) {
      std::ostringstream csv;
      io::write_trace_csv(csv, report.trace);
      artifacts_ok &=
          write_artifact(parsed.csv_file, csv.str(), "trace CSV", out, err);
    }
    if (uncertified) return 7;
    return report.degraded ? 3 : 0;
    }();

    if (SignalGuard::preempted()) {
      // Grab one last telemetry sample while the sampler is still running so
      // the JSONL stream records the preemption, then report and remap the
      // exit code: 5 says "interrupted, state flushed, resume with --resume".
      telemetry::sample_now("preempt");
      err << "preempted by " << SignalGuard::signal_name()
          << ": best incumbent reported, artifacts flushed"
          << (parsed.checkpoint_file.empty()
                  ? ""
                  : ", checkpoint saved (rerun with --resume)")
          << "\n";
      code = 5;
    }
    if (!observability.finalize()) artifacts_ok = false;
    // Artifact failures only take over a clean exit: degraded/infeasible/
    // preempted codes carry more information than "a file didn't land".
    if (!artifacts_ok && code == 0) code = 6;
    return code;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n" << usage();
    return 4;
  }
}

}  // namespace sparcs::cli

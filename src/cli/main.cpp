#include <iostream>
#include <string>
#include <vector>

#include "cli/app.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return sparcs::cli::run(args, std::cout, std::cerr);
}

// Command line driver logic (separated from main() so the argument parsing
// and end-to-end behavior are unit-testable).
//
//   sparcs-tp <graph.tg> [options]
//   sparcs-tp --workload {ar|dct|ewf} [options]
//
// Options:
//   --rmax R --mmax M --ct CT   override / supply the device
//   --delta D                   latency tolerance (default 2% of MaxLatency)
//   --alpha A --gamma G         partition relaxations (defaults 0 / 1)
//   --time-limit S              per-ILP-solve wall budget in seconds
//   --optimal                   also run the optimal-ILP reference
//   --simulate                  simulate the best design and print the Gantt
//   --dot FILE                  write the partitioned design as DOT
//   --csv FILE                  write the iteration trace as CSV
//   --quiet                     suppress the trace table
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sparcs::cli {

/// Runs the driver; returns the process exit code. Output goes to `out`,
/// diagnostics to `err`.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// Usage text.
std::string usage();

}  // namespace sparcs::cli

#include "io/dot.hpp"

#include <ostream>
#include <sstream>

#include "support/strings.hpp"

namespace sparcs::io {
namespace {

std::string node_id(const graph::TaskGraph& graph, graph::TaskId t) {
  std::string id = graph.task(t).name;
  for (char& c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return id;
}

void write_edges(std::ostream& os, const graph::TaskGraph& graph) {
  for (const graph::DataEdge& e : graph.edges()) {
    os << "  " << node_id(graph, e.from) << " -> " << node_id(graph, e.to)
       << " [label=\"" << trim_double(e.data_units) << "\"];\n";
  }
}

}  // namespace

void write_dot(std::ostream& os, const graph::TaskGraph& graph) {
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const graph::Task& task = graph.task(t);
    os << "  " << node_id(graph, t) << " [label=\"" << task.name << "\\n"
       << task.design_points.size() << " design points\"];\n";
  }
  write_edges(os, graph);
  os << "}\n";
}

void write_dot(std::ostream& os, const graph::TaskGraph& graph,
               const core::PartitionedDesign& design) {
  os << "digraph \"" << graph.name() << "_partitioned\" {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (int p = 1; p <= design.num_partitions_allocated; ++p) {
    std::ostringstream body;
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      const core::TaskAssignment& a =
          design.assignment[static_cast<std::size_t>(t)];
      if (a.partition != p) continue;
      const graph::DesignPoint& dp =
          graph.task(t).design_points[static_cast<std::size_t>(a.design_point)];
      body << "    " << node_id(graph, t) << " [label=\""
           << graph.task(t).name << "\\n" << dp.module_set << " ("
           << trim_double(dp.area) << " CLB, " << trim_double(dp.latency_ns)
           << " ns)\"];\n";
    }
    const std::string content = body.str();
    if (content.empty()) continue;
    os << "  subgraph cluster_p" << p << " {\n";
    os << "    label=\"partition " << p << " (d="
       << trim_double(design.partition_latency_ns.empty()
                          ? 0.0
                          : design.partition_latency_ns[static_cast<std::size_t>(p - 1)])
       << " ns)\";\n";
    os << content;
    os << "  }\n";
  }
  write_edges(os, graph);
  os << "}\n";
}

std::string to_dot_string(const graph::TaskGraph& graph) {
  std::ostringstream os;
  write_dot(os, graph);
  return os.str();
}

std::string to_dot_string(const graph::TaskGraph& graph,
                          const core::PartitionedDesign& design) {
  std::ostringstream os;
  write_dot(os, graph, design);
  return os.str();
}

}  // namespace sparcs::io

#include "io/tg_format.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::io {
namespace {

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

double parse_double(const std::string& token, int line_no) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  SPARCS_REQUIRE(end == token.c_str() + token.size(),
                 str_format("line %d: expected a number, got '%s'", line_no,
                            token.c_str()));
  // strtod accepts "nan"/"inf" spellings and overflows to infinity; none of
  // the format's quantities may be non-finite.
  SPARCS_REQUIRE(std::isfinite(value),
                 str_format("line %d: number '%s' is not finite", line_no,
                            token.c_str()));
  return value;
}

double parse_nonneg(const std::string& token, int line_no, const char* what) {
  const double value = parse_double(token, line_no);
  SPARCS_REQUIRE(value >= 0.0,
                 str_format("line %d: %s must be non-negative, got '%s'",
                            line_no, what, token.c_str()));
  return value;
}

}  // namespace

TaskGraphFile read_task_graph_string(const std::string& text) {
  TaskGraphFile result;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  std::string graph_name = "imported";
  // Points are attached after construction, so stage tasks first.
  struct PendingTask {
    std::string name;
    double env_in = 0, env_out = 0;
    std::vector<graph::DesignPoint> points;
  };
  std::vector<PendingTask> tasks;
  struct PendingEdge {
    std::string from, to;
    double units;
    int line;
  };
  std::vector<PendingEdge> edges;

  auto find_task = [&](const std::string& name) -> PendingTask* {
    for (PendingTask& t : tasks) {
      if (t.name == name) return &t;
    }
    return nullptr;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    if (directive == "graph") {
      SPARCS_REQUIRE(tokens.size() == 2,
                     str_format("line %d: graph <name>", line_no));
      graph_name = tokens[1];
    } else if (directive == "device") {
      SPARCS_REQUIRE(tokens.size() == 5,
                     str_format("line %d: device <name> <Rmax> <Mmax> <Ct>",
                                line_no));
      SPARCS_REQUIRE(!result.device.has_value(),
                     str_format("line %d: duplicate device", line_no));
      result.device = arch::custom(
          tokens[1], parse_nonneg(tokens[2], line_no, "device Rmax"),
          parse_nonneg(tokens[3], line_no, "device Mmax"),
          parse_nonneg(tokens[4], line_no, "device Ct"));
    } else if (directive == "task") {
      SPARCS_REQUIRE(tokens.size() >= 2 && tokens.size() <= 4,
                     str_format("line %d: task <name> [env_in [env_out]]",
                                line_no));
      SPARCS_REQUIRE(find_task(tokens[1]) == nullptr,
                     str_format("line %d: duplicate task '%s'", line_no,
                                tokens[1].c_str()));
      PendingTask task;
      task.name = tokens[1];
      if (tokens.size() >= 3) {
        task.env_in = parse_nonneg(tokens[2], line_no, "task env_in");
      }
      if (tokens.size() >= 4) {
        task.env_out = parse_nonneg(tokens[3], line_no, "task env_out");
      }
      tasks.push_back(std::move(task));
    } else if (directive == "point") {
      SPARCS_REQUIRE(
          tokens.size() == 5,
          str_format("line %d: point <task> <module_set> <area> <latency>",
                     line_no));
      PendingTask* task = find_task(tokens[1]);
      SPARCS_REQUIRE(task != nullptr,
                     str_format("line %d: unknown task '%s'", line_no,
                                tokens[1].c_str()));
      task->points.push_back(graph::DesignPoint{
          tokens[2], parse_nonneg(tokens[3], line_no, "point area"),
          parse_nonneg(tokens[4], line_no, "point latency")});
    } else if (directive == "edge") {
      SPARCS_REQUIRE(tokens.size() == 4,
                     str_format("line %d: edge <from> <to> <units>", line_no));
      edges.push_back(
          PendingEdge{tokens[1], tokens[2],
                      parse_nonneg(tokens[3], line_no, "edge units"), line_no});
    } else {
      SPARCS_REQUIRE(false, str_format("line %d: unknown directive '%s'",
                                       line_no, directive.c_str()));
    }
  }

  result.graph = graph::TaskGraph(graph_name);
  for (PendingTask& task : tasks) {
    result.graph.add_task(task.name, std::move(task.points), task.env_in,
                          task.env_out);
  }
  for (const PendingEdge& edge : edges) {
    const graph::TaskId from = result.graph.find_task(edge.from);
    const graph::TaskId to = result.graph.find_task(edge.to);
    SPARCS_REQUIRE(from >= 0, str_format("line %d: unknown task '%s'",
                                         edge.line, edge.from.c_str()));
    SPARCS_REQUIRE(to >= 0, str_format("line %d: unknown task '%s'",
                                       edge.line, edge.to.c_str()));
    result.graph.add_edge(from, to, edge.units);
  }
  result.graph.validate();
  return result;
}

TaskGraphFile read_task_graph(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return read_task_graph_string(buffer.str());
}

void write_task_graph(std::ostream& os, const graph::TaskGraph& graph,
                      const arch::Device* device) {
  os << "graph " << (graph.name().empty() ? "unnamed" : graph.name()) << "\n";
  if (device != nullptr) {
    os << "device " << device->name << " "
       << trim_double(device->resource_capacity) << " "
       << trim_double(device->memory_capacity) << " "
       << trim_double(device->reconfig_time_ns) << "\n";
  }
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const graph::Task& task = graph.task(t);
    os << "task " << task.name << " " << trim_double(task.env_in) << " "
       << trim_double(task.env_out) << "\n";
    for (const graph::DesignPoint& p : task.design_points) {
      os << "point " << task.name << " " << p.module_set << " "
         << trim_double(p.area) << " " << trim_double(p.latency_ns) << "\n";
    }
  }
  for (const graph::DataEdge& e : graph.edges()) {
    os << "edge " << graph.task(e.from).name << " " << graph.task(e.to).name
       << " " << trim_double(e.data_units) << "\n";
  }
}

std::string to_task_graph_string(const graph::TaskGraph& graph,
                                 const arch::Device* device) {
  std::ostringstream os;
  write_task_graph(os, graph, device);
  return os.str();
}

}  // namespace sparcs::io

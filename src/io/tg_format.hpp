// Plain-text task graph exchange format, used by the command line driver.
//
// Line oriented; '#' starts a comment. Directives:
//
//   graph  <name>
//   device <name> <Rmax> <Mmax> <Ct_ns>          (optional, at most one)
//   task   <name> [env_in [env_out]]
//   point  <task> <module_set> <area> <latency_ns>
//   edge   <from> <to> <data_units>
//
// Tasks must be declared before their points and edges.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "arch/device.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::io {

/// Parse result: the graph plus the optional embedded device description.
struct TaskGraphFile {
  graph::TaskGraph graph;
  std::optional<arch::Device> device;
};

/// Parses the format above. Throws InvalidArgumentError naming the offending
/// line on malformed input.
TaskGraphFile read_task_graph(std::istream& is);
TaskGraphFile read_task_graph_string(const std::string& text);

/// Writes a graph (and optionally a device) in the same format.
void write_task_graph(std::ostream& os, const graph::TaskGraph& graph,
                      const arch::Device* device = nullptr);
std::string to_task_graph_string(const graph::TaskGraph& graph,
                                 const arch::Device* device = nullptr);

}  // namespace sparcs::io

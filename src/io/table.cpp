#include "io/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::io {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SPARCS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  SPARCS_REQUIRE(row.size() == header_.size(),
                 "row arity does not match header");
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](char fill) {
    std::string out = "+";
    for (const std::size_t w : width) {
      out += std::string(w + 2, fill);
      out += "+";
    }
    return out + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::ostringstream os;
  os << line('-') << render_row(header_) << line('=');
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << line('-');
    } else {
      os << render_row(row);
    }
  }
  os << line('-');
  return os.str();
}

std::string render_trace(const core::Trace& trace, double ct_ns,
                         bool subtract_reconfig) {
  AsciiTable table({"N", "I", "Dmax(ns)", "Dmin(ns)", "Da(ns)", "nodes",
                    "pruned", "LPit", "T(ms)"});
  int last_n = -1;
  for (const core::IterationRecord& row : trace) {
    if (last_n >= 0 && row.num_partitions != last_n) table.add_separator();
    last_n = row.num_partitions;
    const double shift =
        subtract_reconfig ? row.num_partitions * ct_ns : 0.0;
    std::string da;
    switch (row.outcome) {
      case core::IterationOutcome::kFeasible:
        da = trim_double(row.achieved_latency - shift, 1);
        break;
      case core::IterationOutcome::kInfeasible:
        da = "Inf.";
        break;
      case core::IterationOutcome::kLimit:
        da = "Limit";
        break;
      case core::IterationOutcome::kUncertified:
        da = "Uncert.";
        break;
    }
    table.add_row({std::to_string(row.num_partitions),
                   std::to_string(row.iteration),
                   trim_double(row.d_max_bound - shift, 1),
                   trim_double(row.d_min_bound - shift, 1), da,
                   std::to_string(row.nodes),
                   std::to_string(row.stats.nodes_pruned_by_bound +
                                  row.stats.nodes_pruned_infeasible),
                   std::to_string(row.stats.simplex_iterations),
                   trim_double(row.seconds * 1e3, 2)});
  }
  return table.to_string();
}

}  // namespace sparcs::io

#include "io/csv.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::io {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ",";
    os << csv_escape(cells[i]);
  }
  os << "\n";
}

void write_trace_csv(std::ostream& os, const core::Trace& trace) {
  write_csv_row(os, {"N", "iteration", "d_max_bound", "d_min_bound",
                     "outcome", "achieved_latency_ns", "nodes", "seconds",
                     "simplex_iterations", "nodes_pruned"});
  for (const core::IterationRecord& row : trace) {
    std::string outcome;
    switch (row.outcome) {
      case core::IterationOutcome::kFeasible:
        outcome = "feasible";
        break;
      case core::IterationOutcome::kInfeasible:
        outcome = "infeasible";
        break;
      case core::IterationOutcome::kLimit:
        outcome = "limit";
        break;
      case core::IterationOutcome::kUncertified:
        outcome = "uncertified";
        break;
    }
    const std::int64_t pruned = row.stats.nodes_pruned_by_bound +
                                row.stats.nodes_pruned_infeasible;
    write_csv_row(
        os, {std::to_string(row.num_partitions), std::to_string(row.iteration),
             trim_double(row.d_max_bound, 3), trim_double(row.d_min_bound, 3),
             outcome, trim_double(row.achieved_latency, 3),
             std::to_string(row.nodes), trim_double(row.seconds, 6),
             std::to_string(row.stats.simplex_iterations),
             std::to_string(pruned)});
  }
}

std::vector<CsvRow> parse_csv_rows(const std::string& text) {
  std::vector<CsvRow> rows;
  const std::size_t size = text.size();
  std::size_t i = 0;
  int line = 1;
  // True row terminator: '\n' or "\r\n" (a lone '\r' is cell data).
  auto at_row_end = [&](std::size_t pos) {
    return text[pos] == '\n' ||
           (text[pos] == '\r' && pos + 1 < size && text[pos + 1] == '\n');
  };
  while (i < size) {
    CsvRow row;
    row.line = line;
    std::string cell;
    bool row_done = false;
    while (!row_done) {
      if (i < size && text[i] == '"') {
        const int open_line = line;
        ++i;
        bool closed = false;
        while (i < size) {
          if (text[i] == '"') {
            if (i + 1 < size && text[i + 1] == '"') {
              cell += '"';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            if (text[i] == '\n') ++line;
            cell += text[i];
            ++i;
          }
        }
        SPARCS_REQUIRE(closed, str_format("line %d: unterminated quoted cell",
                                          open_line));
        SPARCS_REQUIRE(i >= size || text[i] == ',' || at_row_end(i),
                       str_format("line %d: unexpected character after "
                                  "closing quote",
                                  line));
      } else {
        while (i < size && text[i] != ',' && !at_row_end(i)) {
          SPARCS_REQUIRE(text[i] != '"',
                         str_format("line %d: quote inside unquoted cell",
                                    line));
          cell += text[i];
          ++i;
        }
      }
      row.cells.push_back(std::move(cell));
      cell.clear();
      if (i >= size) {
        row_done = true;
      } else if (text[i] == ',') {
        ++i;
      } else {
        if (text[i] == '\r') ++i;
        ++i;  // the '\n'
        ++line;
        row_done = true;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  for (CsvRow& row : parse_csv_rows(text)) {
    rows.push_back(std::move(row.cells));
  }
  return rows;
}

namespace {

constexpr const char* kTraceColumns[] = {
    "N",           "iteration", "d_max_bound",
    "d_min_bound", "outcome",   "achieved_latency_ns",
    "nodes",       "seconds",   "simplex_iterations",
    "nodes_pruned"};
constexpr std::size_t kNumTraceColumns =
    sizeof(kTraceColumns) / sizeof(kTraceColumns[0]);

double parse_trace_double(const std::string& cell, int line, const char* col) {
  // Locale-independent fast path; std::strtod would honour LC_NUMERIC and
  // misread "1.5" under a comma-decimal locale. Fallback: strtod still
  // accepts legacy cells with a leading '+' or whitespace that from_chars
  // (deliberately) rejects, so old trace files stay readable.
  double value = 0.0;
  const std::from_chars_result res =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  bool ok = !cell.empty() && res.ec == std::errc() &&
            res.ptr == cell.data() + cell.size();
  if (!ok && !cell.empty()) {
    char* end = nullptr;
    value = std::strtod(cell.c_str(), &end);
    ok = end == cell.c_str() + cell.size();
  }
  SPARCS_REQUIRE(ok,
                 str_format("line %d: column %s: expected a number, got '%s'",
                            line, col, cell.c_str()));
  SPARCS_REQUIRE(std::isfinite(value) && value >= 0.0,
                 str_format("line %d: column %s: '%s' is out of range", line,
                            col, cell.c_str()));
  return value;
}

std::int64_t parse_trace_int(const std::string& cell, int line,
                             const char* col) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(cell.c_str(), &end, 10);
  SPARCS_REQUIRE(!cell.empty() && end == cell.c_str() + cell.size() &&
                     errno != ERANGE,
                 str_format("line %d: column %s: expected an integer, got "
                            "'%s'",
                            line, col, cell.c_str()));
  SPARCS_REQUIRE(value >= 0,
                 str_format("line %d: column %s: '%s' must be non-negative",
                            line, col, cell.c_str()));
  return static_cast<std::int64_t>(value);
}

int parse_trace_int32(const std::string& cell, int line, const char* col) {
  const std::int64_t value = parse_trace_int(cell, line, col);
  SPARCS_REQUIRE(value <= std::numeric_limits<int>::max(),
                 str_format("line %d: column %s: '%s' is out of range", line,
                            col, cell.c_str()));
  return static_cast<int>(value);
}

core::IterationOutcome parse_trace_outcome(const std::string& cell,
                                           int line) {
  if (cell == "feasible") return core::IterationOutcome::kFeasible;
  if (cell == "infeasible") return core::IterationOutcome::kInfeasible;
  if (cell == "limit") return core::IterationOutcome::kLimit;
  if (cell == "uncertified") return core::IterationOutcome::kUncertified;
  SPARCS_REQUIRE(false,
                 str_format("line %d: column outcome: unknown label '%s'",
                            line, cell.c_str()));
  return core::IterationOutcome::kInfeasible;  // unreachable
}

bool is_blank_row(const CsvRow& row) {
  return row.cells.size() == 1 && row.cells[0].empty();
}

}  // namespace

core::Trace read_trace_csv_string(const std::string& text) {
  std::vector<CsvRow> rows;
  for (CsvRow& row : parse_csv_rows(text)) {
    if (!is_blank_row(row)) rows.push_back(std::move(row));
  }
  SPARCS_REQUIRE(!rows.empty(), "trace CSV: empty input");
  const CsvRow& header = rows.front();
  SPARCS_REQUIRE(header.cells.size() == kNumTraceColumns,
                 str_format("line %d: expected %zu header columns, got %zu",
                            header.line, kNumTraceColumns,
                            header.cells.size()));
  for (std::size_t c = 0; c < kNumTraceColumns; ++c) {
    SPARCS_REQUIRE(header.cells[c] == kTraceColumns[c],
                   str_format("line %d: header column %zu is '%s', expected "
                              "'%s'",
                              header.line, c + 1, header.cells[c].c_str(),
                              kTraceColumns[c]));
  }
  core::Trace trace;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    SPARCS_REQUIRE(row.cells.size() == kNumTraceColumns,
                   str_format("line %d: expected %zu fields, got %zu",
                              row.line, kNumTraceColumns, row.cells.size()));
    core::IterationRecord rec;
    rec.num_partitions = parse_trace_int32(row.cells[0], row.line, "N");
    rec.iteration = parse_trace_int32(row.cells[1], row.line, "iteration");
    rec.d_max_bound =
        parse_trace_double(row.cells[2], row.line, "d_max_bound");
    rec.d_min_bound =
        parse_trace_double(row.cells[3], row.line, "d_min_bound");
    rec.outcome = parse_trace_outcome(row.cells[4], row.line);
    rec.achieved_latency =
        parse_trace_double(row.cells[5], row.line, "achieved_latency_ns");
    rec.nodes = parse_trace_int(row.cells[6], row.line, "nodes");
    rec.seconds = parse_trace_double(row.cells[7], row.line, "seconds");
    rec.stats.simplex_iterations =
        parse_trace_int(row.cells[8], row.line, "simplex_iterations");
    rec.stats.nodes_pruned_by_bound =
        parse_trace_int(row.cells[9], row.line, "nodes_pruned");
    trace.push_back(rec);
  }
  return trace;
}

core::Trace read_trace_csv(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return read_trace_csv_string(buffer.str());
}

}  // namespace sparcs::io

#include "io/csv.hpp"

#include <ostream>

#include "support/strings.hpp"

namespace sparcs::io {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ",";
    os << csv_escape(cells[i]);
  }
  os << "\n";
}

void write_trace_csv(std::ostream& os, const core::Trace& trace) {
  write_csv_row(os, {"N", "iteration", "d_max_bound", "d_min_bound",
                     "outcome", "achieved_latency_ns", "nodes", "seconds",
                     "simplex_iterations", "nodes_pruned"});
  for (const core::IterationRecord& row : trace) {
    std::string outcome;
    switch (row.outcome) {
      case core::IterationOutcome::kFeasible:
        outcome = "feasible";
        break;
      case core::IterationOutcome::kInfeasible:
        outcome = "infeasible";
        break;
      case core::IterationOutcome::kLimit:
        outcome = "limit";
        break;
    }
    const std::int64_t pruned = row.stats.nodes_pruned_by_bound +
                                row.stats.nodes_pruned_infeasible;
    write_csv_row(
        os, {std::to_string(row.num_partitions), std::to_string(row.iteration),
             trim_double(row.d_max_bound, 3), trim_double(row.d_min_bound, 3),
             outcome, trim_double(row.achieved_latency, 3),
             std::to_string(row.nodes), trim_double(row.seconds, 6),
             std::to_string(row.stats.simplex_iterations),
             std::to_string(pruned)});
  }
}

}  // namespace sparcs::io

// Minimal CSV writer and strict reader (RFC-4180 quoting) for exchanging
// traces and bench series with external plotting tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace sparcs::io {

/// Writes one CSV row, quoting cells that need it.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

/// Writes an iteration trace as CSV with a header row.
void write_trace_csv(std::ostream& os, const core::Trace& trace);

/// Quotes a single cell if it contains a comma, quote or newline.
std::string csv_escape(const std::string& cell);

/// One parsed CSV row plus the 1-based line it started on (quoted cells may
/// span lines, so rows and lines are not one-to-one).
struct CsvRow {
  int line = 0;
  std::vector<std::string> cells;
};

/// Parses RFC-4180 CSV text: quoted cells may contain commas, quotes ("")
/// and newlines. Throws InvalidArgumentError with line context on an
/// unterminated quote, a stray quote inside an unquoted cell, or trailing
/// characters after a closing quote.
std::vector<CsvRow> parse_csv_rows(const std::string& text);

/// parse_csv_rows without the line annotations.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Reads a trace written by write_trace_csv, validating the header and every
/// field; throws InvalidArgumentError with line context on truncated rows,
/// malformed numbers or unknown outcome labels. The writer folds the two
/// prune counters into one column, so the read-back stats carry the sum in
/// nodes_pruned_by_bound.
core::Trace read_trace_csv_string(const std::string& text);
core::Trace read_trace_csv(std::istream& is);

}  // namespace sparcs::io

// Minimal CSV writer (RFC-4180 quoting) for exporting traces and bench
// series to external plotting tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace sparcs::io {

/// Writes one CSV row, quoting cells that need it.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

/// Writes an iteration trace as CSV with a header row.
void write_trace_csv(std::ostream& os, const core::Trace& trace);

/// Quotes a single cell if it contains a comma, quote or newline.
std::string csv_escape(const std::string& cell);

}  // namespace sparcs::io

// Fixed-width ASCII table writer used by the benches to print the
// paper-style result tables, plus a renderer for iteration traces.
#pragma once

#include <string>
#include <vector>

#include "core/trace.hpp"

namespace sparcs::io {

/// Column-aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; must have as many cells as the header.
  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal separator before the next row.
  void add_separator();

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  ///< empty row == separator
};

/// Renders an iteration trace in the layout of the paper's Tables 1/3-8:
/// columns N, I, Dmax, Dmin, Da (with "Inf." for infeasible iterations).
/// `subtract_reconfig` reproduces the paper's "Bound (without N*Ct)"
/// convention by subtracting N*ct_ns from the printed bounds.
std::string render_trace(const core::Trace& trace, double ct_ns,
                         bool subtract_reconfig);

}  // namespace sparcs::io

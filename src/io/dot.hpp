// Graphviz DOT export of task graphs and partitioned designs (partitions
// rendered as clusters), used by the examples to reproduce Figures 5 and 6.
#pragma once

#include <iosfwd>
#include <string>

#include "core/solution.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::io {

/// Writes the task graph in DOT format (one node per task annotated with its
/// design point count, one edge per data dependency with its volume).
void write_dot(std::ostream& os, const graph::TaskGraph& graph);

/// Writes the partitioned design in DOT format: tasks grouped into one
/// cluster per temporal partition, annotated with the chosen design point.
void write_dot(std::ostream& os, const graph::TaskGraph& graph,
               const core::PartitionedDesign& design);

std::string to_dot_string(const graph::TaskGraph& graph);
std::string to_dot_string(const graph::TaskGraph& graph,
                          const core::PartitionedDesign& design);

}  // namespace sparcs::io

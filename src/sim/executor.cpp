#include "sim/executor.hpp"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::sim {
namespace {

/// Memory occupancy while partition p is resident, matching the analytic
/// model of core::partition_memory.
double live_memory(const graph::TaskGraph& graph,
                   const core::PartitionedDesign& design, int p) {
  return core::partition_memory(graph, design, p);
}

}  // namespace

SimulationResult simulate(const graph::TaskGraph& graph,
                          const arch::Device& device,
                          const core::PartitionedDesign& design,
                          const SimulationOptions& options) {
  const core::DesignCheck check = core::validate_design(graph, device, design);
  SPARCS_REQUIRE(check.ok, "cannot simulate invalid design: " +
                               check.violation);

  SimulationResult result;
  result.tasks.assign(static_cast<std::size_t>(graph.num_tasks()), {});

  const std::vector<graph::TaskId> topo = graph::topological_order(graph);
  double clock_ns = 0.0;
  double loader_free_ns = 0.0;  // the single configuration loader port

  for (int p = 1; p <= design.num_partitions_allocated; ++p) {
    // Collect this partition's tasks in topological order.
    std::vector<graph::TaskId> members;
    for (const graph::TaskId t : topo) {
      if (design.assignment[static_cast<std::size_t>(t)].partition == p) {
        members.push_back(t);
      }
    }
    if (members.empty()) continue;

    PartitionTrace trace;
    trace.partition = p;
    if (options.prefetch_configurations) {
      // The load may overlap the previous configuration's execution but
      // loads serialize on the loader.
      trace.reconfig_start_ns = loader_free_ns;
      loader_free_ns += device.reconfig_time_ns;
      clock_ns = std::max(clock_ns, loader_free_ns);
    } else {
      trace.reconfig_start_ns = clock_ns;
      clock_ns += device.reconfig_time_ns;
    }
    result.total_reconfig_ns += device.reconfig_time_ns;
    trace.exec_start_ns = clock_ns;

    // Task-level dataflow inside the partition: a task starts when its
    // same-partition predecessors finish (cross-partition inputs were
    // buffered before the configuration loaded).
    double finish_max = clock_ns;
    for (const graph::TaskId t : members) {
      double start = clock_ns;
      for (const graph::TaskId pred : graph.predecessors(t)) {
        if (design.assignment[static_cast<std::size_t>(pred)].partition == p) {
          start = std::max(
              start, result.tasks[static_cast<std::size_t>(pred)].finish_ns);
        }
      }
      const core::TaskAssignment& a =
          design.assignment[static_cast<std::size_t>(t)];
      const double latency =
          graph.task(t)
              .design_points[static_cast<std::size_t>(a.design_point)]
              .latency_ns;
      TaskTrace& tt = result.tasks[static_cast<std::size_t>(t)];
      tt.task = t;
      tt.partition = p;
      tt.start_ns = start;
      tt.finish_ns = start + latency;
      finish_max = std::max(finish_max, tt.finish_ns);
      trace.area_used +=
          graph.task(t)
              .design_points[static_cast<std::size_t>(a.design_point)]
              .area;
    }
    clock_ns = finish_max;
    trace.exec_finish_ns = finish_max;
    trace.peak_memory = live_memory(graph, design, p);
    result.peak_memory = std::max(result.peak_memory, trace.peak_memory);
    result.partitions.push_back(trace);
  }

  result.makespan_ns = clock_ns;
  return result;
}

double estimated_makespan(const graph::TaskGraph& graph,
                          const arch::Device& device,
                          const core::PartitionedDesign& design,
                          bool prefetch_configurations) {
  const double ct = device.reconfig_time_ns;
  double exec_finish = 0.0;
  double loader_free = 0.0;
  for (int p = 1; p <= design.num_partitions_allocated; ++p) {
    const double d = core::partition_path_latency(graph, design, p);
    bool used = false;
    for (const core::TaskAssignment& a : design.assignment) {
      if (a.partition == p) {
        used = true;
        break;
      }
    }
    if (!used) continue;
    if (prefetch_configurations) {
      loader_free += ct;
      exec_finish = std::max(exec_finish, loader_free) + d;
    } else {
      exec_finish += ct + d;
    }
  }
  return exec_finish;
}

std::string SimulationResult::to_string(const graph::TaskGraph& graph) const {
  std::ostringstream os;
  os << "makespan " << trim_double(makespan_ns) << " ns ("
     << trim_double(total_reconfig_ns) << " ns reconfiguration, peak memory "
     << trim_double(peak_memory) << ")\n";
  for (const PartitionTrace& p : partitions) {
    os << "  config " << p.partition << ": load @"
       << trim_double(p.reconfig_start_ns) << ", run ["
       << trim_double(p.exec_start_ns) << ", "
       << trim_double(p.exec_finish_ns) << "] area "
       << trim_double(p.area_used) << " mem " << trim_double(p.peak_memory)
       << "\n";
    for (const TaskTrace& t : tasks) {
      if (t.partition != p.partition || t.task < 0) continue;
      os << "    " << graph.task(t.task).name << " ["
         << trim_double(t.start_ns) << ", " << trim_double(t.finish_ns)
         << "]\n";
    }
  }
  return os.str();
}

}  // namespace sparcs::sim

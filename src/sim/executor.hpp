// Event-driven execution simulator for partitioned designs.
//
// Simulates the run-time reconfigurable processor executing a partitioned
// design: for each temporal partition in order it (1) charges the
// reconfiguration time C_T, (2) runs the partition's tasks as a task-level
// dataflow (a task starts when all its same-partition predecessors finished;
// cross-partition inputs are already buffered), and (3) tracks the on-board
// memory occupancy — environment inputs held until consumed, environment
// outputs held once produced, cross-partition edge data held from producer
// completion until the consumer's partition retires.
//
// The simulator is an independent oracle for the analytic model of
// core::recompute_latency / core::partition_memory: on any valid design the
// simulated makespan equals the analytic total latency, and the peak
// simulated memory never exceeds the analytic per-partition bound.
#pragma once

#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/solution.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::sim {

/// One simulated task execution.
struct TaskTrace {
  graph::TaskId task = -1;
  int partition = 0;
  double start_ns = 0.0;
  double finish_ns = 0.0;
};

/// One simulated partition (configuration) occupancy window.
struct PartitionTrace {
  int partition = 0;
  double reconfig_start_ns = 0.0;  ///< configuration load begins
  double exec_start_ns = 0.0;      ///< first task may start
  double exec_finish_ns = 0.0;     ///< last task finished
  double area_used = 0.0;
  double peak_memory = 0.0;        ///< peak occupancy while resident
};

/// Complete simulation result.
struct SimulationResult {
  double makespan_ns = 0.0;  ///< total wall time incl. reconfigurations
  double total_reconfig_ns = 0.0;
  double peak_memory = 0.0;
  std::vector<TaskTrace> tasks;           ///< indexed by TaskId
  std::vector<PartitionTrace> partitions;  ///< used partitions, in order

  /// Gantt-style text rendering for reports and examples.
  [[nodiscard]] std::string to_string(const graph::TaskGraph& graph) const;
};

struct SimulationOptions {
  /// Configuration prefetch (time-multiplexed FPGAs with a double-buffered
  /// context, as in the paper's reference [12]): the loader fetches
  /// configuration p+1 while configuration p executes, so reconfiguration
  /// time is hidden wherever C_T <= d_p. Loads still serialize on the single
  /// loader port.
  bool prefetch_configurations = false;
};

/// Simulates `design` on `device`. The design must pass
/// core::validate_design; throws InvalidArgumentError otherwise.
SimulationResult simulate(const graph::TaskGraph& graph,
                          const arch::Device& device,
                          const core::PartitionedDesign& design,
                          const SimulationOptions& options = {});

/// Closed-form makespan of the simulate() timing model (with or without
/// prefetch), computed from the per-partition critical paths without running
/// the event simulation. With prefetch off this equals the paper's analytic
/// latency except that empty partition indices are not charged.
double estimated_makespan(const graph::TaskGraph& graph,
                          const arch::Device& device,
                          const core::PartitionedDesign& design,
                          bool prefetch_configurations = false);

}  // namespace sparcs::sim

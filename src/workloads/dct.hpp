// 4x4 DCT task graph (Figure 6 of the paper): Z = C * X * C^T decomposed
// into 32 vector-product tasks. Sixteen level-1 tasks (kind T1) compute the
// intermediates Y[i][k] = dot(C row i, X column k); sixteen level-2 tasks
// (kind T2) compute Z[i][j] = dot(Y row i, C^T column j), so every T2 of row
// i consumes all four T1 results of row i.
#pragma once

#include "graph/task_graph.hpp"
#include "hls/dfg.hpp"
#include "workloads/ar_filter.hpp"  // DesignPointSource

namespace sparcs::workloads {

/// The 32-task DCT graph with the documented pinned design points
/// (T1: {180/375, 120/510, 64/750}, T2: {216/420, 144/570, 84/840}) or
/// estimator-generated ones.
graph::TaskGraph dct_task_graph(
    DesignPointSource source = DesignPointSource::kPinned);

/// Four-element vector product DFG: 4 multiplications reduced by a 3-adder
/// tree — the structure of both DCT task kinds (bitwidths differ).
hls::Dfg dct_vector_product_dfg(int bitwidth);

/// The pinned design points, exposed for the Table-2 reproduction bench.
std::vector<graph::DesignPoint> dct_t1_pinned_points();
std::vector<graph::DesignPoint> dct_t2_pinned_points();

}  // namespace sparcs::workloads

#include "workloads/dct.hpp"

#include "hls/design_point_gen.hpp"
#include "support/strings.hpp"

namespace sparcs::workloads {
namespace {

std::vector<graph::DesignPoint> estimated_points(int bitwidth) {
  const hls::Dfg dfg = dct_vector_product_dfg(bitwidth);
  const hls::ModuleLibrary library = hls::ModuleLibrary::xc4000();
  hls::GeneratorOptions options;
  options.max_units_per_kind = 4;
  options.max_points = 3;
  return hls::generate_design_points(dfg, library, options);
}

}  // namespace

hls::Dfg dct_vector_product_dfg(int bitwidth) {
  hls::Dfg dfg("vector_product");
  const hls::OpId m0 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m0");
  const hls::OpId m1 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m1");
  const hls::OpId m2 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m2");
  const hls::OpId m3 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m3");
  const hls::OpId a0 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a0");
  const hls::OpId a1 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a1");
  const hls::OpId a2 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a2");
  dfg.add_dep(m0, a0);
  dfg.add_dep(m1, a0);
  dfg.add_dep(m2, a1);
  dfg.add_dep(m3, a1);
  dfg.add_dep(a0, a2);
  dfg.add_dep(a1, a2);
  return dfg;
}

std::vector<graph::DesignPoint> dct_t1_pinned_points() {
  return {{"4m3a", 96, 375}, {"2m1a", 80, 510}, {"1m1a", 64, 750}};
}

std::vector<graph::DesignPoint> dct_t2_pinned_points() {
  return {{"4m3a", 112, 420}, {"2m1a", 96, 570}, {"1m1a", 84, 840}};
}

graph::TaskGraph dct_task_graph(DesignPointSource source) {
  graph::TaskGraph g("dct4x4");

  const std::vector<graph::DesignPoint> t1_points =
      source == DesignPointSource::kPinned ? dct_t1_pinned_points()
                                           : estimated_points(12);
  const std::vector<graph::DesignPoint> t2_points =
      source == DesignPointSource::kPinned ? dct_t2_pinned_points()
                                           : estimated_points(16);

  // Level 1: Y[i][k], reads a row of C and a column of X from the host.
  graph::TaskId level1[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      level1[i][k] = g.add_task(str_format("T1_%d%d", i, k), t1_points,
                                /*env_in=*/4.0);
    }
  }
  // Level 2: Z[i][j], consumes all four Y of row i, writes one result.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const graph::TaskId z = g.add_task(str_format("T2_%d%d", i, j),
                                         t2_points, /*env_in=*/4.0,
                                         /*env_out=*/1.0);
      for (int k = 0; k < 4; ++k) {
        g.add_edge(level1[i][k], z, 1.0);
      }
    }
  }
  g.validate();
  return g;
}

}  // namespace sparcs::workloads

#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace sparcs::workloads {
namespace {

/// Pareto-consistent design points around a base (area, latency): scaling
/// area up by f scales latency down by roughly f^0.8.
std::vector<graph::DesignPoint> random_points(Rng& rng, int count,
                                              double area_lo, double area_hi,
                                              double lat_lo, double lat_hi) {
  const double base_area = rng.uniform(area_lo, area_hi);
  const double base_latency = rng.uniform(lat_lo, lat_hi);
  std::vector<graph::DesignPoint> points;
  for (int i = 0; i < count; ++i) {
    const double f = std::pow(1.7, i);
    graph::DesignPoint p;
    p.module_set = "v" + std::to_string(i);
    p.area = std::ceil(base_area * f);
    p.latency_ns = std::ceil(base_latency / std::pow(f, 0.8));
    points.push_back(p);
  }
  // Smallest area first is not required, but keeps dumps readable.
  std::sort(points.begin(), points.end(),
            [](const graph::DesignPoint& a, const graph::DesignPoint& b) {
              return a.area < b.area;
            });
  return points;
}

}  // namespace

graph::TaskGraph random_task_graph(const RandomGraphOptions& options) {
  SPARCS_REQUIRE(options.num_tasks >= 1, "need at least one task");
  SPARCS_REQUIRE(options.num_layers >= 1, "need at least one layer");
  SPARCS_REQUIRE(options.num_tasks >= options.num_layers,
                 "need at least one task per layer");
  Rng rng(options.seed);
  graph::TaskGraph g("random_" + std::to_string(options.seed));

  // Deal tasks into layers: one guaranteed per layer, the rest random.
  std::vector<int> layer_of(static_cast<std::size_t>(options.num_tasks));
  for (int l = 0; l < options.num_layers; ++l) layer_of[static_cast<std::size_t>(l)] = l;
  for (int t = options.num_layers; t < options.num_tasks; ++t) {
    layer_of[static_cast<std::size_t>(t)] =
        static_cast<int>(rng.uniform_int(0, options.num_layers - 1));
  }
  rng.shuffle(layer_of);

  std::vector<std::vector<graph::TaskId>> layers(
      static_cast<std::size_t>(options.num_layers));
  for (int t = 0; t < options.num_tasks; ++t) {
    const int layer = layer_of[static_cast<std::size_t>(t)];
    const bool is_source = layer == 0;
    const bool is_sink = layer == options.num_layers - 1;
    const graph::TaskId id = g.add_task(
        str_format("t%d_l%d", t, layer),
        random_points(rng, options.num_design_points, options.min_task_area,
                      options.max_task_area, options.min_task_latency_ns,
                      options.max_task_latency_ns),
        is_source ? options.env_io_units : 0.0,
        is_sink ? options.env_io_units : 0.0);
    layers[static_cast<std::size_t>(layer)].push_back(id);
  }

  for (int l = 0; l + 1 < options.num_layers; ++l) {
    const auto& from = layers[static_cast<std::size_t>(l)];
    const auto& to = layers[static_cast<std::size_t>(l + 1)];
    if (from.empty() || to.empty()) continue;
    for (const graph::TaskId dst : to) {
      bool connected = false;
      for (const graph::TaskId src : from) {
        if (rng.chance(options.edge_probability)) {
          g.add_edge(src, dst, options.edge_data_units);
          connected = true;
        }
      }
      if (!connected) {
        g.add_edge(from[rng.index(from.size())], dst,
                   options.edge_data_units);
      }
    }
  }
  g.validate();
  return g;
}

graph::TaskGraph chain_task_graph(int length, int num_design_points,
                                  std::uint64_t seed) {
  SPARCS_REQUIRE(length >= 1, "chain length must be at least 1");
  Rng rng(seed);
  graph::TaskGraph g("chain" + std::to_string(length));
  graph::TaskId prev = -1;
  for (int i = 0; i < length; ++i) {
    const graph::TaskId id =
        g.add_task("c" + std::to_string(i),
                   random_points(rng, num_design_points, 40, 160, 100, 600),
                   i == 0 ? 4.0 : 0.0, i == length - 1 ? 4.0 : 0.0);
    if (prev >= 0) g.add_edge(prev, id, 4.0);
    prev = id;
  }
  g.validate();
  return g;
}

graph::TaskGraph butterfly_task_graph(int stages, int width,
                                      std::uint64_t seed) {
  SPARCS_REQUIRE(stages >= 1, "need at least one stage");
  SPARCS_REQUIRE(width >= 2 && (width & (width - 1)) == 0,
                 "width must be a power of two");
  SPARCS_REQUIRE(stages <= static_cast<int>(std::log2(width)) ,
                 "stages must not exceed log2(width)");
  Rng rng(seed);
  graph::TaskGraph g(str_format("butterfly_s%d_w%d", stages, width));
  std::vector<std::vector<graph::TaskId>> grid(
      static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    for (int k = 0; k < width; ++k) {
      grid[static_cast<std::size_t>(s)].push_back(g.add_task(
          str_format("b%d_%d", s, k), random_points(rng, 3, 40, 160, 100, 600),
          s == 0 ? 2.0 : 0.0, s == stages - 1 ? 2.0 : 0.0));
    }
  }
  for (int s = 0; s + 1 < stages; ++s) {
    const int stride = 1 << s;
    for (int k = 0; k < width; ++k) {
      const graph::TaskId src = grid[static_cast<std::size_t>(s)][static_cast<std::size_t>(k)];
      g.add_edge(src, grid[static_cast<std::size_t>(s + 1)][static_cast<std::size_t>(k)], 2.0);
      g.add_edge(src, grid[static_cast<std::size_t>(s + 1)][static_cast<std::size_t>(k ^ stride)],
                 2.0);
    }
  }
  g.validate();
  return g;
}

}  // namespace sparcs::workloads

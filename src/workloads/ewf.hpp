// Elliptic-wave-filter-style workload: the classic fifth-order EWF from the
// high-level synthesis benchmark suite, clustered into filter-section tasks
// (the granularity the paper's task graphs use). Design points come from the
// HLS estimator by default, so this workload exercises the full
// estimate->partition pipeline rather than pinned numbers.
#pragma once

#include "graph/task_graph.hpp"
#include "hls/dfg.hpp"
#include "workloads/ar_filter.hpp"  // DesignPointSource

namespace sparcs::workloads {

/// One EWF filter section: 4 multiplications and 4 additions in the
/// characteristic two-stage accumulation shape.
hls::Dfg ewf_section_dfg(int bitwidth);

/// Five-task EWF-style graph (four cascaded sections plus an output
/// combiner), 8 bits in the early sections and 16 downstream.
graph::TaskGraph ewf_task_graph(
    DesignPointSource source = DesignPointSource::kEstimated);

}  // namespace sparcs::workloads

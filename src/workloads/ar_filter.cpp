#include "workloads/ar_filter.hpp"

#include "hls/design_point_gen.hpp"
#include "support/error.hpp"

namespace sparcs::workloads {
namespace {

using graph::DesignPoint;

std::vector<DesignPoint> estimated_points(const hls::Dfg& dfg) {
  const hls::ModuleLibrary library = hls::ModuleLibrary::xc4000();
  hls::GeneratorOptions options;
  options.max_units_per_kind = 2;
  options.max_points = 3;
  return hls::generate_design_points(dfg, library, options);
}

}  // namespace

hls::Dfg ar_task_a_dfg(int bitwidth) {
  hls::Dfg dfg("ar_task_a");
  // Lattice arm: (x*k1 + y*k2, x*k3 - y*k4).
  const hls::OpId m1 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m1");
  const hls::OpId m2 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m2");
  const hls::OpId m3 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m3");
  const hls::OpId m4 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m4");
  const hls::OpId a1 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a1");
  const hls::OpId s1 = dfg.add_op(hls::OpKind::kSub, bitwidth, "s1");
  dfg.add_dep(m1, a1);
  dfg.add_dep(m2, a1);
  dfg.add_dep(m3, s1);
  dfg.add_dep(m4, s1);
  return dfg;
}

hls::Dfg ar_task_b_dfg(int bitwidth) {
  hls::Dfg dfg("ar_task_b");
  const hls::OpId m1 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m1");
  const hls::OpId m2 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m2");
  const hls::OpId a1 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a1");
  dfg.add_dep(m1, a1);
  dfg.add_dep(m2, a1);
  return dfg;
}

graph::TaskGraph ar_filter_task_graph(DesignPointSource source) {
  graph::TaskGraph g("ar_filter");

  std::vector<DesignPoint> t1, t2, t3, t4, t5, t6;
  if (source == DesignPointSource::kPinned) {
    // Pinned Pareto points (area in CLBs, latency in ns); T1 has three
    // alternatives, T3/T4 two, T2/T5/T6 one, mirroring the paper's setup.
    t1 = {{"fast", 120, 200}, {"mid", 80, 300}, {"small", 50, 450}};
    t2 = {{"only", 60, 250}};
    t3 = {{"fast", 100, 220}, {"small", 60, 380}};
    t4 = {{"fast", 100, 240}, {"small", 64, 400}};
    t5 = {{"only", 70, 260}};
    t6 = {{"only", 90, 210}};
  } else {
    t1 = estimated_points(ar_task_a_dfg(16));
    t2 = estimated_points(ar_task_b_dfg(12));
    t3 = estimated_points(ar_task_a_dfg(12));
    t4 = estimated_points(ar_task_a_dfg(8));
    t5 = estimated_points(ar_task_b_dfg(8));
    t6 = estimated_points(ar_task_b_dfg(16));
  }

  const graph::TaskId id1 = g.add_task("T1", std::move(t1), /*env_in=*/8);
  const graph::TaskId id2 = g.add_task("T2", std::move(t2), /*env_in=*/4);
  const graph::TaskId id3 = g.add_task("T3", std::move(t3));
  const graph::TaskId id4 = g.add_task("T4", std::move(t4));
  const graph::TaskId id5 = g.add_task("T5", std::move(t5));
  const graph::TaskId id6 =
      g.add_task("T6", std::move(t6), /*env_in=*/0, /*env_out=*/8);

  g.add_edge(id1, id2, 4);
  g.add_edge(id1, id3, 4);
  g.add_edge(id2, id4, 4);
  g.add_edge(id3, id4, 4);
  g.add_edge(id3, id5, 4);
  g.add_edge(id4, id6, 4);
  g.add_edge(id5, id6, 4);
  g.validate();
  return g;
}

}  // namespace sparcs::workloads

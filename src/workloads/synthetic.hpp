// Synthetic task graph generators for scaling studies, ablations and
// property tests: seeded random layered DAGs, chains and FFT-style
// butterflies, all with Pareto-consistent random design points.
#pragma once

#include <cstdint>

#include "graph/task_graph.hpp"

namespace sparcs::workloads {

struct RandomGraphOptions {
  int num_tasks = 12;
  int num_layers = 4;
  /// Probability of an edge between tasks in consecutive layers.
  double edge_probability = 0.4;
  /// Design points per task (Pareto-consistent: larger area, lower latency).
  int num_design_points = 3;
  double min_task_area = 40.0;
  double max_task_area = 160.0;
  double min_task_latency_ns = 100.0;
  double max_task_latency_ns = 600.0;
  double edge_data_units = 4.0;
  double env_io_units = 4.0;
  std::uint64_t seed = 1;
};

/// Random layered DAG: tasks are spread over layers; edges only go from
/// layer l to layer l+1, and every non-root layer task gets at least one
/// predecessor so the depth is controlled.
graph::TaskGraph random_task_graph(const RandomGraphOptions& options);

/// Linear chain of `length` tasks (worst case for temporal partitioning:
/// no intra-partition parallelism).
graph::TaskGraph chain_task_graph(int length, int num_design_points = 3,
                                  std::uint64_t seed = 1);

/// FFT-style butterfly: `stages` stages of `width` tasks with the classic
/// stride connections (width must be a power of two).
graph::TaskGraph butterfly_task_graph(int stages, int width,
                                      std::uint64_t seed = 1);

}  // namespace sparcs::workloads

#include "workloads/ewf.hpp"

#include "hls/design_point_gen.hpp"

namespace sparcs::workloads {
namespace {

std::vector<graph::DesignPoint> estimated_points(const hls::Dfg& dfg) {
  const hls::ModuleLibrary library = hls::ModuleLibrary::xc4000();
  hls::GeneratorOptions options;
  options.max_units_per_kind = 2;
  options.max_points = 3;
  return hls::generate_design_points(dfg, library, options);
}

std::vector<graph::DesignPoint> pinned_points(double scale) {
  return {{"fast", 110 * scale, 220 / scale},
          {"small", 60 * scale, 420 / scale}};
}

}  // namespace

hls::Dfg ewf_section_dfg(int bitwidth) {
  hls::Dfg dfg("ewf_section");
  // Two multiply-accumulate arms feeding a two-stage adder chain.
  const hls::OpId m1 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m1");
  const hls::OpId m2 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m2");
  const hls::OpId m3 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m3");
  const hls::OpId m4 = dfg.add_op(hls::OpKind::kMul, bitwidth, "m4");
  const hls::OpId a1 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a1");
  const hls::OpId a2 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a2");
  const hls::OpId a3 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a3");
  const hls::OpId a4 = dfg.add_op(hls::OpKind::kAdd, bitwidth, "a4");
  dfg.add_dep(m1, a1);
  dfg.add_dep(m2, a1);
  dfg.add_dep(m3, a2);
  dfg.add_dep(m4, a2);
  dfg.add_dep(a1, a3);
  dfg.add_dep(a2, a3);
  dfg.add_dep(a3, a4);
  return dfg;
}

graph::TaskGraph ewf_task_graph(DesignPointSource source) {
  graph::TaskGraph g("ewf");
  auto points = [&](int bitwidth, double scale) {
    return source == DesignPointSource::kEstimated
               ? estimated_points(ewf_section_dfg(bitwidth))
               : pinned_points(scale);
  };
  const graph::TaskId s1 = g.add_task("S1", points(8, 1.0), /*env_in=*/8);
  const graph::TaskId s2 = g.add_task("S2", points(8, 1.0));
  const graph::TaskId s3 = g.add_task("S3", points(16, 1.5));
  const graph::TaskId s4 = g.add_task("S4", points(16, 1.5));
  const graph::TaskId out =
      g.add_task("OUT", points(16, 1.2), /*env_in=*/0, /*env_out=*/8);
  // Cascade with feed-forward taps (the elliptic structure couples
  // non-adjacent sections).
  g.add_edge(s1, s2, 4);
  g.add_edge(s2, s3, 4);
  g.add_edge(s3, s4, 4);
  g.add_edge(s1, s3, 2);
  g.add_edge(s2, s4, 2);
  g.add_edge(s4, out, 4);
  g.add_edge(s3, out, 2);
  g.validate();
  return g;
}

}  // namespace sparcs::workloads

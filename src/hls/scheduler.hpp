// Resource-constrained list scheduler for operation dataflow graphs.
//
// Given an allocation of functional units per operation kind, the scheduler
// produces a feasible multi-cycle schedule (critical-path priority, FUs are
// not pipelined) from which the estimator derives the latency of a design
// point.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hls/dfg.hpp"
#include "hls/module_library.hpp"

namespace sparcs::hls {

/// Number of functional units allocated per operation kind.
struct Allocation {
  std::array<int, 5> count{};  ///< indexed by OpKind

  [[nodiscard]] int of(OpKind kind) const {
    return count[static_cast<std::size_t>(kind)];
  }
  void set(OpKind kind, int n) { count[static_cast<std::size_t>(kind)] = n; }

  /// Renders e.g. "2xadd16+1xmul16"; widths come from the DFG.
  [[nodiscard]] std::string to_string(const Dfg& dfg) const;
};

/// Outcome of scheduling one DFG under one allocation.
struct ScheduleResult {
  int total_cycles = 0;
  double clock_ns = 0.0;
  double latency_ns = 0.0;             ///< total_cycles * clock_ns
  std::vector<int> start_cycle;        ///< per op
  std::vector<int> duration_cycles;    ///< per op
};

struct SchedulerOptions {
  /// Target clock period; each operation takes ceil(delay / clock) cycles.
  double clock_ns = 10.0;
};

/// List-schedules `dfg` on `allocation` functional units from `library`.
/// Requires at least one FU for every kind present in the DFG.
ScheduleResult list_schedule(const Dfg& dfg, const Allocation& allocation,
                             const ModuleLibrary& library,
                             const SchedulerOptions& options = {});

/// Unconstrained (ASAP) schedule length in cycles: a lower bound on any
/// resource-constrained schedule.
int asap_length_cycles(const Dfg& dfg, const ModuleLibrary& library,
                       const SchedulerOptions& options = {});

/// Unconstrained as-soon-as-possible start cycle of every operation.
std::vector<int> asap_schedule(const Dfg& dfg, const ModuleLibrary& library,
                               const SchedulerOptions& options = {});

/// As-late-as-possible start cycles against `deadline_cycles` (pass -1 for
/// the ASAP length — the tightest feasible deadline).
std::vector<int> alap_schedule(const Dfg& dfg, const ModuleLibrary& library,
                               const SchedulerOptions& options = {},
                               int deadline_cycles = -1);

/// Scheduling freedom of every operation: ALAP start minus ASAP start under
/// the given deadline. Zero-mobility operations form the critical path.
std::vector<int> mobility(const Dfg& dfg, const ModuleLibrary& library,
                          const SchedulerOptions& options = {},
                          int deadline_cycles = -1);

}  // namespace sparcs::hls

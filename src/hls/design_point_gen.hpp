// Design point generation: enumerate FU allocations for a task's DFG,
// schedule each, and keep the Pareto-optimal (area, latency) alternatives.
// This reproduces the role of the paper's high-level synthesis estimation
// tool: every task enters the partitioner with a set of module sets M_t,
// each characterized by R(m) and D(m).
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "hls/dfg.hpp"
#include "hls/module_library.hpp"
#include "hls/scheduler.hpp"

namespace sparcs::hls {

struct GeneratorOptions {
  SchedulerOptions scheduler;
  /// Upper bound on FU instances of one kind in an allocation.
  int max_units_per_kind = 4;
  /// Keep at most this many Pareto points (widest-spread subset when more).
  std::size_t max_points = 8;
  /// Optional clock-period exploration: every allocation is scheduled at
  /// each candidate period and the Pareto filter merges the results (a slow
  /// clock wastes slack on fast operations, a fast clock multi-cycles slow
  /// ones). Empty = use scheduler.clock_ns only.
  std::vector<double> clock_candidates_ns;
};

/// Generates the Pareto front of design points for one task.
/// Points are sorted by increasing area (hence decreasing latency).
std::vector<graph::DesignPoint> generate_design_points(
    const Dfg& dfg, const ModuleLibrary& library,
    const GeneratorOptions& options = {});

/// Area of one allocation: FU areas plus per-FU steering overhead.
double allocation_area(const Dfg& dfg, const Allocation& allocation,
                       const ModuleLibrary& library);

/// Removes dominated points (a point dominates another when it is no worse
/// in both area and latency and better in at least one). The result is
/// sorted by increasing area.
std::vector<graph::DesignPoint> pareto_filter(
    std::vector<graph::DesignPoint> points);

}  // namespace sparcs::hls

// FPGA module library: area/delay characterization of functional units as a
// function of operation kind and bitwidth, in the style of the XC4000-class
// CLB costings the paper's estimation tool targeted.
#pragma once

#include <string>
#include <vector>

#include "hls/dfg.hpp"

namespace sparcs::hls {

/// One functional-unit characterization.
struct FuSpec {
  OpKind kind = OpKind::kAdd;
  int bitwidth = 16;
  double area_clb = 0.0;   ///< area in configurable-logic-block equivalents
  double delay_ns = 0.0;   ///< combinational latency of one operation
};

/// Parameterized area/delay models per operation kind.
///
/// The default models follow classic FPGA cost curves: ripple-carry
/// adders/subtractors grow linearly in width (one CLB per two bits), array
/// multipliers quadratically (w^2/4 CLBs), comparators/shifters linearly.
class ModuleLibrary {
 public:
  /// Library with the default XC4000-class models.
  static ModuleLibrary xc4000();

  /// Characterizes a functional unit for `kind` at `bitwidth`.
  [[nodiscard]] FuSpec fu(OpKind kind, int bitwidth) const;

  /// Shorthands for the two FU attributes.
  [[nodiscard]] double area(OpKind kind, int bitwidth) const {
    return fu(kind, bitwidth).area_clb;
  }
  [[nodiscard]] double delay(OpKind kind, int bitwidth) const {
    return fu(kind, bitwidth).delay_ns;
  }

  /// Per-FU register/steering overhead added by the allocator when summing
  /// design-point area (multiplexers, result registers).
  [[nodiscard]] double steering_overhead_clb(int bitwidth) const;

  /// Model coefficients; exposed so alternative device families can be
  /// expressed by scaling.
  struct KindModel {
    double area_per_bit = 0.0;
    double area_per_bit2 = 0.0;  ///< quadratic term (multipliers)
    double area_base = 0.0;
    double delay_per_bit = 0.0;
    double delay_base = 0.0;
  };

  void set_model(OpKind kind, KindModel model);
  [[nodiscard]] const KindModel& model(OpKind kind) const;

 private:
  KindModel models_[5];
};

}  // namespace sparcs::hls

#include "hls/dfg.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace sparcs::hls {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
      return "add";
    case OpKind::kSub:
      return "sub";
    case OpKind::kMul:
      return "mul";
    case OpKind::kCompare:
      return "cmp";
    case OpKind::kShift:
      return "shl";
  }
  return "unknown";
}

OpId Dfg::add_op(OpKind kind, int bitwidth, std::string name) {
  SPARCS_REQUIRE(bitwidth > 0 && bitwidth <= 64, "bitwidth must be in [1,64]");
  Operation op;
  op.kind = kind;
  op.bitwidth = bitwidth;
  op.name = name.empty()
                ? to_string(kind) + std::to_string(ops_.size())
                : std::move(name);
  ops_.push_back(std::move(op));
  consumers_.emplace_back();
  producers_.emplace_back();
  return static_cast<OpId>(ops_.size() - 1);
}

void Dfg::add_dep(OpId producer, OpId consumer) {
  check_id(producer);
  check_id(consumer);
  SPARCS_REQUIRE(producer != consumer, "self dependency");
  consumers_[static_cast<std::size_t>(producer)].push_back(consumer);
  producers_[static_cast<std::size_t>(consumer)].push_back(producer);
}

const Operation& Dfg::op(OpId id) const {
  check_id(id);
  return ops_[static_cast<std::size_t>(id)];
}

const std::vector<OpId>& Dfg::consumers(OpId id) const {
  check_id(id);
  return consumers_[static_cast<std::size_t>(id)];
}

const std::vector<OpId>& Dfg::producers(OpId id) const {
  check_id(id);
  return producers_[static_cast<std::size_t>(id)];
}

std::vector<OpId> Dfg::topological_order() const {
  const int n = num_ops();
  std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
  for (OpId id = 0; id < n; ++id) {
    in_degree[static_cast<std::size_t>(id)] =
        static_cast<int>(producers_[static_cast<std::size_t>(id)].size());
  }
  std::priority_queue<OpId, std::vector<OpId>, std::greater<>> ready;
  for (OpId id = 0; id < n; ++id) {
    if (in_degree[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  std::vector<OpId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const OpId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (const OpId succ : consumers_[static_cast<std::size_t>(id)]) {
      if (--in_degree[static_cast<std::size_t>(succ)] == 0) ready.push(succ);
    }
  }
  SPARCS_REQUIRE(static_cast<int>(order.size()) == n, "DFG contains a cycle");
  return order;
}

std::vector<OpKind> Dfg::kinds_used() const {
  std::vector<OpKind> kinds;
  for (const OpKind k : {OpKind::kAdd, OpKind::kSub, OpKind::kMul,
                         OpKind::kCompare, OpKind::kShift}) {
    if (count_of(k) > 0) kinds.push_back(k);
  }
  return kinds;
}

int Dfg::count_of(OpKind kind) const {
  return static_cast<int>(
      std::count_if(ops_.begin(), ops_.end(),
                    [&](const Operation& op) { return op.kind == kind; }));
}

int Dfg::max_bitwidth_of(OpKind kind) const {
  int best = 0;
  for (const Operation& op : ops_) {
    if (op.kind == kind) best = std::max(best, op.bitwidth);
  }
  return best;
}

void Dfg::validate() const {
  SPARCS_REQUIRE(num_ops() > 0, "DFG is empty");
  (void)topological_order();
}

void Dfg::check_id(OpId id) const {
  SPARCS_REQUIRE(id >= 0 && id < num_ops(), "operation id out of range");
}

}  // namespace sparcs::hls

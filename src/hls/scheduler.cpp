#include "hls/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::hls {
namespace {

/// Cycles an operation occupies its FU.
int op_cycles(const Dfg& dfg, OpId id, const ModuleLibrary& library,
              double clock_ns) {
  const Operation& op = dfg.op(id);
  const double delay = library.delay(op.kind, op.bitwidth);
  return std::max(1, static_cast<int>(std::ceil(delay / clock_ns - 1e-9)));
}

/// Longest path (in cycles) from each op to any sink, inclusive: the list
/// scheduling priority.
std::vector<int> path_priority(const Dfg& dfg, const ModuleLibrary& library,
                               double clock_ns) {
  const std::vector<OpId> order = dfg.topological_order();
  std::vector<int> prio(static_cast<std::size_t>(dfg.num_ops()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId id = *it;
    int best = 0;
    for (const OpId succ : dfg.consumers(id)) {
      best = std::max(best, prio[static_cast<std::size_t>(succ)]);
    }
    prio[static_cast<std::size_t>(id)] =
        best + op_cycles(dfg, id, library, clock_ns);
  }
  return prio;
}

}  // namespace

std::string Allocation::to_string(const Dfg& dfg) const {
  std::vector<std::string> parts;
  for (const OpKind kind : dfg.kinds_used()) {
    parts.push_back(sparcs::str_format("%dx%s%d", of(kind),
                                       hls::to_string(kind).c_str(),
                                       dfg.max_bitwidth_of(kind)));
  }
  return join(parts, "+");
}

ScheduleResult list_schedule(const Dfg& dfg, const Allocation& allocation,
                             const ModuleLibrary& library,
                             const SchedulerOptions& options) {
  dfg.validate();
  SPARCS_REQUIRE(options.clock_ns > 0.0, "clock period must be positive");
  for (const OpKind kind : dfg.kinds_used()) {
    SPARCS_REQUIRE(allocation.of(kind) >= 1,
                   "allocation provides no FU for kind " + to_string(kind));
  }

  const int n = dfg.num_ops();
  const std::vector<int> prio = path_priority(dfg, library, options.clock_ns);

  ScheduleResult result;
  result.clock_ns = options.clock_ns;
  result.start_cycle.assign(static_cast<std::size_t>(n), -1);
  result.duration_cycles.assign(static_cast<std::size_t>(n), 0);
  for (OpId id = 0; id < n; ++id) {
    result.duration_cycles[static_cast<std::size_t>(id)] =
        op_cycles(dfg, id, library, options.clock_ns);
  }

  // free_at[kind][k] = first cycle FU instance k of that kind is available.
  std::array<std::vector<int>, 5> free_at;
  for (std::size_t k = 0; k < free_at.size(); ++k) {
    free_at[k].assign(static_cast<std::size_t>(std::max(
                          0, allocation.count[k])),
                      0);
  }

  std::vector<int> unscheduled_preds(static_cast<std::size_t>(n), 0);
  std::vector<int> ready_cycle(static_cast<std::size_t>(n), 0);
  for (OpId id = 0; id < n; ++id) {
    unscheduled_preds[static_cast<std::size_t>(id)] =
        static_cast<int>(dfg.producers(id).size());
  }

  std::vector<OpId> ready;
  for (OpId id = 0; id < n; ++id) {
    if (unscheduled_preds[static_cast<std::size_t>(id)] == 0) {
      ready.push_back(id);
    }
  }

  int scheduled = 0;
  while (scheduled < n) {
    SPARCS_CHECK(!ready.empty(), "list scheduler stalled (cyclic DFG?)");
    // Highest priority first; ties by id for determinism.
    std::sort(ready.begin(), ready.end(), [&](OpId a, OpId b) {
      const int pa = prio[static_cast<std::size_t>(a)];
      const int pb = prio[static_cast<std::size_t>(b)];
      return pa != pb ? pa > pb : a < b;
    });
    // Schedule the best ready op on the FU of its kind that frees earliest.
    const OpId id = ready.front();
    ready.erase(ready.begin());
    auto& units = free_at[static_cast<std::size_t>(dfg.op(id).kind)];
    auto unit = std::min_element(units.begin(), units.end());
    const int start =
        std::max(*unit, ready_cycle[static_cast<std::size_t>(id)]);
    const int dur = result.duration_cycles[static_cast<std::size_t>(id)];
    result.start_cycle[static_cast<std::size_t>(id)] = start;
    *unit = start + dur;
    result.total_cycles = std::max(result.total_cycles, start + dur);
    ++scheduled;
    for (const OpId succ : dfg.consumers(id)) {
      ready_cycle[static_cast<std::size_t>(succ)] =
          std::max(ready_cycle[static_cast<std::size_t>(succ)], start + dur);
      if (--unscheduled_preds[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }

  result.latency_ns = result.total_cycles * options.clock_ns;
  return result;
}

int asap_length_cycles(const Dfg& dfg, const ModuleLibrary& library,
                       const SchedulerOptions& options) {
  const std::vector<int> starts = asap_schedule(dfg, library, options);
  int best = 0;
  for (OpId id = 0; id < dfg.num_ops(); ++id) {
    best = std::max(best, starts[static_cast<std::size_t>(id)] +
                              op_cycles(dfg, id, library, options.clock_ns));
  }
  return best;
}

std::vector<int> asap_schedule(const Dfg& dfg, const ModuleLibrary& library,
                               const SchedulerOptions& options) {
  const std::vector<OpId> order = dfg.topological_order();
  std::vector<int> start(static_cast<std::size_t>(dfg.num_ops()), 0);
  for (const OpId id : order) {
    for (const OpId pred : dfg.producers(id)) {
      start[static_cast<std::size_t>(id)] = std::max(
          start[static_cast<std::size_t>(id)],
          start[static_cast<std::size_t>(pred)] +
              op_cycles(dfg, pred, library, options.clock_ns));
    }
  }
  return start;
}

std::vector<int> alap_schedule(const Dfg& dfg, const ModuleLibrary& library,
                               const SchedulerOptions& options,
                               int deadline_cycles) {
  const int asap_len = asap_length_cycles(dfg, library, options);
  if (deadline_cycles < 0) deadline_cycles = asap_len;
  SPARCS_REQUIRE(deadline_cycles >= asap_len,
                 "deadline shorter than the ASAP length is infeasible");
  const std::vector<OpId> order = dfg.topological_order();
  std::vector<int> start(static_cast<std::size_t>(dfg.num_ops()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId id = *it;
    int latest =
        deadline_cycles - op_cycles(dfg, id, library, options.clock_ns);
    for (const OpId succ : dfg.consumers(id)) {
      latest = std::min(latest,
                        start[static_cast<std::size_t>(succ)] -
                            op_cycles(dfg, id, library, options.clock_ns));
    }
    start[static_cast<std::size_t>(id)] = latest;
  }
  return start;
}

std::vector<int> mobility(const Dfg& dfg, const ModuleLibrary& library,
                          const SchedulerOptions& options,
                          int deadline_cycles) {
  const std::vector<int> asap = asap_schedule(dfg, library, options);
  const std::vector<int> alap =
      alap_schedule(dfg, library, options, deadline_cycles);
  std::vector<int> result(asap.size());
  for (std::size_t i = 0; i < asap.size(); ++i) {
    result[i] = alap[i] - asap[i];
  }
  return result;
}

}  // namespace sparcs::hls

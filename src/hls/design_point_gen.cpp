#include "hls/design_point_gen.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::hls {

double allocation_area(const Dfg& dfg, const Allocation& allocation,
                       const ModuleLibrary& library) {
  double area = 0.0;
  for (const OpKind kind : dfg.kinds_used()) {
    const int width = dfg.max_bitwidth_of(kind);
    const int units = allocation.of(kind);
    area += units * (library.area(kind, width) +
                     library.steering_overhead_clb(width));
  }
  return area;
}

std::vector<graph::DesignPoint> pareto_filter(
    std::vector<graph::DesignPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const graph::DesignPoint& a, const graph::DesignPoint& b) {
              if (a.area != b.area) return a.area < b.area;
              return a.latency_ns < b.latency_ns;
            });
  std::vector<graph::DesignPoint> front;
  double best_latency = std::numeric_limits<double>::infinity();
  for (const graph::DesignPoint& p : points) {
    if (p.latency_ns < best_latency - 1e-12) {
      front.push_back(p);
      best_latency = p.latency_ns;
    }
  }
  return front;
}

std::vector<graph::DesignPoint> generate_design_points(
    const Dfg& dfg, const ModuleLibrary& library,
    const GeneratorOptions& options) {
  dfg.validate();
  SPARCS_REQUIRE(options.max_units_per_kind >= 1,
                 "max_units_per_kind must be at least 1");
  SPARCS_REQUIRE(options.max_points >= 1, "max_points must be at least 1");

  const std::vector<OpKind> kinds = dfg.kinds_used();
  // Per-kind candidate unit counts 1..min(max_units, ops of kind): more FUs
  // than operations can never help.
  std::vector<int> maxima;
  maxima.reserve(kinds.size());
  for (const OpKind kind : kinds) {
    maxima.push_back(
        std::min(options.max_units_per_kind, dfg.count_of(kind)));
  }

  std::vector<double> clocks = options.clock_candidates_ns;
  if (clocks.empty()) clocks.push_back(options.scheduler.clock_ns);

  std::vector<graph::DesignPoint> points;
  std::vector<int> counts(kinds.size(), 1);
  while (true) {
    Allocation alloc;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      alloc.set(kinds[k], counts[k]);
    }
    for (const double clock : clocks) {
      SchedulerOptions sched_options = options.scheduler;
      sched_options.clock_ns = clock;
      const ScheduleResult sched =
          list_schedule(dfg, alloc, library, sched_options);
      graph::DesignPoint point;
      point.module_set = alloc.to_string(dfg);
      if (clocks.size() > 1) {
        point.module_set += sparcs::str_format("@%gns", clock);
      }
      point.area = allocation_area(dfg, alloc, library);
      point.latency_ns = sched.latency_ns;
      points.push_back(std::move(point));
    }

    // Odometer over allocation counts.
    std::size_t k = 0;
    while (k < kinds.size()) {
      if (++counts[k] <= maxima[k]) break;
      counts[k] = 1;
      ++k;
    }
    if (k == kinds.size()) break;
  }

  std::vector<graph::DesignPoint> front = pareto_filter(std::move(points));

  // Thin an over-long front to max_points, keeping the extremes and an
  // evenly spread interior.
  if (front.size() > options.max_points) {
    std::vector<graph::DesignPoint> thinned;
    const std::size_t n = front.size();
    const std::size_t want = options.max_points;
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t idx = i * (n - 1) / (want - 1);
      thinned.push_back(front[idx]);
    }
    thinned.erase(std::unique(thinned.begin(), thinned.end(),
                              [](const graph::DesignPoint& a,
                                 const graph::DesignPoint& b) {
                                return a.module_set == b.module_set;
                              }),
                  thinned.end());
    front = std::move(thinned);
  }
  return front;
}

}  // namespace sparcs::hls

// Operation-level dataflow graphs: the behavioral view of a single task that
// the high-level synthesis estimator schedules to produce design points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sparcs::hls {

/// Kinds of functional operations supported by the estimator.
enum class OpKind : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kCompare,
  kShift,
};

[[nodiscard]] std::string to_string(OpKind kind);

/// Index of an operation within its Dfg.
using OpId = std::int32_t;

/// One operation with its result bitwidth.
struct Operation {
  OpKind kind = OpKind::kAdd;
  int bitwidth = 16;
  std::string name;
};

/// Dataflow graph of operations inside one task (a DAG: edges are
/// producer -> consumer value dependencies).
class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  /// Appends an operation, returning its id.
  OpId add_op(OpKind kind, int bitwidth, std::string name = {});
  /// Adds the dependency producer -> consumer.
  void add_dep(OpId producer, OpId consumer);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int num_ops() const { return static_cast<int>(ops_.size()); }
  [[nodiscard]] const Operation& op(OpId id) const;
  [[nodiscard]] const std::vector<Operation>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<OpId>& consumers(OpId id) const;
  [[nodiscard]] const std::vector<OpId>& producers(OpId id) const;

  /// Operations in a valid topological order; throws on cycles.
  [[nodiscard]] std::vector<OpId> topological_order() const;

  /// Distinct operation kinds used, in enum order.
  [[nodiscard]] std::vector<OpKind> kinds_used() const;
  /// Number of operations of the given kind.
  [[nodiscard]] int count_of(OpKind kind) const;
  /// Maximum bitwidth over operations of the given kind (0 if none).
  [[nodiscard]] int max_bitwidth_of(OpKind kind) const;

  /// Throws InvalidArgumentError when empty or cyclic.
  void validate() const;

 private:
  void check_id(OpId id) const;

  std::string name_;
  std::vector<Operation> ops_;
  std::vector<std::vector<OpId>> consumers_;
  std::vector<std::vector<OpId>> producers_;
};

}  // namespace sparcs::hls

#include "hls/module_library.hpp"

#include <cmath>

#include "support/error.hpp"

namespace sparcs::hls {
namespace {

std::size_t kind_index(OpKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

ModuleLibrary ModuleLibrary::xc4000() {
  ModuleLibrary lib;
  // Ripple-carry adder: ~w/2 CLBs, ~1.5 ns per bit of carry chain + setup.
  lib.set_model(OpKind::kAdd, {0.5, 0.0, 1.0, 1.5, 4.0});
  lib.set_model(OpKind::kSub, {0.5, 0.0, 1.0, 1.5, 4.0});
  // Array multiplier: ~w^2/4 CLBs, delay ~2 carry chains.
  lib.set_model(OpKind::kMul, {0.0, 0.25, 2.0, 3.0, 8.0});
  // Comparator: linear, slightly cheaper than an adder.
  lib.set_model(OpKind::kCompare, {0.35, 0.0, 1.0, 1.2, 3.0});
  // Barrel shifter: log structure approximated linearly.
  lib.set_model(OpKind::kShift, {0.4, 0.0, 1.0, 0.8, 3.0});
  return lib;
}

FuSpec ModuleLibrary::fu(OpKind kind, int bitwidth) const {
  SPARCS_REQUIRE(bitwidth > 0 && bitwidth <= 64, "bitwidth must be in [1,64]");
  const KindModel& m = models_[kind_index(kind)];
  FuSpec spec;
  spec.kind = kind;
  spec.bitwidth = bitwidth;
  const double w = static_cast<double>(bitwidth);
  spec.area_clb = std::ceil(m.area_base + m.area_per_bit * w +
                            m.area_per_bit2 * w * w);
  spec.delay_ns = m.delay_base + m.delay_per_bit * w;
  return spec;
}

double ModuleLibrary::steering_overhead_clb(int bitwidth) const {
  // One register plus one 2:1 multiplexer per result bit, two bits per CLB.
  return std::ceil(static_cast<double>(bitwidth) / 2.0);
}

void ModuleLibrary::set_model(OpKind kind, KindModel model) {
  models_[kind_index(kind)] = model;
}

const ModuleLibrary::KindModel& ModuleLibrary::model(OpKind kind) const {
  return models_[kind_index(kind)];
}

}  // namespace sparcs::hls

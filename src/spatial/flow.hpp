// End-to-end SPARCS-style flow: temporal partitioning first, then spatial
// partitioning of every configuration onto the multi-FPGA board.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/solution.hpp"
#include "spatial/fm_spatial.hpp"
#include "spatial/ilp_spatial.hpp"
#include "spatial/netlist.hpp"

namespace sparcs::spatial {

/// Which spatial engine to run per configuration.
enum class SpatialEngine {
  kIlp,        ///< exact, minimize cut
  kFm,         ///< heuristic
  kFmThenIlp,  ///< FM first; ILP only for configurations FM cannot route
};

/// Spatial mapping of one temporal partition.
struct ConfigurationMapping {
  int partition = 0;
  Netlist netlist;
  SpatialAssignment assignment;
};

struct FlowResult {
  bool ok = false;
  std::string failure;  ///< which configuration failed and why
  std::vector<ConfigurationMapping> configurations;
  double total_cut = 0.0;

  [[nodiscard]] std::string to_string(const graph::TaskGraph& graph) const;
};

/// Maps every used temporal partition of `design` onto `board`.
FlowResult map_design_to_board(const graph::TaskGraph& graph,
                               const core::PartitionedDesign& design,
                               const Board& board,
                               SpatialEngine engine = SpatialEngine::kFmThenIlp,
                               milp::SolverParams ilp_params = {});

}  // namespace sparcs::spatial

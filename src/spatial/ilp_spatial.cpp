#include "spatial/ilp_spatial.hpp"

#include <algorithm>

#include "milp/model.hpp"
#include "milp/solver.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace sparcs::spatial {

IlpSpatialResult spatial_partition_ilp(const Netlist& netlist,
                                       const Board& board, bool to_optimality,
                                       milp::SolverParams solver_params) {
  netlist.validate();
  board.validate();

  milp::Model model("spatial");
  const int n = netlist.num_nodes();
  const int k_max = board.num_fpgas;

  // X_nk: node n on device k. Created node-major so the DFS assigns whole
  // nodes before moving on; bigger nodes first (first-fail on area).
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return netlist.nodes[static_cast<std::size_t>(a)].area >
           netlist.nodes[static_cast<std::size_t>(b)].area;
  });

  std::vector<std::vector<milp::VarId>> x(
      static_cast<std::size_t>(n));
  int priority = n;
  for (const int node : order) {
    auto& row = x[static_cast<std::size_t>(node)];
    for (int k = 0; k < k_max; ++k) {
      const milp::VarId v = model.add_binary(
          str_format("X_%s_f%d",
                     netlist.nodes[static_cast<std::size_t>(node)].name.c_str(),
                     k));
      model.set_branch_priority(v, priority);
      row.push_back(v);
    }
    --priority;
  }

  for (int node = 0; node < n; ++node) {
    milp::LinExpr sum;
    for (int k = 0; k < k_max; ++k) {
      sum += milp::LinExpr(x[static_cast<std::size_t>(node)][static_cast<std::size_t>(k)]);
    }
    model.add_constraint(std::move(sum) == 1.0,
                         "uniq_" + std::to_string(node));
  }
  for (int k = 0; k < k_max; ++k) {
    milp::LinExpr usage;
    for (int node = 0; node < n; ++node) {
      usage += milp::LinExpr(
          x[static_cast<std::size_t>(node)][static_cast<std::size_t>(k)],
          netlist.nodes[static_cast<std::size_t>(node)].area);
    }
    model.add_constraint(std::move(usage) <= board.fpga_capacity,
                         "cap_f" + std::to_string(k));
  }

  milp::LinExpr cut;
  for (std::size_t e = 0; e < netlist.nets.size(); ++e) {
    const Net& net = netlist.nets[e];
    if (net.weight <= 0.0) continue;
    const milp::VarId c = model.add_binary("cut_e" + std::to_string(e));
    model.set_branch_hint(c, 0.0);
    for (int k = 0; k < k_max; ++k) {
      milp::LinExpr lhs =
          milp::LinExpr(x[static_cast<std::size_t>(net.a)][static_cast<std::size_t>(k)]) -
          milp::LinExpr(x[static_cast<std::size_t>(net.b)][static_cast<std::size_t>(k)]) -
          milp::LinExpr(c);
      model.add_constraint(std::move(lhs) <= 0.0,
                           str_format("cutdef_e%zu_f%d", e, k));
    }
    cut += milp::LinExpr(c, net.weight);
  }
  model.add_constraint(cut, milp::Sense::kLessEqual,
                       board.interconnect_capacity, "interconnect");
  model.set_objective(cut, /*minimize=*/true);

  // Symmetry breaking: the largest node sits on device 0. Devices are
  // interchangeable, so this loses no solutions but prunes k_max-fold
  // duplicates.
  if (!order.empty()) {
    model.tighten_bounds(
        x[static_cast<std::size_t>(order.front())][0], 1.0, 1.0);
  }

  Stopwatch stopwatch;
  solver_params.stop_at_first_feasible = !to_optimality;
  if (to_optimality) {
    solver_params.use_lp_bounding = true;
    solver_params.objective_improvement =
        std::max(solver_params.objective_improvement, 1e-3);
  }
  milp::Solver solver(model, solver_params);
  const milp::MilpSolution solution = solver.solve();

  IlpSpatialResult result;
  result.status = solution.status;
  result.nodes_explored = solution.nodes_explored;
  result.seconds = stopwatch.seconds();
  if (solution.has_solution()) {
    SpatialAssignment assignment;
    assignment.fpga_of.assign(static_cast<std::size_t>(n), -1);
    for (int node = 0; node < n; ++node) {
      for (int k = 0; k < k_max; ++k) {
        if (solution.values[static_cast<std::size_t>(
                x[static_cast<std::size_t>(node)][static_cast<std::size_t>(k)])] >
            0.5) {
          assignment.fpga_of[static_cast<std::size_t>(node)] = k;
        }
      }
      SPARCS_CHECK(assignment.fpga_of[static_cast<std::size_t>(node)] >= 0,
                   "spatial ILP returned an unassigned node");
    }
    assignment.cut_weight = cut_weight(netlist, assignment.fpga_of);
    result.assignment = std::move(assignment);
  }
  return result;
}

}  // namespace sparcs::spatial

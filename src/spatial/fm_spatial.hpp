// Multi-way Fiduccia–Mattheyses-style spatial partitioning heuristic — the
// fast baseline against which the ILP's cut quality is measured.
//
// Starts from a capacity-respecting greedy placement (largest node first,
// best-gain device), then runs FM passes: repeatedly tentatively move the
// unlocked node with the best cut-gain to its best feasible device, lock it,
// and at the end of the pass keep the best prefix of moves. Terminates when
// a pass yields no improvement.
#pragma once

#include <cstdint>
#include <optional>

#include "spatial/netlist.hpp"

namespace sparcs::spatial {

struct FmOptions {
  int max_passes = 16;
  /// Random restarts with perturbed initial placements; best result wins.
  int restarts = 4;
  std::uint64_t seed = 1;
};

struct FmResult {
  std::optional<SpatialAssignment> assignment;
  int passes = 0;
  int moves_applied = 0;
  double seconds = 0.0;
};

/// Runs the FM heuristic; returns nullopt when even the initial greedy
/// placement cannot satisfy the capacities (the heuristic never proves
/// infeasibility). The interconnect bound is respected by the returned
/// assignment or nullopt is returned.
FmResult spatial_partition_fm(const Netlist& netlist, const Board& board,
                              const FmOptions& options = {});

}  // namespace sparcs::spatial

#include "spatial/flow.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace sparcs::spatial {

FlowResult map_design_to_board(const graph::TaskGraph& graph,
                               const core::PartitionedDesign& design,
                               const Board& board, SpatialEngine engine,
                               milp::SolverParams ilp_params) {
  board.validate();
  FlowResult result;
  for (int p = 1; p <= design.num_partitions_allocated; ++p) {
    Netlist netlist = partition_netlist(graph, design, p);
    if (netlist.nodes.empty()) continue;

    std::optional<SpatialAssignment> assignment;
    if (engine == SpatialEngine::kFm || engine == SpatialEngine::kFmThenIlp) {
      FmResult fm = spatial_partition_fm(netlist, board);
      assignment = std::move(fm.assignment);
    }
    if (!assignment.has_value() && engine != SpatialEngine::kFm) {
      IlpSpatialResult ilp =
          spatial_partition_ilp(netlist, board, /*to_optimality=*/false,
                                ilp_params);
      assignment = std::move(ilp.assignment);
    }
    if (!assignment.has_value()) {
      result.ok = false;
      result.failure = str_format(
          "configuration %d (%d tasks) does not map onto %s", p,
          netlist.num_nodes(), board.name.c_str());
      return result;
    }
    result.total_cut += assignment->cut_weight;
    result.configurations.push_back(
        ConfigurationMapping{p, std::move(netlist), std::move(*assignment)});
  }
  result.ok = true;
  return result;
}

std::string FlowResult::to_string(const graph::TaskGraph& graph) const {
  (void)graph;
  std::ostringstream os;
  if (!ok) {
    os << "spatial mapping failed: " << failure << "\n";
    return os.str();
  }
  os << "spatial mapping of " << configurations.size()
     << " configuration(s), total cut " << trim_double(total_cut) << "\n";
  for (const ConfigurationMapping& config : configurations) {
    os << "  config " << config.partition << " (cut "
       << trim_double(config.assignment.cut_weight) << "):";
    for (int n = 0; n < config.netlist.num_nodes(); ++n) {
      os << " " << config.netlist.nodes[static_cast<std::size_t>(n)].name
         << "->F"
         << config.assignment.fpga_of[static_cast<std::size_t>(n)];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sparcs::spatial

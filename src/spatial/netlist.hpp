// Spatial partitioning inputs: the SPARCS environment maps every temporal
// partition onto a multi-FPGA board (e.g. the four-FPGA Wildforce). This
// module holds the board model and the per-configuration netlist extracted
// from a partitioned design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solution.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::spatial {

/// Multi-FPGA board model.
struct Board {
  std::string name;
  int num_fpgas = 4;
  double fpga_capacity = 0.0;       ///< CLBs per device
  double interconnect_capacity = 0.0;  ///< total cut data units routable

  /// Throws InvalidArgumentError unless the board is well formed.
  void validate() const;
};

/// Wildforce-like board: four user FPGAs on a crossbar.
Board wildforce_board(double fpga_capacity = 576.0,
                      double interconnect_capacity = 128.0);

/// Node index within a Netlist.
using NodeId = std::int32_t;

/// One placeable node (a task with its chosen design point's area).
struct Node {
  std::string name;
  double area = 0.0;
  graph::TaskId task = -1;  ///< originating task, -1 for synthetic nodes
};

/// Weighted connection between two nodes (data units exchanged).
struct Net {
  NodeId a = -1;
  NodeId b = -1;
  double weight = 0.0;
};

/// A flat weighted netlist to be spread over the board's FPGAs.
struct Netlist {
  std::vector<Node> nodes;
  std::vector<Net> nets;

  NodeId add_node(std::string name, double area, graph::TaskId task = -1);
  /// Adds (or merges, for an existing pair) a net between a and b.
  void add_net(NodeId a, NodeId b, double weight);
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] double total_area() const;
  void validate() const;
};

/// Extracts the netlist of temporal partition `p` from a partitioned design:
/// one node per task mapped to p (area = selected design point), one net per
/// intra-partition data edge.
Netlist partition_netlist(const graph::TaskGraph& graph,
                          const core::PartitionedDesign& design, int p);

/// An assignment of netlist nodes to FPGAs (0-based device index).
struct SpatialAssignment {
  std::vector<int> fpga_of;  ///< per node
  double cut_weight = 0.0;   ///< total weight of nets spanning two FPGAs

  [[nodiscard]] bool empty() const { return fpga_of.empty(); }
};

/// Recomputes the cut weight of `assignment` on `netlist`.
double cut_weight(const Netlist& netlist, const std::vector<int>& fpga_of);

/// Area placed on each FPGA.
std::vector<double> fpga_areas(const Netlist& netlist, const Board& board,
                               const std::vector<int>& fpga_of);

/// Independent validity check: every node on a device, capacities and
/// interconnect respected.
bool is_valid_assignment(const Netlist& netlist, const Board& board,
                         const std::vector<int>& fpga_of,
                         std::string* violation = nullptr);

}  // namespace sparcs::spatial

#include "spatial/netlist.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::spatial {

void Board::validate() const {
  SPARCS_REQUIRE(num_fpgas >= 1, "board needs at least one FPGA");
  SPARCS_REQUIRE(fpga_capacity > 0.0, "FPGA capacity must be positive");
  SPARCS_REQUIRE(interconnect_capacity >= 0.0,
                 "interconnect capacity must be non-negative");
}

Board wildforce_board(double fpga_capacity, double interconnect_capacity) {
  Board board;
  board.name = "wildforce-4";
  board.num_fpgas = 4;
  board.fpga_capacity = fpga_capacity;
  board.interconnect_capacity = interconnect_capacity;
  board.validate();
  return board;
}

NodeId Netlist::add_node(std::string name, double area, graph::TaskId task) {
  SPARCS_REQUIRE(area > 0.0, "node area must be positive");
  nodes.push_back(Node{std::move(name), area, task});
  return static_cast<NodeId>(nodes.size() - 1);
}

void Netlist::add_net(NodeId a, NodeId b, double weight) {
  SPARCS_REQUIRE(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
                 "net endpoint out of range");
  SPARCS_REQUIRE(a != b, "self nets are not allowed");
  SPARCS_REQUIRE(weight >= 0.0, "net weight must be non-negative");
  for (Net& net : nets) {
    if ((net.a == a && net.b == b) || (net.a == b && net.b == a)) {
      net.weight += weight;
      return;
    }
  }
  nets.push_back(Net{a, b, weight});
}

double Netlist::total_area() const {
  double total = 0.0;
  for (const Node& node : nodes) total += node.area;
  return total;
}

void Netlist::validate() const {
  SPARCS_REQUIRE(!nodes.empty(), "netlist is empty");
  for (const Net& net : nets) {
    SPARCS_REQUIRE(net.a >= 0 && net.a < num_nodes() && net.b >= 0 &&
                       net.b < num_nodes() && net.a != net.b,
                   "malformed net");
  }
}

Netlist partition_netlist(const graph::TaskGraph& graph,
                          const core::PartitionedDesign& design, int p) {
  Netlist netlist;
  std::vector<NodeId> node_of(static_cast<std::size_t>(graph.num_tasks()),
                              -1);
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    const core::TaskAssignment& a =
        design.assignment[static_cast<std::size_t>(t)];
    if (a.partition != p) continue;
    const double area =
        graph.task(t)
            .design_points[static_cast<std::size_t>(a.design_point)]
            .area;
    node_of[static_cast<std::size_t>(t)] =
        netlist.add_node(graph.task(t).name, area, t);
  }
  for (const graph::DataEdge& e : graph.edges()) {
    const NodeId a = node_of[static_cast<std::size_t>(e.from)];
    const NodeId b = node_of[static_cast<std::size_t>(e.to)];
    if (a >= 0 && b >= 0 && e.data_units > 0.0) {
      netlist.add_net(a, b, e.data_units);
    }
  }
  return netlist;
}

double cut_weight(const Netlist& netlist, const std::vector<int>& fpga_of) {
  double cut = 0.0;
  for (const Net& net : netlist.nets) {
    if (fpga_of[static_cast<std::size_t>(net.a)] !=
        fpga_of[static_cast<std::size_t>(net.b)]) {
      cut += net.weight;
    }
  }
  return cut;
}

std::vector<double> fpga_areas(const Netlist& netlist, const Board& board,
                               const std::vector<int>& fpga_of) {
  std::vector<double> areas(static_cast<std::size_t>(board.num_fpgas), 0.0);
  for (int n = 0; n < netlist.num_nodes(); ++n) {
    const int k = fpga_of[static_cast<std::size_t>(n)];
    if (k >= 0 && k < board.num_fpgas) {
      areas[static_cast<std::size_t>(k)] +=
          netlist.nodes[static_cast<std::size_t>(n)].area;
    }
  }
  return areas;
}

bool is_valid_assignment(const Netlist& netlist, const Board& board,
                         const std::vector<int>& fpga_of,
                         std::string* violation) {
  auto fail = [&](std::string why) {
    if (violation != nullptr) *violation = std::move(why);
    return false;
  };
  if (fpga_of.size() != netlist.nodes.size()) {
    return fail("assignment arity mismatch");
  }
  for (int n = 0; n < netlist.num_nodes(); ++n) {
    const int k = fpga_of[static_cast<std::size_t>(n)];
    if (k < 0 || k >= board.num_fpgas) {
      return fail(str_format("node %d on invalid FPGA %d", n, k));
    }
  }
  const std::vector<double> areas = fpga_areas(netlist, board, fpga_of);
  for (int k = 0; k < board.num_fpgas; ++k) {
    if (areas[static_cast<std::size_t>(k)] > board.fpga_capacity + 1e-6) {
      return fail(str_format("FPGA %d over capacity: %.3f > %.3f", k,
                             areas[static_cast<std::size_t>(k)],
                             board.fpga_capacity));
    }
  }
  const double cut = cut_weight(netlist, fpga_of);
  if (cut > board.interconnect_capacity + 1e-6) {
    return fail(str_format("cut %.3f exceeds interconnect %.3f", cut,
                           board.interconnect_capacity));
  }
  return true;
}

}  // namespace sparcs::spatial

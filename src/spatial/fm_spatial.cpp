#include "spatial/fm_spatial.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace sparcs::spatial {
namespace {

/// Cut-weight delta of moving `node` to device `to` under `fpga_of`.
double move_gain(const Netlist& netlist,
                 const std::vector<std::vector<Net>>& nets_of,
                 const std::vector<int>& fpga_of, int node, int to) {
  double gain = 0.0;
  for (const Net& net : nets_of[static_cast<std::size_t>(node)]) {
    const int other = net.a == node ? net.b : net.a;
    const int other_dev = fpga_of[static_cast<std::size_t>(other)];
    const int from = fpga_of[static_cast<std::size_t>(node)];
    if (other_dev == from) gain -= net.weight;  // becomes cut
    if (other_dev == to) gain += net.weight;    // becomes internal
  }
  return gain;
}

/// Greedy initial placement: nodes in descending area (with a shuffled
/// tie-break per restart), each on the feasible device with the best gain.
bool greedy_place(const Netlist& netlist, const Board& board,
                  const std::vector<std::vector<Net>>& nets_of, Rng& rng,
                  std::vector<int>& fpga_of) {
  const int n = netlist.num_nodes();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return netlist.nodes[static_cast<std::size_t>(a)].area >
           netlist.nodes[static_cast<std::size_t>(b)].area;
  });
  fpga_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<double> load(static_cast<std::size_t>(board.num_fpgas), 0.0);
  for (const int node : order) {
    const double area = netlist.nodes[static_cast<std::size_t>(node)].area;
    int best_dev = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int k = 0; k < board.num_fpgas; ++k) {
      if (load[static_cast<std::size_t>(k)] + area >
          board.fpga_capacity + 1e-9) {
        continue;
      }
      // Prefer attraction to already-placed neighbors, then lighter devices.
      double score = 0.0;
      for (const Net& net : nets_of[static_cast<std::size_t>(node)]) {
        const int other = net.a == node ? net.b : net.a;
        if (fpga_of[static_cast<std::size_t>(other)] == k) {
          score += net.weight;
        }
      }
      score -= 1e-6 * load[static_cast<std::size_t>(k)];
      if (score > best_score) {
        best_score = score;
        best_dev = k;
      }
    }
    if (best_dev < 0) return false;
    fpga_of[static_cast<std::size_t>(node)] = best_dev;
    load[static_cast<std::size_t>(best_dev)] += area;
  }
  return true;
}

}  // namespace

FmResult spatial_partition_fm(const Netlist& netlist, const Board& board,
                              const FmOptions& options) {
  netlist.validate();
  board.validate();
  SPARCS_REQUIRE(options.max_passes >= 1 && options.restarts >= 1,
                 "FM needs at least one pass and one restart");

  Stopwatch stopwatch;
  const int n = netlist.num_nodes();
  std::vector<std::vector<Net>> nets_of(static_cast<std::size_t>(n));
  for (const Net& net : netlist.nets) {
    nets_of[static_cast<std::size_t>(net.a)].push_back(net);
    nets_of[static_cast<std::size_t>(net.b)].push_back(net);
  }

  FmResult result;
  Rng rng(options.seed);
  std::vector<int> best_overall;
  double best_overall_cut = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<int> fpga_of;
    if (!greedy_place(netlist, board, nets_of, rng, fpga_of)) continue;
    std::vector<double> load = fpga_areas(netlist, board, fpga_of);
    double current_cut = cut_weight(netlist, fpga_of);

    for (int pass = 0; pass < options.max_passes; ++pass) {
      ++result.passes;
      std::vector<bool> locked(static_cast<std::size_t>(n), false);
      struct Move {
        int node, from, to;
      };
      std::vector<Move> moves;
      std::vector<double> cut_after;
      double running_cut = current_cut;

      // Tentatively move every node once, best gain first.
      for (int step = 0; step < n; ++step) {
        int best_node = -1, best_dev = -1;
        double best_gain = -std::numeric_limits<double>::infinity();
        for (int node = 0; node < n; ++node) {
          if (locked[static_cast<std::size_t>(node)]) continue;
          const double area =
              netlist.nodes[static_cast<std::size_t>(node)].area;
          const int from = fpga_of[static_cast<std::size_t>(node)];
          for (int k = 0; k < board.num_fpgas; ++k) {
            if (k == from) continue;
            if (load[static_cast<std::size_t>(k)] + area >
                board.fpga_capacity + 1e-9) {
              continue;
            }
            const double gain =
                move_gain(netlist, nets_of, fpga_of, node, k);
            if (gain > best_gain) {
              best_gain = gain;
              best_node = node;
              best_dev = k;
            }
          }
        }
        if (best_node < 0) break;
        const int from = fpga_of[static_cast<std::size_t>(best_node)];
        fpga_of[static_cast<std::size_t>(best_node)] = best_dev;
        load[static_cast<std::size_t>(from)] -=
            netlist.nodes[static_cast<std::size_t>(best_node)].area;
        load[static_cast<std::size_t>(best_dev)] +=
            netlist.nodes[static_cast<std::size_t>(best_node)].area;
        locked[static_cast<std::size_t>(best_node)] = true;
        running_cut -= best_gain;
        moves.push_back({best_node, from, best_dev});
        cut_after.push_back(running_cut);
      }

      // Keep the best prefix of the pass.
      int best_prefix = 0;
      double best_cut = current_cut;
      for (std::size_t i = 0; i < cut_after.size(); ++i) {
        if (cut_after[i] < best_cut - 1e-12) {
          best_cut = cut_after[i];
          best_prefix = static_cast<int>(i) + 1;
        }
      }
      // Roll back the tail.
      for (std::size_t i = moves.size(); i > static_cast<std::size_t>(best_prefix);) {
        --i;
        const Move& move = moves[i];
        fpga_of[static_cast<std::size_t>(move.node)] = move.from;
        load[static_cast<std::size_t>(move.to)] -=
            netlist.nodes[static_cast<std::size_t>(move.node)].area;
        load[static_cast<std::size_t>(move.from)] +=
            netlist.nodes[static_cast<std::size_t>(move.node)].area;
      }
      result.moves_applied += best_prefix;
      if (best_cut >= current_cut - 1e-12) break;  // pass converged
      current_cut = best_cut;
    }

    if (current_cut < best_overall_cut) {
      best_overall_cut = current_cut;
      best_overall = fpga_of;
    }
  }

  result.seconds = stopwatch.seconds();
  if (!best_overall.empty() &&
      best_overall_cut <= board.interconnect_capacity + 1e-9) {
    SpatialAssignment assignment;
    assignment.fpga_of = std::move(best_overall);
    assignment.cut_weight = best_overall_cut;
    result.assignment = std::move(assignment);
  }
  return result;
}

}  // namespace sparcs::spatial

// ILP spatial partitioning (in the style the paper cites as [9]): assign
// netlist nodes to FPGAs minimizing the weighted cut under per-device area
// capacity and board interconnect capacity.
//
// Model: binaries X_nk (node n on FPGA k), uniqueness rows, capacity rows,
// and per-net cut binaries c_e with the standard linearization
//   c_e >= X_ak - X_bk  for every device k
// (symmetric direction implied by uniqueness), objective min sum w_e c_e,
// plus the interconnect row sum w_e c_e <= W_max.
#pragma once

#include <optional>

#include "milp/types.hpp"
#include "spatial/netlist.hpp"

namespace sparcs::spatial {

struct IlpSpatialResult {
  std::optional<SpatialAssignment> assignment;
  milp::SolveStatus status = milp::SolveStatus::kLimitReached;
  std::int64_t nodes_explored = 0;
  double seconds = 0.0;
};

/// Solves the spatial partitioning ILP. With `to_optimality` false the first
/// feasible assignment under the interconnect bound is returned.
IlpSpatialResult spatial_partition_ilp(const Netlist& netlist,
                                       const Board& board,
                                       bool to_optimality = true,
                                       milp::SolverParams solver_params = {});

}  // namespace sparcs::spatial

#include "service/protocol.hpp"

#include "support/json.hpp"
#include "support/report_writer.hpp"

namespace sparcs::service {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_submit(const json::Value& root, SubmitRequest* out,
                  std::string* error) {
  out->workload = root.member_string("workload");
  out->graph_text = root.member_string("graph_text");
  if (out->workload.empty() == out->graph_text.empty()) {
    return fail(error, "submit needs exactly one of workload or graph_text");
  }
  out->priority = static_cast<int>(root.member_int("priority", 0));
  out->detach = root.member_bool("detach", false);
  const json::Value* options = root.find("options");
  if (options != nullptr) {
    if (!options->is_object()) return fail(error, "options must be an object");
    if (const json::Value* v = options->find("rmax")) {
      out->rmax = v->as_double();
    }
    if (const json::Value* v = options->find("mmax")) {
      out->mmax = v->as_double();
    }
    if (const json::Value* v = options->find("ct")) out->ct = v->as_double();
    out->delta = options->member_double("delta", out->delta);
    out->alpha = static_cast<int>(options->member_int("alpha", out->alpha));
    out->gamma = static_cast<int>(options->member_int("gamma", out->gamma));
    out->time_limit_sec =
        options->member_double("time_limit_sec", out->time_limit_sec);
    out->deadline_sec =
        options->member_double("deadline_sec", out->deadline_sec);
    out->threads = static_cast<int>(options->member_int("threads", out->threads));
    out->certify = options->member_string("certify", out->certify);
    out->checkpoint = options->member_bool("checkpoint", out->checkpoint);
    out->est_memory_mb =
        options->member_double("est_memory_mb", out->est_memory_mb);
  }
  if (out->time_limit_sec <= 0.0) {
    return fail(error, "options.time_limit_sec must be > 0");
  }
  if (out->deadline_sec < 0.0) {
    return fail(error, "options.deadline_sec must be >= 0");
  }
  if (out->threads < 0) return fail(error, "options.threads must be >= 0");
  if (out->est_memory_mb < 0.0) {
    return fail(error, "options.est_memory_mb must be >= 0");
  }
  if (out->certify != "off" && out->certify != "incumbents" &&
      out->certify != "full") {
    return fail(error, "options.certify must be off, incumbents or full");
  }
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request* out, std::string* error) {
  const json::ParseResult parsed = json::parse(line);
  if (!parsed.ok) return fail(error, "malformed JSON: " + parsed.error);
  const json::Value& root = parsed.value;
  if (!root.is_object()) return fail(error, "request must be a JSON object");
  out->op = root.member_string("op");
  if (out->op.empty()) return fail(error, "missing op");
  out->job = root.member_string("job");
  out->wait = root.member_bool("wait", false);
  if (out->op == "submit") {
    return parse_submit(root, &out->submit, error);
  }
  if (out->op == "status" || out->op == "result" || out->op == "cancel") {
    if (out->job.empty()) return fail(error, out->op + " needs a job id");
    return true;
  }
  if (out->op == "list" || out->op == "shutdown") return true;
  return fail(error, "unknown op '" + out->op + "'");
}

std::string serialize_request(const Request& request) {
  report::ReportWriter w;
  w.begin_object();
  w.field("op", request.op);
  if (!request.job.empty()) w.field("job", request.job);
  if (request.wait) w.field("wait", true);
  if (request.op == "submit") {
    const SubmitRequest& s = request.submit;
    if (!s.workload.empty()) w.field("workload", s.workload);
    if (!s.graph_text.empty()) w.field("graph_text", s.graph_text);
    if (s.priority != 0) w.field("priority", s.priority);
    if (s.detach) w.field("detach", true);
    w.begin_object("options");
    if (s.rmax) w.field("rmax", *s.rmax);
    if (s.mmax) w.field("mmax", *s.mmax);
    if (s.ct) w.field("ct", *s.ct);
    w.field("delta", s.delta);
    w.field("alpha", s.alpha);
    w.field("gamma", s.gamma);
    w.field("time_limit_sec", s.time_limit_sec);
    w.field("deadline_sec", s.deadline_sec);
    w.field("threads", s.threads);
    w.field("certify", s.certify);
    w.field("checkpoint", s.checkpoint);
    if (s.est_memory_mb > 0.0) w.field("est_memory_mb", s.est_memory_mb);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string error_response(const std::string& op, const std::string& code,
                           const std::string& message) {
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", false);
  w.field("op", op.empty() ? "unknown" : op);
  w.begin_object("error");
  w.field("code", code);
  w.field("message", message);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace sparcs::service

// Persistent multi-client solve service: a unix-domain-socket daemon that
// amortizes process startup across requests and multiplexes the temporal
// partitioner over a shared worker pool.
//
// Architecture (one Server instance == one daemon):
//
//   accept loop (serve() thread)
//     '- one handler thread per connection, speaking the line protocol of
//        service/protocol.hpp; responses are written in request order
//   worker pool (ServerOptions::num_workers threads)
//     '- each worker pops admitted jobs from the JobQueue and runs
//        core::TemporalPartitioner under a per-job telemetry
//        CorrelationScope, with the job's own CancelToken, a Deadline armed
//        at start, and (when an artifact dir is configured) the job's own
//        checkpoint file, report JSON and correlated JSONL log — every
//        per-process facility of the one-shot CLI, made per-job.
//
// Shutdown: the "shutdown" op or a cancellation request on
// ServerOptions::stop (the CLI wires SIGINT/SIGTERM to it) stops the accept
// loop, cancels every queued and in-flight job — running sweeps unwind
// through the same anytime/checkpoint path a one-shot deadline uses, landing
// their artifacts — then joins workers and connections and unlinks the
// socket. serve() returns 0 on a clean shutdown.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "milp/types.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"

namespace sparcs::service {

struct ServerOptions {
  /// Path of the unix socket to bind (required). A stale socket file from a
  /// dead daemon is replaced; a live one fails the bind.
  std::string socket_path;
  /// Solver worker threads. 0 is allowed (jobs queue but never run) and is
  /// used by tests to exercise queue semantics deterministically.
  int num_workers = 2;
  /// Admission control (see JobQueue::Limits).
  int max_queue_depth = 16;
  double max_est_memory_mb = 4096.0;
  /// Directory for per-job artifacts (<job>.report.json, <job>.ckpt,
  /// <job>.logs.jsonl); empty keeps results in memory only. Created if
  /// missing.
  std::string artifact_dir;
  /// Default solver threads per job when a submit does not override; 1 keeps
  /// num_workers concurrent jobs from oversubscribing the machine.
  int threads_per_job = 1;
  /// Upper bound a submit's max_partitions-driven memory estimate uses.
  int max_partitions = 64;
  /// External preemption: the daemon shuts down gracefully when this token
  /// reports cancellation (the CLI trips it from SIGINT/SIGTERM).
  milp::CancelToken stop;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Binds the socket and runs the daemon until shutdown; returns the
  /// process exit code (0 clean shutdown, 4 socket setup failure).
  int serve();

  /// True once the socket is bound and accepting (for tests/embedders that
  /// run serve() on a background thread and must wait for readiness).
  [[nodiscard]] bool listening() const {
    return listening_.load(std::memory_order_acquire);
  }

  /// Requests the same graceful shutdown the "shutdown" op performs.
  void request_shutdown();

  [[nodiscard]] const JobQueue& queue() const { return queue_; }

 private:
  struct Connection;

  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void connection_loop(const std::shared_ptr<Connection>& conn);
  std::string dispatch(const std::string& line,
                       const std::shared_ptr<Connection>& conn);
  std::string handle_submit(const SubmitRequest& submit,
                            const std::shared_ptr<Connection>& conn);
  std::string handle_status(const std::string& job_name);
  std::string handle_result(const std::string& job_name, bool wait);
  std::string handle_cancel(const std::string& job_name);
  std::string handle_list();
  std::string handle_shutdown();
  void reap_connections(bool all);

  ServerOptions options_;
  JobQueue queue_;
  std::atomic<bool> listening_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace sparcs::service

// Blocking client of the solve service: connects to the daemon's unix
// socket and exchanges one protocol line per call. Used by the CLI's client
// verbs (sparcs-tp submit/status/result/cancel/list/shutdown), the service
// tests and bench_service; thin by design — connection management and
// line framing live here, request construction lives in service/protocol.
#pragma once

#include <string>

#include "service/protocol.hpp"

namespace sparcs::service {

class Client {
 public:
  /// Connects to the daemon at `socket_path`; throws sparcs::Error when no
  /// daemon answers (missing socket file, connection refused).
  explicit Client(const std::string& socket_path);
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and blocks for its response line (responses arrive in
  /// request order, so pipelined callers can issue call() back to back).
  /// Returns the raw response JSON (no trailing newline); throws
  /// sparcs::Error when the daemon hangs up mid-exchange.
  std::string call(const Request& request);

  /// call() plus raw-line access for protocol tests (the line is sent as-is
  /// with a newline appended).
  std::string call_raw(const std::string& line);

 private:
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace sparcs::service

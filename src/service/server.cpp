#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/deadline.hpp"
#include "io/tg_format.hpp"
#include "service/protocol.hpp"
#include "support/atomic_file.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/report_writer.hpp"
#include "support/telemetry.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"
#include "workloads/ewf.hpp"

namespace sparcs::service {
namespace {

milp::CertifyMode certify_mode(const std::string& name) {
  if (name == "incumbents") return milp::CertifyMode::kIncumbents;
  if (name == "full") return milp::CertifyMode::kFull;
  return milp::CertifyMode::kOff;
}

/// Writes `text` fully; false on a broken connection. MSG_NOSIGNAL keeps a
/// peer that vanished between request and response from killing the daemon
/// with SIGPIPE.
bool send_all(int fd, std::string_view text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void append_job_fields(report::ReportWriter& w, const JobInfo& info,
                       bool include_report) {
  w.field("job", info.name);
  w.field("state", to_string(info.state));
  w.field("priority", info.priority);
  w.field("detached", info.detached);
  w.field("source", info.source);
  w.field("est_memory_mb", info.est_memory_mb);
  if (info.correlation != 0) {
    w.field("corr", static_cast<std::int64_t>(info.correlation));
  }
  if (info.cancel_requested) w.field("cancel_requested", true);
  w.field("queued_sec", info.queued_sec);
  w.field("run_sec", info.run_sec);
  if (is_terminal(info.state)) {
    w.field("exit_code", info.exit_code());
    w.field("feasible", info.feasible);
    w.field("degraded", info.degraded);
    w.field("uncertified", info.uncertified);
    if (info.feasible) {
      w.field("latency_ns", info.latency_ns);
      w.field("num_partitions", info.num_partitions);
    }
    w.field("ilp_solves", info.ilp_solves);
    if (!info.error.empty()) w.field("error_message", info.error);
    if (!info.report_path.empty()) w.field("report_path", info.report_path);
    if (include_report && !info.report_json.empty()) {
      w.raw_field("report", info.report_json);
    }
  }
}

}  // namespace

/// Per-connection state. The handler thread owns everything except `fd`,
/// which the shutdown path pokes (::shutdown) under `mu` to unblock recv().
struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
  std::mutex mu;  ///< guards fd against close() vs shutdown() races
  /// Jobs this connection must reap if it dies: submit registers, terminal
  /// result/cancel responses and "detach" unregister. Handler-thread only.
  std::vector<std::string> owned_jobs;

  void interrupt() {
    std::lock_guard<std::mutex> lock(mu);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  void close_fd() {
    std::lock_guard<std::mutex> lock(mu);
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_([&] {
        JobQueue::Limits limits;
        limits.max_queue_depth = options_.max_queue_depth;
        limits.max_est_memory_mb = options_.max_est_memory_mb;
        return limits;
      }()) {
  SPARCS_REQUIRE(!options_.socket_path.empty(), "socket_path is required");
  SPARCS_REQUIRE(options_.num_workers >= 0, "num_workers must be >= 0");
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::request_shutdown() {
  stopping_.store(true, std::memory_order_release);
}

int Server::serve() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    SPARCS_ELOG << "socket path too long: " << options_.socket_path;
    return 4;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    SPARCS_ELOG << "cannot create socket: " << std::strerror(errno);
    return 4;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno == EADDRINUSE) {
      // A stale socket file from a dead daemon blocks the bind; probe it and
      // reclaim the path only when nobody answers.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool alive =
          probe >= 0 && ::connect(probe, reinterpret_cast<const sockaddr*>(
                                             &addr),
                                  sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (alive) {
        SPARCS_ELOG << "another daemon is serving " << options_.socket_path;
        ::close(listen_fd_);
        listen_fd_ = -1;
        return 4;
      }
      ::unlink(options_.socket_path.c_str());
    }
    if (listen_fd_ >= 0 &&
        ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      SPARCS_ELOG << "cannot bind " << options_.socket_path << ": "
                  << std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return 4;
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    SPARCS_ELOG << "cannot listen on " << options_.socket_path << ": "
                << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 4;
  }
  if (!options_.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.artifact_dir, ec);
    if (ec) {
      SPARCS_ELOG << "cannot create artifact dir " << options_.artifact_dir
                  << ": " << ec.message();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return 4;
    }
  }

  // Correlation ids are only allocated while telemetry is active; without
  // this, concurrent jobs could not be told apart in logs or trace spans.
  const bool telemetry_was_active = telemetry::active();
  telemetry::set_active(true);

  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  listening_.store(true, std::memory_order_release);
  SPARCS_ILOG << "serving on " << options_.socket_path << " ("
              << options_.num_workers << " workers, queue depth "
              << queue_.limits().max_queue_depth << ", memory limit "
              << queue_.limits().max_est_memory_mb << " MB)";

  while (!stopping_.load(std::memory_order_acquire) &&
         !options_.stop.cancelled()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.push_back(conn);
        conn->thread = std::thread([this, conn] { connection_loop(conn); });
      }
    }
    reap_connections(/*all=*/false);
  }

  // Graceful shutdown: reject new work, preempt everything in flight
  // through the jobs' cancel tokens (running sweeps land their checkpoints
  // and reports on the way out), then tear the threads down.
  stopping_.store(true, std::memory_order_release);
  const int preempted = queue_.cancel_all();
  if (preempted > 0) {
    SPARCS_ILOG << "shutdown: preempted " << preempted << " jobs";
  }
  queue_.stop();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) conn->interrupt();
  }
  reap_connections(/*all=*/true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  listening_.store(false, std::memory_order_release);
  telemetry::set_active(telemetry_was_active);
  return 0;
}

void Server::reap_connections(bool all) {
  std::vector<std::shared_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (all || conn->finished.load(std::memory_order_acquire)) {
        to_join.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  for (const auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::worker_loop() {
  while (true) {
    const std::shared_ptr<Job> job = queue_.pop(telemetry::next_correlation_id());
    if (job == nullptr) return;
    run_job(job);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  // The correlation scope is what joins this job's log lines, trace spans
  // and telemetry entries across the solver's worker threads.
  const telemetry::CorrelationScope scope(job->correlation);
  static metrics::Counter& jobs_started =
      metrics::registry().counter("service.jobs.started");
  jobs_started.add();

  std::ofstream log_os;
  bool log_sink_registered = false;
  if (!options_.artifact_dir.empty()) {
    log_os.open(options_.artifact_dir + "/" + job->name + ".logs.jsonl");
    if (log_os.good()) {
      add_correlation_json_log_sink(job->correlation, &log_os);
      log_sink_registered = true;
    }
  }

  JobResult result;
  try {
    core::PartitionerOptions options = job->spec.options;
    options.budget.solver.cancel = job->cancel;
    if (job->spec.deadline_sec > 0.0) {
      options.budget.deadline =
          core::Deadline::after_seconds(job->spec.deadline_sec);
    }
    if (!options_.artifact_dir.empty() && job->spec.checkpoint) {
      options.checkpoint.path =
          options_.artifact_dir + "/" + job->name + ".ckpt";
    }
    SPARCS_ILOG << job->name << ": solving '" << job->spec.source << "' ("
                << job->spec.graph.num_tasks() << " tasks)";
    const core::PartitionerReport report =
        core::TemporalPartitioner(job->spec.graph, job->spec.device, options)
            .run();
    result.feasible = report.feasible;
    result.degraded = report.degraded;
    result.uncertified = report.solver_stats.uncertified_verdicts > 0;
    result.latency_ns = report.achieved_latency;
    result.num_partitions = report.best_num_partitions;
    result.ilp_solves = report.ilp_solves;
    result.solve_sec = report.seconds;
    result.report_json = report.to_json();
    if (!options_.artifact_dir.empty()) {
      const std::string path =
          options_.artifact_dir + "/" + job->name + ".report.json";
      std::string error;
      if (atomicfile::write_file_atomic(path, result.report_json + "\n",
                                        &error)) {
        result.report_path = path;
      } else {
        SPARCS_WLOG << job->name << ": cannot land report at " << path << ": "
                    << error;
      }
    }
    // A preempted sweep comes back degraded with the token tripped; a sweep
    // that finished before its cancel landed is still a completed job.
    result.state = job->cancel.cancelled() && report.degraded
                       ? JobState::kCancelled
                       : JobState::kDone;
  } catch (const Error& e) {
    result.state = JobState::kFailed;
    result.error = e.what();
    SPARCS_WLOG << job->name << ": failed: " << e.what();
  }

  if (log_sink_registered) {
    remove_correlation_json_log_sink(job->correlation);
    log_os.flush();
  }
  static metrics::Counter& jobs_finished =
      metrics::registry().counter("service.jobs.finished");
  jobs_finished.add();
  queue_.finish(job, std::move(result));
}

void Server::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    std::size_t newline;
    while (alive && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      const std::string response = dispatch(line, conn);
      alive = send_all(conn->fd, response + "\n");
    }
    if (!alive) break;
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  // A connection that dies with live non-detached jobs reclaims their
  // workers: queued jobs cancel instantly, running ones preempt through the
  // same path a deadline uses. This is what lets the daemon survive a client
  // crash mid-solve without leaking the solve.
  for (const std::string& name : conn->owned_jobs) {
    JobInfo info;
    if (queue_.lookup(name, &info) && !is_terminal(info.state)) {
      SPARCS_ILOG << name << ": submitter disconnected, cancelling";
      queue_.cancel(name);
    }
  }
  conn->close_fd();
  conn->finished.store(true, std::memory_order_release);
}

std::string Server::dispatch(const std::string& line,
                             const std::shared_ptr<Connection>& conn) {
  Request request;
  std::string error;
  if (!parse_request(line, &request, &error)) {
    return error_response(request.op, "parse_error", error);
  }
  try {
    if (request.op == "submit") return handle_submit(request.submit, conn);
    if (request.op == "status") return handle_status(request.job);
    if (request.op == "result") return handle_result(request.job, request.wait);
    if (request.op == "cancel") return handle_cancel(request.job);
    if (request.op == "list") return handle_list();
    if (request.op == "shutdown") return handle_shutdown();
  } catch (const Error& e) {
    // A handler bug must cost one request, not the daemon.
    return error_response(request.op, "internal_error", e.what());
  }
  return error_response(request.op, "bad_request", "unhandled op");
}

std::string Server::handle_submit(const SubmitRequest& submit,
                                  const std::shared_ptr<Connection>& conn) {
  if (stopping_.load(std::memory_order_acquire)) {
    return error_response("submit", "shutting_down",
                          "the service is shutting down");
  }
  auto job = std::make_shared<Job>();
  try {
    JobSpec& spec = job->spec;
    std::optional<arch::Device> file_device;
    if (!submit.workload.empty()) {
      if (submit.workload == "ar") {
        spec.graph = workloads::ar_filter_task_graph();
      } else if (submit.workload == "dct") {
        spec.graph = workloads::dct_task_graph();
      } else if (submit.workload == "ewf") {
        spec.graph = workloads::ewf_task_graph();
      } else {
        return error_response("submit", "bad_request",
                              "unknown workload '" + submit.workload +
                                  "' (expected ar, dct or ewf)");
      }
      spec.source = submit.workload;
    } else {
      io::TaskGraphFile file = io::read_task_graph_string(submit.graph_text);
      spec.graph = std::move(file.graph);
      file_device = file.device;
      spec.source = spec.graph.name().empty() ? "<inline>" : spec.graph.name();
    }
    const double rmax = submit.rmax.value_or(
        file_device ? file_device->resource_capacity : 576.0);
    const double mmax = submit.mmax.value_or(
        file_device ? file_device->memory_capacity : 4096.0);
    const double ct = submit.ct.value_or(
        file_device ? file_device->reconfig_time_ns : 100.0);
    spec.device = arch::custom("service-device", rmax, mmax, ct);
    spec.options.alpha = submit.alpha;
    spec.options.gamma = submit.gamma;
    spec.options.max_partitions = options_.max_partitions;
    spec.options.budget.delta = submit.delta;
    spec.options.budget.solver.time_limit_sec = submit.time_limit_sec;
    spec.options.budget.solver.num_threads =
        submit.threads > 0 ? submit.threads : options_.threads_per_job;
    spec.options.budget.solver.certify = certify_mode(submit.certify);
    spec.deadline_sec = submit.deadline_sec;
    spec.checkpoint = submit.checkpoint;
  } catch (const Error& e) {
    return error_response("submit", "bad_request", e.what());
  }
  job->priority = submit.priority;
  job->detached = submit.detach;
  job->est_memory_mb =
      submit.est_memory_mb > 0.0
          ? submit.est_memory_mb
          : estimate_job_memory_mb(job->spec.graph, options_.max_partitions);

  const JobQueue::Admit admit = queue_.submit(job);
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", admit.ok);
  w.field("op", "submit");
  if (admit.ok) {
    w.field("job", admit.name);
    w.field("state", "queued");
    w.field("position", admit.position);
    w.field("est_memory_mb", job->est_memory_mb);
    if (!job->detached) conn->owned_jobs.push_back(admit.name);
  } else {
    w.begin_object("error");
    w.field("code", admit.code);
    w.field("message", admit.message);
    w.end_object();
    static metrics::Counter& rejected =
        metrics::registry().counter("service.jobs.rejected");
    rejected.add();
  }
  w.field("queue_depth", queue_.queue_depth());
  w.field("running", queue_.running());
  w.field("est_memory_in_use_mb", queue_.est_memory_in_use_mb());
  w.field("max_queue_depth", queue_.limits().max_queue_depth);
  w.field("max_est_memory_mb", queue_.limits().max_est_memory_mb);
  w.end_object();
  return w.str();
}

std::string Server::handle_status(const std::string& job_name) {
  JobInfo info;
  if (!queue_.lookup(job_name, &info)) {
    return error_response("status", "unknown_job",
                          "no such job '" + job_name + "'");
  }
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", true);
  w.field("op", "status");
  append_job_fields(w, info, /*include_report=*/false);
  w.end_object();
  return w.str();
}

std::string Server::handle_result(const std::string& job_name, bool wait) {
  JobInfo info;
  const bool known =
      wait ? queue_.wait_terminal(job_name, &info) : queue_.lookup(job_name, &info);
  if (!known) {
    return error_response("result", "unknown_job",
                          "no such job '" + job_name + "'");
  }
  if (!is_terminal(info.state)) {
    return error_response("result", "not_finished",
                          "job '" + job_name + "' is " +
                              to_string(info.state) +
                              " (pass \"wait\":true to block)");
  }
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", true);
  w.field("op", "result");
  append_job_fields(w, info, /*include_report=*/true);
  w.end_object();
  return w.str();
}

std::string Server::handle_cancel(const std::string& job_name) {
  const JobQueue::CancelOutcome outcome = queue_.cancel(job_name);
  if (outcome == JobQueue::CancelOutcome::kUnknownJob) {
    return error_response("cancel", "unknown_job",
                          "no such job '" + job_name + "'");
  }
  JobInfo info;
  if (!queue_.lookup(job_name, &info)) {
    // Evicted between cancel and lookup: it was terminal either way.
    return error_response("cancel", "unknown_job",
                          "no such job '" + job_name + "'");
  }
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", true);
  w.field("op", "cancel");
  w.field("job", job_name);
  w.field("state", to_string(info.state));
  w.field("cancel_requested",
          outcome != JobQueue::CancelOutcome::kAlreadyTerminal);
  w.end_object();
  return w.str();
}

std::string Server::handle_list() {
  const std::vector<JobInfo> jobs = queue_.list();
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", true);
  w.field("op", "list");
  w.field("queue_depth", queue_.queue_depth());
  w.field("running", queue_.running());
  w.field("est_memory_in_use_mb", queue_.est_memory_in_use_mb());
  w.field("max_queue_depth", queue_.limits().max_queue_depth);
  w.field("max_est_memory_mb", queue_.limits().max_est_memory_mb);
  w.begin_array("jobs");
  for (const JobInfo& info : jobs) {
    w.begin_object();
    append_job_fields(w, info, /*include_report=*/false);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string Server::handle_shutdown() {
  SPARCS_ILOG << "shutdown requested over the socket";
  report::ReportWriter w;
  w.begin_object();
  w.field("ok", true);
  w.field("op", "shutdown");
  w.field("live_jobs", queue_.queue_depth() + queue_.running());
  w.end_object();
  // Flip the flag after building the response: the accept loop notices
  // within one poll interval and runs the same teardown a signal triggers.
  request_shutdown();
  return w.str();
}

}  // namespace sparcs::service

// Bounded priority job queue of the solve service, with admission control.
//
// Submissions are admitted only while (a) the number of queued jobs is below
// the configured depth and (b) the summed memory estimate of every queued and
// running job plus the newcomer stays under the configured ceiling; an
// over-limit submit is rejected immediately with a structured reason
// (queue_full / memory_limit) instead of blocking the connection — background
// pressure must surface to clients, not accumulate in the daemon.
//
// Ordering: higher priority first, FIFO (submission order) within a
// priority. Worker threads block in pop() until a job or stop() arrives.
// All mutable job state is guarded by the queue mutex; responders read
// consistent copies through info()/list(), never the Job fields directly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "graph/task_graph.hpp"
#include "milp/types.hpp"

namespace sparcs::service {

/// Lifecycle of one job. kQueued/kRunning are live; the rest are terminal.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,       ///< the partitioner returned (feasible or not, degraded or not)
  kFailed,     ///< the job raised an error (bad graph, internal failure)
  kCancelled,  ///< cancelled while queued, or preempted mid-solve
};

[[nodiscard]] const char* to_string(JobState state);
[[nodiscard]] bool is_terminal(JobState state);

/// Everything a worker needs to run one job, fixed at admission time (the
/// graph is parsed and the device resolved up front so a malformed submit is
/// rejected on the spot, not discovered minutes later by a worker).
struct JobSpec {
  std::string source;  ///< "ar" / "dct" / ... or "<inline>" for listings
  graph::TaskGraph graph;
  arch::Device device;
  core::PartitionerOptions options;  ///< budget, certify, checkpoint, cancel
  double deadline_sec = 0.0;  ///< armed when the job *starts*, not at submit
  /// Maintain a per-job sweep checkpoint (only effective when the server has
  /// an artifact dir; the path is derived from the job name at run time).
  bool checkpoint = true;
};

/// One tracked job. Identity and spec are immutable after admit; everything
/// under "guarded by JobQueue::mu_" must only be touched through the queue.
struct Job {
  std::uint64_t seq = 0;     ///< admission order, the within-priority tie-break
  std::string name;          ///< "job-<seq>", the protocol-visible id
  int priority = 0;
  bool detached = false;
  double est_memory_mb = 0.0;
  JobSpec spec;
  /// Per-job cancellation, shared with the running solve. Safe to trip from
  /// any thread (connection handlers, shutdown) without the queue mutex.
  milp::CancelToken cancel = milp::CancelToken::create();

  // -- guarded by JobQueue::mu_ --
  JobState state = JobState::kQueued;
  std::uint64_t correlation = 0;  ///< telemetry correlation id once running
  double submitted_sec = 0.0;     ///< queue-clock timestamps
  double started_sec = 0.0;
  double finished_sec = 0.0;
  bool feasible = false;
  bool degraded = false;
  bool uncertified = false;
  double latency_ns = 0.0;
  int num_partitions = 0;
  int ilp_solves = 0;
  double solve_sec = 0.0;
  std::string error;        ///< kFailed diagnostic
  std::string report_json;  ///< full PartitionerReport document
  std::string report_path;  ///< landed artifact, empty when not configured
};

/// Consistent copy of one job's observable state (returned under the lock).
struct JobInfo {
  std::string name;
  JobState state = JobState::kQueued;
  int priority = 0;
  bool detached = false;
  std::string source;
  double est_memory_mb = 0.0;
  std::uint64_t correlation = 0;
  bool cancel_requested = false;
  double queued_sec = 0.0;  ///< time spent waiting (so far, or total)
  double run_sec = 0.0;     ///< time spent solving (so far, or total)
  bool feasible = false;
  bool degraded = false;
  bool uncertified = false;
  double latency_ns = 0.0;
  int num_partitions = 0;
  int ilp_solves = 0;
  std::string error;
  std::string report_json;
  std::string report_path;

  /// CLI-compatible exit code of a terminal job: 0 ok, 2 infeasible,
  /// 3 degraded, 4 failed, 5 cancelled, 7 uncertified (-1 while live).
  [[nodiscard]] int exit_code() const;
};

/// Terminal outcome a worker reports back through finish().
struct JobResult {
  JobState state = JobState::kDone;  ///< kDone, kFailed or kCancelled
  bool feasible = false;
  bool degraded = false;
  bool uncertified = false;
  double latency_ns = 0.0;
  int num_partitions = 0;
  int ilp_solves = 0;
  double solve_sec = 0.0;
  std::string error;
  std::string report_json;
  std::string report_path;
};

class JobQueue {
 public:
  struct Limits {
    int max_queue_depth = 16;
    double max_est_memory_mb = 4096.0;
    /// Terminal jobs kept for result retrieval; oldest evicted beyond this.
    std::size_t max_finished_jobs = 256;
  };

  struct Admit {
    bool ok = false;
    std::string code;     ///< queue_full | memory_limit when !ok
    std::string message;
    std::string name;     ///< assigned job id when ok
    int position = 0;     ///< 1-based queue position when ok
  };

  explicit JobQueue(Limits limits);

  /// Admission control + enqueue. On success the job is owned by the queue
  /// and `name`/`seq`/timestamps are filled in.
  Admit submit(std::shared_ptr<Job> job);

  /// Blocks until a job is available (marked kRunning and stamped with
  /// `correlation` before returning) or the queue is stopped (nullptr).
  std::shared_ptr<Job> pop(std::uint64_t correlation);

  /// Records a popped job's terminal outcome and releases its admission
  /// budget. Wakes result-waiters.
  void finish(const std::shared_ptr<Job>& job, JobResult result);

  enum class CancelOutcome {
    kUnknownJob,
    kCancelledQueued,   ///< removed from the queue, now terminal
    kRequestedRunning,  ///< token tripped; terminal once the worker unwinds
    kAlreadyTerminal,
  };
  CancelOutcome cancel(const std::string& name);

  /// Cancels every queued job and requests cancellation of every running
  /// one (graceful shutdown). Returns how many jobs were affected.
  int cancel_all();

  /// Wakes poppers (they return nullptr) and result-waiters. Jobs already
  /// popped stay with their workers; call cancel_all() first to preempt them.
  void stop();

  [[nodiscard]] bool lookup(const std::string& name, JobInfo* out) const;

  /// Blocks until `name` reaches a terminal state or the queue is stopped
  /// with the job still live. False when the job is unknown.
  bool wait_terminal(const std::string& name, JobInfo* out) const;

  [[nodiscard]] std::vector<JobInfo> list() const;
  [[nodiscard]] int queue_depth() const;
  [[nodiscard]] int running() const;
  [[nodiscard]] double est_memory_in_use_mb() const;
  [[nodiscard]] const Limits& limits() const { return limits_; }

 private:
  JobInfo info_locked(const Job& job) const;
  void evict_finished_locked();
  double now_sec() const;

  Limits limits_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;          ///< poppers
  mutable std::condition_variable done_cv_;  ///< result-waiters
  bool stopped_ = false;
  std::uint64_t next_seq_ = 1;
  double est_memory_mb_ = 0.0;  ///< queued + running estimates
  int running_ = 0;
  std::vector<std::shared_ptr<Job>> pending_;  ///< kept in pop order
  std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
  std::deque<std::string> finished_order_;  ///< eviction order
  std::chrono::steady_clock::time_point epoch_;
};

/// Crude per-job peak-memory estimate (MB) used only for admission control:
/// base process overhead plus the formulation's O(tasks x partitions)
/// variable/constraint footprint. Deliberately pessimistic and overridable
/// per submit (est_memory_mb) — the point is bounding concurrent admissions,
/// not accounting.
[[nodiscard]] double estimate_job_memory_mb(const graph::TaskGraph& graph,
                                            int max_partitions);

}  // namespace sparcs::service

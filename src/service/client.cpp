#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace sparcs::service {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SPARCS_REQUIRE(!socket_path.empty(), "socket path is required");
  SPARCS_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
                 "socket path too long");
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(std::string("cannot create socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to " + socket_path + ": " +
                std::strerror(err) + " (is the daemon running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::call(const Request& request) {
  return call_raw(serialize_request(request));
}

std::string Client::call_raw(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw Error("connection to the solve service was lost mid-send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return read_line();
}

std::string Client::read_line() {
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      throw Error("the solve service hung up before responding");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("cannot read from the solve service: ") +
                  std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace sparcs::service

#include "service/job_queue.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sparcs::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

int JobInfo::exit_code() const {
  switch (state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return -1;
    case JobState::kFailed:
      return 4;
    case JobState::kCancelled:
      return 5;
    case JobState::kDone:
      break;
  }
  if (uncertified) return 7;
  if (!feasible) return degraded ? 3 : 2;
  return degraded ? 3 : 0;
}

JobQueue::JobQueue(Limits limits)
    : limits_(limits), epoch_(std::chrono::steady_clock::now()) {
  SPARCS_REQUIRE(limits_.max_queue_depth >= 1,
                 "max_queue_depth must be >= 1");
  SPARCS_REQUIRE(limits_.max_est_memory_mb > 0.0,
                 "max_est_memory_mb must be > 0");
}

double JobQueue::now_sec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

JobQueue::Admit JobQueue::submit(std::shared_ptr<Job> job) {
  std::lock_guard<std::mutex> lock(mu_);
  Admit admit;
  if (stopped_) {
    admit.code = "shutting_down";
    admit.message = "the service is shutting down";
    return admit;
  }
  if (static_cast<int>(pending_.size()) >= limits_.max_queue_depth) {
    admit.code = "queue_full";
    admit.message = "queue depth limit reached (" +
                    std::to_string(limits_.max_queue_depth) +
                    " jobs queued); retry later or lower the load";
    return admit;
  }
  if (est_memory_mb_ + job->est_memory_mb > limits_.max_est_memory_mb) {
    admit.code = "memory_limit";
    admit.message =
        "estimated memory of admitted jobs would exceed the limit (in use " +
        std::to_string(est_memory_mb_) + " MB + job " +
        std::to_string(job->est_memory_mb) + " MB > " +
        std::to_string(limits_.max_est_memory_mb) + " MB)";
    return admit;
  }
  job->seq = next_seq_++;
  job->name = "job-" + std::to_string(job->seq);
  job->state = JobState::kQueued;
  job->submitted_sec = now_sec();
  est_memory_mb_ += job->est_memory_mb;
  // Insert in pop order: higher priority first, FIFO within a priority.
  const auto at = std::upper_bound(
      pending_.begin(), pending_.end(), job,
      [](const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) {
        if (a->priority != b->priority) return a->priority > b->priority;
        return a->seq < b->seq;
      });
  const auto inserted = pending_.insert(at, job);
  jobs_.emplace(job->name, job);
  admit.ok = true;
  admit.name = job->name;
  admit.position = static_cast<int>(inserted - pending_.begin()) + 1;
  work_cv_.notify_one();
  return admit;
}

std::shared_ptr<Job> JobQueue::pop(std::uint64_t correlation) {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] { return stopped_ || !pending_.empty(); });
  if (stopped_) return nullptr;
  std::shared_ptr<Job> job = pending_.front();
  pending_.erase(pending_.begin());
  job->state = JobState::kRunning;
  job->correlation = correlation;
  job->started_sec = now_sec();
  ++running_;
  return job;
}

void JobQueue::finish(const std::shared_ptr<Job>& job, JobResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPARCS_CHECK(is_terminal(result.state), "finish() needs a terminal state");
    job->state = result.state;
    job->finished_sec = now_sec();
    job->feasible = result.feasible;
    job->degraded = result.degraded;
    job->uncertified = result.uncertified;
    job->latency_ns = result.latency_ns;
    job->num_partitions = result.num_partitions;
    job->ilp_solves = result.ilp_solves;
    job->solve_sec = result.solve_sec;
    job->error = std::move(result.error);
    job->report_json = std::move(result.report_json);
    job->report_path = std::move(result.report_path);
    est_memory_mb_ -= job->est_memory_mb;
    --running_;
    finished_order_.push_back(job->name);
    evict_finished_locked();
  }
  done_cv_.notify_all();
}

JobQueue::CancelOutcome JobQueue::cancel(const std::string& name) {
  CancelOutcome outcome = CancelOutcome::kAlreadyTerminal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(name);
    if (it == jobs_.end()) return CancelOutcome::kUnknownJob;
    const std::shared_ptr<Job>& job = it->second;
    switch (job->state) {
      case JobState::kQueued: {
        pending_.erase(std::remove(pending_.begin(), pending_.end(), job),
                       pending_.end());
        job->state = JobState::kCancelled;
        job->finished_sec = now_sec();
        est_memory_mb_ -= job->est_memory_mb;
        finished_order_.push_back(job->name);
        evict_finished_locked();
        job->cancel.request_cancel();
        outcome = CancelOutcome::kCancelledQueued;
        break;
      }
      case JobState::kRunning:
        job->cancel.request_cancel();
        outcome = CancelOutcome::kRequestedRunning;
        break;
      default:
        outcome = CancelOutcome::kAlreadyTerminal;
        break;
    }
  }
  if (outcome == CancelOutcome::kCancelledQueued) done_cv_.notify_all();
  return outcome;
}

int JobQueue::cancel_all() {
  std::vector<std::string> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, job] : jobs_) {
      if (!is_terminal(job->state)) live.push_back(name);
    }
  }
  int affected = 0;
  for (const std::string& name : live) {
    const CancelOutcome outcome = cancel(name);
    if (outcome == CancelOutcome::kCancelledQueued ||
        outcome == CancelOutcome::kRequestedRunning) {
      ++affected;
    }
  }
  return affected;
}

void JobQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
}

JobInfo JobQueue::info_locked(const Job& job) const {
  JobInfo info;
  info.name = job.name;
  info.state = job.state;
  info.priority = job.priority;
  info.detached = job.detached;
  info.source = job.spec.source;
  info.est_memory_mb = job.est_memory_mb;
  info.correlation = job.correlation;
  info.cancel_requested = job.cancel.cancelled();
  const double now = now_sec();
  switch (job.state) {
    case JobState::kQueued:
      info.queued_sec = now - job.submitted_sec;
      break;
    case JobState::kRunning:
      info.queued_sec = job.started_sec - job.submitted_sec;
      info.run_sec = now - job.started_sec;
      break;
    default:
      // Cancelled-while-queued jobs never started; their wait ends at
      // cancellation and the run time stays zero.
      info.queued_sec =
          (job.started_sec > 0.0 ? job.started_sec : job.finished_sec) -
          job.submitted_sec;
      info.run_sec =
          job.started_sec > 0.0 ? job.finished_sec - job.started_sec : 0.0;
      break;
  }
  info.feasible = job.feasible;
  info.degraded = job.degraded;
  info.uncertified = job.uncertified;
  info.latency_ns = job.latency_ns;
  info.num_partitions = job.num_partitions;
  info.ilp_solves = job.ilp_solves;
  info.error = job.error;
  info.report_json = job.report_json;
  info.report_path = job.report_path;
  return info;
}

void JobQueue::evict_finished_locked() {
  while (finished_order_.size() > limits_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

bool JobQueue::lookup(const std::string& name, JobInfo* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(name);
  if (it == jobs_.end()) return false;
  if (out != nullptr) *out = info_locked(*it->second);
  return true;
}

bool JobQueue::wait_terminal(const std::string& name, JobInfo* out) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(name);
  if (it == jobs_.end()) return false;
  const std::shared_ptr<Job> job = it->second;  // pin across eviction
  done_cv_.wait(lock, [&] { return stopped_ || is_terminal(job->state); });
  if (out != nullptr) *out = info_locked(*job);
  return true;
}

std::vector<JobInfo> JobQueue::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> infos;
  infos.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) infos.push_back(info_locked(*job));
  // "job-<seq>" names order by submission when compared (length, lexicographic).
  std::sort(infos.begin(), infos.end(),
            [](const JobInfo& a, const JobInfo& b) {
              if (a.name.size() != b.name.size()) {
                return a.name.size() < b.name.size();
              }
              return a.name < b.name;
            });
  return infos;
}

int JobQueue::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pending_.size());
}

int JobQueue::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

double JobQueue::est_memory_in_use_mb() const {
  std::lock_guard<std::mutex> lock(mu_);
  return est_memory_mb_;
}

double estimate_job_memory_mb(const graph::TaskGraph& graph,
                              int max_partitions) {
  const double tasks = static_cast<double>(graph.num_tasks());
  const double edges = static_cast<double>(graph.num_edges());
  const double n = static_cast<double>(std::max(1, max_partitions));
  // Assignment binaries (tasks x N) dominate the model; the simplex tableau
  // is quadratic in the constraint count, which scales with tasks + edges.
  const double vars = tasks * n + edges;
  return 16.0 + vars * vars * 8.0 / 1e6;
}

}  // namespace sparcs::service

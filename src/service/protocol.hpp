// Wire protocol of the solve service (src/service/server.hpp): newline-
// delimited JSON over a SOCK_STREAM unix socket. Each request is one JSON
// object on one line; the server answers every request with exactly one JSON
// object on one line, in order, so clients can pipeline.
//
// Request grammar (fields not listed for an op are ignored):
//
//   {"op":"submit", "workload":"ar"|"dct"|"ewf" | "graph_text":"<.tg text>",
//    "priority":INT, "detach":BOOL, "options":{
//        "rmax":NUM, "mmax":NUM, "ct":NUM,          // device overrides
//        "delta":NUM, "alpha":INT, "gamma":INT,
//        "time_limit_sec":NUM, "deadline_sec":NUM,  // per-solve / whole-job
//        "threads":INT,                             // solver threads (default 1)
//        "certify":"off"|"incumbents"|"full",
//        "checkpoint":BOOL,                         // per-job sweep checkpoint
//        "est_memory_mb":NUM}}                      // admission estimate override
//   {"op":"status",  "job":"job-N"}
//   {"op":"result",  "job":"job-N", "wait":BOOL}
//   {"op":"cancel",  "job":"job-N"}
//   {"op":"list"}
//   {"op":"shutdown"}
//
// Responses always carry "ok" and echo "op". Success responses add op-
// specific fields (see server.cpp); failures look like
//   {"ok":false,"op":...,"error":{"code":"...","message":"..."}}
// with machine-readable codes: parse_error, bad_request, unknown_job,
// queue_full, memory_limit, not_finished, shutting_down.
//
// Jobs are owned by the submitting connection by default: if that connection
// closes before the job reaches a terminal state, the job is cancelled
// ("detach":true opts out). This is what makes a client crash mid-solve
// reclaim the worker instead of leaking it.
#pragma once

#include <optional>
#include <string>

namespace sparcs::service {

/// Solve parameters of one submit request, defaults matching the one-shot
/// CLI except threads (1: service workers already provide the parallelism).
struct SubmitRequest {
  std::string workload;    ///< builtin workload name; exclusive with graph_text
  std::string graph_text;  ///< inline .tg document; exclusive with workload
  int priority = 0;        ///< higher runs first; FIFO within a priority
  bool detach = false;     ///< survive the submitting connection's close
  std::optional<double> rmax, mmax, ct;
  double delta = 0.0;
  int alpha = 0;
  int gamma = 1;
  double time_limit_sec = 10.0;
  double deadline_sec = 0.0;  ///< whole-job wall deadline; 0 = none
  int threads = 1;  ///< solver threads per job (0 = server default)
  std::string certify = "off";
  bool checkpoint = true;        ///< arm the per-job sweep checkpoint
  double est_memory_mb = 0.0;    ///< admission estimate override; 0 = derive
};

/// One decoded request line.
struct Request {
  std::string op;  ///< submit | status | result | cancel | list | shutdown
  std::string job;
  bool wait = false;  ///< result: block until the job reaches a terminal state
  SubmitRequest submit;
};

/// Decodes one request line. Returns false with a diagnostic in *error on
/// malformed JSON, an unknown op, or field validation failure; the server
/// turns that into a parse_error/bad_request response instead of closing.
[[nodiscard]] bool parse_request(const std::string& line, Request* out,
                                 std::string* error);

/// Encodes a request as one line (no trailing newline); the inverse of
/// parse_request, used by the client library and tests.
[[nodiscard]] std::string serialize_request(const Request& request);

/// Renders the uniform failure response line (no trailing newline).
[[nodiscard]] std::string error_response(const std::string& op,
                                         const std::string& code,
                                         const std::string& message);

}  // namespace sparcs::service

#include "support/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <string_view>
#include <unordered_map>

#include "support/report_writer.hpp"
#include "support/telemetry.hpp"

namespace sparcs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

// The JSON sink is cold-path state: the pointer is only consulted after a
// statement passed the level gate (so the statement already pays for an
// fputs), and reads share the mutex that serializes sink writes.
std::mutex g_json_sink_mu;
std::ostream* g_json_sink = nullptr;

/// Correlation-routed sinks (solve service: one per job). Guarded by
/// g_json_sink_mu like the global sink; leaked so teardown order with
/// late-logging static destructors stays safe.
std::unordered_map<std::uint64_t, std::ostream*>& correlation_sinks() {
  static auto* sinks = new std::unordered_map<std::uint64_t, std::ostream*>;
  return *sinks;
}

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      break;
  }
  return "?";
}

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "unknown";
}

/// Strips the directory part so log lines stay short.
std::string_view basename_of(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

/// Seconds since the first log statement of the process (steady clock; both
/// this and telemetry's t_sec anchor at first use, which in a CLI run lands
/// within microseconds of each other).
double elapsed_seconds() {
  static const auto anchor = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       anchor)
      .count();
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

void set_json_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_json_sink_mu);
  g_json_sink = sink;
}

void add_correlation_json_log_sink(std::uint64_t correlation,
                                   std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_json_sink_mu);
  if (sink == nullptr) {
    correlation_sinks().erase(correlation);
  } else {
    correlation_sinks()[correlation] = sink;
  }
}

void remove_correlation_json_log_sink(std::uint64_t correlation) {
  std::lock_guard<std::mutex> lock(g_json_sink_mu);
  correlation_sinks().erase(correlation);
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string_view file = basename_of(file_);
  const std::string message = stream_.str();
  std::string text;
  text.reserve(message.size() + 32);
  text.append("[").append(level_tag(level_)).append(" ");
  text.append(file).append(":").append(std::to_string(line_)).append("] ");
  text.append(message).append("\n");
  std::fputs(text.c_str(), stderr);
  {
    std::lock_guard<std::mutex> lock(g_json_sink_mu);
    const std::uint64_t corr = telemetry::current_correlation_id();
    std::ostream* corr_sink = nullptr;
    if (corr != 0 && !correlation_sinks().empty()) {
      const auto it = correlation_sinks().find(corr);
      if (it != correlation_sinks().end()) corr_sink = it->second;
    }
    if (g_json_sink != nullptr || corr_sink != nullptr) {
      report::ReportWriter w;
      w.begin_object();
      w.field("t_sec", elapsed_seconds());
      w.field("level", std::string(level_name(level_)));
      w.field("file", std::string(file));
      w.field("line", static_cast<std::int64_t>(line_));
      if (corr != 0) w.field("corr", static_cast<std::int64_t>(corr));
      w.field("msg", message);
      w.end_object();
      if (g_json_sink != nullptr) {
        *g_json_sink << w.str() << '\n';
        g_json_sink->flush();
      }
      if (corr_sink != nullptr) {
        *corr_sink << w.str() << '\n';
        corr_sink->flush();
      }
    }
  }
}

}  // namespace detail
}  // namespace sparcs

#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <string_view>

namespace sparcs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      break;
  }
  return "?";
}

/// Strips the directory part so log lines stay short.
std::string_view basename_of(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << level_tag(level) << " " << basename_of(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
  (void)level_;
}

}  // namespace detail
}  // namespace sparcs

#include "support/rational.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "support/error.hpp"

namespace sparcs::support {
namespace {

using u128 = unsigned __int128;
using i128 = __int128;

u128 magnitude_of(i128 v) {
  return v < 0 ? ~static_cast<u128>(v) + 1 : static_cast<u128>(v);
}

/// Binary gcd on unsigned 128-bit magnitudes (no division).
u128 gcd_u128(u128 a, u128 b) {
  if (a == 0) return b;
  if (b == 0) return a;
  int shift = 0;
  while (((a | b) & 1) == 0) {
    a >>= 1;
    b >>= 1;
    ++shift;
  }
  while ((a & 1) == 0) a >>= 1;
  while (b != 0) {
    while ((b & 1) == 0) b >>= 1;
    if (a > b) std::swap(a, b);
    b -= a;
  }
  return a << shift;
}

}  // namespace

// ---- BigInt ---------------------------------------------------------------

BigInt::BigInt(std::int64_t value) { *this = from_i128(value); }

BigInt BigInt::from_i128(i128 value) {
  BigInt out;
  out.negative_ = value < 0;
  u128 mag = magnitude_of(value);
  while (mag != 0) {
    out.limbs_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  return out;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::negated() const {
  BigInt out = *this;
  if (!out.limbs_.empty()) out.negative_ = !out.negative_;
  return out;
}

int BigInt::compare_magnitude(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

int BigInt::compare(const BigInt& other) const {
  if (sign() != other.sign()) return sign() < other.sign() ? -1 : 1;
  const int mag = compare_magnitude(other);
  return negative_ ? -mag : mag;
}

BigInt BigInt::add_magnitude(const BigInt& a, const BigInt& b, bool negative) {
  BigInt out;
  out.negative_ = negative;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  out.trim();
  return out;
}

BigInt BigInt::sub_magnitude(const BigInt& a, const BigInt& b, bool negative) {
  BigInt out;
  out.negative_ = negative;
  out.limbs_.reserve(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    borrow = 0;
    if (diff < 0) {
      diff += std::int64_t{1} << 32;
      borrow = 1;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  SPARCS_CHECK(borrow == 0, "BigInt magnitude subtraction underflow");
  out.trim();
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    return add_magnitude(*this, other, negative_);
  }
  const int mag = compare_magnitude(other);
  if (mag == 0) return BigInt();
  return mag > 0 ? sub_magnitude(*this, other, negative_)
                 : sub_magnitude(other, *this, other.negative_);
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + other.negated();
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (is_zero() || other.is_zero()) return BigInt();
  BigInt out;
  out.negative_ = negative_ != other.negative_;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) *
                              other.limbs_[j];
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shifted_left(int bits) const {
  SPARCS_CHECK(bits >= 0, "negative shift");
  if (is_zero() || bits == 0) return *this;
  BigInt out;
  out.negative_ = negative_;
  const int limb_shift = bits / 32;
  const int bit_shift = bits % 32;
  out.limbs_.assign(static_cast<std::size_t>(limb_shift), 0);
  std::uint32_t carry = 0;
  for (const std::uint32_t limb : limbs_) {
    if (bit_shift == 0) {
      out.limbs_.push_back(limb);
    } else {
      out.limbs_.push_back((limb << bit_shift) | carry);
      carry = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(limb) >> (32 - bit_shift));
    }
  }
  if (carry != 0) out.limbs_.push_back(carry);
  out.trim();
  return out;
}

void BigInt::divmod(const BigInt& divisor, BigInt* quotient,
                    BigInt* remainder) const {
  SPARCS_REQUIRE(!divisor.is_zero(), "BigInt division by zero");
  // Shift-subtract long division on magnitudes, msb -> lsb.
  BigInt q, r;
  const std::size_t total_bits = limbs_.size() * 32;
  q.limbs_.assign(limbs_.size(), 0);
  BigInt div_mag = divisor;
  div_mag.negative_ = false;
  for (std::size_t bit = total_bits; bit-- > 0;) {
    // r = (r << 1) | bit_of(*this, bit)
    r = r.shifted_left(1);
    if ((limbs_[bit / 32] >> (bit % 32)) & 1u) {
      if (r.limbs_.empty()) r.limbs_.push_back(0);
      r.limbs_[0] |= 1u;
    }
    if (!(r.compare_magnitude(div_mag) < 0)) {
      r = sub_magnitude(r, div_mag, false);
      q.limbs_[bit / 32] |= (1u << (bit % 32));
    }
  }
  // Truncated division: quotient sign = operand signs xor, remainder takes
  // the dividend's sign.
  q.negative_ = negative_ != divisor.negative_;
  r.negative_ = negative_;
  q.trim();
  r.trim();
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r;
    a.divmod(b, nullptr, &r);
    r.negative_ = false;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

bool BigInt::fits_i128(i128* out) const {
  if (limbs_.size() > 4) return false;
  u128 mag = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    mag = (mag << 32) | limbs_[i];
  }
  // |value| must fit the signed range; -2^127 is representable but awkward
  // to normalize, so it stays big.
  constexpr u128 kMax = ~u128{0} >> 1;  // 2^127 - 1
  if (mag > kMax) return false;
  *out = negative_ ? -static_cast<i128>(mag) : static_cast<i128>(mag);
  return true;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Peel 9 decimal digits at a time with the shift-subtract divmod.
  BigInt value = *this;
  value.negative_ = false;
  const BigInt chunk = BigInt(1000000000);
  std::string digits;
  while (!value.is_zero()) {
    BigInt q, r;
    value.divmod(chunk, &q, &r);
    std::uint64_t part = 0;
    for (std::size_t i = r.limbs_.size(); i-- > 0;) {
      part = (part << 32) | r.limbs_[i];
    }
    const bool last = q.is_zero();
    char buf[16];
    std::snprintf(buf, sizeof buf, last ? "%llu" : "%09llu",
                  static_cast<unsigned long long>(part));
    digits.insert(0, buf);
    value = std::move(q);
  }
  return negative_ ? "-" + digits : digits;
}

double BigInt::to_double() const {
  double mag = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    mag = mag * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -mag : mag;
}

// ---- Rational -------------------------------------------------------------

Rational::Rational(std::int64_t num, std::int64_t den) {
  SPARCS_REQUIRE(den != 0, "rational with zero denominator");
  *this = make_small(num, den);
}

Rational Rational::make_small(i128 num, i128 den) {
  Rational out;
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const u128 g = gcd_u128(magnitude_of(num), magnitude_of(den));
  if (g > 1) {
    // Dividing by the gcd of the magnitudes is exact; do it on magnitudes to
    // sidestep the -2^127 edge case.
    const bool neg = num < 0;
    const u128 nmag = magnitude_of(num) / g;
    num = neg ? -static_cast<i128>(nmag) : static_cast<i128>(nmag);
    den = static_cast<i128>(magnitude_of(den) / g);
  }
  out.num_ = num;
  out.den_ = den;
  return out;
}

Rational::Rational(BigInt num, BigInt den) {
  SPARCS_REQUIRE(!den.is_zero(), "rational with zero denominator");
  if (den.sign() < 0) {
    num = num.negated();
    den = den.negated();
  }
  if (!num.is_zero()) {
    const BigInt g = BigInt::gcd(num, den);
    BigInt one = 1;
    if (g.compare(one) > 0) {
      BigInt qn, qd;
      num.divmod(g, &qn, nullptr);
      den.divmod(g, &qd, nullptr);
      num = std::move(qn);
      den = std::move(qd);
    }
  } else {
    den = 1;
  }
  i128 small_num = 0, small_den = 0;
  if (num.fits_i128(&small_num) && den.fits_i128(&small_den)) {
    num_ = small_num;
    den_ = small_den;
    return;
  }
  big_ = true;
  bnum_ = std::move(num);
  bden_ = std::move(den);
}

BigInt Rational::big_num() const {
  return big_ ? bnum_ : BigInt::from_i128(num_);
}

BigInt Rational::big_den() const {
  return big_ ? bden_ : BigInt::from_i128(den_);
}

Rational Rational::from_double(double value) {
  SPARCS_REQUIRE(std::isfinite(value), "rational from non-finite double");
  if (value == 0.0) return Rational();
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);
  // mantissa * 2^53 is an integer with |.| < 2^53.
  const auto scaled = static_cast<std::int64_t>(std::ldexp(mantissa, 53));
  exp -= 53;
  if (exp >= 0) {
    if (exp <= 70) {
      return make_small(static_cast<i128>(scaled) << exp, 1);
    }
    return Rational(BigInt::from_i128(scaled).shifted_left(exp), BigInt(1));
  }
  if (-exp <= 70) {
    return make_small(scaled, i128{1} << -exp);
  }
  return Rational(BigInt::from_i128(scaled), BigInt(1).shifted_left(-exp));
}

int Rational::sign() const {
  if (big_) return bnum_.sign();
  return num_ < 0 ? -1 : (num_ > 0 ? 1 : 0);
}

Rational Rational::negated() const {
  if (!big_) {
    Rational out = *this;
    out.num_ = -out.num_;
    return out;
  }
  return Rational(bnum_.negated(), bden_);
}

Rational Rational::operator+(const Rational& other) const {
  if (!big_ && !other.big_) {
    // a/b + c/d = (a*d + c*b) / (b*d), each product overflow-checked.
    i128 ad = 0, cb = 0, bd = 0, sum = 0;
    if (!__builtin_mul_overflow(num_, other.den_, &ad) &&
        !__builtin_mul_overflow(other.num_, den_, &cb) &&
        !__builtin_mul_overflow(den_, other.den_, &bd) &&
        !__builtin_add_overflow(ad, cb, &sum)) {
      return make_small(sum, bd);
    }
  }
  const BigInt num = big_num() * other.big_den() + other.big_num() * big_den();
  return Rational(num, big_den() * other.big_den());
}

Rational Rational::operator-(const Rational& other) const {
  return *this + other.negated();
}

Rational Rational::operator*(const Rational& other) const {
  if (!big_ && !other.big_) {
    // Cross-reduce first so products of already-reduced values rarely
    // overflow: (a/b)*(c/d) with g1=gcd(a,d), g2=gcd(c,b).
    const u128 g1 = gcd_u128(magnitude_of(num_), magnitude_of(other.den_));
    const u128 g2 = gcd_u128(magnitude_of(other.num_), magnitude_of(den_));
    const i128 a = g1 > 1 ? num_ / static_cast<i128>(g1) : num_;
    const i128 d = g1 > 1 ? other.den_ / static_cast<i128>(g1) : other.den_;
    const i128 c = g2 > 1 ? other.num_ / static_cast<i128>(g2) : other.num_;
    const i128 b = g2 > 1 ? den_ / static_cast<i128>(g2) : den_;
    i128 num = 0, den = 0;
    if (!__builtin_mul_overflow(a, c, &num) &&
        !__builtin_mul_overflow(b, d, &den)) {
      return make_small(num, den);
    }
  }
  return Rational(big_num() * other.big_num(), big_den() * other.big_den());
}

Rational Rational::operator/(const Rational& other) const {
  SPARCS_REQUIRE(other.sign() != 0, "rational division by zero");
  Rational flipped;
  if (!other.big_) {
    flipped.num_ = other.num_ < 0 ? -other.den_ : other.den_;
    flipped.den_ = other.num_ < 0 ? -other.num_ : other.num_;
  } else {
    return Rational(big_num() * other.big_den(), big_den() * other.big_num());
  }
  return *this * flipped;
}

int Rational::compare(const Rational& other) const {
  if (!big_ && !other.big_) {
    i128 ad = 0, cb = 0;
    if (!__builtin_mul_overflow(num_, other.den_, &ad) &&
        !__builtin_mul_overflow(other.num_, den_, &cb)) {
      return ad < cb ? -1 : (ad > cb ? 1 : 0);
    }
  }
  return (big_num() * other.big_den()).compare(other.big_num() * big_den());
}

bool Rational::is_integer() const {
  if (!big_) return den_ == 1;
  i128 v = 0;
  return bden_.fits_i128(&v) && v == 1;
}

Rational Rational::floor() const {
  if (!big_) {
    i128 q = num_ / den_;
    if (num_ % den_ != 0 && num_ < 0) --q;
    Rational out;
    out.num_ = q;
    return out;
  }
  BigInt q, r;
  bnum_.divmod(bden_, &q, &r);
  if (!r.is_zero() && bnum_.sign() < 0) q = q - BigInt(1);
  return Rational(std::move(q), BigInt(1));
}

Rational Rational::ceil() const { return negated().floor().negated(); }

std::string Rational::to_string() const {
  if (is_integer()) return big_num().to_string();
  return big_num().to_string() + "/" + big_den().to_string();
}

double Rational::to_double() const {
  if (!big_) {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  const double num = bnum_.to_double();
  const double den = bden_.to_double();
  if (std::isfinite(num) && std::isfinite(den)) return num / den;
  // Both huge: compare magnitudes through a scaled quotient.
  BigInt q;
  bnum_.divmod(bden_, &q, nullptr);
  return q.to_double();
}

}  // namespace sparcs::support

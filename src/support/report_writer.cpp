#include "support/report_writer.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sparcs::report {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return value > 0 ? "1e308" : "-1e308";
  return str_format("%.12g", value);
}

ReportWriter::ReportWriter() = default;

void ReportWriter::comma() {
  if (wrote_value_.empty()) return;
  if (wrote_value_.back()) os_ << ",";
  wrote_value_.back() = true;
}

void ReportWriter::key_prefix(const std::string& key) {
  comma();
  os_ << "\"" << json_escape(key) << "\": ";
}

void ReportWriter::begin_object() {
  comma();
  os_ << "{";
  wrote_value_.push_back(false);
}

void ReportWriter::begin_object(const std::string& key) {
  key_prefix(key);
  os_ << "{";
  wrote_value_.push_back(false);
}

void ReportWriter::end_object() {
  SPARCS_CHECK(!wrote_value_.empty(), "end_object without begin_object");
  wrote_value_.pop_back();
  os_ << "}";
}

void ReportWriter::begin_array(const std::string& key) {
  key_prefix(key);
  os_ << "[";
  wrote_value_.push_back(false);
}

void ReportWriter::begin_array() {
  comma();
  os_ << "[";
  wrote_value_.push_back(false);
}

void ReportWriter::element(std::int64_t value) {
  comma();
  os_ << value;
}

void ReportWriter::element(double value) {
  comma();
  os_ << json_number(value);
}

void ReportWriter::end_array() {
  SPARCS_CHECK(!wrote_value_.empty(), "end_array without begin_array");
  wrote_value_.pop_back();
  os_ << "]";
}

void ReportWriter::field(const std::string& key, const std::string& value) {
  key_prefix(key);
  os_ << "\"" << json_escape(value) << "\"";
}

void ReportWriter::field(const std::string& key, const char* value) {
  field(key, std::string(value));
}

void ReportWriter::field(const std::string& key, double value) {
  key_prefix(key);
  os_ << json_number(value);
}

void ReportWriter::field(const std::string& key, std::int64_t value) {
  key_prefix(key);
  os_ << value;
}

void ReportWriter::field(const std::string& key, int value) {
  field(key, static_cast<std::int64_t>(value));
}

void ReportWriter::field(const std::string& key, bool value) {
  key_prefix(key);
  os_ << (value ? "true" : "false");
}

void ReportWriter::raw_field(const std::string& key, const std::string& json) {
  key_prefix(key);
  os_ << json;
}

std::string ReportWriter::str() const {
  SPARCS_CHECK(wrote_value_.empty(), "unbalanced begin/end in report");
  return os_.str();
}

}  // namespace sparcs::report

// Structured JSON report writer shared by every result type that renders to
// --report-json (PartitionerReport, RefinePartitionsResult, OptimalResult).
// One implementation owns escaping, number formatting (JSON has no inf/nan
// literals) and comma placement, so result structs describe their fields
// instead of hand-assembling strings in the CLI.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace sparcs::report {

/// Minimal streaming JSON writer: begin/end nesting plus typed fields.
/// Usage errors (ending a scope that was never begun) throw via SPARCS_CHECK.
class ReportWriter {
 public:
  ReportWriter();

  /// Starts the root object (or a nested unnamed object inside an array).
  void begin_object();
  /// Starts a nested object under `key` (inside an object).
  void begin_object(const std::string& key);
  void end_object();

  /// Starts an array under `key` (inside an object).
  void begin_array(const std::string& key);
  /// Starts an unnamed array (inside another array).
  void begin_array();
  void end_array();

  /// Writes a bare scalar element (inside an array).
  void element(std::int64_t value);
  void element(double value);

  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);

  /// Embeds `json` — an already-rendered JSON value — verbatim under `key`.
  /// The caller vouches for its validity (used to splice sub-documents built
  /// by another ReportWriter, e.g. a metrics snapshot into a telemetry
  /// record, without reparsing).
  void raw_field(const std::string& key, const std::string& json);

  /// The document so far; call after the root object was ended.
  [[nodiscard]] std::string str() const;

 private:
  void comma();
  void key_prefix(const std::string& key);

  std::ostringstream os_;
  /// One entry per open scope: whether a value was already written there.
  std::vector<bool> wrote_value_;
};

/// Escapes a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Formats a double as a JSON-safe number (inf/nan become large sentinels).
[[nodiscard]] std::string json_number(double value);

}  // namespace sparcs::report

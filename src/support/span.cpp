#include "support/span.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <ostream>
#include <vector>

#include "support/strings.hpp"

namespace sparcs::trace {
namespace {

std::atomic<bool> g_enabled{false};

struct Event {
  std::string name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
  int tid;
  std::string args_json;
};

std::mutex g_mu;
std::vector<Event>& events() {
  static std::vector<Event>* v = new std::vector<Event>();
  return *v;
}

/// Small dense thread ids (Chrome's UI groups rows by pid/tid).
int this_thread_id() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1);
  return id;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  events().clear();
}

std::size_t num_events() {
  std::lock_guard<std::mutex> lock(g_mu);
  return events().size();
}

void write_chrome_json(std::ostream& os) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (events().empty()) {
    // Literal empty array: downstream JSON linters (and the CI artifact
    // check) expect a parseable document even when tracing recorded nothing.
    os << "[]\n";
    return;
  }
  os << "[";
  bool first = true;
  for (const Event& e : events()) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << json_escape(e.name)
       << "\",\"cat\":\"sparcs\",\"ph\":\"X\",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args_json.empty()) os << ",\"args\":{" << e.args_json << "}";
    os << "}";
  }
  os << "\n]\n";
}

namespace detail {

std::uint64_t now_us() {
  // Anchored to the first call so timestamps stay small and zero-based.
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void record_complete_event(std::string name, std::uint64_t ts_us,
                           std::uint64_t dur_us, std::string args_json) {
  std::lock_guard<std::mutex> lock(g_mu);
  events().push_back(Event{std::move(name), ts_us, dur_us, this_thread_id(),
                           std::move(args_json)});
}

}  // namespace detail

void Span::begin(const char* name) {
  active_ = true;
  name_ = name;
  start_us_ = detail::now_us();
}

void Span::end() {
  const std::uint64_t now = detail::now_us();
  detail::record_complete_event(std::move(name_), start_us_,
                                now >= start_us_ ? now - start_us_ : 0,
                                std::move(args_json_));
  active_ = false;
}

void Span::arg(const char* key, std::int64_t value) {
  if (!active_) return;
  if (!args_json_.empty()) args_json_ += ",";
  args_json_ += str_format("\"%s\":%lld", key,
                           static_cast<long long>(value));
}

void Span::arg(const char* key, double value) {
  if (!active_) return;
  if (!args_json_.empty()) args_json_ += ",";
  if (!std::isfinite(value)) {
    args_json_ += str_format("\"%s\":\"%s\"", key,
                             value > 0 ? "inf" : (value < 0 ? "-inf" : "nan"));
  } else {
    args_json_ += str_format("\"%s\":%.12g", key, value);
  }
}

void Span::arg(const char* key, const std::string& value) {
  if (!active_) return;
  if (!args_json_.empty()) args_json_ += ",";
  args_json_ += str_format("\"%s\":\"%s\"", key, json_escape(value).c_str());
}

}  // namespace sparcs::trace

// Live telemetry pipeline: a background sampler that streams newline-
// delimited JSON records describing what the solver is doing *right now*
// (per-solve incumbent/bound/gap/node counts, pipeline stage, RSS), plus the
// correlation-id and search-tree machinery the rest of the observability
// stack joins on.
//
// Everything here follows the repository's observability invariant: disabled
// paths cost one relaxed atomic load (or one null-pointer check), so call
// sites instrument hot paths unconditionally. The sampler thread shuts down
// through a condition variable and is joined before stop_sampler() returns,
// which keeps teardown clean under Deadline/CancelToken cancellation.
//
// Correlation: every MILP solve is tagged with a process-unique correlation
// id (a plain uint64). The id lives in thread-local storage for the duration
// of the solve (worker threads inherit it explicitly), flows into trace-span
// args ("corr"), JSON log records ("corr") and the sampler's per-solve
// entries, so one solve can be joined across all three streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "milp/types.hpp"

namespace sparcs::telemetry {

/// True when the telemetry pipeline is on (sampler running, or a consumer
/// such as the JSON log sink wants correlation ids). One relaxed load.
bool active();

/// Globally enables or disables telemetry publishing (the sampler flips this
/// on its own when started/stopped; tests and embedders may set it directly).
void set_active(bool on);

// ---------------------------------------------------------------------------
// Correlation ids
// ---------------------------------------------------------------------------

/// Allocates a fresh process-unique correlation id (never 0).
std::uint64_t next_correlation_id();

/// The correlation id attached to the calling thread (0 = none).
std::uint64_t current_correlation_id();

/// RAII swap of the calling thread's correlation id; used by solve probes to
/// scope an id over a FormModel+SolveModel round trip, and by solver worker
/// threads to inherit the spawning solve's id.
class CorrelationScope {
 public:
  explicit CorrelationScope(std::uint64_t id);
  ~CorrelationScope();
  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  std::uint64_t prev_;
};

// ---------------------------------------------------------------------------
// Live solve table
// ---------------------------------------------------------------------------

/// Live state of one in-flight MILP solve. Publishers use relaxed stores,
/// the sampler uses relaxed loads: every field is an independent progress
/// indicator, so cross-field tearing is acceptable by design.
struct LiveSolve {
  std::atomic<std::uint64_t> correlation{0};  ///< 0 = slot free
  std::atomic<std::int64_t> nodes{0};
  std::atomic<std::int64_t> open_nodes{0};  ///< DFS stack / subproblem pool
  std::atomic<std::int64_t> lp_iterations{0};
  std::atomic<std::int64_t> incumbent_updates{0};
  /// Caller-convention objective of the current incumbent; meaningful only
  /// while has_incumbent is true.
  std::atomic<double> incumbent{0.0};
  std::atomic<bool> has_incumbent{false};
  /// Root LP relaxation bound (caller convention); only published when LP
  /// bounding is enabled for the solve, NaN otherwise.
  std::atomic<double> best_bound{0.0};
  std::atomic<bool> has_bound{false};
  std::atomic<std::uint64_t> start_us{0};  ///< monotonic, sampler-relative
};

/// RAII registration of one MILP solve in the live table. Inert (id() == 0,
/// slot() == nullptr) while telemetry is inactive; when the table is full the
/// scope still carries an id but publishes nowhere.
class SolveScope {
 public:
  explicit SolveScope(const char* what);
  ~SolveScope();
  SolveScope(const SolveScope&) = delete;
  SolveScope& operator=(const SolveScope&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] LiveSolve* slot() const { return slot_; }

 private:
  LiveSolve* slot_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t prev_tls_ = 0;
  bool swapped_tls_ = false;
};

/// Number of solves completed since process start while telemetry was active
/// (drives the --progress line's solve counter).
std::int64_t solves_completed();

/// Capacity of the live solve table (slots are CAS-claimed per in-flight
/// solve; scopes beyond the capacity degrade gracefully, see below).
inline constexpr int kLiveSolveSlots = 64;

/// Slots currently claimed by in-flight solves (scans the table; cheap).
std::int64_t live_solve_slots_in_use();

/// SolveScopes constructed while every slot was taken, since the last
/// reset_pipeline(). Such scopes keep a working correlation id (logs and
/// trace spans stay joinable) — they are merely invisible to the sampler's
/// per-solve entries. Each occurrence also bumps the
/// "telemetry.live_solve.slot_exhausted" metrics counter, so a service
/// running more concurrent solves than the table holds sees the shortfall
/// in its metrics instead of silently losing coverage.
std::int64_t live_solve_slots_exhausted();

// ---------------------------------------------------------------------------
// Pipeline stage (the partition sweep publishes, the sampler reads)
// ---------------------------------------------------------------------------

/// Publishes the sweep's current stage. `stage` must be a string literal (or
/// otherwise immortal). Triggers an immediate sampler record, so every stage
/// transition yields at least one sample even under coarse intervals.
void set_stage(const char* stage, int num_partitions);

/// Publishes an improved incumbent design (monotonically non-increasing
/// latency over a run) and emits a "convergence" JSONL record.
void publish_best_latency(double latency_ns, int num_partitions);

/// Publishes the run's degraded flag (budget/deadline expiry mid-sweep);
/// reflected in sample records and the sampler's final record.
void publish_degraded(bool degraded);

/// Clears stage/incumbent/degraded state and the completed-solve counter
/// between runs (CLI entry).
void reset_pipeline();

// ---------------------------------------------------------------------------
// Search-tree introspection
// ---------------------------------------------------------------------------

/// Why a branch & bound node stopped being interesting.
enum class NodeKind : std::uint8_t {
  kBranched,          ///< interior node: branched on a variable
  kIntegral,          ///< leaf: all integral variables fixed
  kPrunedBound,       ///< refuted by the LP relaxation
  kPrunedInfeasible,  ///< propagation conflict on the entering branch
  kRejected,          ///< leaf completion rejected by the exact checker
  kBudget,            ///< abandoned: limits/cancellation cut the subtree
};

[[nodiscard]] const char* to_string(NodeKind kind);

/// One recorded branch & bound node.
struct TreeNode {
  std::int64_t id = 0;
  std::int64_t parent = -1;  ///< -1 = root of a (sub)tree
  std::int32_t depth = 0;
  std::int32_t branch_var = -1;        ///< variable branched to enter; -1 root
  double branch_lb = 0.0, branch_ub = 0.0;  ///< bounds imposed on branch_var
  NodeKind kind = NodeKind::kBranched;
};

/// True when per-node recording is on. One relaxed load; the solver caches
/// it once per solve.
bool tree_active();

/// Enables/disables per-node recording (records accumulate across solves
/// until tree_clear()).
void set_tree_active(bool on);

/// Caps the ring buffer (oldest records evicted first; parents are recorded
/// before their children, so surviving interior nodes keep their children).
void set_tree_capacity(std::size_t cap);

/// Drops every recorded node and resets the id counter.
void tree_clear();

/// Allocates the next node id (process-wide, so ids are unique across
/// worker threads and across solves).
std::int64_t tree_next_id();

/// Records one node (no-op while recording is disabled).
void tree_record(const TreeNode& node);

/// Nodes currently held (after eviction).
std::size_t tree_size();

/// Writes {"capacity":..,"recorded":..,"evicted":..,"nodes":[...]}. A node
/// recorded as "branched" whose children were all evicted or never explored
/// (budget cut) is re-labelled "budget" at dump time, so every non-root node
/// in the dump carries a prune reason or has children present.
void write_tree_json(std::ostream& os);

/// Graphviz rendering of the same dump (one node per record, edges to
/// parents, prune reason as label/color).
void write_tree_dot(std::ostream& os);

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

struct SamplerOptions {
  /// Sampling period. Stage transitions and convergence events also emit
  /// records immediately, so coarse intervals still capture every stage.
  double interval_sec = 0.2;
  /// JSONL sink (one record per line); must outlive the sampler. Required.
  std::ostream* sink = nullptr;
  /// When set, a single-line progress report (stage, N, incumbent, solves,
  /// elapsed) is rewritten here on every sample ('\r'-terminated).
  std::ostream* progress = nullptr;
  /// Include a counters/gauges section from the metrics registry in each
  /// sample (only when metric collection is enabled).
  bool include_metrics = true;
  /// Optional: when this token reports cancellation the sampler marks its
  /// records "cancelled":true (it keeps sampling until stop_sampler(), so
  /// the shutdown path stays observable).
  milp::CancelToken cancel;
};

/// Starts the process-wide sampler thread and flips telemetry active. Writes
/// a "start" record immediately. Returns false (and does nothing) when a
/// sampler is already running or options.sink is null.
bool start_sampler(const SamplerOptions& options);

/// Stops and joins the sampler thread, writing a "final" record (elapsed,
/// sample count, degraded flag). Telemetry stays active only if it was
/// activated independently of the sampler. No-op without a running sampler.
void stop_sampler();

[[nodiscard]] bool sampler_running();

/// Forces one sample record now (no-op without a running sampler). `trigger`
/// tags the record ("interval", "stage", "manual", ...).
void sample_now(const char* trigger = "manual");

// ---------------------------------------------------------------------------
// Process memory (Linux /proc/self/status; zeros elsewhere)
// ---------------------------------------------------------------------------

struct MemoryStatus {
  std::int64_t rss_kb = 0;       ///< VmRSS
  std::int64_t rss_peak_kb = 0;  ///< VmHWM
};

[[nodiscard]] MemoryStatus read_memory_status();

}  // namespace sparcs::telemetry

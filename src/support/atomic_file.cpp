#include "support/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sparcs::atomicfile {
namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string errno_string() {
  return std::strerror(errno);
}

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Directory part of `path` ("." when the path has no separator), used to
/// fsync the directory entry after the rename.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error) {
  if (path.empty()) {
    set_error(error, "empty path");
    return false;
  }
  // Pid-qualified temp name: concurrent writers (or a leftover temp from a
  // crashed process) never collide with this write.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create " + temp + ": " + errno_string());
    return false;
  }
  const char* data = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write to " + temp + " failed: " + errno_string());
      ::close(fd);
      ::unlink(temp.c_str());
      return false;
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // The fsync is the crash-consistency point: after it, the rename either
  // fully happens or fully does not — no state exposes partial contents.
  if (::fsync(fd) != 0) {
    set_error(error, "fsync of " + temp + " failed: " + errno_string());
    ::close(fd);
    ::unlink(temp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close of " + temp + " failed: " + errno_string());
    ::unlink(temp.c_str());
    return false;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + temp + " -> " + path + " failed: " +
                         errno_string());
    ::unlink(temp.c_str());
    return false;
  }
  // Persist the directory entry too. A failure here (exotic filesystems
  // refuse O_RDONLY fsync on directories) does not undo the rename, so the
  // write still counts as successful.
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) return std::nullopt;
  return buffer.str();
}

std::string seal_json_with_crc(const std::string& json_object) {
  // Callers hand in a serialized object "{...}"; the seal replaces the final
  // '}' with a crc32 field over everything before it.
  const std::size_t close = json_object.find_last_of('}');
  if (close == std::string::npos || close == 0) return json_object;
  std::string body = json_object.substr(0, close);
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), ",\"crc32\":\"%08x\"}",
                crc32(body));
  // Empty object "{}" has no field to follow, so no separating comma.
  return body + (body == "{" ? trailer + 1 : trailer);
}

std::optional<std::string> unseal_json_with_crc(const std::string& text,
                                                std::string* error) {
  static constexpr char kMarker[] = "\"crc32\":\"";
  static constexpr std::size_t kMarkerLen = sizeof(kMarker) - 1;
  const std::size_t pos = text.rfind(kMarker);
  if (pos == std::string::npos || pos == 0) {
    set_error(error, "no crc32 trailer found");
    return std::nullopt;
  }
  const char separator = text[pos - 1];
  if (separator != ',' && separator != '{') {
    set_error(error, "malformed crc32 trailer");
    return std::nullopt;
  }
  const std::size_t hex_begin = pos + kMarkerLen;
  if (hex_begin + 8 + 2 > text.size() ||
      text.compare(hex_begin + 8, 2, "\"}") != 0) {
    set_error(error, "truncated crc32 trailer");
    return std::nullopt;
  }
  // Only trailing whitespace may follow the sealed document.
  for (std::size_t i = hex_begin + 10; i < text.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) {
      set_error(error, "trailing bytes after crc32 trailer");
      return std::nullopt;
    }
  }
  std::uint32_t stored = 0;
  for (std::size_t i = hex_begin; i < hex_begin + 8; ++i) {
    const char c = text[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      set_error(error, "non-hex crc32 trailer");
      return std::nullopt;
    }
    stored = stored * 16 + digit;
  }
  const std::string body =
      separator == '{' ? "{" : text.substr(0, pos - 1);
  const std::uint32_t actual = crc32(body);
  if (actual != stored) {
    char message[96];
    std::snprintf(message, sizeof(message),
                  "crc32 mismatch: stored %08x, computed %08x over %zu bytes",
                  stored, actual, body.size());
    set_error(error, message);
    return std::nullopt;
  }
  return body + "}";
}

}  // namespace sparcs::atomicfile

// Scoped spans emitting Chrome trace-event / Perfetto-compatible JSON.
//
// Tracing is off by default; an inactive Span costs one relaxed atomic load.
// When enabled, each Span records one complete ("ph":"X") event with
// microsecond start/duration timestamps, so a whole Refine_Partitions_Bound
// sweep — with nested spans for every Reduce_Latency probe, milp::solve call
// and simplex run — can be opened in chrome://tracing or ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sparcs::trace {

/// True when span recording is globally enabled (default: off).
bool enabled();

/// Globally enables or disables span recording.
void set_enabled(bool on);

/// Drops every recorded event.
void clear();

/// Number of events recorded so far.
std::size_t num_events();

/// Writes the recorded events as a Chrome trace-event JSON array:
/// [{"name":..,"cat":"sparcs","ph":"X","ts":..,"dur":..,"pid":..,"tid":..,
///   "args":{..}}, ...]. Loadable by chrome://tracing and Perfetto.
void write_chrome_json(std::ostream& os);

namespace detail {
void record_complete_event(std::string name, std::uint64_t ts_us,
                           std::uint64_t dur_us, std::string args_json);
std::uint64_t now_us();
}  // namespace detail

/// RAII span: measures from construction to destruction. `arg()` attaches
/// key/value pairs rendered into the event's "args" object; all calls are
/// no-ops while tracing is disabled.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) begin(name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, std::int64_t value);
  void arg(const char* key, double value);
  void arg(const char* key, const std::string& value);

 private:
  void begin(const char* name);
  void end();

  bool active_ = false;
  std::string name_;
  std::string args_json_;  ///< comma-joined "key":value fragments
  std::uint64_t start_us_ = 0;
};

}  // namespace sparcs::trace

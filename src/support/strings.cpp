#include "support/strings.hpp"

#include <cstdarg>
#include <cstdio>

#include "support/error.hpp"

namespace sparcs {

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  SPARCS_CHECK(needed >= 0, "vsnprintf failed");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string trim_double(double value, int max_decimals) {
  std::string out = str_format("%.*f", max_decimals, value);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace sparcs

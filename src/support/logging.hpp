// Minimal leveled logger used across SPARCS-TP.
//
// Logging is stream-based and writes to stderr; the level is a process-wide
// setting so benchmarks and tests can silence solver chatter.
#pragma once

#include <sstream>
#include <string>

namespace sparcs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the current process-wide log level (default: kWarning).
LogLevel log_level();

/// Sets the process-wide log level.
void set_log_level(LogLevel level);

namespace detail {

/// Collects one log statement and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace sparcs

#define SPARCS_LOG(level) \
  ::sparcs::detail::LogMessage(::sparcs::LogLevel::level, __FILE__, __LINE__)

#define SPARCS_DLOG SPARCS_LOG(kDebug)
#define SPARCS_ILOG SPARCS_LOG(kInfo)
#define SPARCS_WLOG SPARCS_LOG(kWarning)
#define SPARCS_ELOG SPARCS_LOG(kError)

// Minimal leveled logger used across SPARCS-TP.
//
// Logging is stream-based and writes to stderr; the level is a process-wide
// setting so benchmarks and tests can silence solver chatter. An optional
// JSON sink mirrors every emitted line as a single-line JSON object carrying
// the active telemetry correlation id, which is what lets a log line be
// joined with trace spans and telemetry samples post-hoc.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>

namespace sparcs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Returns the current process-wide log level (default: kWarning).
LogLevel log_level();

/// Sets the process-wide log level.
void set_log_level(LogLevel level);

/// Installs (or, with nullptr, removes) a stream that receives every emitted
/// log statement as one JSON object per line:
///   {"t_sec":..., "level":"info", "file":"solver.cpp", "line":81,
///    "corr":42, "msg":"..."}
/// The `corr` field is present only when a telemetry correlation id is bound
/// to the emitting thread. Writes are serialized under an internal mutex; the
/// caller keeps ownership of the stream and must remove the sink before
/// destroying it. The human-readable stderr line is unaffected.
void set_json_log_sink(std::ostream* sink);

/// Additionally routes the JSON records of one correlation id to a dedicated
/// stream — the solve service registers one per job, so every log line a job
/// (and the solver worker threads inheriting its id) emits lands in that
/// job's own JSONL file regardless of how many jobs run concurrently. The
/// global sink, when set, still receives every record. Writes share the
/// global sink mutex; the caller owns the stream and must remove the sink
/// (remove_correlation_json_log_sink) before destroying it.
void add_correlation_json_log_sink(std::uint64_t correlation,
                                   std::ostream* sink);
void remove_correlation_json_log_sink(std::uint64_t correlation);

namespace detail {

/// Collects one log statement and emits it on destruction. The message body
/// is accumulated separately from the "[T file:line]" prefix so the JSON
/// sink can emit the structured fields without re-parsing the text line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace sparcs

#define SPARCS_LOG(level) \
  ::sparcs::detail::LogMessage(::sparcs::LogLevel::level, __FILE__, __LINE__)

#define SPARCS_DLOG SPARCS_LOG(kDebug)
#define SPARCS_ILOG SPARCS_LOG(kInfo)
#define SPARCS_WLOG SPARCS_LOG(kWarning)
#define SPARCS_ELOG SPARCS_LOG(kError)

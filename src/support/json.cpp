#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace sparcs::json {
namespace {

/// Nesting cap: a corrupted or hostile document cannot overflow the parser's
/// recursion; 200 is far beyond any document the system writes.
constexpr int kMaxDepth = 200;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    skip_ws();
    if (!parse_value(result.value, 0)) {
      result.error = error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = fail("trailing bytes after document");
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  std::string fail(const std::string& what) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + what;
    }
    return error_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = Value::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Value::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = Value::make_null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    consume('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (consume('}')) {
      out = Value::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return false;
      }
      skip_ws();
      Value value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) {
        out = Value::make_object(std::move(members));
        return true;
      }
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return false;
      }
    }
  }

  bool parse_array(Value& out, int depth) {
    consume('[');
    std::vector<Value> items;
    skip_ws();
    if (consume(']')) {
      out = Value::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      Value value;
      if (!parse_value(value, depth + 1)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (consume(']')) {
        out = Value::make_array(std::move(items));
        return true;
      }
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return false;
      }
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            unsigned digit;
            if (h >= '0' && h <= '9') {
              digit = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("non-hex digit in \\u escape");
              return false;
            }
            code = code * 16 + digit;
          }
          // Basic-plane UTF-8 encoding; surrogate pairs (absent from our
          // writers' output) are passed through as two 3-byte sequences.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
      // fallthrough to digits
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (!digits) {
      pos_ = start;
      fail("expected a value");
      return false;
    }
    // Locale-independent parse: strtod honours LC_NUMERIC, so a process
    // running under e.g. de_DE would misread "1.5". std::from_chars is
    // always "C"-locale. Fallback: from_chars reports out-of-range
    // magnitudes as an error where strtod clamps to +-inf/0 — keep the
    // clamping behaviour for those rare literals.
    const std::string token(text_.substr(start, pos_ - start));
    double number = 0.0;
    const std::from_chars_result res =
        std::from_chars(token.data(), token.data() + token.size(), number);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
      number = std::strtod(token.c_str(), nullptr);
    }
    out = Value::make_number(number);
    return true;
  }

  bool literal(const char* word) {
    const std::string_view w(word);
    if (text_.compare(pos_, w.size(), w) != 0) {
      fail("invalid literal");
      return false;
    }
    pos_ += w.size();
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Value::member_double(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

std::int64_t Value::member_int(std::string_view key,
                               std::int64_t fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_int(fallback) : fallback;
}

bool Value::member_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_bool(fallback) : fallback;
}

std::string Value::member_string(std::string_view key,
                                 std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

ParseResult parse(std::string_view text) { return Parser(text).run(); }

}  // namespace sparcs::json

// Process-wide metrics registry: counters, gauges and timers/histograms.
//
// Collection is off by default and every primitive is near-zero-cost while
// disabled (one relaxed atomic load); call sites therefore instrument hot
// paths unconditionally. Handles returned by the registry are stable for the
// process lifetime, so call sites may cache them in function-local statics.
// Snapshots render to JSON for the CLI's --metrics-json export.
//
// Snapshot-consistency contract
// -----------------------------
// The hot mutation paths (Counter::add, Gauge::set, Timer::record) stay
// lock-free-or-local: concurrent with them,
//  * Registry::snapshot() and Registry::reset() serialize against each other
//    under the registry mutex, so a snapshot never observes a half-applied
//    registry-wide reset (some metrics zeroed, others not).
//  * Each snapshot carries the registry's reset epoch. Consumers computing
//    deltas between two snapshots (the telemetry sampler) must discard the
//    delta when the epoch changed in between — the counters restarted.
//  * Per-metric reset() on a cached handle is an atomic exchange (Counter,
//    Gauge) or mutex-guarded (Timer): safe concurrent with add()/record(),
//    but it bypasses the registry epoch, so it is reserved for tests and
//    single-threaded phases. Production code resets via Registry::reset().
// Timer::record/stats/reset share the per-timer mutex, so Stats is always
// internally consistent (count matches the bucket sum).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sparcs::metrics {

/// True when metric collection is globally enabled (default: off).
bool enabled();

/// Globally enables or disables metric collection.
void set_enabled(bool on);

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Atomic exchange, so a concurrent add() either lands before the reset
  /// (and is zeroed with everything else) or fully after (and survives) —
  /// never torn. See the snapshot-consistency contract above.
  void reset() { value_.exchange(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value metric (e.g. "best latency so far").
class Gauge {
 public:
  void set(double value) {
    if (enabled()) value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.exchange(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration histogram: count/sum/min/max plus log2-of-microseconds buckets.
class Timer {
 public:
  /// Number of log2(us) buckets; bucket i counts durations in
  /// [2^i, 2^(i+1)) microseconds (bucket 0 also absorbs sub-microsecond
  /// durations, the last bucket absorbs everything longer).
  static constexpr int kNumBuckets = 40;

  void record(double seconds);

  struct Stats {
    std::int64_t count = 0;
    double sum_sec = 0.0;
    double min_sec = 0.0;  ///< 0 while count == 0
    double max_sec = 0.0;
    std::vector<std::int64_t> buckets;  ///< kNumBuckets log2(us) counts
  };
  [[nodiscard]] Stats stats() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::int64_t buckets_[kNumBuckets] = {};
};

/// Point-in-time copy of every registered metric, with JSON rendering.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::int64_t value;
  };
  struct GaugeEntry {
    std::string name;
    double value;
  };
  struct TimerEntry {
    std::string name;
    Timer::Stats stats;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<TimerEntry> timers;
  /// Registry reset epoch at snapshot time: deltas between two snapshots are
  /// only meaningful while their epochs match.
  std::uint64_t epoch = 0;

  /// Renders {"counters":{...},"gauges":{...},"timers":{...}}. Timers render
  /// count/sum/min/max/mean in seconds plus the non-empty log2(us) buckets.
  [[nodiscard]] std::string to_json() const;
};

/// Name -> metric registry. Thread-safe; returned references remain valid for
/// the process lifetime (reset() zeroes values but never drops registrations).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  /// Copies every metric, sorted by name within each kind. Serialized
  /// against reset() under the registry mutex, so the copy is never a mix of
  /// pre- and post-reset values; the snapshot records the current epoch.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (registrations and handles survive) and
  /// advances the reset epoch so in-flight snapshot deltas invalidate.
  void reset();

  /// Number of reset() calls so far.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> metric;
  };
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> epoch_{0};
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Timer>> timers_;
};

/// The process-wide registry.
Registry& registry();

/// RAII timer: records the elapsed time into `timer` on destruction when
/// metric collection is enabled (start timestamp is only taken when enabled).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::uint64_t start_ns_ = 0;  ///< 0 == collection was off at construction
};

}  // namespace sparcs::metrics

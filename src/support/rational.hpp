// Exact rational arithmetic for certificate checking.
//
// Rational keeps its numerator/denominator in __int128 while they fit and
// every operation checks for overflow with the compiler intrinsics; the
// moment a product or sum would overflow, the value is promoted to an
// arbitrary-precision sign-magnitude integer (BigInt) and stays exact. The
// certificate checker (milp/certify) is the only performance-sensitive user,
// and its inputs are doubles, whose exact rational form is num/2^k — small
// enough that the fast path handles almost every operation.
//
// Design notes:
//  - Rationals never divide integers except in floor()/round-trip printing:
//    a/b is multiplication by the flipped operand, so BigInt only needs
//    addition, subtraction, multiplication, comparison and a shift-subtract
//    divmod (used by floor/ceil, gcd reduction and decimal printing).
//  - from_double() is exact: d == m * 2^e is decomposed with frexp and the
//    power of two lands in the numerator or denominator verbatim (|e| can
//    reach 1074, so this is a routine promotion trigger).
//  - Every value is kept normalized (gcd-reduced, denominator > 0) and
//    demoted back to the __int128 representation when it fits again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sparcs::support {

/// Arbitrary-precision signed integer, sign + base-2^32 magnitude.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)
  static BigInt from_i128(__int128 value);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  /// -1, 0, +1.
  [[nodiscard]] int sign() const {
    return limbs_.empty() ? 0 : (negative_ ? -1 : 1);
  }
  [[nodiscard]] BigInt negated() const;

  [[nodiscard]] BigInt operator+(const BigInt& other) const;
  [[nodiscard]] BigInt operator-(const BigInt& other) const;
  [[nodiscard]] BigInt operator*(const BigInt& other) const;
  /// Truncated division (C semantics): quotient rounds toward zero and the
  /// remainder takes the dividend's sign. REQUIREs a non-zero divisor.
  void divmod(const BigInt& divisor, BigInt* quotient, BigInt* remainder) const;

  /// Three-way compare: negative/zero/positive like memcmp.
  [[nodiscard]] int compare(const BigInt& other) const;
  bool operator==(const BigInt& other) const { return compare(other) == 0; }
  bool operator<(const BigInt& other) const { return compare(other) < 0; }

  [[nodiscard]] BigInt shifted_left(int bits) const;

  /// Non-negative gcd of the magnitudes (Euclid over divmod).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// True when the value fits an __int128 (and writes it).
  [[nodiscard]] bool fits_i128(__int128* out) const;

  [[nodiscard]] std::string to_string() const;
  /// Nearest double (diagnostics only; may overflow to +-inf).
  [[nodiscard]] double to_double() const;

 private:
  [[nodiscard]] int compare_magnitude(const BigInt& other) const;
  static BigInt add_magnitude(const BigInt& a, const BigInt& b, bool negative);
  /// |a| - |b|, requires |a| >= |b|.
  static BigInt sub_magnitude(const BigInt& a, const BigInt& b, bool negative);
  void trim();

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  ///< little-endian, no leading zeros
};

/// Exact rational number; see the file comment for the representation.
class Rational {
 public:
  Rational() = default;
  Rational(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : num_(value), den_(1) {}
  /// num/den in small representation; REQUIREs den != 0.
  Rational(std::int64_t num, std::int64_t den);

  /// Exact conversion of a finite double (REQUIREs finiteness).
  static Rational from_double(double value);

  [[nodiscard]] int sign() const;
  [[nodiscard]] bool is_zero() const { return sign() == 0; }
  [[nodiscard]] Rational negated() const;

  [[nodiscard]] Rational operator+(const Rational& other) const;
  [[nodiscard]] Rational operator-(const Rational& other) const;
  [[nodiscard]] Rational operator*(const Rational& other) const;
  /// REQUIREs a non-zero divisor.
  [[nodiscard]] Rational operator/(const Rational& other) const;
  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }

  /// Three-way compare via cross multiplication (denominators positive).
  [[nodiscard]] int compare(const Rational& other) const;
  bool operator==(const Rational& other) const { return compare(other) == 0; }
  bool operator!=(const Rational& other) const { return compare(other) != 0; }
  bool operator<(const Rational& other) const { return compare(other) < 0; }
  bool operator<=(const Rational& other) const { return compare(other) <= 0; }
  bool operator>(const Rational& other) const { return compare(other) > 0; }
  bool operator>=(const Rational& other) const { return compare(other) >= 0; }

  /// Largest integer <= value / smallest integer >= value, as a Rational.
  [[nodiscard]] Rational floor() const;
  [[nodiscard]] Rational ceil() const;
  [[nodiscard]] bool is_integer() const;

  /// True when this value ever left the __int128 fast path (test hook).
  [[nodiscard]] bool is_promoted() const { return big_; }

  /// "num/den" (or just "num" for integers), exact.
  [[nodiscard]] std::string to_string() const;
  /// Nearest double (diagnostics only).
  [[nodiscard]] double to_double() const;

 private:
  Rational(BigInt num, BigInt den);  ///< normalizes and maybe demotes
  static Rational make_small(__int128 num, __int128 den);
  [[nodiscard]] BigInt big_num() const;
  [[nodiscard]] BigInt big_den() const;

  bool big_ = false;
  __int128 num_ = 0;  ///< small representation; den_ > 0, gcd-reduced
  __int128 den_ = 1;
  BigInt bnum_, bden_;  ///< big representation when big_ is set
};

}  // namespace sparcs::support

#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "support/strings.hpp"

namespace sparcs::metrics {
namespace {

std::atomic<bool> g_enabled{false};

/// Formats a double as a JSON-safe number (JSON has no inf/nan literals).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  return str_format("%.12g", value);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Timer::record(double seconds) {
  if (!enabled()) return;
  if (!(seconds >= 0.0)) seconds = 0.0;  // clamp negatives and NaN
  const double us = seconds * 1e6;
  int bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<int>(std::floor(std::log2(us)));
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (count_ == 0 || seconds > max_) max_ = seconds;
  ++count_;
  sum_ += seconds;
  ++buckets_[bucket];
}

Timer::Stats Timer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.count = count_;
  s.sum_sec = sum_;
  s.min_sec = min_;
  s.max_sec = max_;
  s.buckets.assign(buckets_, buckets_ + kNumBuckets);
  return s;
}

void Timer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::fill(buckets_, buckets_ + kNumBuckets, 0);
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\"" << json_escape(counters[i].name)
       << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "\"" << json_escape(gauges[i].name)
       << "\": " << json_number(gauges[i].value);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"timers\": {";
  for (std::size_t i = 0; i < timers.size(); ++i) {
    const Timer::Stats& s = timers[i].stats;
    const double mean = s.count > 0 ? s.sum_sec / static_cast<double>(s.count)
                                    : 0.0;
    os << (i ? ",\n    " : "\n    ") << "\"" << json_escape(timers[i].name)
       << "\": {\"count\": " << s.count << ", \"sum_sec\": "
       << json_number(s.sum_sec) << ", \"min_sec\": " << json_number(s.min_sec)
       << ", \"max_sec\": " << json_number(s.max_sec)
       << ", \"mean_sec\": " << json_number(mean)
       << ", \"buckets_log2_us\": [";
    bool first = true;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      os << (first ? "" : ", ") << "[" << b << ", " << s.buckets[b] << "]";
      first = false;
    }
    os << "]}";
  }
  os << (timers.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : counters_) {
    if (entry.name == name) return *entry.metric;
  }
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : gauges_) {
    if (entry.name == name) return *entry.metric;
  }
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : timers_) {
    if (entry.name == name) return *entry.metric;
  }
  timers_.push_back({name, std::make_unique<Timer>()});
  return *timers_.back().metric;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snap.counters.push_back({entry.name, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.metric->value()});
  }
  snap.timers.reserve(timers_.size());
  for (const auto& entry : timers_) {
    snap.timers.push_back({entry.name, entry.metric->stats()});
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : counters_) entry.metric->reset();
  for (const auto& entry : gauges_) entry.metric->reset();
  for (const auto& entry : timers_) entry.metric->reset();
}

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: handles
  return *instance;                            // must outlive all callers
}

ScopedTimer::ScopedTimer(Timer& timer) : timer_(&timer) {
  if (enabled()) start_ns_ = monotonic_ns();
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ != 0) {
    timer_->record(static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
  }
}

}  // namespace sparcs::metrics

#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "support/report_writer.hpp"
#include "support/strings.hpp"

namespace sparcs::metrics {
namespace {

std::atomic<bool> g_enabled{false};

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Timer::record(double seconds) {
  if (!enabled()) return;
  if (!(seconds >= 0.0)) seconds = 0.0;  // clamp negatives and NaN
  const double us = seconds * 1e6;
  int bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<int>(std::floor(std::log2(us)));
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (count_ == 0 || seconds > max_) max_ = seconds;
  ++count_;
  sum_ += seconds;
  ++buckets_[bucket];
}

Timer::Stats Timer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.count = count_;
  s.sum_sec = sum_;
  s.min_sec = min_;
  s.max_sec = max_;
  s.buckets.assign(buckets_, buckets_ + kNumBuckets);
  return s;
}

void Timer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::fill(buckets_, buckets_ + kNumBuckets, 0);
}

std::string MetricsSnapshot::to_json() const {
  report::ReportWriter w;
  w.begin_object();
  w.field("epoch", static_cast<std::int64_t>(epoch));
  w.begin_object("counters");
  for (const auto& counter : counters) {
    w.field(counter.name, counter.value);
  }
  w.end_object();
  w.begin_object("gauges");
  for (const auto& gauge : gauges) {
    // Gauges can legitimately hold inf; the shared writer's sentinel keeps
    // the document parseable.
    w.field(gauge.name, std::isfinite(gauge.value) ? gauge.value : 0.0);
  }
  w.end_object();
  w.begin_object("timers");
  for (const auto& timer : timers) {
    const Timer::Stats& s = timer.stats;
    const double mean =
        s.count > 0 ? s.sum_sec / static_cast<double>(s.count) : 0.0;
    w.begin_object(timer.name);
    w.field("count", s.count);
    w.field("sum_sec", s.sum_sec);
    w.field("min_sec", s.min_sec);
    w.field("max_sec", s.max_sec);
    w.field("mean_sec", mean);
    w.begin_array("buckets_log2_us");
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      w.begin_array();
      w.element(static_cast<std::int64_t>(b));
      w.element(s.buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : counters_) {
    if (entry.name == name) return *entry.metric;
  }
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : gauges_) {
    if (entry.name == name) return *entry.metric;
  }
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : timers_) {
    if (entry.name == name) return *entry.metric;
  }
  timers_.push_back({name, std::make_unique<Timer>()});
  return *timers_.back().metric;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.epoch = epoch_.load(std::memory_order_relaxed);
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snap.counters.push_back({entry.name, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.metric->value()});
  }
  snap.timers.reserve(timers_.size());
  for (const auto& entry : timers_) {
    snap.timers.push_back({entry.name, entry.metric->stats()});
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Bump the epoch first: a consumer diffing a pre-reset snapshot against a
  // post-reset one sees a changed epoch no matter how the stores interleave
  // with its second snapshot (which serializes on mu_ anyway).
  epoch_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& entry : counters_) entry.metric->reset();
  for (const auto& entry : gauges_) entry.metric->reset();
  for (const auto& entry : timers_) entry.metric->reset();
}

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: handles
  return *instance;                            // must outlive all callers
}

ScopedTimer::ScopedTimer(Timer& timer) : timer_(&timer) {
  if (enabled()) start_ns_ = monotonic_ns();
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ != 0) {
    timer_->record(static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
  }
}

}  // namespace sparcs::metrics

// Crash-consistent artifact writes. Every file the system emits (reports,
// traces, checkpoints) goes through write_file_atomic(): the contents are
// written to a temporary sibling, fsync'd, and renamed over the target, so a
// crash or power cut mid-write leaves either the previous version or the new
// one — never a truncated hybrid. Failures (full disk, bad path, permission)
// are reported to the caller instead of silently producing a short file.
//
// For artifacts that are *read back* by the system (the sweep checkpoint),
// rename alone is not enough: the previous version may itself be damaged by
// an unrelated fault, and a resume must never trust a torn or bit-flipped
// snapshot. seal_json_with_crc() embeds a CRC32 of the serialized document as
// its final JSON field ("crc32"), keeping the file a single valid JSON
// document (external tools can still parse it) while unseal_json_with_crc()
// refuses any byte-level damage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sparcs::atomicfile {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Writes `contents` to `path` via temp file + fsync + rename. Returns false
/// (and fills *error when given) on any failure; the target file is never
/// left half-written.
bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error = nullptr);

/// Whole-file read; nullopt when the file cannot be opened or read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Appends `,"crc32":"xxxxxxxx"` as the final field of `json_object` (which
/// must be a serialized non-empty JSON object ending in '}'). The CRC covers
/// every byte before the appended field, so any later corruption — including
/// truncation — is detectable while the sealed text stays one valid JSON
/// document.
[[nodiscard]] std::string seal_json_with_crc(const std::string& json_object);

/// Verifies a sealed document and returns the original object (the seal
/// stripped). nullopt — with a reason in *error — when the trailer is
/// missing, malformed, or the CRC does not match the bytes on disk.
[[nodiscard]] std::optional<std::string> unseal_json_with_crc(
    const std::string& text, std::string* error = nullptr);

}  // namespace sparcs::atomicfile

// Minimal JSON document parser (no external deps), grown for the artifacts
// the system must *read back*: the crash-recovery checkpoint. Parses one
// complete document into an owning Value tree with order-preserving objects;
// malformed input returns a positioned error instead of throwing, so a
// corrupted file on disk degrades to "reject and start fresh" rather than an
// aborted process.
//
// Deliberately small: UTF-8 is passed through verbatim (\uXXXX escapes are
// decoded for the basic plane), numbers are doubles, and a recursion cap
// bounds hostile nesting. This is a reader for our own writer's output plus
// defensive validation — not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sparcs::json {

/// One parsed JSON value. A tagged struct rather than std::variant so the
/// accessors can return cheap defaults for schema-tolerant reading.
class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(number_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  [[nodiscard]] const std::vector<Value>& array() const { return array_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& object()
      const {
    return object_;
  }

  /// Member lookup (first match); nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience typed member readers tolerating an absent key.
  [[nodiscard]] double member_double(std::string_view key,
                                     double fallback = 0.0) const;
  [[nodiscard]] std::int64_t member_int(std::string_view key,
                                        std::int64_t fallback = 0) const;
  [[nodiscard]] bool member_bool(std::string_view key,
                                 bool fallback = false) const;
  [[nodiscard]] std::string member_string(std::string_view key,
                                          std::string fallback = "") const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

struct ParseResult {
  bool ok = false;
  Value value;
  /// Human-readable reason with a byte offset, e.g. "offset 12: expected ':'".
  std::string error;
};

/// Parses exactly one JSON document (trailing whitespace allowed).
[[nodiscard]] ParseResult parse(std::string_view text);

}  // namespace sparcs::json

#include "support/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace sparcs::failpoint {
namespace {

std::string trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t");
  const std::size_t end = text.find_last_not_of(" \t");
  if (begin == std::string::npos) return "";
  return text.substr(begin, end - begin + 1);
}

struct Site {
  Spec spec;
  int hits = 0;      ///< evaluations since armed
  int triggers = 0;  ///< times the site actually fired
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
};

Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

/// Fast path: number of currently armed sites; 0 short-circuits should_fail
/// without taking the registry lock (failpoint builds still run the full
/// test suite, so unarmed sites must stay cheap).
std::atomic<int> armed_count{0};

void parse_env_spec(const std::string& entry) {
  const std::size_t eq = entry.find('=');
  std::string name = trim(eq == std::string::npos ? entry : entry.substr(0, eq));
  if (name.empty()) return;
  Spec spec;
  if (eq != std::string::npos) {
    const std::string count = trim(entry.substr(eq + 1));
    spec.max_hits = std::atoi(count.c_str());
    if (spec.max_hits <= 0) spec.max_hits = -1;
  }
  arm(name, spec);
}

}  // namespace

void arm(const std::string& name, Spec spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const bool existed = reg.sites.count(name) > 0;
  reg.sites[name] = Site{spec, 0, 0};
  if (!existed) armed_count.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.sites.erase(name) > 0) {
    armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  armed_count.fetch_sub(static_cast<int>(reg.sites.size()),
                        std::memory_order_relaxed);
  reg.sites.clear();
}

bool should_fail(const std::string& name, double* stall_sec) {
  if (stall_sec != nullptr) *stall_sec = 0.0;
  arm_from_env();
  if (armed_count.load(std::memory_order_relaxed) == 0) return false;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  if (it == reg.sites.end()) return false;
  Site& site = it->second;
  const int hit = site.hits++;
  if (hit < site.spec.skip) return false;
  if (site.spec.max_hits >= 0 && site.triggers >= site.spec.max_hits) {
    return false;
  }
  ++site.triggers;
  if (stall_sec != nullptr) *stall_sec = site.spec.stall_sec;
  return true;
}

int trigger_count(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  return it == reg.sites.end() ? 0 : it->second.triggers;
}

void arm_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("SPARCS_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    std::string entry;
    for (const char* p = env;; ++p) {
      if (*p == ',' || *p == ';' || *p == '\0') {
        parse_env_spec(entry);
        entry.clear();
        if (*p == '\0') break;
      } else {
        entry += *p;
      }
    }
  });
}

}  // namespace sparcs::failpoint

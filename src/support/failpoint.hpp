// Failpoint framework: named failure sites compiled into debug/CI builds so
// the fault-injection suite can force the rare paths (simplex numerical
// blow-up, LP cycling, worker-thread stalls, allocation failure, solve
// timeout) that production traffic only hits under load.
//
// A site is a string name evaluated through SPARCS_FAILPOINT(name). In
// regular builds the macro is a compile-time `false` with zero overhead; when
// the build defines SPARCS_ENABLE_FAILPOINTS (CMake option
// -DSPARCS_ENABLE_FAILPOINTS=ON) the site consults a process-wide registry.
// Sites are armed programmatically (failpoint::arm) or through the
// SPARCS_FAILPOINTS environment variable:
//
//   SPARCS_FAILPOINTS="milp.simplex.blowup=1,milp.bnb.worker_stall"
//
// where `name` alone arms a site for every hit and `name=N` arms it for the
// first N hits only. All operations are thread-safe: sites fire from solver
// worker threads.
#pragma once

#include <string>

namespace sparcs::failpoint {

#if defined(SPARCS_ENABLE_FAILPOINTS)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// How an armed site behaves.
struct Spec {
  /// Ignore this many hits before the site starts firing.
  int skip = 0;
  /// Fire at most this many times, then go inert (-1 = unlimited).
  int max_hits = -1;
  /// For stall sites: how long the site should block when it fires.
  double stall_sec = 0.0;
};

/// Arms `name`; replaces any previous arming (and resets its counters).
void arm(const std::string& name, Spec spec = {});

/// Disarms `name` (no-op when not armed).
void disarm(const std::string& name);

/// Disarms every site and forgets all counters (test teardown).
void disarm_all();

/// Evaluates the site: counts the hit and reports whether it fires now.
/// When `stall_sec` is non-null it receives the armed stall duration (0 when
/// the site does not fire or stalls are not requested).
bool should_fail(const std::string& name, double* stall_sec = nullptr);

/// How many times the site has fired since it was armed.
[[nodiscard]] int trigger_count(const std::string& name);

/// Parses SPARCS_FAILPOINTS and arms the listed sites. Called lazily by the
/// first should_fail(); safe to call again (idempotent per process).
void arm_from_env();

}  // namespace sparcs::failpoint

#if defined(SPARCS_ENABLE_FAILPOINTS)
#define SPARCS_FAILPOINT(name) (::sparcs::failpoint::should_fail(name))
#define SPARCS_FAILPOINT_STALL(name, out_sec) \
  (::sparcs::failpoint::should_fail(name, out_sec))
#else
#define SPARCS_FAILPOINT(name) (false)
#define SPARCS_FAILPOINT_STALL(name, out_sec) (false)
#endif

// Small string/formatting helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace sparcs {

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements with the separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// Formats a double trimming trailing zeros ("1.5", "42", "0.125").
std::string trim_double(double value, int max_decimals = 6);

/// True when `text` starts with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

}  // namespace sparcs

// Deterministic random number generation.
//
// All randomized workload generators and property tests use SplitMix64-seeded
// xoshiro256** so that runs are reproducible from a single 64-bit seed across
// platforms (unlike std::mt19937 + distribution objects, whose output is not
// specified identically across standard libraries for all distributions).
#pragma once

#include <cstdint>
#include <vector>

namespace sparcs {

/// xoshiro256** pseudo-random generator with SplitMix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit draw (also satisfies UniformRandomBitGenerator).
  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p);

  /// Picks a uniformly random index in [0, size). Requires size > 0.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace sparcs

#include "support/telemetry.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/metrics.hpp"
#include "support/report_writer.hpp"

namespace sparcs::telemetry {
namespace {

std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_next_correlation{1};
thread_local std::uint64_t t_correlation = 0;

/// Monotonic microseconds anchored at first use; shared by every timestamp
/// this file produces so solve elapsed times and sampler t_sec agree.
std::uint64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            anchor)
          .count());
}

// -- live solve table -------------------------------------------------------

LiveSolve g_live[kLiveSolveSlots];
std::atomic<std::int64_t> g_solves_completed{0};
std::atomic<std::int64_t> g_slots_exhausted{0};

// -- pipeline state ---------------------------------------------------------

std::atomic<const char*> g_stage{nullptr};  ///< string literal or null
std::atomic<int> g_stage_n{0};
std::atomic<double> g_best_latency{0.0};
std::atomic<bool> g_has_best{false};
std::atomic<int> g_best_n{0};
std::atomic<bool> g_degraded{false};

// -- search tree ------------------------------------------------------------

std::atomic<bool> g_tree_active{false};
std::atomic<std::int64_t> g_tree_next_id{0};

struct TreeState {
  std::mutex mu;
  std::deque<TreeNode> nodes;
  std::size_t capacity = 1 << 16;
  std::int64_t recorded = 0;
  std::int64_t evicted = 0;
};

TreeState& tree_state() {
  static TreeState* state = new TreeState;  // leaked: immortal
  return *state;
}

/// Copies the ring and re-labels interior nodes whose children are absent
/// from the dump (evicted, or never explored because a limit fired) as
/// kBudget, so every non-root node either explains its pruning or has
/// children present.
std::vector<TreeNode> dump_nodes(std::int64_t* recorded, std::int64_t* evicted,
                                 std::size_t* capacity) {
  TreeState& state = tree_state();
  std::vector<TreeNode> nodes;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    nodes.assign(state.nodes.begin(), state.nodes.end());
    *recorded = state.recorded;
    *evicted = state.evicted;
    *capacity = state.capacity;
  }
  std::unordered_set<std::int64_t> parents;
  parents.reserve(nodes.size());
  for (const TreeNode& node : nodes) {
    if (node.parent >= 0) parents.insert(node.parent);
  }
  for (TreeNode& node : nodes) {
    if (node.kind == NodeKind::kBranched && parents.count(node.id) == 0) {
      node.kind = NodeKind::kBudget;
    }
  }
  return nodes;
}

// -- sampler ----------------------------------------------------------------

/// Serializes every record written to the JSONL sink (sampler thread,
/// stage-transition samples from the pipeline thread, convergence records)
/// and guards the sink/progress pointers themselves.
std::mutex g_sink_mu;
std::ostream* g_sink = nullptr;
std::ostream* g_progress = nullptr;
bool g_include_metrics = true;
milp::CancelToken g_sampler_cancel;
std::uint64_t g_sampler_start_us = 0;
std::int64_t g_samples = 0;

struct SamplerThread {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop_requested = false;
  double interval_sec = 0.2;
  bool active_before = false;  ///< telemetry flag predating this sampler
};

SamplerThread& sampler_thread() {
  static SamplerThread* thread = new SamplerThread;  // leaked: immortal
  return *thread;
}

double sink_elapsed_sec() {
  return static_cast<double>(now_us() - g_sampler_start_us) / 1e6;
}

/// Writes one "sample" record. Caller must NOT hold g_sink_mu.
void emit_sample(const char* trigger) {
  // Gather the expensive bits before taking the sink lock.
  const MemoryStatus mem = read_memory_status();
  std::string metrics_json;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_sink == nullptr) return;
    if (g_include_metrics && metrics::enabled()) {
      metrics_json = metrics::registry().snapshot().to_json();
    }
    report::ReportWriter w;
    w.begin_object();
    w.field("type", "sample");
    w.field("t_sec", sink_elapsed_sec());
    w.field("trigger", trigger);
    const char* stage = g_stage.load(std::memory_order_relaxed);
    w.field("stage", stage != nullptr ? stage : "idle");
    w.field("N", g_stage_n.load(std::memory_order_relaxed));
    if (g_has_best.load(std::memory_order_relaxed)) {
      w.field("best_latency_ns", g_best_latency.load(std::memory_order_relaxed));
      w.field("best_n", g_best_n.load(std::memory_order_relaxed));
    }
    w.field("degraded", g_degraded.load(std::memory_order_relaxed));
    if (g_sampler_cancel.cancelled()) w.field("cancelled", true);
    w.field("solves_completed",
            g_solves_completed.load(std::memory_order_relaxed));
    const std::int64_t exhausted =
        g_slots_exhausted.load(std::memory_order_relaxed);
    if (exhausted > 0) w.field("live_solve_slots_exhausted", exhausted);
    w.field("rss_kb", mem.rss_kb);
    w.field("rss_peak_kb", mem.rss_peak_kb);
    w.begin_array("solves");
    const std::uint64_t now = now_us();
    for (LiveSolve& slot : g_live) {
      const std::uint64_t corr =
          slot.correlation.load(std::memory_order_acquire);
      if (corr == 0) continue;
      w.begin_object();
      w.field("corr", static_cast<std::int64_t>(corr));
      const std::uint64_t start = slot.start_us.load(std::memory_order_relaxed);
      w.field("elapsed_sec",
              static_cast<double>(now > start ? now - start : 0) / 1e6);
      w.field("nodes", slot.nodes.load(std::memory_order_relaxed));
      w.field("open_nodes", slot.open_nodes.load(std::memory_order_relaxed));
      w.field("lp_iterations",
              slot.lp_iterations.load(std::memory_order_relaxed));
      w.field("incumbent_updates",
              slot.incumbent_updates.load(std::memory_order_relaxed));
      const bool has_inc = slot.has_incumbent.load(std::memory_order_relaxed);
      const bool has_bound = slot.has_bound.load(std::memory_order_relaxed);
      const double inc = slot.incumbent.load(std::memory_order_relaxed);
      const double bound = slot.best_bound.load(std::memory_order_relaxed);
      if (has_inc) w.field("incumbent", inc);
      if (has_bound && std::isfinite(bound)) w.field("bound", bound);
      if (has_inc && has_bound && std::isfinite(bound)) {
        w.field("gap", std::fabs(inc - bound) /
                           std::max(1e-9, std::fabs(inc)));
      }
      w.end_object();
    }
    w.end_array();
    if (!metrics_json.empty()) w.raw_field("metrics", metrics_json);
    w.end_object();
    *g_sink << w.str() << '\n';
    g_sink->flush();
    ++g_samples;
    if (g_progress != nullptr) {
      const char* progress_stage = stage != nullptr ? stage : "idle";
      char line[256];
      if (g_has_best.load(std::memory_order_relaxed)) {
        std::snprintf(line, sizeof(line),
                      "\r[%s N=%d] best=%.0f ns solves=%lld elapsed=%.1fs   ",
                      progress_stage, g_stage_n.load(std::memory_order_relaxed),
                      g_best_latency.load(std::memory_order_relaxed),
                      static_cast<long long>(
                          g_solves_completed.load(std::memory_order_relaxed)),
                      sink_elapsed_sec());
      } else {
        std::snprintf(line, sizeof(line),
                      "\r[%s N=%d] best=- solves=%lld elapsed=%.1fs   ",
                      progress_stage, g_stage_n.load(std::memory_order_relaxed),
                      static_cast<long long>(
                          g_solves_completed.load(std::memory_order_relaxed)),
                      sink_elapsed_sec());
      }
      *g_progress << line;
      g_progress->flush();
    }
  }
}

/// Writes the small lifecycle records ("start" / "final"). Caller must NOT
/// hold g_sink_mu.
void emit_lifecycle(const char* type, double interval_sec) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink == nullptr) return;
  report::ReportWriter w;
  w.begin_object();
  w.field("type", type);
  w.field("t_sec", sink_elapsed_sec());
  if (interval_sec > 0) w.field("interval_sec", interval_sec);
  w.field("degraded", g_degraded.load(std::memory_order_relaxed));
  if (g_sampler_cancel.cancelled()) w.field("cancelled", true);
  w.field("samples", g_samples);
  w.field("solves_completed",
          g_solves_completed.load(std::memory_order_relaxed));
  w.end_object();
  *g_sink << w.str() << '\n';
  g_sink->flush();
}

void sampler_loop() {
  SamplerThread& st = sampler_thread();
  std::unique_lock<std::mutex> lock(st.mu);
  while (!st.stop_requested) {
    const auto interval =
        std::chrono::duration<double>(std::max(0.001, st.interval_sec));
    st.cv.wait_for(lock, interval,
                   [&st] { return st.stop_requested; });
    if (st.stop_requested) break;
    lock.unlock();
    emit_sample("interval");
    lock.lock();
  }
}

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

void set_active(bool on) { g_active.store(on, std::memory_order_relaxed); }

std::uint64_t next_correlation_id() {
  return g_next_correlation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_correlation_id() { return t_correlation; }

CorrelationScope::CorrelationScope(std::uint64_t id) : prev_(t_correlation) {
  t_correlation = id;
}

CorrelationScope::~CorrelationScope() { t_correlation = prev_; }

SolveScope::SolveScope(const char* /*what*/) {
  if (!active()) return;
  std::uint64_t id = t_correlation;
  if (id == 0) {
    id = next_correlation_id();
    prev_tls_ = t_correlation;
    t_correlation = id;
    swapped_tls_ = true;
  }
  id_ = id;
  for (LiveSolve& slot : g_live) {
    std::uint64_t expected = 0;
    // Acquire-release pairs with the release store in the destructor: a
    // thread that re-claims a slot sees every plain reset below it.
    if (slot.correlation.compare_exchange_strong(expected, id,
                                                 std::memory_order_acq_rel)) {
      slot.nodes.store(0, std::memory_order_relaxed);
      slot.open_nodes.store(0, std::memory_order_relaxed);
      slot.lp_iterations.store(0, std::memory_order_relaxed);
      slot.incumbent_updates.store(0, std::memory_order_relaxed);
      slot.incumbent.store(0.0, std::memory_order_relaxed);
      slot.has_incumbent.store(false, std::memory_order_relaxed);
      slot.best_bound.store(0.0, std::memory_order_relaxed);
      slot.has_bound.store(false, std::memory_order_relaxed);
      slot.start_us.store(now_us(), std::memory_order_relaxed);
      slot_ = &slot;
      break;
    }
  }
  if (slot_ == nullptr) {
    // Table full: degrade gracefully — the scope still carries an id
    // (correlation, logs and spans keep working), it just does not show up
    // in sample records. Account for the shortfall so operators can see it.
    g_slots_exhausted.fetch_add(1, std::memory_order_relaxed);
    static metrics::Counter& exhausted =
        metrics::registry().counter("telemetry.live_solve.slot_exhausted");
    exhausted.add();
  }
}

SolveScope::~SolveScope() {
  if (slot_ != nullptr) {
    slot_->correlation.store(0, std::memory_order_release);
    g_solves_completed.fetch_add(1, std::memory_order_relaxed);
  } else if (id_ != 0) {
    g_solves_completed.fetch_add(1, std::memory_order_relaxed);
  }
  if (swapped_tls_) t_correlation = prev_tls_;
}

std::int64_t solves_completed() {
  return g_solves_completed.load(std::memory_order_relaxed);
}

std::int64_t live_solve_slots_in_use() {
  std::int64_t in_use = 0;
  for (LiveSolve& slot : g_live) {
    if (slot.correlation.load(std::memory_order_acquire) != 0) ++in_use;
  }
  return in_use;
}

std::int64_t live_solve_slots_exhausted() {
  return g_slots_exhausted.load(std::memory_order_relaxed);
}

void set_stage(const char* stage, int num_partitions) {
  if (!active()) return;
  g_stage.store(stage, std::memory_order_relaxed);
  g_stage_n.store(num_partitions, std::memory_order_relaxed);
  // Synchronous record: guarantees >= 1 sample per stage however short the
  // stage or coarse the interval.
  emit_sample("stage");
}

void publish_best_latency(double latency_ns, int num_partitions) {
  if (!active()) return;
  g_best_latency.store(latency_ns, std::memory_order_relaxed);
  g_best_n.store(num_partitions, std::memory_order_relaxed);
  g_has_best.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink == nullptr) return;
  report::ReportWriter w;
  w.begin_object();
  w.field("type", "convergence");
  w.field("t_sec", sink_elapsed_sec());
  w.field("N", num_partitions);
  w.field("incumbent_latency_ns", latency_ns);
  w.field("corr", static_cast<std::int64_t>(t_correlation));
  w.end_object();
  *g_sink << w.str() << '\n';
  g_sink->flush();
}

void publish_degraded(bool degraded) {
  g_degraded.store(degraded, std::memory_order_relaxed);
}

void reset_pipeline() {
  g_stage.store(nullptr, std::memory_order_relaxed);
  g_stage_n.store(0, std::memory_order_relaxed);
  g_best_latency.store(0.0, std::memory_order_relaxed);
  g_has_best.store(false, std::memory_order_relaxed);
  g_best_n.store(0, std::memory_order_relaxed);
  g_degraded.store(false, std::memory_order_relaxed);
  g_solves_completed.store(0, std::memory_order_relaxed);
  g_slots_exhausted.store(0, std::memory_order_relaxed);
}

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kBranched:
      return "branched";
    case NodeKind::kIntegral:
      return "integral";
    case NodeKind::kPrunedBound:
      return "pruned_bound";
    case NodeKind::kPrunedInfeasible:
      return "pruned_infeasible";
    case NodeKind::kRejected:
      return "rejected";
    case NodeKind::kBudget:
      return "budget";
  }
  return "unknown";
}

bool tree_active() { return g_tree_active.load(std::memory_order_relaxed); }

void set_tree_active(bool on) {
  g_tree_active.store(on, std::memory_order_relaxed);
}

void set_tree_capacity(std::size_t cap) {
  TreeState& state = tree_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.capacity = std::max<std::size_t>(1, cap);
  while (state.nodes.size() > state.capacity) {
    state.nodes.pop_front();
    ++state.evicted;
  }
}

void tree_clear() {
  TreeState& state = tree_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.nodes.clear();
  state.recorded = 0;
  state.evicted = 0;
  g_tree_next_id.store(0, std::memory_order_relaxed);
}

std::int64_t tree_next_id() {
  return g_tree_next_id.fetch_add(1, std::memory_order_relaxed);
}

void tree_record(const TreeNode& node) {
  // Self-gating so direct callers pay one relaxed load while recording is
  // off; the solver additionally caches tree_active() once per solve.
  if (!tree_active()) return;
  TreeState& state = tree_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.nodes.push_back(node);
  ++state.recorded;
  while (state.nodes.size() > state.capacity) {
    state.nodes.pop_front();
    ++state.evicted;
  }
}

std::size_t tree_size() {
  TreeState& state = tree_state();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.nodes.size();
}

void write_tree_json(std::ostream& os) {
  std::int64_t recorded = 0;
  std::int64_t evicted = 0;
  std::size_t capacity = 0;
  const std::vector<TreeNode> nodes =
      dump_nodes(&recorded, &evicted, &capacity);
  report::ReportWriter w;
  w.begin_object();
  w.field("capacity", static_cast<std::int64_t>(capacity));
  w.field("recorded", recorded);
  w.field("evicted", evicted);
  w.begin_array("nodes");
  for (const TreeNode& node : nodes) {
    w.begin_object();
    w.field("id", node.id);
    w.field("parent", node.parent);
    w.field("depth", static_cast<std::int64_t>(node.depth));
    w.field("kind", to_string(node.kind));
    if (node.branch_var >= 0) {
      w.field("branch_var", static_cast<std::int64_t>(node.branch_var));
      w.field("branch_lb", node.branch_lb);
      w.field("branch_ub", node.branch_ub);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << w.str() << '\n';
}

void write_tree_dot(std::ostream& os) {
  std::int64_t recorded = 0;
  std::int64_t evicted = 0;
  std::size_t capacity = 0;
  const std::vector<TreeNode> nodes =
      dump_nodes(&recorded, &evicted, &capacity);
  os << "digraph search_tree {\n"
     << "  // recorded=" << recorded << " evicted=" << evicted << "\n"
     << "  node [shape=box, fontsize=10];\n";
  for (const TreeNode& node : nodes) {
    const char* color = "black";
    switch (node.kind) {
      case NodeKind::kIntegral:
        color = "green3";
        break;
      case NodeKind::kPrunedBound:
        color = "blue3";
        break;
      case NodeKind::kPrunedInfeasible:
        color = "red3";
        break;
      case NodeKind::kRejected:
        color = "orange3";
        break;
      case NodeKind::kBudget:
        color = "gray50";
        break;
      case NodeKind::kBranched:
        break;
    }
    os << "  n" << node.id << " [label=\"#" << node.id << " d" << node.depth;
    if (node.branch_var >= 0) {
      os << "\\nx" << node.branch_var << " in [" << node.branch_lb << ","
         << node.branch_ub << "]";
    }
    os << "\\n" << to_string(node.kind) << "\", color=" << color << "];\n";
    if (node.parent >= 0) {
      os << "  n" << node.parent << " -> n" << node.id << ";\n";
    }
  }
  os << "}\n";
}

bool start_sampler(const SamplerOptions& options) {
  if (options.sink == nullptr) return false;
  SamplerThread& st = sampler_thread();
  std::lock_guard<std::mutex> lifecycle(st.mu);
  if (st.running) return false;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    g_sink = options.sink;
    g_progress = options.progress;
    g_include_metrics = options.include_metrics;
    g_sampler_cancel = options.cancel;
    g_sampler_start_us = now_us();
    g_samples = 0;
  }
  st.interval_sec = options.interval_sec;
  st.stop_requested = false;
  st.active_before = active();
  set_active(true);
  emit_lifecycle("start", options.interval_sec);
  st.thread = std::thread(sampler_loop);
  st.running = true;
  return true;
}

void stop_sampler() {
  SamplerThread& st = sampler_thread();
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.running) return;
    st.stop_requested = true;
  }
  st.cv.notify_all();
  st.thread.join();
  // One last sample so the stream's trailing state (degraded flag, final
  // incumbent) is always observable, then the lifecycle summary.
  emit_sample("final");
  emit_lifecycle("final", 0.0);
  std::lock_guard<std::mutex> lifecycle(st.mu);
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_progress != nullptr) {
      *g_progress << '\n';
      g_progress->flush();
    }
    g_sink = nullptr;
    g_progress = nullptr;
    g_sampler_cancel = milp::CancelToken();
  }
  st.running = false;
  set_active(st.active_before);
}

bool sampler_running() {
  SamplerThread& st = sampler_thread();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.running;
}

void sample_now(const char* trigger) { emit_sample(trigger); }

MemoryStatus read_memory_status() {
  MemoryStatus status;
#ifdef __linux__
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    long long value = 0;
    if (std::sscanf(line.c_str(), "VmRSS: %lld kB", &value) == 1) {
      status.rss_kb = value;
    } else if (std::sscanf(line.c_str(), "VmHWM: %lld kB", &value) == 1) {
      status.rss_peak_kb = value;
    }
  }
#endif
  return status;
}

}  // namespace sparcs::telemetry

// Wall-clock stopwatch used for solver time limits and benchmark traces.
#pragma once

#include <chrono>

namespace sparcs {

/// Monotonic stopwatch; starts running at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed wall time in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed wall time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sparcs

// Error handling primitives for the SPARCS-TP libraries.
//
// Invariant violations and invalid arguments raise exceptions derived from
// sparcs::Error; recoverable solver outcomes (infeasible, limit reached, ...)
// are reported through status enums, never through exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace sparcs {

/// Base class of all exceptions thrown by SPARCS-TP.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes arguments that violate a documented precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is found broken (a bug in this library).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message);
}  // namespace detail

}  // namespace sparcs

/// Validates a documented precondition; throws InvalidArgumentError on failure.
#define SPARCS_REQUIRE(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::sparcs::detail::throw_check_failure("precondition", #cond, __FILE__,  \
                                            __LINE__, (msg));                 \
    }                                                                         \
  } while (false)

/// Validates an internal invariant; throws InternalError on failure.
#define SPARCS_CHECK(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::sparcs::detail::throw_check_failure("invariant", #cond, __FILE__,     \
                                            __LINE__, (msg));                 \
    }                                                                         \
  } while (false)

#include "support/error.hpp"

#include <sstream>
#include <string_view>

namespace sparcs::detail {

[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  if (std::string_view(kind) == "precondition") {
    throw InvalidArgumentError(os.str());
  }
  throw InternalError(os.str());
}

}  // namespace sparcs::detail

#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/baselines.hpp"
#include "core/bounds.hpp"
#include "core/partitioner.hpp"
#include "core/reduce_latency.hpp"
#include "core/refine_partitions.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/synthetic.hpp"

namespace sparcs::core {
namespace {

arch::Device ar_device(double ct_ns) {
  return arch::custom("ar_dev", 200, 64, ct_ns);
}

ReduceLatencyParams reduce_params(double delta) {
  ReduceLatencyParams params;
  params.budget.delta = delta;
  params.budget.solver.node_limit = 200000;
  params.budget.solver.time_limit_sec = 20.0;
  return params;
}

TEST(ReduceLatencyTest, FindsSolutionAndTightens) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  Trace trace;
  const int n = 3;
  const ReduceLatencyResult r =
      reduce_latency(g, dev, n, max_latency(g, dev, n),
                     min_latency(g, dev, n), reduce_params(20.0), trace);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.achieved_latency, 0.0);
  EXPECT_TRUE(validate_design(g, dev, *r.best).ok);
  ASSERT_GE(trace.size(), 2u);
  // Feasible iterations must be monotonically improving.
  double last = 1e30;
  for (const IterationRecord& row : trace) {
    if (row.outcome == IterationOutcome::kFeasible) {
      EXPECT_LT(row.achieved_latency, last);
      last = row.achieved_latency;
    }
  }
  EXPECT_DOUBLE_EQ(last, r.achieved_latency);
}

TEST(ReduceLatencyTest, InfeasibleBoundReturnsZero) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  // One partition cannot hold the whole filter (min total area 394 > 200).
  const arch::Device dev = ar_device(50);
  Trace trace;
  const ReduceLatencyResult r =
      reduce_latency(g, dev, 1, max_latency(g, dev, 1),
                     min_latency(g, dev, 1), reduce_params(20.0), trace);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_DOUBLE_EQ(r.achieved_latency, 0.0);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].outcome, IterationOutcome::kInfeasible);
}

TEST(ReduceLatencyTest, DeltaControlsIterationCount) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  const int n = 3;
  Trace coarse_trace, fine_trace;
  const ReduceLatencyResult coarse =
      reduce_latency(g, dev, n, max_latency(g, dev, n),
                     min_latency(g, dev, n), reduce_params(500.0),
                     coarse_trace);
  const ReduceLatencyResult fine =
      reduce_latency(g, dev, n, max_latency(g, dev, n),
                     min_latency(g, dev, n), reduce_params(10.0), fine_trace);
  ASSERT_TRUE(coarse.best.has_value());
  ASSERT_TRUE(fine.best.has_value());
  // A finer tolerance explores at least as much and never ends up worse.
  EXPECT_GE(fine_trace.size(), coarse_trace.size());
  EXPECT_LE(fine.achieved_latency, coarse.achieved_latency + 1e-9);
}

TEST(ReduceLatencyTest, RejectsNonPositiveDelta) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  Trace trace;
  EXPECT_THROW(reduce_latency(g, dev, 2, 1e4, 0, reduce_params(0.0), trace),
               InvalidArgumentError);
}

TEST(RefinePartitionsTest, SkipsInfeasibleBoundsThenSolves) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  RefinePartitionsParams params;
  params.alpha = 0;
  params.gamma = 1;
  params.budget.delta = 20.0;
  params.budget.solver.node_limit = 200000;
  const RefinePartitionsResult r = refine_partitions_bound(g, dev, params);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GE(r.best_num_partitions, min_area_partitions(g, dev));
  EXPECT_TRUE(validate_design(g, dev, *r.best).ok);
}

TEST(RefinePartitionsTest, LargeReconfigStopsAtLowerBound) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  // 10 ms reconfiguration: every extra partition costs more than any
  // possible execution-time gain, so after the first feasible N the
  // MinLatency(N+1) >= Da rule must stop the sweep.
  const arch::Device dev = ar_device(1e7);
  RefinePartitionsParams params;
  params.budget.delta = 20.0;
  const RefinePartitionsResult r = refine_partitions_bound(g, dev, params);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.stopped_by_lower_bound);
  // The best design sits at the first feasible partition bound (N = 2 is
  // area-infeasible for the AR filter despite the analytic bound, so the
  // sweep lands on 3) and never pays for an extra reconfiguration.
  int first_feasible_n = 0;
  for (const IterationRecord& row : r.trace) {
    if (row.outcome == IterationOutcome::kFeasible) {
      first_feasible_n = row.num_partitions;
      break;
    }
  }
  EXPECT_EQ(r.best_num_partitions, first_feasible_n);
  EXPECT_EQ(r.best_num_partitions, 3);
}

TEST(RefinePartitionsTest, SmallReconfigExploresLargerN) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  // Nearly free reconfiguration: relaxing N lets faster design points fit,
  // so the best N should exceed the minimum.
  const arch::Device dev = ar_device(1.0);
  RefinePartitionsParams params;
  params.budget.delta = 10.0;
  params.gamma = 1;
  const RefinePartitionsResult r = refine_partitions_bound(g, dev, params);
  ASSERT_TRUE(r.best.has_value());
  // N = 3 is the first feasible bound (N = 2 fails on area packing).
  const int n_first = 3;
  EXPECT_GT(r.best_num_partitions, n_first);

  // And the achieved latency must beat the best design at N = n_first.
  Trace trace;
  const ReduceLatencyResult at_min = reduce_latency(
      g, dev, n_first, max_latency(g, dev, n_first),
      min_latency(g, dev, n_first), reduce_params(10.0), trace);
  ASSERT_TRUE(at_min.best.has_value());
  EXPECT_LT(r.achieved_latency, at_min.achieved_latency);
}

TEST(PartitionerTest, EndToEndReportIsConsistent) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  PartitionerOptions options;
  options.budget.delta = 20.0;
  const PartitionerReport report = TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);
  ASSERT_TRUE(report.best.has_value());
  EXPECT_DOUBLE_EQ(report.achieved_latency, report.best->total_latency_ns);
  EXPECT_EQ(report.ilp_solves, static_cast<int>(report.trace.size()));
  EXPECT_EQ(report.n_min_lower, 2);
  EXPECT_EQ(report.n_min_upper, 3);
  EXPECT_DOUBLE_EQ(report.delta_used, 20.0);
}

TEST(PartitionerTest, DerivesDeltaFromFraction) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  PartitionerOptions options;
  options.budget.delta = 0.0;
  options.delta_fraction = 0.05;
  const PartitionerReport report = TemporalPartitioner(g, dev, options).run();
  const double expected =
      0.05 * max_latency(g, dev, min_area_partitions(g, dev));
  EXPECT_DOUBLE_EQ(report.delta_used, expected);
}

// The paper's Table-1 claim: on the AR filter the iterative procedure's
// result equals the ILP optimum. Checked across reconfiguration regimes.
class ArOptimalityTest : public ::testing::TestWithParam<double> {};

TEST_P(ArOptimalityTest, IterativeMatchesOptimal) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(GetParam());
  PartitionerOptions options;
  options.budget.delta = 5.0;  // tight tolerance: explore nearly everything
  options.gamma = 1;
  const PartitionerReport report = TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);

  const OptimalResult optimal = solve_optimal_over_range(g, dev, 0, 1);
  ASSERT_TRUE(optimal.best.has_value());
  EXPECT_NEAR(report.achieved_latency, optimal.latency_ns, 5.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(ReconfigRegimes, ArOptimalityTest,
                         ::testing::Values(1.0, 50.0, 500.0, 1e7));

// Property sweep: on random small graphs the iterative result is within
// delta of the exhaustive optimum whenever both exist.
class RandomGraphOptimalityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphOptimalityTest, IterativeWithinDeltaOfExhaustive) {
  workloads::RandomGraphOptions gopts;
  gopts.num_tasks = 6;
  gopts.num_layers = 3;
  gopts.num_design_points = 2;
  gopts.seed = GetParam();
  const graph::TaskGraph g = workloads::random_task_graph(gopts);
  const arch::Device dev = arch::custom("d", 260, 1000, 40);

  PartitionerOptions options;
  options.budget.delta = 25.0;
  options.gamma = 1;
  const PartitionerReport report = TemporalPartitioner(g, dev, options).run();

  const int n_hi = max_area_partitions(g, dev) + 1;
  const auto brute = exhaustive_optimal(g, dev, n_hi);
  if (!report.feasible) {
    // The iterative procedure only explores N in [Nmin+alpha, Nmax+gamma];
    // exhaustive search over the same cap must also fail.
    EXPECT_FALSE(brute.has_value());
    return;
  }
  ASSERT_TRUE(brute.has_value());
  EXPECT_TRUE(validate_design(g, dev, *report.best).ok);
  EXPECT_GE(report.achieved_latency, brute->total_latency_ns - 1e-6);
  EXPECT_LE(report.achieved_latency,
            brute->total_latency_ns + options.budget.delta + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphOptimalityTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace sparcs::core

// Deadline, watchdog and anytime-degradation tests: a tight deadline must
// return a degraded report promptly with a per-stage account, an inert or
// generous deadline must leave results identical to an unconstrained run,
// and the watchdog must force-cancel a run that overstays its grace.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "arch/device.hpp"
#include "core/deadline.hpp"
#include "core/partitioner.hpp"
#include "core/refine_partitions.hpp"
#include "core/search_budget.hpp"
#include "support/stopwatch.hpp"
#include "workloads/ar_filter.hpp"

namespace sparcs::core {
namespace {

arch::Device ar_device(double ct_ns) {
  return arch::custom("ar_dev", 200, 64, ct_ns);
}

PartitionerOptions slow_options() {
  // A fine tolerance forces many subdivision iterations per bound, so the
  // unconstrained run comfortably outlasts the tight deadlines below.
  PartitionerOptions options;
  options.budget.delta = 0.05;
  options.budget.solver.num_threads = 1;
  return options;
}

TEST(DeadlineTest, InertDeadlineNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.valid());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_sec()));
  EXPECT_TRUE(std::isinf(d.horizon_sec()));
}

TEST(DeadlineTest, ExpiresAfterHorizon) {
  const Deadline d = Deadline::after_seconds(0.02);
  EXPECT_TRUE(d.valid());
  EXPECT_LE(d.remaining_sec(), 0.02);
  EXPECT_DOUBLE_EQ(d.horizon_sec(), 0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.expired());
  EXPECT_LT(d.remaining_sec(), 0.0);
}

TEST(DeadlineTest, BudgetClampsSolverTimeLimit) {
  SearchBudget budget;
  budget.solver.time_limit_sec = 100.0;
  EXPECT_DOUBLE_EQ(budget.clamped_solver().time_limit_sec, 100.0);

  budget.deadline = Deadline::after_seconds(5.0);
  EXPECT_LE(budget.clamped_solver().time_limit_sec, 5.0);
  EXPECT_GT(budget.clamped_solver().time_limit_sec, 0.0);
  EXPECT_FALSE(budget.interrupted());

  // An already-expired deadline still yields a positive (floored) limit and
  // reports the run as interrupted.
  budget.deadline = Deadline::after_seconds(-1.0);
  EXPECT_TRUE(budget.interrupted());
  EXPECT_GT(budget.clamped_solver().time_limit_sec, 0.0);
}

TEST(DeadlineTest, WatchdogFiresPastGraceAndCancels) {
  const milp::CancelToken token = milp::CancelToken::create();
  const Deadline d = Deadline::after_seconds(0.01);
  DeadlineWatchdog watchdog(d, /*grace_sec=*/0.01, token);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(watchdog.fired());
  EXPECT_TRUE(token.cancelled());
}

TEST(DeadlineTest, WatchdogStandsDownOnDestruction) {
  const milp::CancelToken token = milp::CancelToken::create();
  {
    const Deadline d = Deadline::after_seconds(60.0);
    DeadlineWatchdog watchdog(d, 0.1, token);
    EXPECT_FALSE(watchdog.fired());
  }  // destroyed long before expiry: must not fire
  EXPECT_FALSE(token.cancelled());
}

TEST(DeadlineTest, DefaultGraceScalesWithHorizon) {
  EXPECT_GE(DeadlineWatchdog::default_grace_sec(Deadline::after_seconds(0.1)),
            0.05);
  EXPECT_NEAR(
      DeadlineWatchdog::default_grace_sec(Deadline::after_seconds(10.0)), 1.0,
      1e-9);
}

TEST(DeadlineDegradationTest, TightDeadlineReturnsDegradedReportPromptly) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  PartitionerOptions options = slow_options();
  options.budget.deadline = Deadline::after_seconds(0.02);
  Stopwatch stopwatch;
  const PartitionerReport report =
      TemporalPartitioner(g, dev, options).run();
  // Generous ceiling (deadline + grace + slack); the point is that the run
  // did not last anywhere near the unconstrained sweep.
  EXPECT_LT(stopwatch.seconds(), 2.0);
  EXPECT_TRUE(report.degraded);
  ASSERT_FALSE(report.stages.empty());
  // The account must cover a contiguous range of bounds: anything after the
  // interruption point is recorded as skipped, nothing is silently missing.
  bool saw_unfinished = false;
  for (const StageAccount& stage : report.stages) {
    if (stage.status != StageStatus::kProbed) saw_unfinished = true;
    if (stage.status == StageStatus::kSkipped) {
      EXPECT_EQ(stage.solves, 0);
      EXPECT_DOUBLE_EQ(stage.seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw_unfinished);
  // Any anytime incumbent handed back must be a valid design (the
  // partitioner re-validates it; reaching here means it passed).
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
}

TEST(DeadlineDegradationTest, GenerousDeadlineMatchesUnconstrainedRun) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);

  const PartitionerReport unconstrained =
      TemporalPartitioner(g, dev, slow_options()).run();
  ASSERT_TRUE(unconstrained.feasible);
  EXPECT_FALSE(unconstrained.degraded);
  EXPECT_FALSE(unconstrained.watchdog_fired);

  PartitionerOptions with_deadline = slow_options();
  with_deadline.budget.deadline = Deadline::after_seconds(300.0);
  const PartitionerReport report =
      TemporalPartitioner(g, dev, with_deadline).run();
  ASSERT_TRUE(report.feasible);
  EXPECT_FALSE(report.degraded);
  EXPECT_FALSE(report.watchdog_fired);
  EXPECT_DOUBLE_EQ(report.achieved_latency, unconstrained.achieved_latency);
  EXPECT_EQ(report.best_num_partitions, unconstrained.best_num_partitions);
  EXPECT_EQ(report.trace.size(), unconstrained.trace.size());
  ASSERT_EQ(report.stages.size(), unconstrained.stages.size());
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    EXPECT_EQ(report.stages[i].num_partitions,
              unconstrained.stages[i].num_partitions);
    EXPECT_EQ(report.stages[i].status, unconstrained.stages[i].status);
    EXPECT_EQ(report.stages[i].solves, unconstrained.stages[i].solves);
  }
}

TEST(DeadlineDegradationTest, StageAccountIsConsistentWhenUnconstrained) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  RefinePartitionsParams params;
  params.budget = slow_options().budget;
  const RefinePartitionsResult result =
      refine_partitions_bound(g, dev, params);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_FALSE(result.degraded);
  ASSERT_FALSE(result.stages.empty());
  int total_solves = 0;
  for (const StageAccount& stage : result.stages) {
    EXPECT_EQ(stage.status, StageStatus::kProbed) << "N=" << stage.num_partitions;
    total_solves += stage.solves;
  }
  EXPECT_EQ(total_solves, result.ilp_solves);
}

TEST(DeadlineDegradationTest, PreCancelledBudgetDegradesImmediately) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = ar_device(50);
  RefinePartitionsParams params;
  params.budget = slow_options().budget;
  params.budget.solver.cancel = milp::CancelToken::create();
  params.budget.solver.cancel.request_cancel();
  const RefinePartitionsResult result =
      refine_partitions_bound(g, dev, params);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.best.has_value());
}

TEST(DeadlineDegradationTest, StageStatusNamesAreStable) {
  EXPECT_EQ(to_string(StageStatus::kProbed), "probed");
  EXPECT_EQ(to_string(StageStatus::kCutShort), "cut-short");
  EXPECT_EQ(to_string(StageStatus::kSkipped), "skipped");
}

}  // namespace
}  // namespace sparcs::core

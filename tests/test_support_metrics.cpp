// Tests for the metrics registry (support/metrics.hpp) and the trace spans
// (support/span.hpp): registry semantics, snapshot JSON well-formedness,
// timer monotonicity, concurrent counter increments, and the Chrome
// trace-event shape of the span export.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/span.hpp"

namespace sparcs {
namespace {

// --- a minimal JSON well-formedness checker (no external deps) -------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[start + (text_[start] == '-')]));
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

// Every test leaves collection disabled and the stores clean, matching the
// process default, so suites sharing the process never observe stale state.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(false);
    metrics::registry().reset();
    trace::set_enabled(false);
    trace::clear();
  }
  void TearDown() override { SetUp(); }
};

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json("{}"));
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e4],"b":{"c":"x\n"},"d":null})"));
  EXPECT_TRUE(is_valid_json("[]"));
  EXPECT_FALSE(is_valid_json(""));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json(R"({"a":})"));
  EXPECT_FALSE(is_valid_json("[1,2,]"));
  EXPECT_FALSE(is_valid_json("{} trailing"));
}

TEST_F(MetricsTest, RegistryReturnsStableHandles) {
  metrics::Counter& a = metrics::registry().counter("test.stable");
  metrics::Counter& b = metrics::registry().counter("test.stable");
  EXPECT_EQ(&a, &b);
  metrics::Counter& c = metrics::registry().counter("test.other");
  EXPECT_NE(&a, &c);
  metrics::Timer& t1 = metrics::registry().timer("test.stable");
  metrics::Timer& t2 = metrics::registry().timer("test.stable");
  EXPECT_EQ(&t1, &t2);  // same name, different kind: fine, separate stores
}

TEST_F(MetricsTest, DisabledCollectionIsANoOp) {
  metrics::Counter& counter = metrics::registry().counter("test.noop");
  metrics::Gauge& gauge = metrics::registry().gauge("test.noop");
  metrics::Timer& timer = metrics::registry().timer("test.noop");
  counter.add(7);
  gauge.set(3.5);
  timer.record(0.25);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(timer.stats().count, 0);
}

TEST_F(MetricsTest, EnabledCollectionRecords) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::registry().counter("test.on");
  metrics::Gauge& gauge = metrics::registry().gauge("test.on");
  counter.add();
  counter.add(41);
  gauge.set(-2.5);
  EXPECT_EQ(counter.value(), 42);
  EXPECT_EQ(gauge.value(), -2.5);
}

TEST_F(MetricsTest, ResetZeroesButKeepsHandles) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::registry().counter("test.reset");
  counter.add(5);
  metrics::registry().reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(&counter, &metrics::registry().counter("test.reset"));
  counter.add(1);
  EXPECT_EQ(counter.value(), 1);
}

TEST_F(MetricsTest, TimerStatsAreConsistent) {
  metrics::set_enabled(true);
  metrics::Timer& timer = metrics::registry().timer("test.timer");
  const double durations[] = {1e-6, 5e-4, 0.002, 0.002};
  for (const double d : durations) timer.record(d);
  const metrics::Timer::Stats stats = timer.stats();
  EXPECT_EQ(stats.count, 4);
  EXPECT_NEAR(stats.sum_sec, 1e-6 + 5e-4 + 0.004, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min_sec, 1e-6);
  EXPECT_DOUBLE_EQ(stats.max_sec, 0.002);
  EXPECT_LE(stats.min_sec, stats.max_sec);
  ASSERT_EQ(static_cast<int>(stats.buckets.size()),
            metrics::Timer::kNumBuckets);
  const std::int64_t bucket_total = std::accumulate(
      stats.buckets.begin(), stats.buckets.end(), std::int64_t{0});
  EXPECT_EQ(bucket_total, stats.count);
}

TEST_F(MetricsTest, ScopedTimerIsMonotonic) {
  metrics::set_enabled(true);
  metrics::Timer& timer = metrics::registry().timer("test.scoped");
  {
    metrics::ScopedTimer scope(timer);
  }
  const metrics::Timer::Stats first = timer.stats();
  EXPECT_EQ(first.count, 1);
  EXPECT_GE(first.sum_sec, 0.0);
  {
    metrics::ScopedTimer scope(timer);
    // Burn a little time so the second sample is strictly measurable.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  }
  const metrics::Timer::Stats second = timer.stats();
  EXPECT_EQ(second.count, 2);
  EXPECT_GE(second.sum_sec, first.sum_sec);  // elapsed time never goes back
  EXPECT_GE(second.max_sec, second.min_sec);
}

TEST_F(MetricsTest, ScopedTimerRespectsDisabled) {
  metrics::Timer& timer = metrics::registry().timer("test.scoped.off");
  {
    metrics::ScopedTimer scope(timer);
  }
  EXPECT_EQ(timer.stats().count, 0);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::registry().counter("test.threads");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, SnapshotJsonIsWellFormed) {
  metrics::set_enabled(true);
  metrics::registry().counter("snap.counter").add(3);
  metrics::registry().gauge("snap.gauge").set(1.25);
  metrics::registry().timer("snap.timer").record(0.001);
  metrics::registry().counter("snap.\"quoted\"\n").add(1);  // escaping
  const std::string json = metrics::registry().snapshot().to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"snap.timer\""), std::string::npos);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  metrics::set_enabled(true);
  metrics::registry().counter("z.last").add(1);
  metrics::registry().counter("a.first").add(1);
  const metrics::MetricsSnapshot snapshot = metrics::registry().snapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LE(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST_F(MetricsTest, DisabledSpansRecordNothing) {
  {
    trace::Span span("never");
    span.arg("k", std::int64_t{1});
  }
  EXPECT_EQ(trace::num_events(), 0u);
}

TEST_F(MetricsTest, SpanJsonHasChromeTraceShape) {
  trace::set_enabled(true);
  {
    trace::Span outer("outer");
    outer.arg("n", std::int64_t{3});
    outer.arg("ratio", 0.5);
    outer.arg("label", std::string("a\"b"));
    {
      trace::Span inner("inner");
    }
  }
  trace::set_enabled(false);
  EXPECT_EQ(trace::num_events(), 2u);
  std::ostringstream os;
  trace::write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_EQ(json.front(), '[');
  for (const char* key :
       {"\"name\"", "\"ph\":\"X\"", "\"ts\"", "\"dur\"", "\"pid\"",
        "\"tid\"", "\"cat\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":3"), std::string::npos);
}

TEST_F(MetricsTest, SpanClearDropsEvents) {
  trace::set_enabled(true);
  { trace::Span span("dropped"); }
  ASSERT_GE(trace::num_events(), 1u);
  trace::clear();
  EXPECT_EQ(trace::num_events(), 0u);
  std::ostringstream os;
  trace::write_chrome_json(os);
  EXPECT_TRUE(is_valid_json(os.str()));
}

}  // namespace
}  // namespace sparcs

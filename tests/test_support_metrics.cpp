// Tests for the metrics registry (support/metrics.hpp) and the trace spans
// (support/span.hpp): registry semantics, snapshot JSON well-formedness,
// timer monotonicity, concurrent counter increments, and the Chrome
// trace-event shape of the span export.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/span.hpp"
#include "json_checker.hpp"

namespace sparcs {
namespace {

// The JSON well-formedness checker lives in json_checker.hpp (shared with
// the telemetry and failpoint suites).
using sparcs::testing::is_valid_json;

// Every test leaves collection disabled and the stores clean, matching the
// process default, so suites sharing the process never observe stale state.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(false);
    metrics::registry().reset();
    trace::set_enabled(false);
    trace::clear();
  }
  void TearDown() override { SetUp(); }
};

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json("{}"));
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e4],"b":{"c":"x\n"},"d":null})"));
  EXPECT_TRUE(is_valid_json("[]"));
  EXPECT_FALSE(is_valid_json(""));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json(R"({"a":})"));
  EXPECT_FALSE(is_valid_json("[1,2,]"));
  EXPECT_FALSE(is_valid_json("{} trailing"));
}

TEST_F(MetricsTest, RegistryReturnsStableHandles) {
  metrics::Counter& a = metrics::registry().counter("test.stable");
  metrics::Counter& b = metrics::registry().counter("test.stable");
  EXPECT_EQ(&a, &b);
  metrics::Counter& c = metrics::registry().counter("test.other");
  EXPECT_NE(&a, &c);
  metrics::Timer& t1 = metrics::registry().timer("test.stable");
  metrics::Timer& t2 = metrics::registry().timer("test.stable");
  EXPECT_EQ(&t1, &t2);  // same name, different kind: fine, separate stores
}

TEST_F(MetricsTest, DisabledCollectionIsANoOp) {
  metrics::Counter& counter = metrics::registry().counter("test.noop");
  metrics::Gauge& gauge = metrics::registry().gauge("test.noop");
  metrics::Timer& timer = metrics::registry().timer("test.noop");
  counter.add(7);
  gauge.set(3.5);
  timer.record(0.25);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(timer.stats().count, 0);
}

TEST_F(MetricsTest, EnabledCollectionRecords) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::registry().counter("test.on");
  metrics::Gauge& gauge = metrics::registry().gauge("test.on");
  counter.add();
  counter.add(41);
  gauge.set(-2.5);
  EXPECT_EQ(counter.value(), 42);
  EXPECT_EQ(gauge.value(), -2.5);
}

TEST_F(MetricsTest, ResetZeroesButKeepsHandles) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::registry().counter("test.reset");
  counter.add(5);
  metrics::registry().reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(&counter, &metrics::registry().counter("test.reset"));
  counter.add(1);
  EXPECT_EQ(counter.value(), 1);
}

TEST_F(MetricsTest, TimerStatsAreConsistent) {
  metrics::set_enabled(true);
  metrics::Timer& timer = metrics::registry().timer("test.timer");
  const double durations[] = {1e-6, 5e-4, 0.002, 0.002};
  for (const double d : durations) timer.record(d);
  const metrics::Timer::Stats stats = timer.stats();
  EXPECT_EQ(stats.count, 4);
  EXPECT_NEAR(stats.sum_sec, 1e-6 + 5e-4 + 0.004, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min_sec, 1e-6);
  EXPECT_DOUBLE_EQ(stats.max_sec, 0.002);
  EXPECT_LE(stats.min_sec, stats.max_sec);
  ASSERT_EQ(static_cast<int>(stats.buckets.size()),
            metrics::Timer::kNumBuckets);
  const std::int64_t bucket_total = std::accumulate(
      stats.buckets.begin(), stats.buckets.end(), std::int64_t{0});
  EXPECT_EQ(bucket_total, stats.count);
}

TEST_F(MetricsTest, ScopedTimerIsMonotonic) {
  metrics::set_enabled(true);
  metrics::Timer& timer = metrics::registry().timer("test.scoped");
  {
    metrics::ScopedTimer scope(timer);
  }
  const metrics::Timer::Stats first = timer.stats();
  EXPECT_EQ(first.count, 1);
  EXPECT_GE(first.sum_sec, 0.0);
  {
    metrics::ScopedTimer scope(timer);
    // Burn a little time so the second sample is strictly measurable.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  }
  const metrics::Timer::Stats second = timer.stats();
  EXPECT_EQ(second.count, 2);
  EXPECT_GE(second.sum_sec, first.sum_sec);  // elapsed time never goes back
  EXPECT_GE(second.max_sec, second.min_sec);
}

TEST_F(MetricsTest, ScopedTimerRespectsDisabled) {
  metrics::Timer& timer = metrics::registry().timer("test.scoped.off");
  {
    metrics::ScopedTimer scope(timer);
  }
  EXPECT_EQ(timer.stats().count, 0);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  metrics::set_enabled(true);
  metrics::Counter& counter = metrics::registry().counter("test.threads");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, SnapshotJsonIsWellFormed) {
  metrics::set_enabled(true);
  metrics::registry().counter("snap.counter").add(3);
  metrics::registry().gauge("snap.gauge").set(1.25);
  metrics::registry().timer("snap.timer").record(0.001);
  metrics::registry().counter("snap.\"quoted\"\n").add(1);  // escaping
  const std::string json = metrics::registry().snapshot().to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"snap.timer\""), std::string::npos);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  metrics::set_enabled(true);
  metrics::registry().counter("z.last").add(1);
  metrics::registry().counter("a.first").add(1);
  const metrics::MetricsSnapshot snapshot = metrics::registry().snapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LE(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

TEST_F(MetricsTest, DisabledSpansRecordNothing) {
  {
    trace::Span span("never");
    span.arg("k", std::int64_t{1});
  }
  EXPECT_EQ(trace::num_events(), 0u);
}

TEST_F(MetricsTest, SpanJsonHasChromeTraceShape) {
  trace::set_enabled(true);
  {
    trace::Span outer("outer");
    outer.arg("n", std::int64_t{3});
    outer.arg("ratio", 0.5);
    outer.arg("label", std::string("a\"b"));
    {
      trace::Span inner("inner");
    }
  }
  trace::set_enabled(false);
  EXPECT_EQ(trace::num_events(), 2u);
  std::ostringstream os;
  trace::write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_EQ(json.front(), '[');
  for (const char* key :
       {"\"name\"", "\"ph\":\"X\"", "\"ts\"", "\"dur\"", "\"pid\"",
        "\"tid\"", "\"cat\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":3"), std::string::npos);
}

TEST_F(MetricsTest, SpanClearDropsEvents) {
  trace::set_enabled(true);
  { trace::Span span("dropped"); }
  ASSERT_GE(trace::num_events(), 1u);
  trace::clear();
  EXPECT_EQ(trace::num_events(), 0u);
  std::ostringstream os;
  trace::write_chrome_json(os);
  EXPECT_TRUE(is_valid_json(os.str()));
}

TEST_F(MetricsTest, EmptyTraceExportIsLiteralEmptyArray) {
  std::ostringstream os;
  trace::write_chrome_json(os);
  EXPECT_EQ(os.str(), "[]\n");
}

TEST_F(MetricsTest, SpanArgEscapesHostileStrings) {
  trace::set_enabled(true);
  {
    trace::Span span("escape");
    span.arg("quote", std::string("she said \"hi\""));
    span.arg("backslash", std::string("C:\\path\\file"));
    span.arg("newline", std::string("line1\nline2"));
    span.arg("control", std::string("bell\x07tab\tend"));
  }
  trace::set_enabled(false);
  std::ostringstream os;
  trace::write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("C:\\\\path\\\\file"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
}

}  // namespace
}  // namespace sparcs

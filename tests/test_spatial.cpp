#include <gtest/gtest.h>

#include <cmath>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "spatial/flow.hpp"
#include "spatial/fm_spatial.hpp"
#include "spatial/ilp_spatial.hpp"
#include "spatial/netlist.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/ar_filter.hpp"

namespace sparcs::spatial {
namespace {

/// Two tight 2-cliques joined by one light net: the optimal 2-FPGA cut is
/// the light net.
Netlist two_clusters() {
  Netlist nl;
  const NodeId a0 = nl.add_node("a0", 40);
  const NodeId a1 = nl.add_node("a1", 40);
  const NodeId b0 = nl.add_node("b0", 40);
  const NodeId b1 = nl.add_node("b1", 40);
  nl.add_net(a0, a1, 10);
  nl.add_net(b0, b1, 10);
  nl.add_net(a1, b0, 1);
  return nl;
}

Board two_fpgas(double capacity, double wires) {
  Board board;
  board.name = "b2";
  board.num_fpgas = 2;
  board.fpga_capacity = capacity;
  board.interconnect_capacity = wires;
  return board;
}

TEST(NetlistTest, ConstructionAndMerging) {
  Netlist nl = two_clusters();
  EXPECT_EQ(nl.num_nodes(), 4);
  EXPECT_EQ(nl.nets.size(), 3u);
  nl.add_net(0, 1, 5);  // merges into the existing a0-a1 net
  EXPECT_EQ(nl.nets.size(), 3u);
  EXPECT_DOUBLE_EQ(nl.nets[0].weight, 15.0);
  EXPECT_DOUBLE_EQ(nl.total_area(), 160.0);
  EXPECT_THROW(nl.add_net(0, 0, 1), InvalidArgumentError);
}

TEST(NetlistTest, CutWeightAndAreas) {
  const Netlist nl = two_clusters();
  const Board board = two_fpgas(100, 100);
  const std::vector<int> split{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(cut_weight(nl, split), 1.0);
  const auto areas = fpga_areas(nl, board, split);
  EXPECT_DOUBLE_EQ(areas[0], 80.0);
  EXPECT_DOUBLE_EQ(areas[1], 80.0);
  const std::vector<int> bad_split{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(cut_weight(nl, bad_split), 21.0);
}

TEST(NetlistTest, ValidityChecks) {
  const Netlist nl = two_clusters();
  std::string why;
  EXPECT_TRUE(is_valid_assignment(nl, two_fpgas(100, 10), {0, 0, 1, 1}, &why));
  // Over capacity.
  EXPECT_FALSE(is_valid_assignment(nl, two_fpgas(100, 10), {0, 0, 0, 1}, &why));
  EXPECT_NE(why.find("capacity"), std::string::npos);
  // Cut over the interconnect budget.
  EXPECT_FALSE(
      is_valid_assignment(nl, two_fpgas(100, 0.5), {0, 0, 1, 1}, &why));
  EXPECT_NE(why.find("interconnect"), std::string::npos);
  // Bad device index.
  EXPECT_FALSE(is_valid_assignment(nl, two_fpgas(100, 10), {0, 0, 1, 7}, &why));
}

TEST(IlpSpatialTest, FindsMinimumCut) {
  const Netlist nl = two_clusters();
  const IlpSpatialResult r = spatial_partition_ilp(nl, two_fpgas(100, 100));
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_EQ(r.status, milp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.assignment->cut_weight, 1.0);
  std::string why;
  EXPECT_TRUE(is_valid_assignment(nl, two_fpgas(100, 100),
                                  r.assignment->fpga_of, &why))
      << why;
}

TEST(IlpSpatialTest, InterconnectBoundMakesInfeasible) {
  // Force the heavy nets into the cut: each FPGA holds exactly one node of
  // each clique, so the min cut is 20; with capacity for only 1 node per
  // device and wires < 20 the instance is infeasible.
  const Netlist nl = two_clusters();
  Board board = two_fpgas(40, 100);
  board.num_fpgas = 4;
  const IlpSpatialResult feasible = spatial_partition_ilp(nl, board);
  ASSERT_TRUE(feasible.assignment.has_value());
  EXPECT_DOUBLE_EQ(feasible.assignment->cut_weight, 21.0);

  board.interconnect_capacity = 10.0;
  const IlpSpatialResult infeasible = spatial_partition_ilp(nl, board);
  EXPECT_FALSE(infeasible.assignment.has_value());
  EXPECT_EQ(infeasible.status, milp::SolveStatus::kInfeasible);
}

TEST(IlpSpatialTest, CapacityInfeasibilityDetected) {
  Netlist nl;
  nl.add_node("big", 90);
  const IlpSpatialResult r = spatial_partition_ilp(nl, two_fpgas(50, 10));
  EXPECT_FALSE(r.assignment.has_value());
}

TEST(FmSpatialTest, MatchesIlpOnTwoClusters) {
  const Netlist nl = two_clusters();
  const FmResult r = spatial_partition_fm(nl, two_fpgas(100, 100));
  ASSERT_TRUE(r.assignment.has_value());
  EXPECT_DOUBLE_EQ(r.assignment->cut_weight, 1.0);
}

TEST(FmSpatialTest, RespectsCapacities) {
  Rng rng(3);
  Netlist nl;
  for (int i = 0; i < 12; ++i) {
    nl.add_node("n" + std::to_string(i), rng.uniform(10, 40));
  }
  for (int i = 0; i < 24; ++i) {
    const auto a = static_cast<NodeId>(rng.index(12));
    const auto b = static_cast<NodeId>(rng.index(12));
    if (a != b) nl.add_net(a, b, rng.uniform(1, 5));
  }
  Board board;
  board.name = "b4";
  board.num_fpgas = 4;
  board.fpga_capacity = 120;
  board.interconnect_capacity = 1e9;
  const FmResult r = spatial_partition_fm(nl, board);
  ASSERT_TRUE(r.assignment.has_value());
  std::string why;
  EXPECT_TRUE(is_valid_assignment(nl, board, r.assignment->fpga_of, &why))
      << why;
}

TEST(FmSpatialTest, IlpNeverWorseThanFm) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    Netlist nl;
    for (int i = 0; i < 10; ++i) {
      nl.add_node("n" + std::to_string(i), rng.uniform(15, 35));
    }
    for (int i = 0; i < 18; ++i) {
      const auto a = static_cast<NodeId>(rng.index(10));
      const auto b = static_cast<NodeId>(rng.index(10));
      if (a != b) nl.add_net(a, b, std::floor(rng.uniform(1, 6)));
    }
    Board board = two_fpgas(200, 1e9);
    const FmResult fm = spatial_partition_fm(nl, board);
    milp::SolverParams params;
    params.time_limit_sec = 10.0;
    const IlpSpatialResult ilp = spatial_partition_ilp(nl, board, true, params);
    ASSERT_TRUE(fm.assignment.has_value()) << "seed " << seed;
    ASSERT_TRUE(ilp.assignment.has_value()) << "seed " << seed;
    if (ilp.status == milp::SolveStatus::kOptimal) {
      EXPECT_LE(ilp.assignment->cut_weight,
                fm.assignment->cut_weight + 1e-9)
          << "seed " << seed;
    }
  }
}

TEST(FlowTest, PartitionNetlistExtraction) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  core::PartitionedDesign design;
  design.num_partitions_allocated = 2;
  design.assignment = {{1, 0}, {1, 0}, {1, 0}, {2, 0}, {2, 0}, {2, 0}};
  const Netlist p1 = partition_netlist(g, design, 1);
  EXPECT_EQ(p1.num_nodes(), 3);
  // Intra-partition edges only: T1->T2, T1->T3 (T3->T4 etc. cross).
  EXPECT_EQ(p1.nets.size(), 2u);
}

TEST(FlowTest, MapsPartitionedArFilterOntoBoard) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  core::PartitionerOptions options;
  options.budget.delta = 20.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);

  // Two FPGAs covering the device capacity; each chip must still hold the
  // largest single design point (tasks cannot straddle devices).
  Board board;
  board.name = "b2x128";
  board.num_fpgas = 2;
  board.fpga_capacity = 128;
  board.interconnect_capacity = 64;
  const FlowResult flow = map_design_to_board(g, *report.best, board);
  ASSERT_TRUE(flow.ok) << flow.failure;
  EXPECT_EQ(flow.configurations.size(),
            static_cast<std::size_t>(report.best->num_partitions_used));
  for (const ConfigurationMapping& config : flow.configurations) {
    std::string why;
    EXPECT_TRUE(is_valid_assignment(config.netlist, board,
                                    config.assignment.fpga_of, &why))
        << why;
  }
}

TEST(FlowTest, ReportsUnmappableConfiguration) {
  graph::TaskGraph g("t");
  g.add_task("huge", {{"m", 150, 100}});
  core::PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 0}};
  Board board = two_fpgas(100, 10);
  const FlowResult flow =
      map_design_to_board(g, design, board, SpatialEngine::kFmThenIlp);
  EXPECT_FALSE(flow.ok);
  EXPECT_NE(flow.failure.find("configuration 1"), std::string::npos);
}

TEST(FlowTest, WildforceBoardPreset) {
  const Board board = wildforce_board();
  EXPECT_EQ(board.num_fpgas, 4);
  EXPECT_NO_THROW(board.validate());
}

}  // namespace
}  // namespace sparcs::spatial

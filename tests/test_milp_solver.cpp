#include <gtest/gtest.h>

#include "milp/checker.hpp"
#include "milp/solver.hpp"

namespace sparcs::milp {
namespace {

TEST(MilpSolverTest, KnapsackOptimal) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6 -> best {a,c}? values:
  // {a,b}: w7 infeasible; {b,c}: w6 v20; {a,c}: w5 v17; so optimum 20.
  Model m("knapsack");
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c) <=
                       6.0, "cap");
  m.set_objective(10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c),
                  /*minimize=*/false);
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
  EXPECT_NEAR(s.values[a], 0.0, 1e-6);
  EXPECT_NEAR(s.values[b], 1.0, 1e-6);
  EXPECT_NEAR(s.values[c], 1.0, 1e-6);
}

TEST(MilpSolverTest, InfeasibleBinaryModel) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint(LinExpr(x) >= 1.0, "force1");
  m.add_constraint(LinExpr(x) <= 0.0, "force0");
  const MilpSolution s = Solver(m).solve();
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(MilpSolverTest, FirstFeasibleStopsEarly) {
  Model m;
  std::vector<VarId> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(m.add_binary("x" + std::to_string(i)));
  LinExpr sum;
  for (const VarId x : xs) sum += LinExpr(x);
  m.add_constraint(sum == 5.0, "pick5");
  const MilpSolution s = Solver(m, first_feasible_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kFeasible);
  EXPECT_TRUE(check_solution(m, s.values).ok);
}

TEST(MilpSolverTest, PureFeasibilityReportsOptimalWhenExhaustive) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint(LinExpr(x) == 1.0, "fix");
  const MilpSolution s = Solver(m).solve();  // no objective, no early stop
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 1.0, 1e-9);
}

TEST(MilpSolverTest, AssignmentProblem) {
  // 3x3 assignment, cost matrix with known optimum 1+2+3 = 6 on diagonal
  // after permutation. costs: row i to col j.
  const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  // Optimal: (0,1)+(1,0)+(2,2) = 1 + 2 + 2 = 5.
  Model m("assign");
  VarId y[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      y[i][j] = m.add_binary("y" + std::to_string(i) + std::to_string(j));
    }
  }
  for (int i = 0; i < 3; ++i) {
    LinExpr row, col;
    for (int j = 0; j < 3; ++j) {
      row += LinExpr(y[i][j]);
      col += LinExpr(y[j][i]);
    }
    m.add_constraint(row == 1.0, "row" + std::to_string(i));
    m.add_constraint(col == 1.0, "col" + std::to_string(i));
  }
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) obj += cost[i][j] * LinExpr(y[i][j]);
  }
  m.set_objective(obj);
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(MilpSolverTest, GeneralIntegerDomainSplit) {
  // min x + y s.t. 3x + 2y >= 13, x,y integer in [0, 100].
  // Candidates: x=1,y=5 -> 6; x=3,y=2 -> 5; x=5,y=0 -> 5... check smaller:
  // total t: minimize x+y with 3x+2y>=13: x=3,y=2 (sum 5) works (13>=13).
  // sum 4: max 3x+2y with x+y=4 is x=4: 12 < 13 -> impossible. Optimum 5.
  Model m;
  const VarId x = m.add_integer(0, 100, "x");
  const VarId y = m.add_integer(0, 100, "y");
  m.add_constraint(3.0 * LinExpr(x) + 2.0 * LinExpr(y) >= 13.0, "need");
  m.set_objective(LinExpr(x) + LinExpr(y));
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(MilpSolverTest, MixedIntegerContinuous) {
  // min d s.t. d >= 7x, d >= 3(1-x), x binary, d continuous in [0, 100].
  // x=0 -> d=3; x=1 -> d=7. Optimum d=3 at x=0.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId d = m.add_continuous(0, 100, "d");
  m.add_constraint(7.0 * LinExpr(x) - LinExpr(d) <= 0.0, "c1");
  m.add_constraint(-3.0 * LinExpr(x) - LinExpr(d) <= -3.0, "c2");
  m.set_objective(LinExpr(d));
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_NEAR(s.values[x], 0.0, 1e-6);
}

TEST(MilpSolverTest, ContinuousOnlyModelSolvedByCompletion) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  const VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) >= 6.0, "c");
  m.set_objective(2.0 * LinExpr(x) + LinExpr(y));
  const MilpSolution s = Solver(m).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-6);  // all weight on y
}

TEST(MilpSolverTest, UnboundedContinuousObjective) {
  Model m;
  const VarId x = m.add_continuous(-kInfinity, kInfinity, "x");
  m.add_constraint(LinExpr(x) <= 5.0, "c");
  m.set_objective(LinExpr(x));
  const MilpSolution s = Solver(m).solve();
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(MilpSolverTest, NodeLimitReported) {
  // A model engineered to need many nodes: pigeonhole-ish equality system.
  Model m;
  std::vector<VarId> xs;
  for (int i = 0; i < 24; ++i) xs.push_back(m.add_binary("x" + std::to_string(i)));
  LinExpr sum;
  for (const VarId x : xs) sum += LinExpr(x);
  // Fractional requirement makes it infeasible but hard for pure DFS without
  // the parity insight; the node limit must kick in or it proves infeasible
  // quickly via integer rounding. Use a wide window to accept either, but a
  // tiny node budget must never report optimal-with-solution.
  m.add_constraint(2.0 * sum == 23.0, "odd");
  SolverParams params;
  params.node_limit = 5;
  const MilpSolution s = Solver(m, params).solve();
  EXPECT_FALSE(s.has_solution());
}

TEST(MilpSolverTest, BranchPriorityRespected) {
  // Two independent binaries; the higher-priority one should be branched
  // first; we can only observe the result, so just check correctness.
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  m.set_branch_priority(b, 10);
  m.add_constraint(LinExpr(a) + LinExpr(b) == 1.0, "xor");
  m.set_objective(LinExpr(a) * 2.0 + LinExpr(b));
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
  EXPECT_NEAR(s.values[b], 1.0, 1e-6);
}

TEST(MilpSolverTest, BranchHintGuidesFirstFeasible) {
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  m.add_constraint(LinExpr(a) + LinExpr(b) == 1.0, "xor");
  m.set_branch_hint(a, 0.0);
  const MilpSolution s = Solver(m, first_feasible_params()).solve();
  ASSERT_TRUE(s.has_solution());
  // Hint a=0 makes the first feasible assignment b=1.
  EXPECT_NEAR(s.values[a], 0.0, 1e-6);
  EXPECT_NEAR(s.values[b], 1.0, 1e-6);
}

TEST(MilpSolverTest, EqualityWithContinuousCompletion) {
  Model m;
  const VarId x = m.add_binary("x");
  const VarId d = m.add_continuous(0, 50, "d");
  m.add_constraint(LinExpr(d) - 10.0 * LinExpr(x) == 2.0, "link");
  m.set_objective(LinExpr(d));
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_NEAR(s.values[x], 0.0, 1e-6);
}

TEST(MilpSolverTest, MaximizationSignHandling) {
  Model m;
  const VarId x = m.add_integer(0, 9, "x");
  m.add_constraint(LinExpr(x) <= 6.0, "cap");
  m.set_objective(LinExpr(x), /*minimize=*/false);
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-6);
}

TEST(MilpSolverTest, CheckerRejectsBadSolutions) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint(LinExpr(x) >= 1.0, "c");
  EXPECT_FALSE(check_solution(m, {0.0}).ok);
  EXPECT_TRUE(check_solution(m, {1.0}).ok);
  EXPECT_FALSE(check_solution(m, {0.5}).ok);   // not integral
  EXPECT_FALSE(check_solution(m, {}).ok);      // wrong arity
}

TEST(MilpSolverTest, SolverStatsArePopulated) {
  // solve_to_optimality turns on LP bounding, so the simplex must run and
  // every layer of SolverStats has to be filled in.
  Model m("stats");
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c) <=
                       6.0, "cap");
  m.set_objective(10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c),
                  /*minimize=*/false);
  const MilpSolution s = Solver(m, optimality_params()).solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GE(s.stats.nodes_explored, 1);
  EXPECT_GE(s.stats.simplex_calls, 1);
  EXPECT_GT(s.stats.simplex_iterations, 0);
  EXPECT_GE(s.stats.incumbent_updates, 1);
  EXPECT_GE(s.stats.max_depth, 1);
  // The legacy mirrors must agree with the structured stats.
  EXPECT_EQ(s.nodes_explored, s.stats.nodes_explored);
  EXPECT_EQ(s.propagations, s.stats.propagated_constraints);
}

TEST(MilpSolverTest, SolverStatsMergeSumsAndMaxes) {
  SolverStats a;
  a.nodes_explored = 3;
  a.simplex_iterations = 10;
  a.max_depth = 2;
  SolverStats b;
  b.nodes_explored = 4;
  b.simplex_iterations = 5;
  b.max_depth = 7;
  a.merge(b);
  EXPECT_EQ(a.nodes_explored, 7);
  EXPECT_EQ(a.simplex_iterations, 15);
  EXPECT_EQ(a.max_depth, 7);  // depth is a maximum, not a sum
}

TEST(MilpSolverTest, InfeasibleModelCountsPrunedNodes) {
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint(LinExpr(x) >= 1.0, "force1");
  m.add_constraint(LinExpr(x) <= 0.0, "force0");
  const MilpSolution s = Solver(m).solve();
  ASSERT_EQ(s.status, SolveStatus::kInfeasible);
  EXPECT_EQ(s.stats.incumbent_updates, 0);
}

TEST(MilpSolverTest, LpBoundingPrunesAndAgrees) {
  // Same knapsack solved with and without LP bounding must agree.
  Model m("knapsack2");
  std::vector<VarId> xs;
  const double w[] = {3, 5, 7, 2, 4, 6};
  const double v[] = {9, 11, 13, 5, 8, 12};
  LinExpr weight, value;
  for (int i = 0; i < 6; ++i) {
    xs.push_back(m.add_binary("x" + std::to_string(i)));
    weight += w[i] * LinExpr(xs.back());
    value += v[i] * LinExpr(xs.back());
  }
  m.add_constraint(weight <= 12.0, "cap");
  m.set_objective(value, /*minimize=*/false);

  SolverParams no_lp;
  no_lp.use_lp_bounding = false;
  const MilpSolution s1 = Solver(m, no_lp).solve();
  SolverParams with_lp;
  with_lp.use_lp_bounding = true;
  const MilpSolution s2 = Solver(m, with_lp).solve();
  ASSERT_EQ(s1.status, SolveStatus::kOptimal);
  ASSERT_EQ(s2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s1.objective, s2.objective, 1e-6);
}

}  // namespace
}  // namespace sparcs::milp

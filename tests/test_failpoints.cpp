// Fault-injection suite: arms every failpoint site and checks the solver
// contract under induced failure — a classified status or a checker-validated
// solution, never a crash, a hang, or a wrong answer. The whole suite skips
// itself in builds without SPARCS_ENABLE_FAILPOINTS (the registry itself is
// always linked, so the env-parsing test runs everywhere).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "core/refine_partitions.hpp"
#include "json_checker.hpp"
#include "milp/checker.hpp"
#include "milp/simplex.hpp"
#include "milp/solver.hpp"
#include "support/failpoint.hpp"
#include "support/telemetry.hpp"
#include "workloads/dct.hpp"

namespace sparcs {
namespace {

using sparcs::testing::is_valid_json_lines;

// Primed before main() so the lazy arm_from_env() (triggered by the first
// should_fail call in this process) sees the variable.
const bool kEnvPrimed = [] {
  ::setenv("SPARCS_FAILPOINTS", "test.env.limited=2,test.env.always", 1);
  return true;
}();

// Must run before any test that calls disarm_all().
TEST(FailpointEnvTest, EnvVariableArmsSites) {
  ASSERT_TRUE(kEnvPrimed);
  // name=N fires N times, then goes inert.
  EXPECT_TRUE(failpoint::should_fail("test.env.limited"));
  EXPECT_TRUE(failpoint::should_fail("test.env.limited"));
  EXPECT_FALSE(failpoint::should_fail("test.env.limited"));
  EXPECT_EQ(failpoint::trigger_count("test.env.limited"), 2);
  // bare name fires on every hit.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(failpoint::should_fail("test.env.always")) << i;
  }
  // unarmed sites never fire.
  EXPECT_FALSE(failpoint::should_fail("test.env.unarmed"));
  failpoint::disarm_all();
}

TEST(FailpointEnvTest, SkipAndMaxHits) {
  failpoint::Spec spec;
  spec.skip = 2;
  spec.max_hits = 1;
  failpoint::arm("test.skip", spec);
  EXPECT_FALSE(failpoint::should_fail("test.skip"));
  EXPECT_FALSE(failpoint::should_fail("test.skip"));
  EXPECT_TRUE(failpoint::should_fail("test.skip"));
  EXPECT_FALSE(failpoint::should_fail("test.skip"));
  failpoint::disarm("test.skip");
  EXPECT_FALSE(failpoint::should_fail("test.skip"));
  failpoint::disarm_all();
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "built without SPARCS_ENABLE_FAILPOINTS";
    }
    failpoint::disarm_all();
  }
  void TearDown() override { failpoint::disarm_all(); }
};

milp::Model knapsack_model() {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6; optimum 20 at {b, c}.
  milp::Model m("knapsack");
  const milp::VarId a = m.add_binary("a");
  const milp::VarId b = m.add_binary("b");
  const milp::VarId c = m.add_binary("c");
  m.add_constraint(3.0 * milp::LinExpr(a) + 4.0 * milp::LinExpr(b) +
                       2.0 * milp::LinExpr(c) <= 6.0, "cap");
  m.set_objective(10.0 * milp::LinExpr(a) + 13.0 * milp::LinExpr(b) +
                  7.0 * milp::LinExpr(c), /*minimize=*/false);
  return m;
}

/// Infeasible parity model, exhaustive to refute; >= 48 vars also clears the
/// parallel dispatch threshold.
milp::Model parity_hard_model(int vars) {
  milp::Model m("parity");
  milp::LinExpr sum;
  for (int i = 0; i < vars; ++i) {
    sum += 2.0 * milp::LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == static_cast<double>(vars) + 1.0, "odd");
  return m;
}

milp::LpProblem small_lp() {
  // min -x - y s.t. x + y <= 3, x <= 2, y <= 2: optimum -3.
  milp::LpProblem lp;
  const int x = lp.add_var(-1.0, 0.0, 2.0);
  const int y = lp.add_var(-1.0, 0.0, 2.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, milp::Sense::kLessEqual, 3.0);
  return lp;
}

TEST_F(FailpointTest, SimplexBlowupRecoversViaRetry) {
  failpoint::Spec spec;
  spec.max_hits = 1;
  failpoint::arm("milp.simplex.blowup", spec);
  const milp::LpResult r = milp::solve_lp(small_lp());
  EXPECT_EQ(r.status, milp::LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
  EXPECT_GE(r.recoveries, 1);
  EXPECT_EQ(failpoint::trigger_count("milp.simplex.blowup"), 1);
}

TEST_F(FailpointTest, SimplexBlowupExhaustsRecoveriesCleanly) {
  failpoint::arm("milp.simplex.blowup");  // every attempt fails
  const milp::LpResult r = milp::solve_lp(small_lp());
  EXPECT_EQ(r.status, milp::LpStatus::kNumericalFailure);
}

TEST_F(FailpointTest, SimplexCycleRecoversViaRetry) {
  failpoint::Spec spec;
  spec.max_hits = 1;
  failpoint::arm("milp.simplex.cycle", spec);
  const milp::LpResult r = milp::solve_lp(small_lp());
  EXPECT_EQ(r.status, milp::LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
  EXPECT_GE(r.recoveries, 1);
}

TEST_F(FailpointTest, SolverSurvivesPersistentLpFailure) {
  // With every LP call failing, bounding degrades to "keep the node" and
  // propagation alone must still find and prove the optimum.
  failpoint::arm("milp.simplex.blowup");
  const milp::Model m = knapsack_model();
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 1;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  ASSERT_TRUE(s.has_solution());
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
  EXPECT_TRUE(milp::check_solution(m, s.values).ok);
  EXPECT_GT(s.stats.numerical_failures, 0);
}

TEST_F(FailpointTest, SolveTimeoutReturnsLimitReached) {
  failpoint::arm("milp.solve.timeout");
  milp::SolverParams params;
  params.num_threads = 1;
  const milp::MilpSolution s =
      milp::Solver(knapsack_model(), params).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kLimitReached);
  EXPECT_TRUE(s.values.empty());
}

TEST_F(FailpointTest, SolveTimeoutReturnsLimitReachedParallel) {
  failpoint::arm("milp.solve.timeout");
  milp::SolverParams params;
  params.num_threads = 4;
  const milp::MilpSolution s =
      milp::Solver(parity_hard_model(60), params).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kLimitReached);
}

TEST_F(FailpointTest, AllocationFailureRollsBackAndContinues) {
  failpoint::Spec spec;
  spec.skip = 2;    // let the root descend before failing
  spec.max_hits = 3;
  failpoint::arm("milp.bnb.alloc_fail", spec);
  const milp::Model m = knapsack_model();
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 1;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  EXPECT_GT(s.stats.allocation_failures, 0);
  // Dropped subtrees forfeit the optimality claim but never the soundness
  // of what is returned.
  EXPECT_NE(s.status, milp::SolveStatus::kOptimal);
  EXPECT_NE(s.status, milp::SolveStatus::kInfeasible);
  if (s.has_solution()) {
    EXPECT_TRUE(milp::check_solution(m, s.values).ok);
  }
}

TEST_F(FailpointTest, AllocationFailureExhaustionStopsClassified) {
  failpoint::arm("milp.bnb.alloc_fail");  // every node throws
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 1;
  const milp::MilpSolution s =
      milp::Solver(knapsack_model(), params).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kNumericalFailure);
  EXPECT_FALSE(s.has_solution());
  EXPECT_GT(s.stats.allocation_failures, 0);
}

TEST_F(FailpointTest, CorruptLeafIsRejectedAndSearchRecovers) {
  failpoint::Spec spec;
  spec.max_hits = 1;
  failpoint::arm("milp.bnb.corrupt_leaf", spec);
  const milp::Model m = knapsack_model();
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 1;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  EXPECT_GE(s.stats.checker_rejections, 1);
  ASSERT_TRUE(s.has_solution());
  EXPECT_TRUE(milp::check_solution(m, s.values).ok);
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
}

TEST_F(FailpointTest, CorruptLeafNeverReturnedEvenWhenPersistent) {
  failpoint::arm("milp.bnb.corrupt_leaf");  // every candidate corrupted
  const milp::Model m = knapsack_model();
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 1;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  // Every leaf was rejected: no solution, and the exhausted-but-incomplete
  // search must not claim infeasibility.
  EXPECT_FALSE(s.has_solution());
  EXPECT_EQ(s.status, milp::SolveStatus::kNumericalFailure);
  EXPECT_GT(s.stats.checker_rejections, 0);
}

TEST_F(FailpointTest, StalledWorkerStillTerminates) {
  failpoint::Spec spec;
  spec.max_hits = 2;
  spec.stall_sec = 0.05;
  failpoint::arm("milp.bnb.worker_stall", spec);
  // Feasible pick-7-of-60 model, quick in first-feasible mode: the stalls
  // delay two subproblem batches but the search still completes and the
  // deterministic rank-ordered answer is unaffected.
  milp::Model m("pick7");
  milp::LinExpr sum;
  for (int i = 0; i < 60; ++i) {
    sum += milp::LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == 7.0, "pick7");
  milp::SolverParams params = milp::first_feasible_params();
  params.num_threads = 2;
  params.time_limit_sec = 30.0;  // safety net; stalls must not consume it
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  // Reaching this line is the no-hang guarantee.
  ASSERT_EQ(s.status, milp::SolveStatus::kFeasible);
  EXPECT_TRUE(milp::check_solution(m, s.values).ok);
  EXPECT_GE(failpoint::trigger_count("milp.bnb.worker_stall"), 1);
}

// --- telemetry under induced failure ---------------------------------------

/// FailpointTest plus a running telemetry sampler writing to an in-memory
/// sink; teardown restores the process-default disabled telemetry state.
class TelemetryFailpointTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    telemetry::reset_pipeline();
    telemetry::SamplerOptions options;
    options.sink = &sink_;
    options.interval_sec = 0.01;
    options.include_metrics = false;
    ASSERT_TRUE(telemetry::start_sampler(options));
  }
  void TearDown() override {
    if (telemetry::sampler_running()) telemetry::stop_sampler();
    telemetry::reset_pipeline();
    FailpointTest::TearDown();
  }

  std::ostringstream sink_;
};

TEST_F(TelemetryFailpointTest, SolveTimeoutYieldsWellFormedJsonl) {
  failpoint::arm("milp.solve.timeout");
  milp::SolverParams params;
  params.num_threads = 1;
  const milp::MilpSolution s =
      milp::Solver(knapsack_model(), params).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kLimitReached);
  telemetry::stop_sampler();
  const std::string jsonl = sink_.str();
  EXPECT_TRUE(is_valid_json_lines(jsonl));
  // The stream closes with a well-formed final record even though the solve
  // under observation died on an injected timeout.
  const std::size_t last = jsonl.rfind("{\"type\": \"final\"");
  ASSERT_NE(last, std::string::npos);
  EXPECT_NE(jsonl.find("\"solves_completed\": 1", last), std::string::npos);
}

TEST_F(TelemetryFailpointTest, StalledWorkerKeepsSamplerAlive) {
  failpoint::Spec spec;
  spec.max_hits = 2;
  spec.stall_sec = 0.05;
  failpoint::arm("milp.bnb.worker_stall", spec);
  milp::Model m("pick7");
  milp::LinExpr sum;
  for (int i = 0; i < 60; ++i) {
    sum += milp::LinExpr(m.add_binary("x" + std::to_string(i)));
  }
  m.add_constraint(std::move(sum) == 7.0, "pick7");
  milp::SolverParams params = milp::first_feasible_params();
  params.num_threads = 2;
  params.time_limit_sec = 30.0;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  ASSERT_EQ(s.status, milp::SolveStatus::kFeasible);
  telemetry::stop_sampler();
  // The sampler kept emitting interval records while the workers stalled.
  const std::string jsonl = sink_.str();
  EXPECT_TRUE(is_valid_json_lines(jsonl));
  EXPECT_NE(jsonl.find("\"trigger\": \"interval\""), std::string::npos);
}

TEST_F(TelemetryFailpointTest, DegradedSweepIsReflectedInFinalRecord) {
  // Injected timeouts make every probe fail while an already-expired time
  // budget cuts the sweep short after the first probe: the run must end
  // degraded, and the telemetry stream's last records must say so.
  failpoint::arm("milp.solve.timeout");
  const graph::TaskGraph graph = workloads::dct_task_graph();
  const arch::Device device = arch::custom("test", 576.0, 4096.0, 100.0);
  core::RefinePartitionsParams params;
  params.budget.delta = 100.0;
  params.budget.time_budget_sec = 0.0;
  params.budget.solver.time_limit_sec = 0.05;
  params.budget.solver.num_threads = 1;
  const core::RefinePartitionsResult result =
      core::refine_partitions_bound(graph, device, params);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_TRUE(result.degraded);
  telemetry::stop_sampler();
  const std::string jsonl = sink_.str();
  EXPECT_TRUE(is_valid_json_lines(jsonl));
  const std::size_t last = jsonl.rfind("{\"type\": \"final\"");
  ASSERT_NE(last, std::string::npos);
  EXPECT_NE(jsonl.find("\"degraded\": true", last), std::string::npos);
}

}  // namespace
}  // namespace sparcs

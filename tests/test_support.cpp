#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace sparcs {
namespace {

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(SPARCS_REQUIRE(false, "boom"), InvalidArgumentError);
  EXPECT_NO_THROW(SPARCS_REQUIRE(true, "fine"));
}

TEST(ErrorTest, CheckThrowsInternalError) {
  EXPECT_THROW(SPARCS_CHECK(false, "boom"), InternalError);
  EXPECT_NO_THROW(SPARCS_CHECK(true, "fine"));
}

TEST(ErrorTest, MessageContainsContext) {
  try {
    SPARCS_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.uniform_int(-5, 9);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, SingletonRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(7, 7), 7);
  EXPECT_EQ(rng.index(1), 0u);
}

TEST(RngTest, InvalidRangeThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgumentError);
  EXPECT_THROW(rng.index(0), InvalidArgumentError);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 1.5), "1.50");
  EXPECT_EQ(str_format("plain"), "plain");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "|"), "a|b|c");
}

TEST(StringsTest, TrimDouble) {
  EXPECT_EQ(trim_double(1.5), "1.5");
  EXPECT_EQ(trim_double(42.0), "42");
  EXPECT_EQ(trim_double(0.125), "0.125");
  EXPECT_EQ(trim_double(-0.0), "0");
  EXPECT_EQ(trim_double(2.0 / 3.0, 3), "0.667");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(StopwatchTest, ProgressesMonotonically) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  const double t1 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3, 1.0);
}

}  // namespace
}  // namespace sparcs

#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "graph/algorithms.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"
#include "workloads/synthetic.hpp"

namespace sparcs::workloads {
namespace {

TEST(DeviceTest, PresetsAreValid) {
  EXPECT_NO_THROW(arch::wildforce_like().validate());
  EXPECT_NO_THROW(arch::time_multiplexed_like().validate());
  EXPECT_GT(arch::wildforce_like().reconfig_time_ns,
            1e3 * arch::time_multiplexed_like().reconfig_time_ns);
}

TEST(DeviceTest, InvalidDeviceRejected) {
  arch::Device d;
  d.resource_capacity = 0;
  EXPECT_THROW(d.validate(), InvalidArgumentError);
  EXPECT_THROW(arch::custom("x", 100, 10, -1), InvalidArgumentError);
}

TEST(ArFilterTest, PinnedStructure) {
  const graph::TaskGraph g = ar_filter_task_graph();
  EXPECT_EQ(g.num_tasks(), 6);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.task(g.find_task("T1")).design_points.size(), 3u);
  EXPECT_EQ(g.task(g.find_task("T3")).design_points.size(), 2u);
  EXPECT_EQ(g.task(g.find_task("T2")).design_points.size(), 1u);
}

TEST(ArFilterTest, EstimatedPointsAreParetoFronts) {
  const graph::TaskGraph g =
      ar_filter_task_graph(DesignPointSource::kEstimated);
  EXPECT_NO_THROW(g.validate());
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto& points = g.task(t).design_points;
    ASSERT_GE(points.size(), 1u);
    for (std::size_t i = 1; i < points.size(); ++i) {
      EXPECT_GT(points[i].area, points[i - 1].area);
      EXPECT_LT(points[i].latency_ns, points[i - 1].latency_ns);
    }
  }
}

TEST(DctTest, StructureMatchesPaper) {
  const graph::TaskGraph g = dct_task_graph();
  EXPECT_EQ(g.num_tasks(), 32);
  EXPECT_EQ(g.num_edges(), 64);  // 16 T2 tasks x 4 inputs
  const auto levels = graph::task_levels(g);
  int level0 = 0, level1 = 0;
  for (const int l : levels) {
    (l == 0 ? level0 : level1) += 1;
    EXPECT_LE(l, 1);
  }
  EXPECT_EQ(level0, 16);
  EXPECT_EQ(level1, 16);
}

TEST(DctTest, PinnedNumbersMatchDesignDoc) {
  const graph::TaskGraph g = dct_task_graph();
  // Serial worst case: 16*750 + 16*840 = 25440 ns (the paper's Dmax term).
  EXPECT_DOUBLE_EQ(graph::total_task_weight(
                       g, [&](graph::TaskId t) { return g.max_latency(t); }),
                   25440.0);
  // Fastest critical path: 375 + 420 = 795 ns (the paper's Dmin term).
  EXPECT_DOUBLE_EQ(graph::min_latency_critical_path(g), 795.0);
}

TEST(DctTest, EachT2DependsOnItsRow) {
  const graph::TaskGraph g = dct_task_graph();
  const graph::TaskId z = g.find_task("T2_23");
  ASSERT_NE(z, -1);
  ASSERT_EQ(g.predecessors(z).size(), 4u);
  for (const graph::TaskId p : g.predecessors(z)) {
    EXPECT_EQ(g.task(p).name.substr(0, 4), "T1_2");
  }
}

TEST(DctTest, EstimatedVariantValid) {
  const graph::TaskGraph g = dct_task_graph(DesignPointSource::kEstimated);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.num_tasks(), 32);
}

TEST(RandomGraphTest, DeterministicForSeed) {
  RandomGraphOptions options;
  options.seed = 42;
  const graph::TaskGraph a = random_task_graph(options);
  const graph::TaskGraph b = random_task_graph(options);
  EXPECT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (graph::TaskId t = 0; t < a.num_tasks(); ++t) {
    EXPECT_EQ(a.task(t).name, b.task(t).name);
    EXPECT_EQ(a.task(t).design_points, b.task(t).design_points);
  }
}

TEST(RandomGraphTest, RespectsShapeParameters) {
  RandomGraphOptions options;
  options.num_tasks = 20;
  options.num_layers = 5;
  options.num_design_points = 4;
  options.seed = 7;
  const graph::TaskGraph g = random_task_graph(options);
  EXPECT_EQ(g.num_tasks(), 20);
  EXPECT_NO_THROW(g.validate());
  const auto levels = graph::task_levels(g);
  EXPECT_LE(*std::max_element(levels.begin(), levels.end()), 4);
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(g.task(t).design_points.size(), 4u);
  }
}

TEST(RandomGraphTest, DifferentSeedsDiffer) {
  RandomGraphOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const graph::TaskGraph ga = random_task_graph(a);
  const graph::TaskGraph gb = random_task_graph(b);
  bool any_diff = ga.num_edges() != gb.num_edges();
  for (graph::TaskId t = 0; !any_diff && t < ga.num_tasks(); ++t) {
    any_diff = !(ga.task(t).design_points == gb.task(t).design_points);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChainTest, StructureAndValidity) {
  const graph::TaskGraph g = chain_task_graph(6);
  EXPECT_EQ(g.num_tasks(), 6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.leaves().size(), 1u);
  const auto paths = graph::enumerate_root_leaf_paths(g);
  EXPECT_EQ(paths.paths.size(), 1u);
}

TEST(ButterflyTest, StructureAndValidity) {
  const graph::TaskGraph g = butterfly_task_graph(3, 8);
  EXPECT_EQ(g.num_tasks(), 24);
  EXPECT_NO_THROW(g.validate());
  // Every non-first-stage task has exactly two predecessors.
  int two_pred = 0;
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.predecessors(t).size() == 2u) ++two_pred;
  }
  EXPECT_EQ(two_pred, 16);
  EXPECT_THROW(butterfly_task_graph(3, 6), InvalidArgumentError);
}

}  // namespace
}  // namespace sparcs::workloads

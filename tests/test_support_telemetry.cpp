// Tests for the live telemetry pipeline (support/telemetry.hpp): correlation
// ids, the live solve table, sampler lifecycle and JSONL shape, search-tree
// recording and dump invariants, the JSON log sink, the metrics snapshot
// epoch contract, and the solver's convergence timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "milp/solver.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/span.hpp"
#include "support/telemetry.hpp"

namespace sparcs {
namespace {

using sparcs::testing::is_valid_json;
using sparcs::testing::is_valid_json_lines;

/// Leaves every telemetry/metrics/trace subsystem in the process-default
/// disabled state, so suites sharing the binary never see stale state.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    if (telemetry::sampler_running()) telemetry::stop_sampler();
    telemetry::set_active(false);
    telemetry::set_tree_active(false);
    telemetry::tree_clear();
    telemetry::reset_pipeline();
    set_json_log_sink(nullptr);
    metrics::set_enabled(false);
    metrics::registry().reset();
    trace::set_enabled(false);
    trace::clear();
  }
};

// --- correlation ids -------------------------------------------------------

TEST_F(TelemetryTest, CorrelationIdsAreUniqueAndNonZero) {
  const std::uint64_t a = telemetry::next_correlation_id();
  const std::uint64_t b = telemetry::next_correlation_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TelemetryTest, CorrelationScopeNestsAndRestores) {
  EXPECT_EQ(telemetry::current_correlation_id(), 0u);
  {
    telemetry::CorrelationScope outer(7);
    EXPECT_EQ(telemetry::current_correlation_id(), 7u);
    {
      telemetry::CorrelationScope inner(9);
      EXPECT_EQ(telemetry::current_correlation_id(), 9u);
    }
    EXPECT_EQ(telemetry::current_correlation_id(), 7u);
  }
  EXPECT_EQ(telemetry::current_correlation_id(), 0u);
}

// --- live solve table ------------------------------------------------------

TEST_F(TelemetryTest, SolveScopeInertWhileInactive) {
  telemetry::SolveScope scope("test");
  EXPECT_EQ(scope.id(), 0u);
  EXPECT_EQ(scope.slot(), nullptr);
  EXPECT_EQ(telemetry::current_correlation_id(), 0u);
}

TEST_F(TelemetryTest, SolveScopeClaimsAndReleasesSlot) {
  telemetry::set_active(true);
  const std::int64_t completed_before = telemetry::solves_completed();
  {
    telemetry::SolveScope scope("test");
    ASSERT_NE(scope.slot(), nullptr);
    EXPECT_NE(scope.id(), 0u);
    EXPECT_EQ(telemetry::current_correlation_id(), scope.id());
    EXPECT_EQ(scope.slot()->correlation.load(), scope.id());
    scope.slot()->nodes.fetch_add(5);
  }
  EXPECT_EQ(telemetry::solves_completed(), completed_before + 1);
  EXPECT_EQ(telemetry::current_correlation_id(), 0u);
}

TEST_F(TelemetryTest, SolveScopeReusesCallerCorrelation) {
  telemetry::set_active(true);
  telemetry::CorrelationScope outer(telemetry::next_correlation_id());
  const std::uint64_t outer_id = telemetry::current_correlation_id();
  telemetry::SolveScope scope("test");
  // A solve launched under an existing correlation id (a Reduce_Latency
  // probe) keeps it, so the probe's span and the solve's records join.
  EXPECT_EQ(scope.id(), outer_id);
}

// --- sampler ---------------------------------------------------------------

TEST_F(TelemetryTest, SamplerRequiresSink) {
  telemetry::SamplerOptions options;
  options.sink = nullptr;
  EXPECT_FALSE(telemetry::start_sampler(options));
  EXPECT_FALSE(telemetry::sampler_running());
}

TEST_F(TelemetryTest, SamplerEmitsWellFormedJsonl) {
  std::ostringstream sink;
  telemetry::SamplerOptions options;
  options.sink = &sink;
  options.interval_sec = 10.0;  // interval samples effectively disabled
  ASSERT_TRUE(telemetry::start_sampler(options));
  EXPECT_TRUE(telemetry::sampler_running());
  EXPECT_TRUE(telemetry::active());
  // A second sampler cannot start while one runs.
  EXPECT_FALSE(telemetry::start_sampler(options));

  telemetry::set_stage("phase1", 3);
  telemetry::publish_best_latency(4000.0, 3);
  telemetry::publish_best_latency(3500.0, 4);
  telemetry::sample_now();
  telemetry::stop_sampler();
  EXPECT_FALSE(telemetry::sampler_running());
  EXPECT_FALSE(telemetry::active());

  const std::string jsonl = sink.str();
  EXPECT_TRUE(is_valid_json_lines(jsonl));
  EXPECT_NE(jsonl.find("\"type\": \"start\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\": \"sample\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\": \"convergence\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\": \"final\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"stage\": \"phase1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"trigger\": \"stage\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"incumbent_latency_ns\": 3500"), std::string::npos);
}

TEST_F(TelemetryTest, SamplerReportsLiveSolves) {
  std::ostringstream sink;
  telemetry::SamplerOptions options;
  options.sink = &sink;
  options.interval_sec = 10.0;
  options.include_metrics = false;
  ASSERT_TRUE(telemetry::start_sampler(options));
  {
    telemetry::SolveScope scope("test");
    ASSERT_NE(scope.slot(), nullptr);
    scope.slot()->nodes.store(42);
    scope.slot()->incumbent.store(123.0);
    scope.slot()->has_incumbent.store(true);
    telemetry::sample_now();
  }
  telemetry::stop_sampler();
  const std::string jsonl = sink.str();
  EXPECT_TRUE(is_valid_json_lines(jsonl));
  EXPECT_NE(jsonl.find("\"nodes\": 42"), std::string::npos);
  EXPECT_NE(jsonl.find("\"incumbent\": 123"), std::string::npos);
}

TEST_F(TelemetryTest, ProgressLineIsRewrittenInPlace) {
  std::ostringstream sink, progress;
  telemetry::SamplerOptions options;
  options.sink = &sink;
  options.progress = &progress;
  options.interval_sec = 10.0;
  ASSERT_TRUE(telemetry::start_sampler(options));
  telemetry::set_stage("phase2", 6);
  telemetry::stop_sampler();
  const std::string text = progress.str();
  EXPECT_NE(text.find('\r'), std::string::npos);
  EXPECT_NE(text.find("phase2"), std::string::npos);
  EXPECT_NE(text.find("N=6"), std::string::npos);
}

// --- search tree -----------------------------------------------------------

TEST_F(TelemetryTest, TreeDumpRelabelsChildlessBranchedNodes) {
  telemetry::set_tree_active(true);
  const std::int64_t root = telemetry::tree_next_id();
  telemetry::tree_record({root, -1, 0, -1, 0.0, 0.0,
                          telemetry::NodeKind::kBranched});
  const std::int64_t child = telemetry::tree_next_id();
  telemetry::tree_record({child, root, 1, 4, 1.0, 1.0,
                          telemetry::NodeKind::kBranched});
  const std::int64_t leaf = telemetry::tree_next_id();
  telemetry::tree_record({leaf, child, 2, 5, 0.0, 0.0,
                          telemetry::NodeKind::kIntegral});
  const std::int64_t abandoned = telemetry::tree_next_id();
  telemetry::tree_record({abandoned, root, 1, 4, 0.0, 0.0,
                          telemetry::NodeKind::kBranched});
  EXPECT_EQ(telemetry::tree_size(), 4u);

  std::ostringstream json;
  telemetry::write_tree_json(json);
  ASSERT_TRUE(is_valid_json(json.str()));
  // `abandoned` branched but no child record exists: relabelled "budget" so
  // every non-root node in the dump has a prune reason or children.
  const std::string text = json.str();
  EXPECT_NE(text.find("\"recorded\": 4"), std::string::npos);
  EXPECT_NE(text.find("\"budget\""), std::string::npos);
  EXPECT_NE(text.find("\"integral\""), std::string::npos);

  std::ostringstream dot;
  telemetry::write_tree_dot(dot);
  EXPECT_NE(dot.str().find("digraph"), std::string::npos);
  EXPECT_NE(dot.str().find("->"), std::string::npos);
}

TEST_F(TelemetryTest, TreeRingBufferEvictsOldestFirst) {
  telemetry::set_tree_active(true);
  telemetry::set_tree_capacity(4);
  for (int i = 0; i < 10; ++i) {
    const std::int64_t id = telemetry::tree_next_id();
    telemetry::tree_record({id, id - 1, i, 0, 0.0, 0.0,
                            telemetry::NodeKind::kIntegral});
  }
  EXPECT_EQ(telemetry::tree_size(), 4u);
  std::ostringstream json;
  telemetry::write_tree_json(json);
  EXPECT_TRUE(is_valid_json(json.str()));
  EXPECT_NE(json.str().find("\"evicted\": 6"), std::string::npos);
  telemetry::set_tree_capacity(1 << 16);  // restore the default
}

TEST_F(TelemetryTest, TreeRecordingDisabledIsNoop) {
  telemetry::tree_record({telemetry::tree_next_id(), -1, 0, -1, 0.0, 0.0,
                          telemetry::NodeKind::kBranched});
  EXPECT_EQ(telemetry::tree_size(), 0u);
  std::ostringstream json;
  telemetry::write_tree_json(json);
  EXPECT_TRUE(is_valid_json(json.str()));
}

// --- JSON log sink ---------------------------------------------------------

TEST_F(TelemetryTest, JsonLogSinkEscapesAndCarriesCorrelation) {
  std::ostringstream sink;
  set_json_log_sink(&sink);
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarning);
  telemetry::set_active(true);
  {
    telemetry::CorrelationScope scope(1234);
    SPARCS_WLOG << "quote \" backslash \\ newline \n tab \t done";
  }
  SPARCS_WLOG << "no correlation";
  set_json_log_sink(nullptr);
  set_log_level(before);

  const std::string jsonl = sink.str();
  ASSERT_TRUE(is_valid_json_lines(jsonl));
  EXPECT_NE(jsonl.find("\"corr\": 1234"), std::string::npos);
  EXPECT_NE(jsonl.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(jsonl.find("\\\"") , std::string::npos);
  EXPECT_NE(jsonl.find("\\n"), std::string::npos);
  // The second statement ran without a bound id: no "corr" on its line.
  const std::size_t second = jsonl.find("no correlation");
  ASSERT_NE(second, std::string::npos);
  const std::size_t line_start = jsonl.rfind('\n', second);
  EXPECT_EQ(jsonl.find("\"corr\"", line_start), std::string::npos);
}

// --- metrics snapshot epoch (snapshot-consistency contract) ----------------

TEST_F(TelemetryTest, SnapshotEpochAdvancesOnRegistryReset) {
  metrics::Registry& reg = metrics::registry();
  const std::uint64_t before = reg.snapshot().epoch;
  reg.reset();
  EXPECT_EQ(reg.snapshot().epoch, before + 1);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"epoch\""), std::string::npos);
}

TEST_F(TelemetryTest, SnapshotsStayConsistentUnderConcurrentAddAndReset) {
  metrics::set_enabled(true);
  metrics::Registry& reg = metrics::registry();
  metrics::Counter& counter = reg.counter("test.stress");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) counter.add(1);
    });
  }
  // Interleave snapshots and registry-wide resets against the writers. The
  // contract under test: every snapshot is internally consistent, counter
  // values never go negative, and deltas are only trusted within an epoch.
  std::int64_t last_value = 0;
  std::uint64_t last_epoch = reg.snapshot().epoch;
  for (int i = 0; i < 200; ++i) {
    if (i % 50 == 49) reg.reset();
    const metrics::MetricsSnapshot snap = reg.snapshot();
    for (const auto& entry : snap.counters) {
      EXPECT_GE(entry.value, 0);
      if (entry.name == "test.stress") {
        if (snap.epoch == last_epoch) EXPECT_GE(entry.value, last_value);
        last_value = entry.value;
        last_epoch = snap.epoch;
      }
    }
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

// --- solver integration ----------------------------------------------------

TEST_F(TelemetryTest, SolveRecordsConvergenceTimeline) {
  milp::Model m("knapsack");
  const milp::VarId a = m.add_binary("a");
  const milp::VarId b = m.add_binary("b");
  const milp::VarId c = m.add_binary("c");
  m.add_constraint(3.0 * milp::LinExpr(a) + 4.0 * milp::LinExpr(b) +
                       2.0 * milp::LinExpr(c) <= 6.0, "cap");
  m.set_objective(10.0 * milp::LinExpr(a) + 13.0 * milp::LinExpr(b) +
                      7.0 * milp::LinExpr(c), /*minimize=*/false);
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 1;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  ASSERT_EQ(s.status, milp::SolveStatus::kOptimal);
  ASSERT_FALSE(s.stats.convergence.empty());
  // Maximization: incumbent objectives are non-decreasing over time, nodes
  // and timestamps non-decreasing, and the last incumbent is the optimum.
  double last_obj = -1e300;
  double last_t = 0.0;
  for (const milp::ConvergenceEvent& e : s.stats.convergence) {
    EXPECT_GE(e.t_sec, last_t);
    last_t = e.t_sec;
    if (e.kind == milp::ConvergenceEvent::Kind::kIncumbent) {
      EXPECT_GE(e.objective, last_obj);
      last_obj = e.objective;
    }
  }
  EXPECT_NEAR(last_obj, 20.0, 1e-6);
  const std::string json = s.stats.to_json();
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("\"convergence\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"incumbent\""), std::string::npos);
}

TEST_F(TelemetryTest, ParallelSolveMergesOrderedConvergence) {
  milp::Model m("pick");
  std::vector<milp::VarId> xs;
  milp::LinExpr sum;
  milp::LinExpr obj;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(m.add_binary("x" + std::to_string(i)));
    sum += milp::LinExpr(xs.back());
    obj += static_cast<double>(i + 1) * milp::LinExpr(xs.back());
  }
  m.add_constraint(sum == 6.0, "pick6");
  m.set_objective(obj, /*minimize=*/true);
  milp::SolverParams params = milp::optimality_params();
  params.num_threads = 4;
  const milp::MilpSolution s = milp::Solver(m, params).solve();
  ASSERT_EQ(s.status, milp::SolveStatus::kOptimal);
  ASSERT_FALSE(s.stats.convergence.empty());
  double last_t = 0.0;
  for (const milp::ConvergenceEvent& e : s.stats.convergence) {
    EXPECT_GE(e.t_sec, last_t);  // merged timeline stays time-ordered
    last_t = e.t_sec;
  }
}

TEST_F(TelemetryTest, SolveUnderTelemetryPublishesLiveState) {
  telemetry::set_active(true);
  std::ostringstream sink;
  telemetry::SamplerOptions options;
  options.sink = &sink;
  options.interval_sec = 10.0;
  options.include_metrics = false;
  ASSERT_TRUE(telemetry::start_sampler(options));

  telemetry::set_tree_active(true);
  milp::Model m("tree");
  std::vector<milp::VarId> xs;
  milp::LinExpr sum;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(m.add_binary("x" + std::to_string(i)));
    sum += milp::LinExpr(xs.back());
  }
  m.add_constraint(sum == 4.0, "pick4");
  milp::SolverParams params;
  params.num_threads = 1;
  const milp::MilpSolution s =
      milp::Solver(m, milp::first_feasible_params(params)).solve();
  EXPECT_EQ(s.status, milp::SolveStatus::kFeasible);
  telemetry::stop_sampler();

  EXPECT_GT(telemetry::tree_size(), 0u);
  std::ostringstream json;
  telemetry::write_tree_json(json);
  EXPECT_TRUE(is_valid_json(json.str()));
  EXPECT_TRUE(is_valid_json_lines(sink.str()));
  EXPECT_GE(telemetry::solves_completed(), 1);
}

// --- live solve table exhaustion -------------------------------------------

TEST_F(TelemetryTest, SlotExhaustionDegradesGracefullyAndIsCounted) {
  telemetry::set_active(true);
  metrics::set_enabled(true);

  constexpr int kOverflow = 8;
  std::vector<std::unique_ptr<telemetry::SolveScope>> scopes;
  for (int i = 0; i < telemetry::kLiveSolveSlots + kOverflow; ++i) {
    scopes.push_back(std::make_unique<telemetry::SolveScope>("exhaustion"));
  }
  EXPECT_EQ(telemetry::live_solve_slots_in_use(), telemetry::kLiveSolveSlots);
  EXPECT_EQ(telemetry::live_solve_slots_exhausted(), kOverflow);
  EXPECT_EQ(metrics::registry()
                .counter("telemetry.live_solve.slot_exhausted")
                .value(),
            kOverflow);
  // Overflow scopes degrade, not break: they carry a working correlation id
  // (logs/spans stay joinable) and merely publish to no slot.
  EXPECT_EQ(scopes.back()->slot(), nullptr);
  EXPECT_NE(scopes.back()->id(), 0u);
  EXPECT_NE(scopes.front()->slot(), nullptr);

  // LIFO teardown keeps each scope's thread-local correlation restore exact.
  while (!scopes.empty()) scopes.pop_back();
  EXPECT_EQ(telemetry::live_solve_slots_in_use(), 0);

  telemetry::reset_pipeline();
  EXPECT_EQ(telemetry::live_solve_slots_exhausted(), 0);
}

TEST_F(TelemetryTest, SlotExhaustionUnderConcurrentScopes) {
  telemetry::set_active(true);

  constexpr int kThreads = telemetry::kLiveSolveSlots + 16;
  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
  std::atomic<int> without_slot{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      const telemetry::SolveScope scope("concurrent-exhaustion");
      ready.fetch_add(1);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (scope.slot() == nullptr) without_slot.fetch_add(1);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  // Every thread holds its scope at this point: the table must be full and
  // the excess accounted, with no thread crashed or blocked.
  EXPECT_EQ(telemetry::live_solve_slots_in_use(), telemetry::kLiveSolveSlots);
  release.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(without_slot.load(), kThreads - telemetry::kLiveSolveSlots);
  EXPECT_EQ(telemetry::live_solve_slots_exhausted(),
            kThreads - telemetry::kLiveSolveSlots);
  EXPECT_EQ(telemetry::live_solve_slots_in_use(), 0);
}

// --- process memory --------------------------------------------------------

TEST_F(TelemetryTest, MemoryStatusReadsRss) {
  const telemetry::MemoryStatus mem = telemetry::read_memory_status();
#ifdef __linux__
  EXPECT_GT(mem.rss_kb, 0);
  EXPECT_GE(mem.rss_peak_kb, mem.rss_kb);
#else
  EXPECT_GE(mem.rss_kb, 0);
#endif
}

}  // namespace
}  // namespace sparcs

#include <gtest/gtest.h>

#include "milp/expr.hpp"
#include "milp/lp_writer.hpp"
#include "milp/model.hpp"
#include "support/error.hpp"

namespace sparcs::milp {
namespace {

TEST(LinExprTest, ConstructionAndEvaluate) {
  LinExpr e(VarId{0});
  e += LinExpr(VarId{1}, 2.0);
  e.add_constant(3.0);
  EXPECT_DOUBLE_EQ(e.evaluate({10.0, 5.0}), 10.0 + 10.0 + 3.0);
}

TEST(LinExprTest, OperatorAlgebra) {
  const LinExpr x0(VarId{0});
  const LinExpr x1(VarId{1});
  LinExpr e = 2.0 * x0 + x1 - 0.5 * x0;
  e.normalize();
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(e.terms()[0].coef, 1.5);
  EXPECT_DOUBLE_EQ(e.terms()[1].coef, 1.0);
}

TEST(LinExprTest, NormalizeMergesAndDrops) {
  LinExpr e;
  e.add_term(2, 1.0);
  e.add_term(1, 2.0);
  e.add_term(2, -1.0);
  e.normalize();
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].var, 1);
}

TEST(LinExprTest, Negation) {
  LinExpr e = -(LinExpr(VarId{0}) + 2.0);
  EXPECT_DOUBLE_EQ(e.constant(), -2.0);
  EXPECT_DOUBLE_EQ(e.terms()[0].coef, -1.0);
}

TEST(LinExprTest, ToStringReadable) {
  LinExpr e = 3.0 * LinExpr(VarId{2}) - LinExpr(VarId{7}, 1.5) + 4.0;
  const std::string s = e.to_string();
  EXPECT_NE(s.find("3 x2"), std::string::npos);
  EXPECT_NE(s.find("1.5 x7"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
}

TEST(RelationTest, MovesConstantsToRhs) {
  const Relation r = (LinExpr(VarId{0}) + 5.0 <= LinExpr(VarId{1}) + 7.0);
  EXPECT_EQ(r.sense, Sense::kLessEqual);
  EXPECT_DOUBLE_EQ(r.lhs.constant(), 0.0);
  EXPECT_DOUBLE_EQ(r.rhs, 2.0);
  ASSERT_EQ(r.lhs.terms().size(), 2u);
}

TEST(ModelTest, AddVariablesAndStats) {
  Model m("test");
  m.add_binary("b");
  m.add_integer(0, 10, "i");
  m.add_continuous(-1, 1, "c");
  const ModelStats s = m.stats();
  EXPECT_EQ(s.num_vars, 3);
  EXPECT_EQ(s.num_binary, 1);
  EXPECT_EQ(s.num_integer, 1);
  EXPECT_EQ(s.num_continuous, 1);
}

TEST(ModelTest, ConstraintNormalization) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  const VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) + 1.0 >= 4.0, "c");
  const ConstraintInfo& c = m.constraint(0);
  EXPECT_EQ(c.sense, Sense::kGreaterEqual);
  EXPECT_DOUBLE_EQ(c.rhs, 3.0);
  EXPECT_EQ(c.terms.size(), 2u);
}

TEST(ModelTest, TightenBoundsOnlyTightens) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  m.tighten_bounds(x, -5, 8);
  EXPECT_DOUBLE_EQ(m.var(x).lb, 0);
  EXPECT_DOUBLE_EQ(m.var(x).ub, 8);
  EXPECT_THROW(m.tighten_bounds(x, 9, 20), InvalidArgumentError);
}

TEST(ModelTest, EmptyBoundBoxRejected) {
  Model m;
  EXPECT_THROW(m.add_continuous(5, 4, "bad"), InvalidArgumentError);
}

TEST(ModelTest, ValidateRejectsInfiniteIntegerBounds) {
  Model m;
  m.add_var(VarType::kInteger, 0, kInfinity, "i");
  EXPECT_THROW(m.validate(), InvalidArgumentError);
}

TEST(ModelTest, BranchAnnotations) {
  Model m;
  const VarId x = m.add_binary("x");
  m.set_branch_priority(x, 5);
  m.set_branch_hint(x, 1.0);
  EXPECT_EQ(m.var(x).branch_priority, 5);
  EXPECT_DOUBLE_EQ(m.var(x).branch_hint, 1.0);
}

TEST(LpWriterTest, ProducesSections) {
  Model m("demo");
  const VarId x = m.add_binary("x");
  const VarId y = m.add_integer(0, 4, "y");
  const VarId z = m.add_continuous(0, kInfinity, "z");
  m.add_constraint(LinExpr(x) + 2.0 * LinExpr(y) - LinExpr(z) <= 5.0, "row1");
  m.set_objective(LinExpr(x) + LinExpr(z));
  const std::string text = to_lp_string(m);
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("row1:"), std::string::npos);
  EXPECT_NE(text.find("Binary"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

}  // namespace
}  // namespace sparcs::milp

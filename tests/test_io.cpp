#include <gtest/gtest.h>

#include <sstream>

#include "arch/device.hpp"
#include "core/solution.hpp"
#include "io/csv.hpp"
#include "io/dot.hpp"
#include "io/table.hpp"
#include "support/error.hpp"
#include "workloads/ar_filter.hpp"

namespace sparcs::io {
namespace {

TEST(DotTest, TaskGraphExport) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const std::string dot = to_dot_string(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("T1"), std::string::npos);
  EXPECT_NE(dot.find("T1 -> T2"), std::string::npos);
  EXPECT_EQ(dot.find("cluster"), std::string::npos);
}

TEST(DotTest, PartitionedExportHasClusters) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 400, 64, 50);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 2;
  design.assignment = {{1, 0}, {1, 0}, {1, 0}, {2, 0}, {2, 0}, {2, 0}};
  core::recompute_latency(g, dev, design);
  const std::string dot = to_dot_string(g, design);
  EXPECT_NE(dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p2"), std::string::npos);
  EXPECT_NE(dot.find("partition 1"), std::string::npos);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"a", "long_header"});
  table.add_row({"xxxxx", "1"});
  table.add_separator();
  table.add_row({"y", "2"});
  const std::string s = table.to_string();
  EXPECT_NE(s.find("| a     | long_header |"), std::string::npos);
  EXPECT_NE(s.find("| xxxxx | 1           |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 3u);
}

TEST(AsciiTableTest, RejectsBadRows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgumentError);
  EXPECT_THROW(AsciiTable({}), InvalidArgumentError);
}

TEST(TraceRenderTest, ShowsInfeasibleAndFeasibleRows) {
  core::Trace trace;
  core::IterationRecord r1;
  r1.num_partitions = 4;
  r1.iteration = 1;
  r1.d_max_bound = 25440 + 400;
  r1.d_min_bound = 795 + 400;
  r1.outcome = core::IterationOutcome::kFeasible;
  r1.achieved_latency = 7000 + 400;
  trace.push_back(r1);
  core::IterationRecord r2 = r1;
  r2.num_partitions = 5;
  r2.iteration = 1;
  r2.outcome = core::IterationOutcome::kInfeasible;
  r2.achieved_latency = 0;
  trace.push_back(r2);

  const std::string s = render_trace(trace, 100.0, /*subtract_reconfig=*/true);
  EXPECT_NE(s.find("Inf."), std::string::npos);
  EXPECT_NE(s.find("7000"), std::string::npos);   // 7400 - 4*100
  EXPECT_NE(s.find("25440"), std::string::npos);  // bound without N*Ct
}

TEST(TraceRenderTest, ShowsSolverStatsColumns) {
  core::Trace trace;
  core::IterationRecord r;
  r.num_partitions = 4;
  r.iteration = 1;
  r.d_max_bound = 1000;
  r.d_min_bound = 500;
  r.outcome = core::IterationOutcome::kFeasible;
  r.achieved_latency = 800;
  r.nodes = 12;
  r.stats.nodes_pruned_by_bound = 3;
  r.stats.nodes_pruned_infeasible = 4;
  r.stats.simplex_iterations = 91;
  trace.push_back(r);

  const std::string s = render_trace(trace, 0.0, /*subtract_reconfig=*/false);
  EXPECT_NE(s.find("pruned"), std::string::npos);
  EXPECT_NE(s.find("LPit"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);   // 3 + 4 pruned nodes
  EXPECT_NE(s.find("91"), std::string::npos);  // simplex iterations
}

TEST(CsvTest, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, TraceRoundTripShape) {
  core::Trace trace;
  core::IterationRecord r;
  r.num_partitions = 3;
  r.iteration = 2;
  r.d_max_bound = 123.5;
  r.d_min_bound = 50;
  r.outcome = core::IterationOutcome::kLimit;
  r.stats.simplex_iterations = 17;
  r.stats.nodes_pruned_by_bound = 2;
  r.stats.nodes_pruned_infeasible = 1;
  trace.push_back(r);
  std::ostringstream os;
  write_trace_csv(os, trace);
  const std::string s = os.str();
  EXPECT_NE(s.find("N,iteration"), std::string::npos);
  EXPECT_NE(s.find("simplex_iterations,nodes_pruned"), std::string::npos);
  EXPECT_NE(s.find("3,2,123.5,50,limit"), std::string::npos);
  // The row ends with the two solver-stat columns: 17 LP iterations and
  // 2 + 1 = 3 pruned nodes.
  EXPECT_NE(s.find(",17,3\n"), std::string::npos);
}

TEST(CsvTest, ParseHandlesQuotingAndCrlf) {
  const auto rows = parse_csv("a,\"b,c\",\"say \"\"hi\"\"\"\r\nd,\"multi\nline\",f\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c", "say \"hi\""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"d", "multi\nline", "f"}));
}

TEST(CsvTest, ParseRowsTrackLineNumbers) {
  const auto rows = parse_csv_rows("h1,h2\n\"a\nb\",c\nx,y\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].line, 1);
  EXPECT_EQ(rows[1].line, 2);  // quoted cell spans lines 2-3
  EXPECT_EQ(rows[2].line, 4);
}

TEST(CsvTest, ParseRejectsMalformedQuoting) {
  EXPECT_THROW(parse_csv("a,\"unterminated\n"), InvalidArgumentError);
  EXPECT_THROW(parse_csv("a,b\"c\n"), InvalidArgumentError);
  EXPECT_THROW(parse_csv("a,\"x\"tail\n"), InvalidArgumentError);
}

TEST(CsvTest, TraceRoundTripThroughReader) {
  core::Trace trace;
  for (int i = 0; i < 3; ++i) {
    core::IterationRecord r;
    r.num_partitions = 3 + i;
    r.iteration = i + 1;
    r.d_max_bound = 100.0 + i;
    r.d_min_bound = 50.0;
    r.outcome = i == 1 ? core::IterationOutcome::kInfeasible
                       : core::IterationOutcome::kFeasible;
    r.achieved_latency = 90.0 - i;
    r.nodes = 11 * (i + 1);
    r.seconds = 0.25;
    r.stats.simplex_iterations = 17 + i;
    r.stats.nodes_pruned_by_bound = 2;
    trace.push_back(r);
  }
  std::ostringstream os;
  write_trace_csv(os, trace);
  const core::Trace parsed = read_trace_csv_string(os.str());
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].num_partitions, trace[i].num_partitions);
    EXPECT_EQ(parsed[i].iteration, trace[i].iteration);
    EXPECT_DOUBLE_EQ(parsed[i].d_max_bound, trace[i].d_max_bound);
    EXPECT_EQ(parsed[i].outcome, trace[i].outcome);
    EXPECT_EQ(parsed[i].nodes, trace[i].nodes);
    EXPECT_EQ(parsed[i].stats.simplex_iterations,
              trace[i].stats.simplex_iterations);
  }
}

TEST(CsvTest, ReaderRejectsCorruptTraces) {
  const std::string header =
      "N,iteration,d_max_bound,d_min_bound,outcome,achieved_latency_ns,"
      "nodes,seconds,simplex_iterations,nodes_pruned\n";
  struct Case {
    const char* label;
    std::string text;
  };
  const Case cases[] = {
      {"empty input", ""},
      {"wrong header", "N,iteration\n1,2\n"},
      {"reordered header",
       "iteration,N,d_max_bound,d_min_bound,outcome,achieved_latency_ns,"
       "nodes,seconds,simplex_iterations,nodes_pruned\n"},
      {"truncated row", header + "3,1,100,50,feasible\n"},
      {"extra field", header + "3,1,100,50,feasible,90,11,0.25,17,3,junk\n"},
      {"bad number", header + "3,one,100,50,feasible,90,11,0.25,17,3\n"},
      {"non-finite", header + "3,1,inf,50,feasible,90,11,0.25,17,3\n"},
      {"negative count", header + "3,1,100,50,feasible,90,-11,0.25,17,3\n"},
      {"unknown outcome", header + "3,1,100,50,maybe,90,11,0.25,17,3\n"},
      {"overflow", header + "99999999999,1,100,50,feasible,90,11,0.25,17,3\n"},
  };
  for (const Case& c : cases) {
    EXPECT_THROW(read_trace_csv_string(c.text), InvalidArgumentError)
        << c.label;
  }
  // Blank lines (a common truncation artifact) are tolerated, not fatal.
  const core::Trace ok = read_trace_csv_string(
      header + "\n3,1,100,50,feasible,90,11,0.25,17,3\n\n");
  EXPECT_EQ(ok.size(), 1u);
}

}  // namespace
}  // namespace sparcs::io

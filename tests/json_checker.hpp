// Minimal JSON well-formedness checker shared across test suites (no
// external deps). Validates one complete document; use is_valid_json_lines()
// for newline-delimited JSON streams.
#pragma once

#include <cctype>
#include <sstream>
#include <string>

namespace sparcs::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[start + (text_[start] == '-')]));
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline bool is_valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

/// Every non-empty line must be one complete JSON document (JSON Lines).
inline bool is_valid_json_lines(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  bool any = false;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (!is_valid_json(line)) return false;
    any = true;
  }
  return any;
}

}  // namespace sparcs::testing

#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/solution.hpp"
#include "graph/task_graph.hpp"

namespace sparcs::core {
namespace {

std::vector<graph::DesignPoint> pt(double area, double latency) {
  return {{"m", area, latency}};
}

/// Scenario from Figure 3 of the paper: four tasks over three partitions
/// with data flowing across both adjacent and non-adjacent partitions.
struct Fig3 {
  graph::TaskGraph g{"fig3"};
  PartitionedDesign design;
  arch::Device dev = arch::custom("d", 1000, 100, 10);

  Fig3() {
    const graph::TaskId a = g.add_task("A", pt(10, 100));
    const graph::TaskId b = g.add_task("B", pt(10, 100));
    const graph::TaskId c = g.add_task("C", pt(10, 100));
    const graph::TaskId d = g.add_task("D", pt(10, 100));
    g.add_edge(a, b, 3);  // P1 -> P2: alive during P2
    g.add_edge(a, c, 5);  // P1 -> P3: alive during P2 and P3
    g.add_edge(b, c, 7);  // P2 -> P3: alive during P3
    g.add_edge(b, d, 2);  // P2 -> P2: never crosses
    design.num_partitions_allocated = 3;
    design.assignment = {{1, 0}, {2, 0}, {3, 0}, {2, 0}};
    recompute_latency(g, dev, design);
  }
};

TEST(SolutionTest, Fig3MemoryAccounting) {
  Fig3 f;
  EXPECT_DOUBLE_EQ(partition_memory(f.g, f.design, 1), 0.0);
  // During P2: A->B (3) and A->C (5) are alive.
  EXPECT_DOUBLE_EQ(partition_memory(f.g, f.design, 2), 8.0);
  // During P3: A->C (5) and B->C (7).
  EXPECT_DOUBLE_EQ(partition_memory(f.g, f.design, 3), 12.0);
}

TEST(SolutionTest, Fig3EnvironmentMemory) {
  Fig3 f;
  f.g.mutable_task(0).env_in = 11;   // consumed at P1
  f.g.mutable_task(2).env_in = 13;   // consumed at P3: alive P1..P3
  f.g.mutable_task(1).env_out = 4;   // produced at P2: alive P2..P3
  EXPECT_DOUBLE_EQ(partition_memory(f.g, f.design, 1), 11 + 13);
  EXPECT_DOUBLE_EQ(partition_memory(f.g, f.design, 2), 13 + 4 + 8);
  EXPECT_DOUBLE_EQ(partition_memory(f.g, f.design, 3), 13 + 4 + 12);
}

TEST(SolutionTest, Fig3ValidatesAgainstSufficientDevice) {
  Fig3 f;
  EXPECT_TRUE(validate_design(f.g, f.dev, f.design).ok);
  // Shrink the memory below the P3 requirement (12 units).
  f.dev.memory_capacity = 11;
  const DesignCheck check = validate_design(f.g, f.dev, f.design);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.violation.find("memory"), std::string::npos);
}

/// Scenario from Figure 4 of the paper: the latency of a partition is the
/// longest path among the task chains mapped to it (350 vs 400 vs 150 in
/// partition 1; 300 in partition 2).
struct Fig4 {
  graph::TaskGraph g{"fig4"};
  PartitionedDesign design;
  arch::Device dev = arch::custom("d", 1000, 1000, 25);

  Fig4() {
    const graph::TaskId a1 = g.add_task("a1", pt(10, 100));
    const graph::TaskId a2 = g.add_task("a2", pt(10, 250));
    const graph::TaskId b1 = g.add_task("b1", pt(10, 150));
    const graph::TaskId b2 = g.add_task("b2", pt(10, 250));
    const graph::TaskId c1 = g.add_task("c1", pt(10, 150));
    const graph::TaskId d1 = g.add_task("d1", pt(10, 300));
    g.add_edge(a1, a2, 1);
    g.add_edge(b1, b2, 1);
    g.add_edge(a2, d1, 1);
    g.add_edge(b2, d1, 1);
    g.add_edge(c1, d1, 1);
    design.num_partitions_allocated = 2;
    design.assignment = {{1, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}, {2, 0}};
    recompute_latency(g, dev, design);
  }
};

TEST(SolutionTest, Fig4PartitionLatencyIsLongestMappedPath) {
  Fig4 f;
  EXPECT_DOUBLE_EQ(partition_path_latency(f.g, f.design, 1), 400.0);
  EXPECT_DOUBLE_EQ(partition_path_latency(f.g, f.design, 2), 300.0);
  EXPECT_DOUBLE_EQ(f.design.execution_latency_ns, 700.0);
  EXPECT_EQ(f.design.num_partitions_used, 2);
  EXPECT_DOUBLE_EQ(f.design.total_latency_ns, 700.0 + 2 * 25.0);
}

TEST(SolutionTest, Fig4CrossPartitionEdgesDoNotChain) {
  Fig4 f;
  // Move a2 to partition 2: a1..a2 no longer chains inside partition 1, and
  // a2 chains with nothing in partition 2 except via d1.
  f.design.assignment[1] = {2, 0};
  recompute_latency(f.g, f.dev, f.design);
  EXPECT_DOUBLE_EQ(partition_path_latency(f.g, f.design, 1), 400.0);
  // In partition 2: a2 (250) -> d1 (300) chains: 550.
  EXPECT_DOUBLE_EQ(partition_path_latency(f.g, f.design, 2), 550.0);
}

TEST(SolutionTest, PartitionAreaSumsSelectedPoints) {
  graph::TaskGraph g("t");
  g.add_task("a", {{"small", 40, 200}, {"big", 90, 100}});
  g.add_task("b", {{"only", 60, 150}});
  PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(partition_area(g, design, 1), 150.0);
  design.assignment[0].design_point = 0;
  EXPECT_DOUBLE_EQ(partition_area(g, design, 1), 100.0);
}

TEST(SolutionTest, ValidateRejectsTemporalOrderViolation) {
  graph::TaskGraph g("t");
  const graph::TaskId a = g.add_task("a", pt(10, 10));
  const graph::TaskId b = g.add_task("b", pt(10, 10));
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 100, 100, 1);
  PartitionedDesign design;
  design.num_partitions_allocated = 2;
  design.assignment = {{2, 0}, {1, 0}};
  recompute_latency(g, dev, design);
  const DesignCheck check = validate_design(g, dev, design);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.violation.find("order"), std::string::npos);
}

TEST(SolutionTest, ValidateRejectsAreaOverflowAndBadIndices) {
  graph::TaskGraph g("t");
  g.add_task("a", pt(80, 10));
  g.add_task("b", pt(80, 10));
  const arch::Device dev = arch::custom("d", 100, 100, 1);
  PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 0}, {1, 0}};
  recompute_latency(g, dev, design);
  EXPECT_FALSE(validate_design(g, dev, design).ok);  // 160 > 100

  design.assignment = {{1, 0}, {1, 3}};
  EXPECT_FALSE(validate_design(g, dev, design).ok);  // bad point index
  design.assignment = {{0, 0}, {1, 0}};
  EXPECT_FALSE(validate_design(g, dev, design).ok);  // bad partition
}

TEST(SolutionTest, ValidateChecksStoredLatency) {
  Fig4 f;
  EXPECT_TRUE(validate_design(f.g, f.dev, f.design).ok);
  f.design.total_latency_ns += 100.0;
  EXPECT_FALSE(validate_design(f.g, f.dev, f.design).ok);
}

TEST(SolutionTest, ToStringMentionsPartitions) {
  Fig4 f;
  const std::string s = f.design.to_string(f.g);
  EXPECT_NE(s.find("P1"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("d1"), std::string::npos);
}

}  // namespace
}  // namespace sparcs::core

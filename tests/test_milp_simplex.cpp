#include <gtest/gtest.h>

#include "milp/simplex.hpp"

namespace sparcs::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, TwoVarMaximizationClassic) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0
  // => min -3x - 5y; optimum at (2, 6), objective -36.
  LpProblem lp;
  const int x = lp.add_var(-3.0, 0.0, kInfinity);
  const int y = lp.add_var(-5.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}}, Sense::kLessEqual, 4.0);
  lp.add_row({{y, 2.0}}, Sense::kLessEqual, 12.0);
  lp.add_row({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, kTol);
  EXPECT_NEAR(r.x[0], 2.0, kTol);
  EXPECT_NEAR(r.x[1], 6.0, kTol);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x <= 3 => (3,2) not needed; optimum any point,
  // objective 5.
  LpProblem lp;
  const int x = lp.add_var(1.0, 0.0, 3.0);
  const int y = lp.add_var(1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, kTol);
  EXPECT_NEAR(r.x[0] + r.x[1], 5.0, kTol);
}

TEST(SimplexTest, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 4, x - y >= -2, x,y >= 0. Optimum (1,3)? Check:
  // corner candidates: (4,0): obj 8; intersection x+y=4, y-x=2 -> (1,3): 11.
  // So optimum is (4,0) with objective 8.
  LpProblem lp;
  const int x = lp.add_var(2.0, 0.0, kInfinity);
  const int y = lp.add_var(3.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 4.0);
  lp.add_row({{x, 1.0}, {y, -1.0}}, Sense::kGreaterEqual, -2.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, kTol);
  EXPECT_NEAR(r.x[0], 4.0, kTol);
  EXPECT_NEAR(r.x[1], 0.0, kTol);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x >= 5 and x <= 3 via rows.
  LpProblem lp;
  const int x = lp.add_var(1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}}, Sense::kGreaterEqual, 5.0);
  lp.add_row({{x, 1.0}}, Sense::kLessEqual, 3.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, InfeasibleBoundsDetected) {
  LpProblem lp;
  lp.add_var(1.0, 5.0, 3.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x with x >= 0 unconstrained above.
  LpProblem lp;
  const int x = lp.add_var(-1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}}, Sense::kGreaterEqual, 0.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, BoundedAboveByVariableBound) {
  // min -x with 0 <= x <= 7: optimum 7 via a pure bound flip.
  LpProblem lp;
  lp.add_var(-1.0, 0.0, 7.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, kTol);
  EXPECT_NEAR(r.x[0], 7.0, kTol);
}

TEST(SimplexTest, FreeVariable) {
  // min x s.t. x >= -10 expressed as a row (variable itself free).
  LpProblem lp;
  const int x = lp.add_var(1.0, -kInfinity, kInfinity);
  lp.add_row({{x, 1.0}}, Sense::kGreaterEqual, -10.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -10.0, kTol);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y, x in [-5, 5], y in [-3, 3], x + y >= -6.
  LpProblem lp;
  const int x = lp.add_var(1.0, -5.0, 5.0);
  const int y = lp.add_var(1.0, -3.0, 3.0);
  lp.add_row({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, -6.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -6.0, kTol);
}

TEST(SimplexTest, DegenerateProblem) {
  // Multiple redundant constraints intersecting at the optimum.
  LpProblem lp;
  const int x = lp.add_var(-1.0, 0.0, kInfinity);
  const int y = lp.add_var(-1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 2.0);
  lp.add_row({{x, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_row({{y, 1.0}}, Sense::kLessEqual, 1.0);
  lp.add_row({{x, 2.0}, {y, 2.0}}, Sense::kLessEqual, 4.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, kTol);
}

TEST(SimplexTest, FixedVariableViaBounds) {
  LpProblem lp;
  const int x = lp.add_var(1.0, 4.0, 4.0);
  const int y = lp.add_var(1.0, 0.0, kInfinity);
  lp.add_row({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 9.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 4.0, kTol);
  EXPECT_NEAR(r.x[1], 5.0, kTol);
}

TEST(SimplexTest, ZeroObjectiveFeasibilityProblem) {
  LpProblem lp;
  const int x = lp.add_var(0.0, 0.0, 10.0);
  const int y = lp.add_var(0.0, 0.0, 10.0);
  lp.add_row({{x, 1.0}, {y, 2.0}}, Sense::kEqual, 8.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0] + 2.0 * r.x[1], 8.0, kTol);
}

TEST(SimplexTest, LargerDiet) {
  // A small diet-style LP with a known optimum.
  // min 0.6a + 0.35b s.t. 5a + 7b >= 8 ; 4a + 2b >= 15 ; a, b >= 0.
  // Binding: 4a + 2b = 15 with b = 0 -> a = 3.75 gives 5a = 18.75 >= 8 ok.
  // obj = 2.25. Alternative corner: intersection -> a = (15*7-2*8)/(4*7-2*5)
  // = (105-16)/18 = 4.944, b negative -> infeasible. So optimum 2.25.
  LpProblem lp;
  const int a = lp.add_var(0.6, 0.0, kInfinity);
  const int b = lp.add_var(0.35, 0.0, kInfinity);
  lp.add_row({{a, 5.0}, {b, 7.0}}, Sense::kGreaterEqual, 8.0);
  lp.add_row({{a, 4.0}, {b, 2.0}}, Sense::kGreaterEqual, 15.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.25, 1e-5);
}

TEST(SimplexTest, RelaxationOfModel) {
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_integer(0, 3, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= 2.5, "c");
  m.set_objective(-(LinExpr(x) + LinExpr(y)), /*minimize=*/true);
  const LpProblem lp = relaxation_of(m);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.5, kTol);
}

TEST(SimplexTest, MaximizationFlipReported) {
  Model m;
  const VarId x = m.add_continuous(0, 4, "x");
  m.set_objective(LinExpr(x), /*minimize=*/false);
  bool flipped = false;
  const LpProblem lp = relaxation_of(m, &flipped);
  EXPECT_TRUE(flipped);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, kTol);  // minimized negation
}

}  // namespace
}  // namespace sparcs::milp

// Exact rational arithmetic: fast-path correctness, overflow promotion to
// the arbitrary-precision fallback, and exactness of double conversion.
#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace sparcs::support {
namespace {

TEST(BigIntTest, SmallArithmetic) {
  EXPECT_EQ((BigInt(7) + BigInt(-3)).to_string(), "4");
  EXPECT_EQ((BigInt(-7) + BigInt(3)).to_string(), "-4");
  EXPECT_EQ((BigInt(-7) * BigInt(-6)).to_string(), "42");
  EXPECT_EQ((BigInt(0) * BigInt(123)).to_string(), "0");
  EXPECT_EQ(BigInt(std::int64_t{-1234567890123456789}).to_string(),
            "-1234567890123456789");
}

TEST(BigIntTest, CarryChainsAcrossLimbs) {
  // 2^128 = (2^64)^2 exercises multi-limb carry in both + and *.
  const BigInt two64 = BigInt(1).shifted_left(64);
  const BigInt two128 = two64 * two64;
  EXPECT_EQ(two128.to_string(), "340282366920938463463374607431768211456");
  EXPECT_EQ((two128 - BigInt(1)).to_string(),
            "340282366920938463463374607431768211455");
  EXPECT_EQ((two128 + two128.negated()).to_string(), "0");
}

TEST(BigIntTest, DivmodTruncatesTowardZero) {
  BigInt q, r;
  BigInt(-7).divmod(BigInt(2), &q, &r);
  EXPECT_EQ(q.to_string(), "-3");
  EXPECT_EQ(r.to_string(), "-1");
  const BigInt big = BigInt(1).shifted_left(200);
  big.divmod(BigInt(1000000007), &q, &r);
  // Verify q * d + r == n exactly.
  EXPECT_EQ((q * BigInt(1000000007) + r).compare(big), 0);
}

TEST(BigIntTest, GcdAndFits) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(-18)).to_string(), "6");
  __int128 out = 0;
  EXPECT_TRUE(BigInt(std::int64_t{42}).fits_i128(&out));
  EXPECT_EQ(static_cast<std::int64_t>(out), 42);
  EXPECT_FALSE(BigInt(1).shifted_left(127).fits_i128(&out));
  EXPECT_TRUE((BigInt(1).shifted_left(127) - BigInt(1)).fits_i128(&out));
}

TEST(RationalTest, NormalizesAndCompares) {
  const Rational half(1, 2);
  const Rational also_half(-2, -4);
  EXPECT_EQ(half, also_half);
  EXPECT_EQ(half.to_string(), "1/2");
  EXPECT_LT(Rational(1, 3), half);
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
}

TEST(RationalTest, ExactFieldArithmetic) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, b);
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  // The classic float counterexample is exact here.
  const Rational tenth(1, 10);
  EXPECT_EQ(tenth + tenth + tenth, Rational(3, 10));
}

TEST(RationalTest, FromDoubleIsExact) {
  // 0.1 as a double is 3602879701896397 / 2^55, not 1/10.
  const Rational tenth = Rational::from_double(0.1);
  EXPECT_NE(tenth, Rational(1, 10));
  EXPECT_EQ(tenth.to_string(), "3602879701896397/36028797018963968");
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(-3.0), Rational(-3));
  EXPECT_EQ(Rational::from_double(0.0), Rational());
  // Round-trip of an exactly representable sum stays exact.
  EXPECT_EQ(Rational::from_double(0.25) + Rational::from_double(0.25),
            Rational(1, 2));
}

TEST(RationalTest, FromDoubleExtremeExponents) {
  // Denormal-range and huge doubles force the BigInt representation.
  const double tiny = std::numeric_limits<double>::denorm_min();
  const Rational r_tiny = Rational::from_double(tiny);
  EXPECT_TRUE(r_tiny.is_promoted());
  EXPECT_GT(r_tiny, Rational());
  EXPECT_DOUBLE_EQ(r_tiny.to_double(), tiny);
  const double huge = std::ldexp(1.0, 1000);
  const Rational r_huge = Rational::from_double(huge);
  EXPECT_TRUE(r_huge.is_promoted());
  EXPECT_DOUBLE_EQ(r_huge.to_double(), huge);
  EXPECT_EQ(r_huge * r_tiny, Rational::from_double(std::ldexp(1.0, 1000)) *
                                 Rational::from_double(tiny));
}

TEST(RationalTest, OverflowPromotesAndStaysExact) {
  // (2^96)/1 * (2^96)/1 overflows __int128 and must promote, not wrap.
  const Rational big = Rational::from_double(std::ldexp(1.0, 96));
  const Rational sq = big * big;
  EXPECT_TRUE(sq.is_promoted());
  EXPECT_EQ(sq, Rational::from_double(std::ldexp(1.0, 96)) *
                    Rational::from_double(std::ldexp(1.0, 96)));
  EXPECT_EQ((sq / big), big);
  // Addition with wildly different scales is exact too.
  const Rational sum = sq + Rational(1, 3);
  EXPECT_EQ(sum - sq, Rational(1, 3));
  EXPECT_GT(sum, sq);
}

TEST(RationalTest, PromotedValuesDemoteWhenSmallAgain) {
  const Rational big = Rational::from_double(std::ldexp(1.0, 96));
  const Rational one = (big * big) / (big * big);
  EXPECT_EQ(one, Rational(1));
  EXPECT_FALSE(one.is_promoted());
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(7, 2).ceil(), Rational(4));
  EXPECT_EQ(Rational(-7, 2).floor(), Rational(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), Rational(-3));
  EXPECT_EQ(Rational(6, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(6, 2).ceil(), Rational(3));
  // Floor of a promoted value.
  const Rational big = Rational::from_double(std::ldexp(1.0, 200));
  EXPECT_EQ((big + Rational(1, 2)).floor(), big);
  EXPECT_TRUE(big.is_integer());
  EXPECT_FALSE(Rational(1, 2).is_integer());
}

TEST(RationalTest, SignAndNegate) {
  EXPECT_EQ(Rational(-3, 7).sign(), -1);
  EXPECT_EQ(Rational().sign(), 0);
  EXPECT_EQ(Rational(3, 7).sign(), 1);
  EXPECT_EQ(Rational(-3, 7).negated(), Rational(3, 7));
  EXPECT_TRUE(Rational().is_zero());
}

TEST(RationalTest, MixedSmallBigComparisons) {
  const Rational big = Rational::from_double(std::ldexp(1.0, 300));
  EXPECT_GT(big, Rational(1));
  EXPECT_LT(big.negated(), Rational(-1));
  EXPECT_LT(Rational(1), big);
}

// A pseudo-random differential check against double arithmetic on values
// where doubles are exact (small dyadic rationals).
TEST(RationalTest, DifferentialAgainstExactDoubles) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<double>(static_cast<std::int32_t>(next())) / 4.0;
    const auto b = static_cast<double>(static_cast<std::int32_t>(next())) / 8.0;
    const Rational ra = Rational::from_double(a);
    const Rational rb = Rational::from_double(b);
    EXPECT_EQ((ra + rb).to_double(), a + b);
    EXPECT_EQ((ra - rb).to_double(), a - b);
    EXPECT_EQ((ra * rb).to_double(), a * b) << a << " * " << b;
    EXPECT_EQ(ra.compare(rb), a < b ? -1 : (a > b ? 1 : 0));
  }
}

}  // namespace
}  // namespace sparcs::support

#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/partitioner.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/synthetic.hpp"

namespace sparcs::sim {
namespace {

std::vector<graph::DesignPoint> pt(double area, double latency) {
  return {{"m", area, latency}};
}

TEST(SimulatorTest, SingleTaskMakespan) {
  graph::TaskGraph g("t");
  g.add_task("a", pt(10, 100));
  const arch::Device dev = arch::custom("d", 100, 100, 25);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 0}};
  core::recompute_latency(g, dev, design);
  const SimulationResult r = simulate(g, dev, design);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 125.0);
  EXPECT_DOUBLE_EQ(r.total_reconfig_ns, 25.0);
  EXPECT_EQ(r.partitions.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tasks[0].start_ns, 25.0);
  EXPECT_DOUBLE_EQ(r.tasks[0].finish_ns, 125.0);
}

TEST(SimulatorTest, ChainsWithinPartitionSerialize) {
  graph::TaskGraph g("t");
  const auto a = g.add_task("a", pt(10, 100));
  const auto b = g.add_task("b", pt(10, 150));
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 100, 100, 10);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 0}, {1, 0}};
  core::recompute_latency(g, dev, design);
  const SimulationResult r = simulate(g, dev, design);
  EXPECT_DOUBLE_EQ(r.tasks[1].start_ns, r.tasks[0].finish_ns);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 10 + 100 + 150);
}

TEST(SimulatorTest, ParallelTasksOverlap) {
  graph::TaskGraph g("t");
  g.add_task("a", pt(10, 100));
  g.add_task("b", pt(10, 150));
  const arch::Device dev = arch::custom("d", 100, 100, 10);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 0}, {1, 0}};
  core::recompute_latency(g, dev, design);
  const SimulationResult r = simulate(g, dev, design);
  EXPECT_DOUBLE_EQ(r.tasks[0].start_ns, r.tasks[1].start_ns);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 10 + 150);
}

TEST(SimulatorTest, CrossPartitionEdgesDoNotChain) {
  graph::TaskGraph g("t");
  const auto a = g.add_task("a", pt(10, 100));
  const auto b = g.add_task("b", pt(10, 150));
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 100, 100, 10);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 2;
  design.assignment = {{1, 0}, {2, 0}};
  core::recompute_latency(g, dev, design);
  const SimulationResult r = simulate(g, dev, design);
  // Partition 2 starts right after partition 1 retires plus reconfig.
  EXPECT_DOUBLE_EQ(r.tasks[1].start_ns, 10 + 100 + 10);
  EXPECT_DOUBLE_EQ(r.makespan_ns, design.total_latency_ns);
}

TEST(SimulatorTest, MakespanMatchesAnalyticModelOnContiguousDesigns) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  core::PartitionerOptions options;
  options.budget.delta = 20.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);
  const SimulationResult r = simulate(g, dev, *report.best);
  EXPECT_NEAR(r.makespan_ns, report.best->total_latency_ns, 1e-6);
  EXPECT_NEAR(r.makespan_ns, report.achieved_latency, 1e-6);
}

TEST(SimulatorTest, GapPartitionsCostLessThanAnalyticEta) {
  // A design that skips partition 2 entirely: the simulator loads two
  // configurations while the analytic model charges eta = 3 of them.
  graph::TaskGraph g("t");
  const auto a = g.add_task("a", pt(10, 100));
  const auto b = g.add_task("b", pt(10, 100));
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 100, 100, 1000);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 3;
  design.assignment = {{1, 0}, {3, 0}};
  core::recompute_latency(g, dev, design);
  const SimulationResult r = simulate(g, dev, design);
  EXPECT_DOUBLE_EQ(design.total_latency_ns, 200 + 3 * 1000);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 200 + 2 * 1000);
  EXPECT_LT(r.makespan_ns, design.total_latency_ns);
}

TEST(SimulatorTest, PeakMemoryWithinDeviceBudget) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 50);
  core::PartitionerOptions options;
  options.budget.delta = 20.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);
  const SimulationResult r = simulate(g, dev, *report.best);
  EXPECT_LE(r.peak_memory, dev.memory_capacity + 1e-9);
}

TEST(SimulatorTest, RejectsInvalidDesign) {
  graph::TaskGraph g("t");
  const auto a = g.add_task("a", pt(10, 100));
  const auto b = g.add_task("b", pt(10, 100));
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 100, 100, 10);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 2;
  design.assignment = {{2, 0}, {1, 0}};  // order violation
  core::recompute_latency(g, dev, design);
  EXPECT_THROW(simulate(g, dev, design), InvalidArgumentError);
}

TEST(SimulatorTest, ToStringListsConfigurations) {
  graph::TaskGraph g("t");
  g.add_task("alpha", pt(10, 100));
  const arch::Device dev = arch::custom("d", 100, 100, 10);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 1;
  design.assignment = {{1, 0}};
  core::recompute_latency(g, dev, design);
  const std::string s = simulate(g, dev, design).to_string(g);
  EXPECT_NE(s.find("config 1"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

TEST(PrefetchTest, HidesReconfigWhenExecutionDominates) {
  // Two partitions, 100 ns executions, 40 ns reconfig: with prefetch the
  // second load hides under the first execution.
  graph::TaskGraph g("t");
  const auto a = g.add_task("a", pt(10, 100));
  const auto b = g.add_task("b", pt(10, 100));
  g.add_edge(a, b, 1);
  const arch::Device dev = arch::custom("d", 15, 100, 40);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 2;
  design.assignment = {{1, 0}, {2, 0}};
  core::recompute_latency(g, dev, design);

  SimulationOptions plain;
  SimulationOptions prefetch;
  prefetch.prefetch_configurations = true;
  const double t_plain = simulate(g, dev, design, plain).makespan_ns;
  const double t_prefetch = simulate(g, dev, design, prefetch).makespan_ns;
  EXPECT_DOUBLE_EQ(t_plain, 40 + 100 + 40 + 100);
  EXPECT_DOUBLE_EQ(t_prefetch, 40 + 100 + 100);  // 2nd load fully hidden
}

TEST(PrefetchTest, LoaderSerializesWhenReconfigDominates) {
  // 100 ns reconfig, 10 ns executions: loads serialize on the loader, so
  // prefetch only pipelines the executions into the load train.
  graph::TaskGraph g("t");
  const auto a = g.add_task("a", pt(10, 10));
  const auto b = g.add_task("b", pt(10, 10));
  const auto c = g.add_task("c", pt(10, 10));
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  const arch::Device dev = arch::custom("d", 15, 100, 100);
  core::PartitionedDesign design;
  design.num_partitions_allocated = 3;
  design.assignment = {{1, 0}, {2, 0}, {3, 0}};
  core::recompute_latency(g, dev, design);

  SimulationOptions prefetch;
  prefetch.prefetch_configurations = true;
  const SimulationResult r = simulate(g, dev, design, prefetch);
  // Loads finish at 100/200/300; executions at 110/210/310.
  EXPECT_DOUBLE_EQ(r.makespan_ns, 310.0);
}

TEST(PrefetchTest, NeverSlowerThanPlainExecution) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 500);
  core::PartitionerOptions options;
  options.budget.delta = 50.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);
  SimulationOptions prefetch;
  prefetch.prefetch_configurations = true;
  EXPECT_LE(simulate(g, dev, *report.best, prefetch).makespan_ns,
            simulate(g, dev, *report.best).makespan_ns + 1e-9);
}

TEST(PrefetchTest, ClosedFormMatchesSimulation) {
  const graph::TaskGraph g = workloads::ar_filter_task_graph();
  const arch::Device dev = arch::custom("d", 200, 64, 120);
  core::PartitionerOptions options;
  options.budget.delta = 50.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  ASSERT_TRUE(report.feasible);
  for (const bool prefetch : {false, true}) {
    SimulationOptions sim_options;
    sim_options.prefetch_configurations = prefetch;
    EXPECT_NEAR(simulate(g, dev, *report.best, sim_options).makespan_ns,
                estimated_makespan(g, dev, *report.best, prefetch), 1e-9)
        << "prefetch=" << prefetch;
  }
}

// Property: on random graphs, for any design the partitioner emits, the
// simulated makespan equals the analytic latency (designs are contiguous by
// construction of the solver's preference for earlier partitions).
class SimulatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorPropertyTest, SimulationNeverExceedsAnalyticModel) {
  workloads::RandomGraphOptions gopts;
  gopts.num_tasks = 10;
  gopts.num_layers = 4;
  gopts.seed = GetParam();
  const graph::TaskGraph g = workloads::random_task_graph(gopts);
  const arch::Device dev = arch::custom("d", 400, 4096, 100);
  core::PartitionerOptions options;
  // Coarse search: the property under test concerns whatever design comes
  // back, not its quality, so keep the probe budgets small.
  options.budget.delta = 400.0;
  options.gamma = 0;
  options.budget.solver.time_limit_sec = 1.0;
  const core::PartitionerReport report =
      core::TemporalPartitioner(g, dev, options).run();
  if (!report.feasible) GTEST_SKIP() << "instance infeasible";
  const SimulationResult r = simulate(g, dev, *report.best);
  EXPECT_LE(r.makespan_ns, report.best->total_latency_ns + 1e-6);
  EXPECT_LE(r.peak_memory, dev.memory_capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace sparcs::sim

// Tests for the solve service (src/service): protocol round trips and
// validation, job queue admission control / priority order / cancellation,
// and the daemon end to end over a real unix socket — concurrent clients,
// structured rejections, disconnect-cancels-job, graceful shutdown with
// preemption, and per-job artifact landing.
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/tg_format.hpp"
#include "json_checker.hpp"
#include "service/client.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"
#include "workloads/ar_filter.hpp"
#include "workloads/dct.hpp"
#include "workloads/synthetic.hpp"

namespace sparcs::service {
namespace {

using sparcs::testing::is_valid_json;

json::Value parse_ok(const std::string& line) {
  json::ParseResult parsed = json::parse(line);
  EXPECT_TRUE(parsed.ok) << parsed.error << " in: " << line;
  return std::move(parsed.value);
}

std::string error_code(const json::Value& response) {
  const json::Value* error = response.find("error");
  return error != nullptr ? error->member_string("code") : "";
}

// --- protocol --------------------------------------------------------------

TEST(ServiceProtocol, SubmitRoundTripsThroughSerializeAndParse) {
  Request request;
  request.op = "submit";
  request.submit.workload = "ar";
  request.submit.priority = 3;
  request.submit.detach = true;
  request.submit.rmax = 200.0;
  request.submit.delta = 20.0;
  request.submit.time_limit_sec = 2.5;
  request.submit.deadline_sec = 9.0;
  request.submit.certify = "incumbents";
  request.submit.checkpoint = false;
  request.submit.est_memory_mb = 64.0;

  const std::string line = serialize_request(request);
  EXPECT_TRUE(is_valid_json(line));
  Request decoded;
  std::string error;
  ASSERT_TRUE(parse_request(line, &decoded, &error)) << error;
  EXPECT_EQ(decoded.op, "submit");
  EXPECT_EQ(decoded.submit.workload, "ar");
  EXPECT_EQ(decoded.submit.priority, 3);
  EXPECT_TRUE(decoded.submit.detach);
  ASSERT_TRUE(decoded.submit.rmax.has_value());
  EXPECT_DOUBLE_EQ(*decoded.submit.rmax, 200.0);
  EXPECT_FALSE(decoded.submit.mmax.has_value());
  EXPECT_DOUBLE_EQ(decoded.submit.delta, 20.0);
  EXPECT_DOUBLE_EQ(decoded.submit.time_limit_sec, 2.5);
  EXPECT_DOUBLE_EQ(decoded.submit.deadline_sec, 9.0);
  EXPECT_EQ(decoded.submit.certify, "incumbents");
  EXPECT_FALSE(decoded.submit.checkpoint);
  EXPECT_DOUBLE_EQ(decoded.submit.est_memory_mb, 64.0);
}

TEST(ServiceProtocol, RejectsMalformedRequests) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_request("not json", &request, &error));
  EXPECT_FALSE(parse_request("[1,2]", &request, &error));
  EXPECT_FALSE(parse_request(R"({"job":"job-1"})", &request, &error));
  EXPECT_FALSE(parse_request(R"({"op":"frobnicate"})", &request, &error));
  EXPECT_FALSE(parse_request(R"({"op":"status"})", &request, &error));
  // Exactly one of workload/graph_text.
  EXPECT_FALSE(parse_request(R"({"op":"submit"})", &request, &error));
  EXPECT_FALSE(parse_request(
      R"({"op":"submit","workload":"ar","graph_text":"x"})", &request,
      &error));
  // Field validation.
  EXPECT_FALSE(parse_request(
      R"({"op":"submit","workload":"ar","options":{"time_limit_sec":0}})",
      &request, &error));
  EXPECT_FALSE(parse_request(
      R"({"op":"submit","workload":"ar","options":{"certify":"maybe"}})",
      &request, &error));
  EXPECT_FALSE(parse_request(
      R"({"op":"submit","workload":"ar","options":{"deadline_sec":-1}})",
      &request, &error));
}

TEST(ServiceProtocol, ErrorResponseIsWellFormed) {
  const std::string line = error_response("submit", "queue_full", "try later");
  const json::Value response = parse_ok(line);
  EXPECT_FALSE(response.member_bool("ok", true));
  EXPECT_EQ(response.member_string("op"), "submit");
  EXPECT_EQ(error_code(response), "queue_full");
}

// --- job queue -------------------------------------------------------------

std::shared_ptr<Job> make_job(double est_memory_mb = 1.0, int priority = 0) {
  auto job = std::make_shared<Job>();
  job->spec.source = "test";
  job->spec.graph = workloads::ar_filter_task_graph();
  job->est_memory_mb = est_memory_mb;
  job->priority = priority;
  return job;
}

TEST(ServiceJobQueue, RejectsBeyondQueueDepth) {
  JobQueue queue({.max_queue_depth = 2, .max_est_memory_mb = 1000.0});
  EXPECT_TRUE(queue.submit(make_job()).ok);
  EXPECT_TRUE(queue.submit(make_job()).ok);
  const JobQueue::Admit third = queue.submit(make_job());
  EXPECT_FALSE(third.ok);
  EXPECT_EQ(third.code, "queue_full");
  EXPECT_FALSE(third.message.empty());
  EXPECT_EQ(queue.queue_depth(), 2);
}

TEST(ServiceJobQueue, RejectsBeyondMemoryLimitAndReleasesOnFinish) {
  JobQueue queue({.max_queue_depth = 16, .max_est_memory_mb = 100.0});
  EXPECT_TRUE(queue.submit(make_job(60.0)).ok);
  const JobQueue::Admit over = queue.submit(make_job(60.0));
  EXPECT_FALSE(over.ok);
  EXPECT_EQ(over.code, "memory_limit");
  EXPECT_DOUBLE_EQ(queue.est_memory_in_use_mb(), 60.0);

  // Finishing the admitted job releases its budget for the next submit.
  const std::shared_ptr<Job> job = queue.pop(1);
  ASSERT_NE(job, nullptr);
  queue.finish(job, JobResult{});
  EXPECT_DOUBLE_EQ(queue.est_memory_in_use_mb(), 0.0);
  EXPECT_TRUE(queue.submit(make_job(60.0)).ok);
}

TEST(ServiceJobQueue, PopsByPriorityThenSubmissionOrder) {
  JobQueue queue({});
  const std::string low = queue.submit(make_job(1.0, 0)).name;
  const std::string high_a = queue.submit(make_job(1.0, 5)).name;
  const std::string mid = queue.submit(make_job(1.0, 1)).name;
  const std::string high_b = queue.submit(make_job(1.0, 5)).name;

  EXPECT_EQ(queue.pop(1)->name, high_a);
  EXPECT_EQ(queue.pop(2)->name, high_b);
  EXPECT_EQ(queue.pop(3)->name, mid);
  EXPECT_EQ(queue.pop(4)->name, low);
}

TEST(ServiceJobQueue, CancelQueuedIsTerminalAndTripsToken) {
  JobQueue queue({});
  auto job = make_job();
  const std::string name = queue.submit(job).name;
  EXPECT_EQ(queue.cancel(name), JobQueue::CancelOutcome::kCancelledQueued);
  EXPECT_TRUE(job->cancel.cancelled());
  EXPECT_EQ(queue.queue_depth(), 0);
  JobInfo info;
  ASSERT_TRUE(queue.lookup(name, &info));
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_EQ(info.exit_code(), 5);
  EXPECT_EQ(queue.cancel(name), JobQueue::CancelOutcome::kAlreadyTerminal);
  EXPECT_EQ(queue.cancel("job-404"), JobQueue::CancelOutcome::kUnknownJob);
}

TEST(ServiceJobQueue, CancelRunningTripsTokenOnly) {
  JobQueue queue({});
  auto job = make_job();
  const std::string name = queue.submit(job).name;
  ASSERT_EQ(queue.pop(7), job);
  EXPECT_EQ(queue.cancel(name), JobQueue::CancelOutcome::kRequestedRunning);
  EXPECT_TRUE(job->cancel.cancelled());
  JobInfo info;
  ASSERT_TRUE(queue.lookup(name, &info));
  EXPECT_EQ(info.state, JobState::kRunning);
  EXPECT_EQ(info.correlation, 7u);

  JobResult result;
  result.state = JobState::kCancelled;
  queue.finish(job, result);
  ASSERT_TRUE(queue.lookup(name, &info));
  EXPECT_EQ(info.state, JobState::kCancelled);
}

TEST(ServiceJobQueue, WaitTerminalBlocksUntilFinish) {
  JobQueue queue({});
  auto job = make_job();
  const std::string name = queue.submit(job).name;
  std::thread finisher([&] {
    const std::shared_ptr<Job> popped = queue.pop(1);
    JobResult result;
    result.feasible = true;
    queue.finish(popped, result);
  });
  JobInfo info;
  ASSERT_TRUE(queue.wait_terminal(name, &info));
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_TRUE(info.feasible);
  EXPECT_EQ(info.exit_code(), 0);
  finisher.join();
  EXPECT_FALSE(queue.wait_terminal("job-404", nullptr));
}

TEST(ServiceJobQueue, MemoryEstimateGrowsWithGraphAndPartitions) {
  const graph::TaskGraph ar = workloads::ar_filter_task_graph();
  const graph::TaskGraph dct = workloads::dct_task_graph();
  EXPECT_GT(estimate_job_memory_mb(ar, 8), 0.0);
  EXPECT_LT(estimate_job_memory_mb(ar, 8), estimate_job_memory_mb(ar, 64));
  EXPECT_LT(estimate_job_memory_mb(ar, 64), estimate_job_memory_mb(dct, 64));
}

// --- server end to end -----------------------------------------------------

/// Runs one daemon on a socket inside a fresh temp dir for the lifetime of a
/// test, with serve() on a background thread.
class ServiceTest : public ::testing::Test {
 protected:
  void start(int workers, int queue_depth = 16,
             double memory_mb = 4096.0, bool artifacts = true) {
    // The daemon runs at info level (run_serve does the same): per-job JSONL
    // logs are made of the workers' info-level records.
    previous_log_level_ = log_level();
    set_log_level(LogLevel::kInfo);
    char tmpl[] = "/tmp/sparcs_service_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ServerOptions options;
    options.socket_path = dir_ + "/solve.sock";
    options.num_workers = workers;
    options.max_queue_depth = queue_depth;
    options.max_est_memory_mb = memory_mb;
    if (artifacts) options.artifact_dir = dir_ + "/artifacts";
    server_ = std::make_unique<Server>(std::move(options));
    serve_thread_ = std::thread([this] { serve_code_ = server_->serve(); });
    while (!server_->listening()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void TearDown() override {
    if (server_ != nullptr && serve_thread_.joinable()) {
      server_->request_shutdown();
      serve_thread_.join();
    }
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
    set_log_level(previous_log_level_);
  }

  [[nodiscard]] std::string socket_path() const { return dir_ + "/solve.sock"; }

  [[nodiscard]] Request submit_workload(const std::string& workload) const {
    Request request;
    request.op = "submit";
    request.submit.workload = workload;
    return request;
  }

  std::string dir_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  int serve_code_ = -1;
  LogLevel previous_log_level_ = LogLevel::kWarning;
};

TEST_F(ServiceTest, ServesTwoConcurrentClientsEndToEnd) {
  start(/*workers=*/2);
  struct Outcome {
    bool ok = false;
    int exit_code = -1;
    std::uint64_t correlation = 0;
    std::string report_path;
  };
  Outcome outcomes[2];
  const char* workloads[2] = {"ar", "dct"};
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&, i] {
      Client client(socket_path());
      const json::Value admitted =
          parse_ok(client.call(submit_workload(workloads[i])));
      if (!admitted.member_bool("ok")) return;
      Request result;
      result.op = "result";
      result.job = admitted.member_string("job");
      result.wait = true;
      const json::Value done = parse_ok(client.call(result));
      outcomes[i].ok = done.member_bool("ok");
      outcomes[i].exit_code =
          static_cast<int>(done.member_int("exit_code", -1));
      outcomes[i].correlation =
          static_cast<std::uint64_t>(done.member_int("corr"));
      outcomes[i].report_path = done.member_string("report_path");
    });
  }
  for (std::thread& t : clients) t.join();

  for (const Outcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.exit_code, 0);
    EXPECT_NE(outcome.correlation, 0u);
    // The landed report is a complete, valid PartitionerReport document.
    ASSERT_FALSE(outcome.report_path.empty());
    std::ifstream report(outcome.report_path);
    ASSERT_TRUE(report.good());
    std::ostringstream text;
    text << report.rdbuf();
    EXPECT_TRUE(is_valid_json(text.str()));
  }
  // Concurrent jobs are distinguishable in every artifact stream.
  EXPECT_NE(outcomes[0].correlation, outcomes[1].correlation);
}

TEST_F(ServiceTest, RejectsOverLimitSubmissionsWithStructuredReason) {
  // workers=0: nothing drains the queue, so admission is deterministic.
  start(/*workers=*/0, /*queue_depth=*/1, /*memory_mb=*/100.0);
  Client client(socket_path());

  Request oversized = submit_workload("ar");
  oversized.submit.est_memory_mb = 500.0;
  const json::Value memory_reject = parse_ok(client.call(oversized));
  EXPECT_FALSE(memory_reject.member_bool("ok"));
  EXPECT_EQ(error_code(memory_reject), "memory_limit");

  EXPECT_TRUE(parse_ok(client.call(submit_workload("ar"))).member_bool("ok"));
  const json::Value depth_reject = parse_ok(client.call(submit_workload("ar")));
  EXPECT_FALSE(depth_reject.member_bool("ok"));
  EXPECT_EQ(error_code(depth_reject), "queue_full");
  EXPECT_EQ(depth_reject.member_int("queue_depth"), 1);
}

TEST_F(ServiceTest, StatusResultCancelAndListCoverQueuedJobs) {
  start(/*workers=*/0);
  Client client(socket_path());
  const json::Value admitted = parse_ok(client.call(submit_workload("ar")));
  const std::string job = admitted.member_string("job");

  Request status;
  status.op = "status";
  status.job = job;
  json::Value response = parse_ok(client.call(status));
  EXPECT_EQ(response.member_string("state"), "queued");

  // result without wait on a live job is an explicit error, not a hang.
  Request result;
  result.op = "result";
  result.job = job;
  response = parse_ok(client.call(result));
  EXPECT_FALSE(response.member_bool("ok"));
  EXPECT_EQ(error_code(response), "not_finished");

  Request list;
  list.op = "list";
  response = parse_ok(client.call(list));
  EXPECT_TRUE(response.member_bool("ok"));
  EXPECT_EQ(response.member_int("queue_depth"), 1);
  const json::Value* jobs = response.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->array().size(), 1u);
  EXPECT_EQ(jobs->array()[0].member_string("job"), job);

  Request cancel;
  cancel.op = "cancel";
  cancel.job = job;
  response = parse_ok(client.call(cancel));
  EXPECT_TRUE(response.member_bool("ok"));
  EXPECT_EQ(response.member_string("state"), "cancelled");

  // A cancelled-while-queued job reports the preemption exit code.
  result.wait = true;
  response = parse_ok(client.call(result));
  EXPECT_TRUE(response.member_bool("ok"));
  EXPECT_EQ(response.member_int("exit_code"), 5);

  status.job = "job-404";
  response = parse_ok(client.call(status));
  EXPECT_EQ(error_code(response), "unknown_job");
}

TEST_F(ServiceTest, ClientDisconnectCancelsOwnedJob) {
  start(/*workers=*/0);
  std::string job;
  {
    Client submitter(socket_path());
    job = parse_ok(submitter.call(submit_workload("ar")))
              .member_string("job");
    ASSERT_FALSE(job.empty());
  }  // connection closes with the job still queued

  // The disconnect handler runs asynchronously; the job must become
  // cancelled, not merely leave the queue.
  Client watcher(socket_path());
  Request status;
  status.op = "status";
  status.job = job;
  std::string state;
  for (int i = 0; i < 500; ++i) {
    state = parse_ok(watcher.call(status)).member_string("state");
    if (state == "cancelled") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(state, "cancelled");
}

TEST_F(ServiceTest, DetachedJobSurvivesDisconnect) {
  start(/*workers=*/0);
  std::string job;
  {
    Client submitter(socket_path());
    Request request = submit_workload("ar");
    request.submit.detach = true;
    job = parse_ok(submitter.call(request)).member_string("job");
  }
  Client watcher(socket_path());
  Request status;
  status.op = "status";
  status.job = job;
  // Give the disconnect handler time to (wrongly) cancel before checking.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(parse_ok(watcher.call(status)).member_string("state"), "queued");
}

TEST_F(ServiceTest, MalformedLinesGetErrorResponsesNotDisconnects) {
  start(/*workers=*/0);
  Client client(socket_path());
  json::Value response = parse_ok(client.call_raw("this is not json"));
  EXPECT_FALSE(response.member_bool("ok"));
  EXPECT_EQ(error_code(response), "parse_error");
  response = parse_ok(client.call_raw(R"({"op":"submit"})"));
  EXPECT_EQ(error_code(response), "parse_error");
  // The connection is still usable afterwards.
  EXPECT_TRUE(parse_ok(client.call(submit_workload("ar"))).member_bool("ok"));
}

TEST_F(ServiceTest, SubmitWithInlineGraphTextAndEmbeddedDevice) {
  start(/*workers=*/1);
  const graph::TaskGraph graph = workloads::ar_filter_task_graph();
  Request request;
  request.op = "submit";
  request.submit.graph_text = io::to_task_graph_string(graph);
  request.submit.rmax = 200.0;
  request.submit.mmax = 64.0;
  request.submit.ct = 50.0;

  Client client(socket_path());
  const json::Value admitted = parse_ok(client.call(request));
  ASSERT_TRUE(admitted.member_bool("ok"));
  Request result;
  result.op = "result";
  result.job = admitted.member_string("job");
  result.wait = true;
  const json::Value done = parse_ok(client.call(result));
  EXPECT_TRUE(done.member_bool("ok"));
  EXPECT_EQ(done.member_string("state"), "done");
  EXPECT_TRUE(done.member_bool("feasible"));
}

TEST_F(ServiceTest, MalformedGraphTextIsRejectedAtSubmitTime) {
  start(/*workers=*/0);
  Request request;
  request.op = "submit";
  request.submit.graph_text = "task bad syntax here\n";
  Client client(socket_path());
  const json::Value response = parse_ok(client.call(request));
  EXPECT_FALSE(response.member_bool("ok"));
  EXPECT_EQ(error_code(response), "bad_request");
}

TEST_F(ServiceTest, ShutdownCancelsQueuedJobsAndExitsCleanly) {
  // workers=0: every job is still queued when shutdown arrives.
  start(/*workers=*/0);
  Client client(socket_path());
  std::vector<std::string> jobs;
  for (int i = 0; i < 2; ++i) {
    Request request = submit_workload("dct");
    request.submit.detach = true;
    const json::Value admitted = parse_ok(client.call(request));
    ASSERT_TRUE(admitted.member_bool("ok"));
    jobs.push_back(admitted.member_string("job"));
  }
  Request shutdown;
  shutdown.op = "shutdown";
  EXPECT_TRUE(parse_ok(client.call(shutdown)).member_bool("ok"));
  serve_thread_.join();
  EXPECT_EQ(serve_code_, 0);

  for (const std::string& job : jobs) {
    JobInfo info;
    ASSERT_TRUE(server_->queue().lookup(job, &info));
    EXPECT_EQ(info.state, JobState::kCancelled) << job;
    EXPECT_EQ(info.exit_code(), 5) << job;
  }
  // The socket file is unlinked on the way out.
  EXPECT_FALSE(std::filesystem::exists(socket_path()));

  // Submissions after shutdown find no daemon at all.
  EXPECT_THROW(Client{socket_path()}, Error);
}

TEST_F(ServiceTest, ShutdownPreemptsRunningJobThroughTheCancelPath) {
  start(/*workers=*/1);
  // A long chain on a small device needs many partitions and a long sweep:
  // comfortably mid-solve when the shutdown lands, and cancellation unwinds
  // it through the same anytime path a deadline uses.
  Request request;
  request.op = "submit";
  request.submit.graph_text =
      io::to_task_graph_string(workloads::chain_task_graph(40));
  request.submit.rmax = 200.0;
  request.submit.mmax = 4096.0;
  request.submit.ct = 100.0;
  request.submit.detach = true;

  Client client(socket_path());
  const json::Value admitted = parse_ok(client.call(request));
  ASSERT_TRUE(admitted.member_bool("ok"));
  const std::string job = admitted.member_string("job");

  Request status;
  status.op = "status";
  status.job = job;
  std::string state;
  for (int i = 0; i < 1000; ++i) {
    state = parse_ok(client.call(status)).member_string("state");
    if (state == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(state, "running");

  Request shutdown;
  shutdown.op = "shutdown";
  EXPECT_TRUE(parse_ok(client.call(shutdown)).member_bool("ok"));
  serve_thread_.join();
  EXPECT_EQ(serve_code_, 0);

  JobInfo info;
  ASSERT_TRUE(server_->queue().lookup(job, &info));
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_TRUE(info.cancel_requested);
}

TEST_F(ServiceTest, PerJobArtifactsLandUnderTheArtifactDir) {
  start(/*workers=*/1);
  Client client(socket_path());
  const json::Value admitted = parse_ok(client.call(submit_workload("ar")));
  Request result;
  result.op = "result";
  result.job = admitted.member_string("job");
  result.wait = true;
  const json::Value done = parse_ok(client.call(result));
  ASSERT_TRUE(done.member_bool("ok"));

  const std::string base = dir_ + "/artifacts/" + result.job;
  EXPECT_TRUE(std::filesystem::exists(base + ".report.json"));
  EXPECT_TRUE(std::filesystem::exists(base + ".logs.jsonl"));
  // The per-job log stream carries only this job's correlation id.
  std::ifstream logs(base + ".logs.jsonl");
  std::string line;
  int records = 0;
  const std::int64_t corr = done.member_int("corr");
  while (std::getline(logs, line)) {
    if (line.empty()) continue;
    ++records;
    const json::Value record = parse_ok(line);
    EXPECT_EQ(record.member_int("corr"), corr) << line;
  }
  EXPECT_GT(records, 0);
}

}  // namespace
}  // namespace sparcs::service

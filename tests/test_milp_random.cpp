// Property tests: the branch & bound must agree with brute-force enumeration
// on randomly generated small integer programs, with and without LP bounding.
#include <gtest/gtest.h>

#include "brute_force.hpp"
#include "milp/checker.hpp"
#include "milp/solver.hpp"
#include "support/rng.hpp"

namespace sparcs::milp {
namespace {

/// Generates a random binary program with `n` variables and `rows`
/// constraints of mixed senses plus a random objective.
Model random_binary_model(std::uint64_t seed, int n, int rows) {
  Rng rng(seed);
  Model m("rand" + std::to_string(seed));
  for (int i = 0; i < n; ++i) m.add_binary("x" + std::to_string(i));
  for (int r = 0; r < rows; ++r) {
    LinExpr lhs;
    int nnz = 0;
    for (VarId v = 0; v < n; ++v) {
      if (rng.chance(0.6)) {
        lhs += static_cast<double>(rng.uniform_int(-4, 6)) * LinExpr(v);
        ++nnz;
      }
    }
    if (nnz == 0) continue;
    const double rhs = static_cast<double>(rng.uniform_int(-3, 8));
    const int pick = static_cast<int>(rng.uniform_int(0, 2));
    const Sense sense = pick == 0   ? Sense::kLessEqual
                        : pick == 1 ? Sense::kGreaterEqual
                                    : Sense::kEqual;
    m.add_constraint(lhs, sense, rhs, "r" + std::to_string(r));
  }
  LinExpr obj;
  for (VarId v = 0; v < n; ++v) {
    obj += static_cast<double>(rng.uniform_int(-5, 9)) * LinExpr(v);
  }
  m.set_objective(obj, /*minimize=*/rng.chance(0.5));
  return m;
}

class RandomMilpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMilpTest, MatchesBruteForce) {
  const Model m = random_binary_model(GetParam(), 9, 5);
  const auto expected = testing::brute_force_best_objective(m);
  const MilpSolution s = Solver(m, optimality_params()).solve();
  if (!expected.has_value()) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible)
        << "solver found a solution for an infeasible model";
    return;
  }
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << to_string(s.status);
  EXPECT_NEAR(s.objective, *expected, 1e-6);
  EXPECT_TRUE(check_solution(m, s.values).ok);
}

TEST_P(RandomMilpTest, PropagationOnlyAgreesWithLpBounding) {
  const Model m = random_binary_model(GetParam() ^ 0xabcdef, 8, 4);
  SolverParams no_lp;
  no_lp.use_lp_bounding = false;
  SolverParams with_lp;
  with_lp.use_lp_bounding = true;
  const MilpSolution s1 = Solver(m, no_lp).solve();
  const MilpSolution s2 = Solver(m, with_lp).solve();
  EXPECT_EQ(s1.status, s2.status);
  if (s1.has_solution() && s2.has_solution()) {
    EXPECT_NEAR(s1.objective, s2.objective, 1e-6);
  }
}

TEST_P(RandomMilpTest, FirstFeasibleIsFeasible) {
  const Model m = random_binary_model(GetParam() * 31 + 7, 10, 6);
  const MilpSolution s = Solver(m, first_feasible_params()).solve();
  if (s.has_solution()) {
    EXPECT_TRUE(check_solution(m, s.values).ok);
  } else {
    EXPECT_FALSE(testing::brute_force_best_objective(m).has_value());
  }
}

TEST_P(RandomMilpTest, MixedIntegerAgainstBruteForceOnIntegers) {
  // Random model with small general-integer domains.
  Rng rng(GetParam() + 99);
  Model m;
  const int n = 5;
  for (int i = 0; i < n; ++i) {
    m.add_integer(0, 3, "z" + std::to_string(i));
  }
  for (int r = 0; r < 4; ++r) {
    LinExpr lhs;
    for (VarId v = 0; v < n; ++v) {
      lhs += static_cast<double>(rng.uniform_int(-2, 4)) * LinExpr(v);
    }
    m.add_constraint(lhs, Sense::kLessEqual,
                     static_cast<double>(rng.uniform_int(0, 14)),
                     "r" + std::to_string(r));
  }
  LinExpr obj;
  for (VarId v = 0; v < n; ++v) {
    obj += static_cast<double>(rng.uniform_int(-3, 5)) * LinExpr(v);
  }
  m.set_objective(obj);
  const auto expected = testing::brute_force_best_objective(m);
  const MilpSolution s = Solver(m, optimality_params()).solve();
  if (!expected.has_value()) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, *expected, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMilpTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace sparcs::milp

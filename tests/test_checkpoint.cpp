// Crash-safety suite: the atomic-write/CRC layer, the JSON reader, the
// checkpoint schema (fingerprint binding, corruption/version/mismatch
// rejection) and the contract that matters most — a sweep interrupted at an
// arbitrary checkpoint and resumed must report exactly what the
// uninterrupted run reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "core/checkpoint.hpp"
#include "core/partitioner.hpp"
#include "milp/types.hpp"
#include "support/atomic_file.hpp"
#include "support/json.hpp"
#include "workloads/ar_filter.hpp"

namespace sparcs::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// atomic_file: CRC32, durable writes, sealed-JSON roundtrip

TEST(AtomicFileTest, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for the nine-digit test string.
  EXPECT_EQ(atomicfile::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(atomicfile::crc32(""), 0x00000000u);
}

TEST(AtomicFileTest, WriteThenReadRoundtrips) {
  const std::string path = temp_path("atomic_roundtrip.txt");
  std::string payload = "line one\nline two\n";
  payload.push_back('\0');  // binary-safe: the writer takes a string_view
  payload += "binary tail";
  std::string error;
  ASSERT_TRUE(atomicfile::write_file_atomic(path, payload, &error)) << error;
  const auto read_back = atomicfile::read_file(path);
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(*read_back, payload);
  // Overwrite is atomic too: the new contents fully replace the old.
  ASSERT_TRUE(atomicfile::write_file_atomic(path, "v2", &error)) << error;
  EXPECT_EQ(atomicfile::read_file(path).value_or(""), "v2");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, WriteIntoMissingDirectoryFailsWithError) {
  std::string error;
  EXPECT_FALSE(atomicfile::write_file_atomic(
      "/nonexistent_dir_sparcs/test.txt", "x", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFileTest, SealedJsonStaysOneValidDocumentAndUnseals) {
  const std::string doc = "{\"a\":1,\"b\":[true,null,\"s\"]}";
  const std::string sealed = atomicfile::seal_json_with_crc(doc);
  // The seal embeds the CRC as a final member, not as trailing bytes: the
  // sealed text must still parse as one JSON document.
  const json::ParseResult parsed = json::parse(sealed);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_FALSE(parsed.value.member_string("crc32").empty());
  std::string error;
  const auto unsealed = atomicfile::unseal_json_with_crc(sealed, &error);
  ASSERT_TRUE(unsealed.has_value()) << error;
}

TEST(AtomicFileTest, UnsealRejectsFlippedByte) {
  std::string sealed = atomicfile::seal_json_with_crc("{\"value\":12345}");
  sealed[3] ^= 0x01;  // flip a payload byte (not the trailer itself)
  std::string error;
  EXPECT_FALSE(atomicfile::unseal_json_with_crc(sealed, &error).has_value());
  EXPECT_NE(error.find("crc32 mismatch"), std::string::npos) << error;
  // A flip inside the trailer is rejected too, as an unparseable seal.
  std::string trailer_flip = atomicfile::seal_json_with_crc("{\"v\":1}");
  trailer_flip[trailer_flip.size() - 6] = 'z';  // not a hex digit
  EXPECT_FALSE(
      atomicfile::unseal_json_with_crc(trailer_flip, &error).has_value());
}

TEST(AtomicFileTest, UnsealRejectsTruncationAndTrailingBytes) {
  const std::string sealed =
      atomicfile::seal_json_with_crc("{\"value\":12345}");
  std::string error;
  // Truncated anywhere inside the trailer: no valid seal remains.
  EXPECT_FALSE(
      atomicfile::unseal_json_with_crc(sealed.substr(0, sealed.size() - 4),
                                       &error)
          .has_value());
  // A document with no seal at all.
  EXPECT_FALSE(
      atomicfile::unseal_json_with_crc("{\"value\":12345}", &error)
          .has_value());
  EXPECT_NE(error.find("no crc32 trailer"), std::string::npos) << error;
  // Bytes after the trailer (e.g. a concatenated second document).
  EXPECT_FALSE(
      atomicfile::unseal_json_with_crc(sealed + "{}", &error).has_value());
}

// ---------------------------------------------------------------------------
// json: the defensive reader the checkpoint loader is built on

TEST(JsonTest, ParsesScalarsArraysAndNestedObjects) {
  const json::ParseResult r = json::parse(
      R"({"n":-12.5e1,"t":true,"nul":null,"s":"a\"bA","arr":[1,2,3],)"
      R"("obj":{"inner":7}})");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.value.member_double("n"), -125.0);
  EXPECT_TRUE(r.value.member_bool("t"));
  ASSERT_NE(r.value.find("nul"), nullptr);
  EXPECT_TRUE(r.value.find("nul")->is_null());
  EXPECT_EQ(r.value.member_string("s"), "a\"bA");
  ASSERT_NE(r.value.find("arr"), nullptr);
  EXPECT_EQ(r.value.find("arr")->array().size(), 3u);
  ASSERT_NE(r.value.find("obj"), nullptr);
  EXPECT_EQ(r.value.find("obj")->member_int("inner"), 7);
}

TEST(JsonTest, RejectsMalformedInputWithPositionedError) {
  for (const char* bad :
       {"{", "{\"a\" 1}", "[1,2,]", "tru", "\"unterminated", "{}extra", ""}) {
    const json::ParseResult r = json::parse(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_NE(r.error.find("offset"), std::string::npos) << r.error;
  }
}

TEST(JsonTest, BoundsHostileNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(json::parse(deep).ok);
}

// ---------------------------------------------------------------------------
// checkpoint schema: fingerprint binding and rejection paths

graph::TaskGraph ar_graph() { return workloads::ar_filter_task_graph(); }
arch::Device ar_device() { return arch::custom("ar_dev", 200, 64, 50); }

TEST(CheckpointTest, FingerprintIsSensitiveToEveryInput) {
  const graph::TaskGraph g = ar_graph();
  const arch::Device dev = ar_device();
  FormulationOptions form;
  const std::uint64_t base =
      checkpoint_fingerprint(g, dev, 0, 1, 5.0, 64, form);
  EXPECT_EQ(base, checkpoint_fingerprint(g, dev, 0, 1, 5.0, 64, form));
  EXPECT_NE(base, checkpoint_fingerprint(g, dev, 1, 1, 5.0, 64, form));
  EXPECT_NE(base, checkpoint_fingerprint(g, dev, 0, 2, 5.0, 64, form));
  EXPECT_NE(base, checkpoint_fingerprint(g, dev, 0, 1, 6.0, 64, form));
  EXPECT_NE(base, checkpoint_fingerprint(g, dev, 0, 1, 5.0, 32, form));
  FormulationOptions other_form;
  other_form.include_memory = false;
  EXPECT_NE(base, checkpoint_fingerprint(g, dev, 0, 1, 5.0, 64, other_form));
  const arch::Device other_dev = arch::custom("ar_dev", 200, 64, 75);
  EXPECT_NE(base, checkpoint_fingerprint(g, other_dev, 0, 1, 5.0, 64, form));
}

TEST(CheckpointTest, LoadMissingFileReportsMissing) {
  const CheckpointLoadResult r = load_checkpoint(
      temp_path("no_such_checkpoint.json"), 0, ar_graph(), ar_device());
  EXPECT_EQ(r.status, CheckpointLoadStatus::kMissing);
}

/// Runs the ar sweep once with a checkpoint attached; returns the report.
PartitionerReport run_partitioner(const std::string& ckpt_path, bool resume,
                                  std::function<void(const SweepCheckpoint&)>
                                      observer = nullptr,
                                  milp::CancelToken cancel = {}) {
  const graph::TaskGraph g = ar_graph();
  const arch::Device dev = ar_device();
  PartitionerOptions options;
  options.budget.delta = 5.0;
  options.budget.solver.num_threads = 1;
  if (cancel.valid()) options.budget.solver.cancel = cancel;
  options.checkpoint.path = ckpt_path;
  options.checkpoint.min_interval_sec = 0.0;
  options.checkpoint.resume = resume;
  options.checkpoint.observer = std::move(observer);
  return TemporalPartitioner(g, dev, options).run();
}

TEST(CheckpointTest, CompletedRunWritesLoadableCheckpoint) {
  const std::string path = temp_path("ckpt_complete.json");
  const PartitionerReport report = run_partitioner(path, /*resume=*/false);
  ASSERT_TRUE(report.feasible);
  ASSERT_FALSE(report.degraded);

  // The on-disk document is one valid JSON object with the CRC member.
  const json::ParseResult parsed = json::parse(slurp(path));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.member_string("format"), "sparcs-sweep-checkpoint");

  FormulationOptions form;
  const std::uint64_t fp = checkpoint_fingerprint(
      ar_graph(), ar_device(), 0, 1, 5.0, 64, form);
  const CheckpointLoadResult r =
      load_checkpoint(path, fp, ar_graph(), ar_device());
  ASSERT_EQ(r.status, CheckpointLoadStatus::kOk) << r.error;
  EXPECT_TRUE(r.checkpoint.complete);
  EXPECT_EQ(r.checkpoint.achieved_latency, report.achieved_latency);
  EXPECT_EQ(r.checkpoint.best_num_partitions, report.best_num_partitions);
  EXPECT_EQ(r.checkpoint.ilp_solves, report.ilp_solves);
  ASSERT_TRUE(r.checkpoint.best.has_value());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsCorruptedFile) {
  const std::string path = temp_path("ckpt_corrupt.json");
  const PartitionerReport report = run_partitioner(path, /*resume=*/false);
  ASSERT_TRUE(report.feasible);
  std::string text = slurp(path);
  text[text.size() / 2] ^= 0x01;  // flip one byte mid-document
  std::string error;
  ASSERT_TRUE(atomicfile::write_file_atomic(path, text, &error)) << error;

  FormulationOptions form;
  const std::uint64_t fp = checkpoint_fingerprint(
      ar_graph(), ar_device(), 0, 1, 5.0, 64, form);
  const CheckpointLoadResult r =
      load_checkpoint(path, fp, ar_graph(), ar_device());
  EXPECT_EQ(r.status, CheckpointLoadStatus::kCorrupt);
  EXPECT_NE(r.error.find("crc32 mismatch"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsVersionSkewAndFingerprintMismatch) {
  const std::string path = temp_path("ckpt_skew.json");
  const PartitionerReport report = run_partitioner(path, /*resume=*/false);
  ASSERT_TRUE(report.feasible);
  const std::string sealed = slurp(path);
  FormulationOptions form;
  const std::uint64_t fp = checkpoint_fingerprint(
      ar_graph(), ar_device(), 0, 1, 5.0, 64, form);

  // A checkpoint from a different (newer) writer version: rejected even
  // though its CRC is intact.
  std::string error;
  std::string body = atomicfile::unseal_json_with_crc(sealed, &error).value();
  const std::string from = "\"version\": 1";
  const auto at = body.find(from);
  ASSERT_NE(at, std::string::npos);
  body.replace(at, from.size(), "\"version\": 99");
  const CheckpointLoadResult skew = parse_checkpoint(
      atomicfile::seal_json_with_crc(body), fp, ar_graph(), ar_device());
  EXPECT_EQ(skew.status, CheckpointLoadStatus::kVersionSkew);
  EXPECT_NE(skew.error.find("99"), std::string::npos) << skew.error;

  // Same file, different run inputs: the fingerprint refuses the mix.
  const CheckpointLoadResult mismatch =
      parse_checkpoint(sealed, fp ^ 1, ar_graph(), ar_device());
  EXPECT_EQ(mismatch.status, CheckpointLoadStatus::kFingerprintMismatch);
  EXPECT_NE(mismatch.error.find("different inputs"), std::string::npos)
      << mismatch.error;
  std::remove(path.c_str());
}

TEST(CheckpointTest, WriterThrottlesUnforcedWritesAndReportsFailure) {
  SweepCheckpoint cp;
  cp.phase = 1;
  cp.next_n = 1;
  {
    const std::string path = temp_path("ckpt_throttle.json");
    CheckpointWriter writer(path, /*min_interval_sec=*/3600.0, 42);
    EXPECT_TRUE(writer.write(cp, /*force=*/false));  // first write lands
    EXPECT_FALSE(writer.write(cp, /*force=*/false));  // throttled
    EXPECT_TRUE(writer.write(cp, /*force=*/true));    // force bypasses
    EXPECT_EQ(writer.writes(), 2);
    EXPECT_FALSE(writer.failed());
    std::remove(path.c_str());
  }
  {
    CheckpointWriter writer("/nonexistent_dir_sparcs/ckpt.json", 0.0, 42);
    EXPECT_FALSE(writer.write(cp, /*force=*/true));
    EXPECT_TRUE(writer.failed());
  }
}

// ---------------------------------------------------------------------------
// resume determinism: the acceptance contract of the whole subsystem

void expect_reports_equal(const PartitionerReport& base,
                          const PartitionerReport& other,
                          const std::string& label) {
  EXPECT_EQ(base.feasible, other.feasible) << label;
  EXPECT_EQ(base.achieved_latency, other.achieved_latency) << label;
  EXPECT_EQ(base.best_num_partitions, other.best_num_partitions) << label;
  EXPECT_EQ(base.ilp_solves, other.ilp_solves) << label;
  EXPECT_EQ(base.stopped_by_lower_bound, other.stopped_by_lower_bound)
      << label;
  ASSERT_EQ(base.stages.size(), other.stages.size()) << label;
  for (std::size_t i = 0; i < base.stages.size(); ++i) {
    EXPECT_EQ(base.stages[i].num_partitions, other.stages[i].num_partitions)
        << label << " stage " << i;
    EXPECT_EQ(base.stages[i].status, other.stages[i].status)
        << label << " stage " << i;
    EXPECT_EQ(base.stages[i].solves, other.stages[i].solves)
        << label << " stage " << i;
  }
}

TEST(CheckpointResumeTest, InterruptedSweepResumesToIdenticalReport) {
  const std::string base_path = temp_path("ckpt_resume_base.json");
  const PartitionerReport baseline =
      run_partitioner(base_path, /*resume=*/false);
  ASSERT_TRUE(baseline.feasible);
  ASSERT_FALSE(baseline.degraded);
  std::remove(base_path.c_str());

  // Interrupt after the k-th durable checkpoint write — early, mid-sweep and
  // late — then resume and demand the uninterrupted report, byte for byte on
  // every deterministic field.
  for (const int k : {1, 2, 4, 7}) {
    const std::string path =
        temp_path("ckpt_resume_k" + std::to_string(k) + ".json");
    milp::CancelToken cancel = milp::CancelToken::create();
    int writes = 0;
    const PartitionerReport interrupted = run_partitioner(
        path, /*resume=*/false,
        [&writes, &cancel, k](const SweepCheckpoint&) {
          if (++writes >= k) cancel.request_cancel();
        },
        cancel);
    if (!interrupted.degraded) {
      // The sweep finished before the k-th write: nothing was lost, and the
      // run must simply match the baseline.
      expect_reports_equal(baseline, interrupted, "k=" + std::to_string(k));
    } else {
      const PartitionerReport resumed = run_partitioner(path, /*resume=*/true);
      EXPECT_TRUE(resumed.resumed) << "k=" << k;
      EXPECT_FALSE(resumed.degraded) << "k=" << k;
      expect_reports_equal(baseline, resumed, "k=" + std::to_string(k));
    }
    std::remove(path.c_str());
  }
}

TEST(CheckpointResumeTest, CompleteCheckpointShortCircuitsTheSweep) {
  const std::string path = temp_path("ckpt_resume_complete.json");
  const PartitionerReport baseline = run_partitioner(path, /*resume=*/false);
  ASSERT_TRUE(baseline.feasible);
  int observed = 0;
  const PartitionerReport resumed = run_partitioner(
      path, /*resume=*/true,
      [&observed](const SweepCheckpoint&) { ++observed; });
  EXPECT_TRUE(resumed.resumed);
  expect_reports_equal(baseline, resumed, "complete-resume");
  // Reproducing the answer re-solves nothing; the only write re-seals the
  // final state.
  EXPECT_LE(observed, 1);
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, RejectedCheckpointFallsBackToFreshRun) {
  const std::string path = temp_path("ckpt_resume_garbage.json");
  {
    std::ofstream os(path);
    os << "this is not a checkpoint";
  }
  const PartitionerReport report = run_partitioner(path, /*resume=*/true);
  EXPECT_FALSE(report.resumed);
  EXPECT_FALSE(report.resume_error.empty());
  EXPECT_TRUE(report.feasible);  // the fresh run proceeded to the answer
  EXPECT_FALSE(report.degraded);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sparcs::core

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/task_graph.hpp"
#include "support/error.hpp"

namespace sparcs::graph {
namespace {

std::vector<DesignPoint> one_point(double area, double latency) {
  return {DesignPoint{"m", area, latency}};
}

/// Diamond: a -> {b, c} -> d.
TaskGraph make_diamond() {
  TaskGraph g("diamond");
  const TaskId a = g.add_task("a", one_point(10, 100));
  const TaskId b = g.add_task("b", one_point(20, 200));
  const TaskId c = g.add_task("c", one_point(30, 300));
  const TaskId d = g.add_task("d", one_point(40, 400));
  g.add_edge(a, b, 4);
  g.add_edge(a, c, 8);
  g.add_edge(b, d, 2);
  g.add_edge(c, d, 1);
  return g;
}

TEST(TaskGraphTest, BasicAccessors) {
  TaskGraph g = make_diamond();
  EXPECT_EQ(g.num_tasks(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.task(0).name, "a");
  EXPECT_EQ(g.find_task("c"), 2);
  EXPECT_EQ(g.find_task("zzz"), -1);
}

TEST(TaskGraphTest, SuccessorsAndPredecessors) {
  TaskGraph g = make_diamond();
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

TEST(TaskGraphTest, RootsAndLeaves) {
  TaskGraph g = make_diamond();
  EXPECT_EQ(g.roots(), std::vector<TaskId>{0});
  EXPECT_EQ(g.leaves(), std::vector<TaskId>{3});
}

TEST(TaskGraphTest, ParallelEdgesMerge) {
  TaskGraph g("t");
  const TaskId a = g.add_task("a", one_point(1, 1));
  const TaskId b = g.add_task("b", one_point(1, 1));
  g.add_edge(a, b, 3);
  g.add_edge(a, b, 4);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edges()[0].data_units, 7.0);
}

TEST(TaskGraphTest, DuplicateNameRejected) {
  TaskGraph g("t");
  g.add_task("a", one_point(1, 1));
  EXPECT_THROW(g.add_task("a", one_point(1, 1)), InvalidArgumentError);
}

TEST(TaskGraphTest, SelfEdgeRejected) {
  TaskGraph g("t");
  const TaskId a = g.add_task("a", one_point(1, 1));
  EXPECT_THROW(g.add_edge(a, a, 1), InvalidArgumentError);
}

TEST(TaskGraphTest, MinMaxAreaLatency) {
  TaskGraph g("t");
  const TaskId a = g.add_task(
      "a", {DesignPoint{"fast", 100, 10}, DesignPoint{"small", 20, 90}});
  EXPECT_DOUBLE_EQ(g.min_area(a), 20);
  EXPECT_DOUBLE_EQ(g.max_area(a), 100);
  EXPECT_DOUBLE_EQ(g.min_latency(a), 10);
  EXPECT_DOUBLE_EQ(g.max_latency(a), 90);
}

TEST(TaskGraphTest, ValidateAcceptsDiamond) {
  EXPECT_NO_THROW(make_diamond().validate());
}

TEST(TaskGraphTest, ValidateRejectsEmptyGraph) {
  TaskGraph g("empty");
  EXPECT_THROW(g.validate(), InvalidArgumentError);
}

TEST(TaskGraphTest, ValidateRejectsMissingDesignPoints) {
  TaskGraph g("t");
  g.add_task(Task{"a", {}, 0, 0});
  EXPECT_THROW(g.validate(), InvalidArgumentError);
}

TEST(TaskGraphTest, ValidateRejectsNonPositiveArea) {
  TaskGraph g("t");
  g.add_task("a", one_point(0.0, 5.0));
  EXPECT_THROW(g.validate(), InvalidArgumentError);
}

TEST(AlgorithmsTest, IsDagDetectsCycle) {
  TaskGraph g("t");
  const TaskId a = g.add_task("a", one_point(1, 1));
  const TaskId b = g.add_task("b", one_point(1, 1));
  g.add_edge(a, b, 1);
  EXPECT_TRUE(is_dag(g));
  g.add_edge(b, a, 1);
  EXPECT_FALSE(is_dag(g));
  EXPECT_THROW(topological_order(g), InvalidArgumentError);
}

TEST(AlgorithmsTest, TopologicalOrderRespectsEdges) {
  TaskGraph g = make_diamond();
  const std::vector<TaskId> order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](TaskId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  for (const DataEdge& e : g.edges()) EXPECT_LT(pos(e.from), pos(e.to));
}

TEST(AlgorithmsTest, TaskLevels) {
  TaskGraph g = make_diamond();
  const std::vector<int> levels = task_levels(g);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);
  EXPECT_EQ(levels[3], 2);
}

TEST(AlgorithmsTest, Reachability) {
  TaskGraph g = make_diamond();
  const auto reach = reachability(g);
  EXPECT_TRUE(reach[0][3]);
  EXPECT_TRUE(reach[0][1]);
  EXPECT_FALSE(reach[1][2]);
  EXPECT_FALSE(reach[3][0]);
  EXPECT_FALSE(reach[0][0]);
}

TEST(AlgorithmsTest, PathEnumerationDiamond) {
  TaskGraph g = make_diamond();
  const PathEnumeration paths = enumerate_root_leaf_paths(g);
  EXPECT_FALSE(paths.truncated);
  ASSERT_EQ(paths.paths.size(), 2u);
  for (const Path& p : paths.paths) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    EXPECT_EQ(p.size(), 3u);
  }
}

TEST(AlgorithmsTest, PathEnumerationRespectsCap) {
  TaskGraph g = make_diamond();
  const PathEnumeration paths = enumerate_root_leaf_paths(g, 1);
  EXPECT_TRUE(paths.truncated);
  EXPECT_EQ(paths.paths.size(), 1u);
}

TEST(AlgorithmsTest, SingleTaskGraphHasOnePath) {
  TaskGraph g("t");
  g.add_task("only", one_point(1, 7));
  const PathEnumeration paths = enumerate_root_leaf_paths(g);
  ASSERT_EQ(paths.paths.size(), 1u);
  EXPECT_EQ(paths.paths[0].size(), 1u);
}

TEST(AlgorithmsTest, CriticalPathWeights) {
  TaskGraph g = make_diamond();
  // Longest path a -> c -> d with single design points: 100 + 300 + 400.
  EXPECT_DOUBLE_EQ(min_latency_critical_path(g), 800.0);
  EXPECT_DOUBLE_EQ(max_latency_critical_path(g), 800.0);
  EXPECT_DOUBLE_EQ(
      critical_path_weight(g, [](TaskId) { return 1.0; }), 3.0);
}

TEST(AlgorithmsTest, CriticalPathWithAlternatives) {
  TaskGraph g("t");
  const TaskId a = g.add_task(
      "a", {DesignPoint{"fast", 100, 10}, DesignPoint{"slow", 10, 100}});
  const TaskId b = g.add_task(
      "b", {DesignPoint{"fast", 100, 20}, DesignPoint{"slow", 10, 200}});
  g.add_edge(a, b, 1);
  EXPECT_DOUBLE_EQ(min_latency_critical_path(g), 30.0);
  EXPECT_DOUBLE_EQ(max_latency_critical_path(g), 300.0);
}

TEST(AlgorithmsTest, TotalTaskWeight) {
  TaskGraph g = make_diamond();
  EXPECT_DOUBLE_EQ(
      total_task_weight(g, [&](TaskId id) { return g.min_area(id); }), 100.0);
}

TEST(AlgorithmsTest, TransitiveReductionDropsImpliedEdges) {
  TaskGraph g("t");
  const TaskId a = g.add_task("a", one_point(1, 1));
  const TaskId b = g.add_task("b", one_point(1, 1));
  const TaskId c = g.add_task("c", one_point(1, 1));
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  g.add_edge(a, c, 1);  // implied by a->b->c
  const std::vector<int> kept = transitive_reduction_edges(g);
  ASSERT_EQ(kept.size(), 2u);
  for (const int e : kept) {
    const DataEdge& edge = g.edges()[static_cast<std::size_t>(e)];
    EXPECT_FALSE(edge.from == a && edge.to == c);
  }
}

TEST(AlgorithmsTest, TransitiveReductionKeepsDiamond) {
  const TaskGraph g = make_diamond();
  // No diamond edge is implied by the others.
  EXPECT_EQ(transitive_reduction_edges(g).size(), 4u);
}

TEST(AlgorithmsTest, TransitiveReductionPreservesReachability) {
  TaskGraph g("t");
  std::vector<TaskId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(g.add_task("t" + std::to_string(i), one_point(1, 1)));
  }
  // Dense-ish DAG: every earlier task points at every later one.
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) g.add_edge(ids[i], ids[j], 1);
  }
  const std::vector<int> kept = transitive_reduction_edges(g);
  EXPECT_EQ(kept.size(), 5u);  // a chain remains

  TaskGraph reduced("r");
  for (int i = 0; i < 6; ++i) {
    reduced.add_task("t" + std::to_string(i), one_point(1, 1));
  }
  for (const int e : kept) {
    const DataEdge& edge = g.edges()[static_cast<std::size_t>(e)];
    reduced.add_edge(edge.from, edge.to, edge.data_units);
  }
  EXPECT_EQ(reachability(reduced), reachability(g));
}

TEST(AlgorithmsTest, DisconnectedComponents) {
  TaskGraph g("t");
  g.add_task("a", one_point(1, 5));
  g.add_task("b", one_point(1, 9));
  EXPECT_EQ(g.roots().size(), 2u);
  EXPECT_EQ(g.leaves().size(), 2u);
  const PathEnumeration paths = enumerate_root_leaf_paths(g);
  EXPECT_EQ(paths.paths.size(), 2u);
  EXPECT_DOUBLE_EQ(min_latency_critical_path(g), 9.0);
}

}  // namespace
}  // namespace sparcs::graph
